// Ablation: the bucket limit m (Algorithm 3 / Proposition 4). As m shrinks
// on the wide-range span data set, progressively higher quantiles lose the
// alpha guarantee — the harness finds the lowest still-accurate quantile
// per m and compares with Proposition 4's prediction
// (accurate iff x_max <= x_q * gamma^(m-1)).

#include <cmath>
#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf("=== Ablation: collapse limit m (alpha=0.01, span data) ===\n");
  constexpr size_t kN = 2000000;
  const auto data = GenerateDataset(DatasetId::kSpan, kN);
  ExactQuantiles truth(data);

  Table table({"m", "buckets_used", "lowest_accurate_q",
               "prop4_predicted_q", "p99_err"});
  for (int32_t m : {4096, 2048, 1024, 512, 256, 128, 64}) {
    auto sketch = std::move(DDSketch::Create(kDDSketchAlpha, m)).value();
    for (double x : data) sketch.Add(x);
    const double gamma = sketch.mapping().gamma();

    // Empirical: lowest q (on a fine grid) from which the guarantee holds
    // for all higher q.
    double lowest_ok = 1.0;
    for (double q = 0.999; q >= 0.001; q -= 0.001) {
      const double err =
          RelativeError(sketch.QuantileOrNaN(q), truth.Quantile(q));
      if (err <= kDDSketchAlpha * (1 + 1e-9)) {
        lowest_ok = q;
      } else {
        break;
      }
    }
    // Proposition 4: accurate iff x_max <= x_q * gamma^(m-1).
    double predicted = 1.0;
    for (double q = 0.999; q >= 0.001; q -= 0.001) {
      if (truth.max() <=
          truth.Quantile(q) * std::pow(gamma, static_cast<double>(m) - 1)) {
        predicted = q;
      } else {
        break;
      }
    }
    table.AddRow(
        {FmtInt(static_cast<uint64_t>(m)), FmtInt(sketch.num_buckets()),
         Fmt(lowest_ok, "%.3f"), Fmt(predicted, "%.3f"),
         Fmt(RelativeError(sketch.QuantileOrNaN(0.99), truth.Quantile(0.99)),
             "%.4f")});
  }
  table.Print("ablation_collapse");
  std::printf(
      "\nExpected: empirical lowest accurate q <= Proposition 4's "
      "prediction (the bound is sufficient, not necessary), and p99 stays "
      "within alpha until m gets very small.\n");
  return 0;
}
