// Ablation: index mapping choice (§2.2/§4 "DDSketch (fast)" discussion).
// For each mapping: insert throughput, bucket count over a fixed range
// (memory overhead vs the optimal log mapping), and worst observed
// relative error — showing the speed/memory trade-off while the accuracy
// guarantee holds for all of them.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf("=== Ablation: index mappings (alpha=0.01, pareto data) ===\n");
  constexpr size_t kN = 5000000;
  const auto data = GenerateDataset(DatasetId::kPareto, kN);
  ExactQuantiles truth(data);

  Table table({"mapping", "add_ns", "buckets", "bucket_overhead",
               "worst_rel_err"});
  double log_buckets = 0;
  for (MappingType type :
       {MappingType::kLogarithmic, MappingType::kLinearInterpolated,
        MappingType::kQuadraticInterpolated,
        MappingType::kCubicInterpolated}) {
    DDSketchConfig config;
    config.relative_accuracy = kDDSketchAlpha;
    config.mapping = type;
    config.max_num_buckets = 8192;
    auto sketch = std::move(DDSketch::Create(config)).value();
    const auto start = std::chrono::steady_clock::now();
    for (double x : data) sketch.Add(x);
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(kN);
    double worst = 0;
    for (double q = 0.01; q < 1.0; q += 0.01) {
      worst = std::max(worst, RelativeError(sketch.QuantileOrNaN(q),
                                            truth.Quantile(q)));
    }
    const double buckets = static_cast<double>(sketch.num_buckets());
    if (type == MappingType::kLogarithmic) log_buckets = buckets;
    table.AddRow({MappingTypeToString(type), Fmt(ns, "%.1f"),
                  FmtInt(sketch.num_buckets()),
                  Fmt(buckets / log_buckets, "%.3f"), Fmt(worst, "%.4f")});
  }
  table.Print("ablation_mappings");
  std::printf(
      "\nExpected: overhead ~1.44/~1.08/~1.01 for linear/quadratic/cubic, "
      "and every mapping under the 0.01 guarantee.\n");
  return 0;
}
