// Ablation: bucket store choice (§2.2 "If m is set to a constant, it often
// makes sense to preallocate... or one can implement the sketch in a
// sparse manner, sacrificing speed for space efficiency"). Dense vs sparse
// vs collapsing: insert speed, memory, answers identical while no collapse
// occurs.

#include <chrono>
#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf("=== Ablation: bucket stores (alpha=0.01, span data) ===\n");
  constexpr size_t kN = 5000000;
  const auto data = GenerateDataset(DatasetId::kSpan, kN);
  ExactQuantiles truth(data);

  struct Case {
    const char* name;
    StoreType store;
    int32_t max_buckets;
  };
  const Case cases[] = {
      {"dense_unbounded", StoreType::kUnboundedDense, 0},
      {"dense_collapsing(2048)", StoreType::kCollapsingLowestDense, 2048},
      {"dense_collapsing(512)", StoreType::kCollapsingLowestDense, 512},
      {"sparse_unbounded", StoreType::kSparse, 0},
      {"sparse_bounded(2048)", StoreType::kSparse, 2048},
  };
  Table table(
      {"store", "add_ns", "size_kB", "buckets", "p50_err", "p99_err"});
  for (const Case& c : cases) {
    DDSketchConfig config;
    config.relative_accuracy = kDDSketchAlpha;
    config.store = c.store;
    config.max_num_buckets = c.max_buckets;
    auto sketch = std::move(DDSketch::Create(config)).value();
    const auto start = std::chrono::steady_clock::now();
    for (double x : data) sketch.Add(x);
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(kN);
    table.AddRow(
        {c.name, Fmt(ns, "%.1f"),
         Fmt(static_cast<double>(sketch.size_in_bytes()) / 1024.0, "%.1f"),
         FmtInt(sketch.num_buckets()),
         Fmt(RelativeError(sketch.QuantileOrNaN(0.5), truth.Quantile(0.5)),
             "%.4f"),
         Fmt(RelativeError(sketch.QuantileOrNaN(0.99), truth.Quantile(0.99)),
             "%.4f")});
  }
  table.Print("ablation_stores");
  std::printf(
      "\nExpected: sparse trades add speed for footprint; collapsing caps "
      "memory; p99 stays within 0.01 for every store.\n");
  return 0;
}
