// Appendix (beyond the paper's evaluated set): t-digest vs DDSketch.
//
// §1.2 positions t-digest as the biased-rank-error alternative: "much
// better accuracy (in rank) than uniform-rank-error sketches on
// percentiles like the p99.9, but ... still high relative error on
// heavy-tailed data sets. Like GK they are only one-way mergeable." This
// harness quantifies that positioning on the paper's data sets: rank error
// at extreme percentiles (t-digest's home turf) and relative error on the
// heavy tails (DDSketch's).

#include <cmath>
#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"
#include "ckms/ckms_sketch.h"
#include "kll/kll_sketch.h"
#include "tdigest/tdigest.h"

namespace dd::bench {
namespace {

void RunDataset(DatasetId id) {
  constexpr size_t kN = 1000000;
  const auto data = GenerateDataset(id, kN);
  ExactQuantiles truth(data);
  auto dd = MakeDDSketch();
  auto td = std::move(TDigest::Create(100.0)).value();
  auto kll = std::move(KllSketch::Create(200, 1)).value();
  auto ckms =
      std::move(CkmsSketch::Create(CkmsSketch::DefaultTargets())).value();
  for (double x : data) {
    dd.Add(x);
    td.Add(x);
    kll.Add(x);
    ckms.Add(x);
  }
  std::printf("\nAppendix — %s (n=%zu)\n", DatasetIdToString(id), kN);
  Table table({"q", "dd_rel_err", "td_rel_err", "kll_rel_err",
               "ckms_rel_err", "dd_rank_err", "td_rank_err", "kll_rank_err",
               "ckms_rank_err"});
  for (double q : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const double actual = truth.Quantile(q);
    const double dd_est = dd.QuantileOrNaN(q);
    const double td_est = td.QuantileOrNaN(q);
    const double kll_est = kll.QuantileOrNaN(q);
    const double ckms_est = ckms.QuantileOrNaN(q);
    table.AddRow({Fmt(q, "%.4f"), Fmt(RelativeError(dd_est, actual), "%.3g"),
                  Fmt(RelativeError(td_est, actual), "%.3g"),
                  Fmt(RelativeError(kll_est, actual), "%.3g"),
                  Fmt(RelativeError(ckms_est, actual), "%.3g"),
                  Fmt(RankError(truth, q, dd_est), "%.3g"),
                  Fmt(RankError(truth, q, td_est), "%.3g"),
                  Fmt(RankError(truth, q, kll_est), "%.3g"),
                  Fmt(RankError(truth, q, ckms_est), "%.3g")});
  }
  table.Print(std::string("appendix_tdigest_") + DatasetIdToString(id));
  std::printf(
      "footprints: ddsketch %.1f kB, tdigest %.1f kB (%zu centroids), "
      "kll %.1f kB (%zu items)\n",
      static_cast<double>(dd.size_in_bytes()) / 1024.0,
      static_cast<double>(td.size_in_bytes()) / 1024.0, td.num_centroids(),
      static_cast<double>(kll.size_in_bytes()) / 1024.0,
      kll.num_retained());
}

}  // namespace
}  // namespace dd::bench

int main() {
  std::printf(
      "=== Appendix: t-digest (delta=100), KLL (k=200) and CKMS "
      "(targeted) vs DDSketch (alpha=0.01) — the Section 1.2 "
      "related-work sketches ===\n"
      "Expected: t-digest wins extreme-percentile rank error; DDSketch "
      "wins (bounded) relative error on the heavy tails.\n");
  for (dd::DatasetId id : dd::kPaperDatasets) dd::bench::RunDataset(id);
  return 0;
}
