// Appendix: wire cost. The paper's motivation is that forwarding raw
// observations "can strain the capacities (network, memory, CPU) of the
// monitored resources" — a worker shipping a sketch every second must be
// cheaper than shipping its raw values. This harness measures serialized
// payload bytes per sketch family as the per-interval value count grows,
// against the 8 bytes/value raw baseline.

#include <cstdio>

#include "api/quantile_sketch.h"
#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf(
      "=== Appendix: serialized payload size (bytes) vs values per "
      "interval, web latency data ===\n");
  Table table({"n", "raw_bytes", "ddsketch", "gk", "hdr", "moments",
               "tdigest", "kll", "ckms"});
  for (size_t n = 100; n <= 1000000; n *= 10) {
    std::vector<std::unique_ptr<QuantileSketch>> sketches;
    sketches.push_back(std::move(NewDDSketch()).value());
    sketches.push_back(std::move(NewGKArray()).value());
    sketches.push_back(std::move(NewHdrHistogram(2, 1e-3, 1e5)).value());
    sketches.push_back(std::move(NewMomentSketch()).value());
    sketches.push_back(std::move(NewTDigest()).value());
    sketches.push_back(std::move(NewKllSketch()).value());
    sketches.push_back(std::move(NewCkmsSketch()).value());
    DataStream stream(MakeDataset(DatasetId::kWebLatency), kDefaultSeed);
    for (size_t i = 0; i < n; ++i) {
      const double x = stream.Next();
      for (auto& sketch : sketches) sketch->Add(x);
    }
    std::vector<std::string> row = {FmtInt(n),
                                    FmtInt(n * sizeof(double))};
    for (auto& sketch : sketches) {
      row.push_back(FmtInt(sketch->Serialize().size()));
    }
    table.AddRow(std::move(row));
  }
  table.Print("appendix_wire");
  std::printf(
      "\nExpected: every sketch beats raw transfer past a few hundred "
      "values; Moments is constant; DDSketch stays low-kB even at 1e6 "
      "values per interval.\n");
  return 0;
}
