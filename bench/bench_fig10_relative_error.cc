// Figure 10: relative error of the p50 / p95 / p99 estimates vs n, for the
// three data sets and four sketch families. Expected shape (paper):
// DDSketch and HDR stay below ~0.01 everywhere; GKArray and Moments blow up
// by orders of magnitude on the heavy-tailed pareto and span sets,
// especially at p99; everything is tame on power.

#include <cmath>
#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"

namespace dd::bench {
namespace {

std::string ErrCell(double estimate, double actual) {
  if (std::isnan(estimate)) return "solve_fail";
  return Fmt(RelativeError(estimate, actual), "%.3g");
}

void RunDataset(DatasetId id) {
  std::printf("\nFigure 10 — relative error, data set: %s\n",
              DatasetIdToString(id));
  Table table({"n", "q", "ddsketch", "gkarray", "hdr", "moments"});
  for (size_t n : SizeGrid(id)) {
    const auto data = GenerateDataset(id, n);
    ExactQuantiles truth(data);
    auto dd = MakeDDSketch();
    auto gk = MakeGK();
    auto hdr = MakeHdrFor(id);
    auto moments = MakeMoments();
    for (double x : data) {
      dd.Add(x);
      gk.Add(x);
      hdr.Record(x);
      moments.Add(x);
    }
    for (double q : kQuantiles) {
      const double actual = truth.Quantile(q);
      table.AddRow({FmtInt(n), Fmt(q, "%.2f"),
                    ErrCell(dd.QuantileOrNaN(q), actual),
                    ErrCell(gk.QuantileOrNaN(q), actual),
                    ErrCell(hdr.QuantileOrNaN(q), actual),
                    ErrCell(moments.QuantileOrNaN(q), actual)});
    }
  }
  table.Print(std::string("fig10_") + DatasetIdToString(id));
}

}  // namespace
}  // namespace dd::bench

int main() {
  std::printf("=== Figure 10: relative error of p50/p95/p99 vs n ===\n");
  for (dd::DatasetId id : dd::kPaperDatasets) dd::bench::RunDataset(id);
  return 0;
}
