// Figure 11: rank error of the p50 / p95 / p99 estimates vs n, same grid as
// Figure 10. Expected shape (paper): GKArray honors its 0.01 bound; DDSketch
// and HDR have no rank guarantee yet do as well or better, especially at
// the higher quantiles; Moments (average-error guarantee only) is worst.

#include <cmath>
#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"

namespace dd::bench {
namespace {

std::string ErrCell(const ExactQuantiles& truth, double q, double estimate) {
  if (std::isnan(estimate)) return "solve_fail";
  return Fmt(RankError(truth, q, estimate), "%.3g");
}

void RunDataset(DatasetId id) {
  std::printf("\nFigure 11 — rank error, data set: %s\n",
              DatasetIdToString(id));
  Table table({"n", "q", "ddsketch", "gkarray", "hdr", "moments"});
  for (size_t n : SizeGrid(id)) {
    const auto data = GenerateDataset(id, n);
    ExactQuantiles truth(data);
    auto dd = MakeDDSketch();
    auto gk = MakeGK();
    auto hdr = MakeHdrFor(id);
    auto moments = MakeMoments();
    for (double x : data) {
      dd.Add(x);
      gk.Add(x);
      hdr.Record(x);
      moments.Add(x);
    }
    for (double q : kQuantiles) {
      table.AddRow({FmtInt(n), Fmt(q, "%.2f"),
                    ErrCell(truth, q, dd.QuantileOrNaN(q)),
                    ErrCell(truth, q, gk.QuantileOrNaN(q)),
                    ErrCell(truth, q, hdr.QuantileOrNaN(q)),
                    ErrCell(truth, q, moments.QuantileOrNaN(q))});
    }
  }
  table.Print(std::string("fig11_") + DatasetIdToString(id));
}

}  // namespace
}  // namespace dd::bench

int main() {
  std::printf("=== Figure 11: rank error of p50/p95/p99 vs n ===\n");
  for (dd::DatasetId id : dd::kPaperDatasets) dd::bench::RunDataset(id);
  return 0;
}
