// Figure 2: the average latency of a web endpoint over time tracks the
// 75th percentile, not the median — the paper's motivation for quantile
// monitoring over summary statistics. One row per time interval: mean,
// p50, p75 from exact data plus the DDSketch estimates a monitoring
// pipeline would actually report.

#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/running_stats.h"

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf(
      "=== Figure 2: mean vs p50/p75 latency per time interval ===\n");
  constexpr int kIntervals = 20;
  constexpr int kRequestsPerInterval = 50000;
  DataStream stream(MakeDataset(DatasetId::kWebLatency), kDefaultSeed);
  Table table({"interval", "mean", "p50", "p75", "dd_p50", "dd_p75",
               "mean_closer_to"});
  int mean_tracks_p75 = 0;
  for (int t = 0; t < kIntervals; ++t) {
    RunningStats stats;
    auto sketch = MakeDDSketch();
    std::vector<double> data(kRequestsPerInterval);
    for (double& x : data) {
      x = stream.Next();
      stats.Add(x);
      sketch.Add(x);
    }
    ExactQuantiles truth(data);
    const double mean = stats.mean();
    const double p50 = truth.Quantile(0.5);
    const double p75 = truth.Quantile(0.75);
    const bool closer_p75 = std::abs(mean - p75) < std::abs(mean - p50);
    mean_tracks_p75 += closer_p75;
    table.AddRow({FmtInt(t), Fmt(mean, "%.3f"), Fmt(p50, "%.3f"),
                  Fmt(p75, "%.3f"), Fmt(sketch.QuantileOrNaN(0.5), "%.3f"),
                  Fmt(sketch.QuantileOrNaN(0.75), "%.3f"),
                  closer_p75 ? "p75" : "p50"});
  }
  table.Print("fig2_mean_vs_quantiles");
  std::printf(
      "\nmean closer to p75 than to p50 in %d/%d intervals (paper: the "
      "dotted mean hugs the p75 line)\n",
      mean_tracks_p75, kIntervals);
  return 0;
}
