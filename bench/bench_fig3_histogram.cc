// Figure 3: histogram of 2 million web request response times, showing the
// extreme right-skew that breaks rank-error sketches: the p0-p95 body sits
// in single-digit units while the p95-p100 tail stretches 1-2 orders of
// magnitude further. Prints both panels of the figure: the p0-p95 zoom and
// the full p0-p100 range.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"

namespace dd::bench {
namespace {

void PrintHistogram(const std::vector<double>& sorted, double lo, double hi,
                    const char* title, const char* tag) {
  constexpr int kBins = 40;
  std::vector<size_t> bins(kBins, 0);
  for (double x : sorted) {
    if (x < lo || x > hi) continue;
    const int b = std::min(
        kBins - 1, static_cast<int>((x - lo) / (hi - lo) * kBins));
    bins[b]++;
  }
  const size_t peak = *std::max_element(bins.begin(), bins.end());
  std::printf("\n%s\n", title);
  Table table({"bin_lo", "bin_hi", "count", "bar"});
  for (int b = 0; b < kBins; ++b) {
    const double bin_lo = lo + (hi - lo) * b / kBins;
    const double bin_hi = lo + (hi - lo) * (b + 1) / kBins;
    const int bar_len =
        peak == 0 ? 0
                  : static_cast<int>(50.0 * static_cast<double>(bins[b]) /
                                     static_cast<double>(peak));
    table.AddRow({Fmt(bin_lo, "%.3g"), Fmt(bin_hi, "%.3g"), FmtInt(bins[b]),
                  std::string(static_cast<size_t>(bar_len), '#')});
  }
  table.Print(tag);
}

}  // namespace
}  // namespace dd::bench

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf("=== Figure 3: histogram of 2M web response times ===\n");
  auto data = GenerateDataset(DatasetId::kWebLatency, 2000000);
  ExactQuantiles truth(data);
  const auto& sorted = truth.sorted();
  std::printf("p50=%.2f  p75=%.2f  p95=%.2f  p99=%.2f  p100=%.2f\n",
              truth.Quantile(0.5), truth.Quantile(0.75), truth.Quantile(0.95),
              truth.Quantile(0.99), truth.max());
  PrintHistogram(sorted, truth.min(), truth.Quantile(0.95),
                 "p0-p95 (zoomed body)", "fig3_p0_p95");
  PrintHistogram(sorted, truth.min(), truth.max(),
                 "p0-p100 (full range; tail bars below one pixel in the "
                 "paper)",
                 "fig3_p0_p100");
  return 0;
}
