// Figure 4: actual p50/p75/p90/p99 values vs the estimates of a
// 0.005-rank-accurate sketch (GKArray) and a 0.01-relative-accurate sketch
// (DDSketch), over 20 batches of 100,000 values. Expected shape (paper):
// both sketches hug the actual lines at p50/p75/p90; at p99 the
// relative-error sketch stays within 1% while the rank-error sketch
// scatters wildly across the 80-220 band.

#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf(
      "=== Figure 4: actual vs rank-error vs relative-error estimates ===\n");
  constexpr int kBatches = 20;
  constexpr int kBatchSize = 100000;
  const double kQs[] = {0.5, 0.75, 0.9, 0.99};
  DataStream stream(MakeDataset(DatasetId::kWebLatency), kDefaultSeed);

  Table table({"batch", "q", "actual", "rel_err_sketch(a=.01)",
               "rank_err_sketch(e=.005)"});
  double worst_rel_relative = 0, worst_rel_rank = 0;
  for (int batch = 1; batch <= kBatches; ++batch) {
    auto relative = std::move(DDSketch::Create(0.01, 2048)).value();
    auto rank = std::move(GKArray::Create(0.005)).value();
    std::vector<double> data(kBatchSize);
    for (double& x : data) {
      x = stream.Next();
      relative.Add(x);
      rank.Add(x);
    }
    ExactQuantiles truth(data);
    for (double q : kQs) {
      const double actual = truth.Quantile(q);
      const double rel_est = relative.QuantileOrNaN(q);
      const double rank_est = rank.QuantileOrNaN(q);
      if (q == 0.99) {
        worst_rel_relative =
            std::max(worst_rel_relative, RelativeError(rel_est, actual));
        worst_rel_rank =
            std::max(worst_rel_rank, RelativeError(rank_est, actual));
      }
      table.AddRow({FmtInt(batch), Fmt(q, "%.2f"), Fmt(actual, "%.4g"),
                    Fmt(rel_est, "%.4g"), Fmt(rank_est, "%.4g")});
    }
  }
  table.Print("fig4");
  std::printf(
      "\nworst p99 relative error across batches: relative-error sketch "
      "%.4f, rank-error sketch %.4f (paper: the rank sketch is the one "
      "that scatters)\n",
      worst_rel_relative, worst_rel_rank);
  return 0;
}
