// Figure 5: histograms of the pareto, span and power data sets — the
// workload characterization panel. Prints summary statistics and a
// log-bucketed histogram per data set; pareto and span are heavy-tailed
// over many decades, power is dense and narrow.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"

namespace dd::bench {
namespace {

void Characterize(DatasetId id) {
  constexpr size_t kN = 1000000;
  auto data = GenerateDataset(id, kN);
  ExactQuantiles truth(data);
  std::printf("\nFigure 5 — data set %s (n=%zu)\n", DatasetIdToString(id),
              kN);
  std::printf(
      "  min=%.4g p25=%.4g p50=%.4g p75=%.4g p95=%.4g p99=%.4g max=%.4g  "
      "decades=%.1f\n",
      truth.min(), truth.Quantile(0.25), truth.Quantile(0.5),
      truth.Quantile(0.75), truth.Quantile(0.95), truth.Quantile(0.99),
      truth.max(), std::log10(truth.max() / truth.min()));

  // Decade-bucketed histogram (log x-axis, like the paper's log-scale
  // panels for pareto and span).
  const double lo = std::log10(truth.min());
  const double hi = std::log10(truth.max());
  constexpr int kBins = 24;
  std::vector<size_t> bins(kBins, 0);
  for (double x : data) {
    const int b = std::min(
        kBins - 1,
        static_cast<int>((std::log10(x) - lo) / (hi - lo + 1e-12) * kBins));
    bins[b]++;
  }
  const size_t peak = *std::max_element(bins.begin(), bins.end());
  Table table({"bucket_lo", "bucket_hi", "count", "bar"});
  for (int b = 0; b < kBins; ++b) {
    const double bin_lo = std::pow(10.0, lo + (hi - lo) * b / kBins);
    const double bin_hi = std::pow(10.0, lo + (hi - lo) * (b + 1) / kBins);
    const int bar = static_cast<int>(
        50.0 * static_cast<double>(bins[b]) / static_cast<double>(peak));
    table.AddRow({Fmt(bin_lo, "%.3g"), Fmt(bin_hi, "%.3g"), FmtInt(bins[b]),
                  std::string(static_cast<size_t>(bar), '#')});
  }
  table.Print(std::string("fig5_") + DatasetIdToString(id));
}

}  // namespace
}  // namespace dd::bench

int main() {
  std::printf("=== Figure 5: the evaluation data sets ===\n");
  for (dd::DatasetId id : dd::kPaperDatasets) dd::bench::Characterize(id);
  return 0;
}
