// Figure 6: sketch size in memory (kB) as a function of stream size n, for
// the three data sets and five sketch series. Expected shape (paper):
// Moments constant-tiny; GKArray small; DDSketch small and flattening;
// DDSketch (fast) up to ~2x DDSketch; HDR largest and flat.

#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"

namespace dd::bench {
namespace {

void RunDataset(DatasetId id) {
  std::printf("\nFigure 6 — sketch size in memory, data set: %s\n",
              DatasetIdToString(id));
  Table table({"n", "ddsketch_kB", "ddsketch_fast_kB", "gkarray_kB",
               "hdr_kB", "moments_kB"});
  for (size_t n : SizeGrid(id)) {
    auto dd = MakeDDSketch();
    auto fast = MakeDDSketchFast();
    auto gk = MakeGK();
    auto hdr = MakeHdrFor(id);
    auto moments = MakeMoments();
    DataStream stream(MakeDataset(id), kDefaultSeed);
    for (size_t i = 0; i < n; ++i) {
      const double x = stream.Next();
      dd.Add(x);
      fast.Add(x);
      gk.Add(x);
      hdr.Record(x);
      moments.Add(x);
    }
    gk.Flush();
    const double kb = 1024.0;
    table.AddRow({FmtInt(n), Fmt(dd.size_in_bytes() / kb, "%.2f"),
                  Fmt(fast.size_in_bytes() / kb, "%.2f"),
                  Fmt(gk.size_in_bytes() / kb, "%.2f"),
                  Fmt(hdr.size_in_bytes() / kb, "%.2f"),
                  Fmt(moments.size_in_bytes() / kb, "%.2f")});
  }
  table.Print(std::string("fig6_") + DatasetIdToString(id));
}

}  // namespace
}  // namespace dd::bench

int main() {
  std::printf("=== Figure 6: sketch size in memory (kB) vs n ===\n");
  for (dd::DatasetId id : dd::kPaperDatasets) dd::bench::RunDataset(id);
  return 0;
}
