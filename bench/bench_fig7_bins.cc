// Figure 7: number of DDSketch bins for the pareto data set as n grows.
// The paper runs to n = 1e10 and sees ~900 bins, under half the m = 2048
// limit; growth is logarithmic in n. Default grid stops at 1e8
// (DD_BENCH_FULL=1 extends to 1e9).

#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf("=== Figure 7: DDSketch bin count vs n (pareto) ===\n");
  const size_t cap = FullScale() ? 1000000000ULL : 100000000ULL;
  auto sketch = MakeDDSketch();
  DataStream stream(MakeDataset(DatasetId::kPareto), kDefaultSeed);
  Table table({"n", "bins", "limit"});
  size_t next_report = 1000;
  for (size_t n = 1; n <= cap; ++n) {
    sketch.Add(stream.Next());
    if (n == next_report) {
      table.AddRow({FmtInt(n), FmtInt(sketch.num_buckets()),
                    FmtInt(kDDSketchMaxBuckets)});
      next_report *= 10;
    }
  }
  table.Print("fig7_pareto_bins");
  return 0;
}
