// Figure 8: average time to add a value, per sketch, as n grows (pareto
// data). Expected ordering (paper): GKArray slowest by far; Moments and
// HDR fast; DDSketch (fast) fastest; DDSketch (log mapping) pays for the
// logarithm.
//
// Beyond the paper's series, the harness measures the repo's batch insert
// path (DDSketch::AddBatch) for both mappings — the form the serving
// stack actually uses — and can emit the whole table as machine-readable
// JSON for CI trend tracking:
//
//   bench_fig8_insert_speed [--json FILE]
//
// DD_BENCH_SMOKE=1 caps the sweep at n = 1e6 (the CI perf-smoke scale);
// DD_BENCH_FULL=1 extends it to the paper's 1e8.
//
// Values are pre-generated so the measured loop is sketch work only.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"

namespace dd::bench {
namespace {

using Clock = std::chrono::steady_clock;

template <typename AddFn>
double NsPerAdd(const std::vector<double>& values, AddFn&& add) {
  const auto start = Clock::now();
  for (double v : values) add(v);
  const auto stop = Clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(values.size());
}

/// Batch-insert timing: the values stream through AddBatch in
/// server-commit-sized chunks rather than one call per value.
double NsPerBatchAdd(const std::vector<double>& values, DDSketch* sketch) {
  constexpr size_t kBatch = 1024;
  const std::span<const double> all(values);
  const auto start = Clock::now();
  for (size_t i = 0; i < all.size(); i += kBatch) {
    sketch->AddBatch(all.subspan(i, std::min(kBatch, all.size() - i)));
  }
  const auto stop = Clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(values.size());
}

struct Row {
  size_t n = 0;
  double dd = 0, dd_batch = 0, fast = 0, fast_batch = 0;
  double gk = 0, hdr = 0, moments = 0;
};

/// Emits the result rows as a small JSON document (BENCH_insert.json in
/// CI) so the insert-path trajectory is diffable across commits.
void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig8_insert_speed\",\n"
               "  \"dataset\": \"pareto\",\n"
               "  \"unit\": \"ns_per_add\",\n"
               "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"ddsketch\": %.2f, \"ddsketch_batch\": "
                 "%.2f, \"ddsketch_fast\": %.2f, \"ddsketch_fast_batch\": "
                 "%.2f, \"gkarray\": %.2f, \"hdr\": %.2f, \"moments\": "
                 "%.2f}%s\n",
                 r.n, r.dd, r.dd_batch, r.fast, r.fast_batch, r.gk, r.hdr,
                 r.moments, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace dd::bench

int main(int argc, char** argv) {
  using namespace dd;
  using namespace dd::bench;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  std::printf("=== Figure 8: average add time (ns/value), pareto data ===\n");
  Table table({"n", "ddsketch", "ddsketch_batch", "ddsketch_fast",
               "ddsketch_fast_batch", "gkarray", "hdr", "moments"});
  const size_t cap =
      SmokeScale() ? 1000000 : (FullScale() ? 100000000 : 10000000);
  std::vector<Row> rows;
  for (size_t n = 100000; n <= cap; n *= 10) {
    const auto values = GenerateDataset(DatasetId::kPareto, n);
    auto dd = MakeDDSketch();
    auto dd_batch = MakeDDSketch();
    auto fast = MakeDDSketchFast();
    auto fast_batch = MakeDDSketchFast();
    auto gk = MakeGK();
    auto hdr = MakeHdrFor(DatasetId::kPareto);
    auto moments = MakeMoments();
    Row row;
    row.n = n;
    row.dd = NsPerAdd(values, [&](double v) { dd.Add(v); });
    row.dd_batch = NsPerBatchAdd(values, &dd_batch);
    row.fast = NsPerAdd(values, [&](double v) { fast.Add(v); });
    row.fast_batch = NsPerBatchAdd(values, &fast_batch);
    row.gk = NsPerAdd(values, [&](double v) { gk.Add(v); });
    row.hdr = NsPerAdd(values, [&](double v) { hdr.Record(v); });
    row.moments = NsPerAdd(values, [&](double v) { moments.Add(v); });
    rows.push_back(row);
    table.AddRow({FmtInt(n), Fmt(row.dd, "%.1f"), Fmt(row.dd_batch, "%.1f"),
                  Fmt(row.fast, "%.1f"), Fmt(row.fast_batch, "%.1f"),
                  Fmt(row.gk, "%.1f"), Fmt(row.hdr, "%.1f"),
                  Fmt(row.moments, "%.1f")});
  }
  table.Print("fig8_add_ns");
  if (!json_path.empty()) WriteJson(json_path, rows);
  return 0;
}
