// Figure 8: average time to add a value, per sketch, as n grows (pareto
// data). Expected ordering (paper): GKArray slowest by far; Moments and
// HDR fast; DDSketch (fast) fastest; DDSketch (log mapping) pays for the
// logarithm.
//
// Values are pre-generated so the measured loop is sketch work only.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"

namespace dd::bench {
namespace {

using Clock = std::chrono::steady_clock;

template <typename AddFn>
double NsPerAdd(const std::vector<double>& values, AddFn&& add) {
  const auto start = Clock::now();
  for (double v : values) add(v);
  const auto stop = Clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(values.size());
}

}  // namespace
}  // namespace dd::bench

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf("=== Figure 8: average add time (ns/value), pareto data ===\n");
  Table table({"n", "ddsketch", "ddsketch_fast", "gkarray", "hdr",
               "moments"});
  const size_t cap = FullScale() ? 100000000 : 10000000;
  for (size_t n = 100000; n <= cap; n *= 10) {
    const auto values = GenerateDataset(DatasetId::kPareto, n);
    auto dd = MakeDDSketch();
    auto fast = MakeDDSketchFast();
    auto gk = MakeGK();
    auto hdr = MakeHdrFor(DatasetId::kPareto);
    auto moments = MakeMoments();
    const double t_dd = NsPerAdd(values, [&](double v) { dd.Add(v); });
    const double t_fast = NsPerAdd(values, [&](double v) { fast.Add(v); });
    const double t_gk = NsPerAdd(values, [&](double v) { gk.Add(v); });
    const double t_hdr = NsPerAdd(values, [&](double v) { hdr.Record(v); });
    const double t_mo = NsPerAdd(values, [&](double v) { moments.Add(v); });
    table.AddRow({FmtInt(n), Fmt(t_dd, "%.1f"), Fmt(t_fast, "%.1f"),
                  Fmt(t_gk, "%.1f"), Fmt(t_hdr, "%.1f"), Fmt(t_mo, "%.1f")});
  }
  table.Print("fig8_add_ns");
  return 0;
}
