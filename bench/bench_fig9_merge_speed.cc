// Figure 9: average time to merge two sketches of roughly equal size, as a
// function of the merged value count (pareto data). Expected ordering
// (paper): Moments fastest (k additions); DDSketch ~10us at fifty million
// values; GKArray and HDR an order of magnitude slower.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"

namespace dd::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Median-of-repeats merge timing; the merge target is copied fresh per
/// repeat so every measurement merges identical inputs.
template <typename Sketch, typename MergeFn>
double MergeMicros(const Sketch& a, const Sketch& b, MergeFn&& merge,
                   int repeats = 7) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    Sketch target = a;
    const auto start = Clock::now();
    merge(target, b);
    const auto stop = Clock::now();
    times.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace
}  // namespace dd::bench

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf(
      "=== Figure 9: merge time (microseconds) vs merged value count ===\n");
  Table table({"merged_n", "ddsketch", "ddsketch_fast", "gkarray", "hdr",
               "moments"});
  const size_t cap = FullScale() ? 50000000 : 5000000;
  for (size_t half = 50000; half <= cap; half *= 10) {
    auto dd1 = MakeDDSketch(), dd2 = MakeDDSketch();
    auto f1 = MakeDDSketchFast(), f2 = MakeDDSketchFast();
    auto gk1 = MakeGK(), gk2 = MakeGK();
    auto hdr1 = MakeHdrFor(DatasetId::kPareto),
         hdr2 = MakeHdrFor(DatasetId::kPareto);
    auto mo1 = MakeMoments(), mo2 = MakeMoments();
    DataStream s1(MakeDataset(DatasetId::kPareto), 1);
    DataStream s2(MakeDataset(DatasetId::kPareto), 2);
    for (size_t i = 0; i < half; ++i) {
      const double x = s1.Next(), y = s2.Next();
      dd1.Add(x);
      dd2.Add(y);
      f1.Add(x);
      f2.Add(y);
      gk1.Add(x);
      gk2.Add(y);
      hdr1.Record(x);
      hdr2.Record(y);
      mo1.Add(x);
      mo2.Add(y);
    }
    gk1.Flush();
    gk2.Flush();
    const double t_dd = MergeMicros(
        dd1, dd2, [](DDSketch& a, const DDSketch& b) { (void)a.MergeFrom(b); });
    const double t_f = MergeMicros(
        f1, f2, [](DDSketch& a, const DDSketch& b) { (void)a.MergeFrom(b); });
    const double t_gk = MergeMicros(
        gk1, gk2, [](GKArray& a, const GKArray& b) { a.MergeFrom(b); });
    const double t_hdr =
        MergeMicros(hdr1, hdr2, [](HdrDoubleHistogram& a,
                                   const HdrDoubleHistogram& b) {
          (void)a.MergeFrom(b);
        });
    const double t_mo = MergeMicros(
        mo1, mo2,
        [](MomentSketch& a, const MomentSketch& b) { (void)a.MergeFrom(b); });
    table.AddRow({FmtInt(2 * half), Fmt(t_dd, "%.2f"), Fmt(t_f, "%.2f"),
                  Fmt(t_gk, "%.2f"), Fmt(t_hdr, "%.2f"), Fmt(t_mo, "%.3f")});
  }
  table.Print("fig9_merge_us");
  return 0;
}
