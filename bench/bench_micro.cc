// google-benchmark microbenchmarks: per-operation costs of every sketch
// (add, merge, quantile) plus the mapping index computations — the
// operations behind Figures 8 and 9, measured with proper repetition
// statistics rather than one-shot wall clock.

#include <benchmark/benchmark.h>

#include "bench/common/params.h"
#include "data/datasets.h"

namespace dd::bench {
namespace {

std::vector<double> TestData(size_t n = 1 << 16) {
  return GenerateDataset(DatasetId::kPareto, n);
}

// ---- Add ------------------------------------------------------------------

void BM_DDSketchAdd_Log(benchmark::State& state) {
  const auto data = TestData();
  auto sketch = MakeDDSketch();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Add(data[i++ & (data.size() - 1)]);
  }
}
BENCHMARK(BM_DDSketchAdd_Log);

void BM_DDSketchAdd_Cubic(benchmark::State& state) {
  const auto data = TestData();
  auto sketch = MakeDDSketchFast();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Add(data[i++ & (data.size() - 1)]);
  }
}
BENCHMARK(BM_DDSketchAdd_Cubic);

// The seed insert path (virtual mapping + store dispatch per add),
// pinned via DDSketchConfig::reference_insert_path: the baseline the
// devirtualized path is measured against.
void BM_DDSketchAdd_LogReference(benchmark::State& state) {
  const auto data = TestData();
  DDSketchConfig config;
  config.relative_accuracy = kDDSketchAlpha;
  config.max_num_buckets = kDDSketchMaxBuckets;
  config.reference_insert_path = true;
  auto sketch = std::move(DDSketch::Create(config)).value();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Add(data[i++ & (data.size() - 1)]);
  }
}
BENCHMARK(BM_DDSketchAdd_LogReference);

void BM_DDSketchAddBatch_Log(benchmark::State& state) {
  const auto data = TestData();
  auto sketch = MakeDDSketch();
  for (auto _ : state) {
    sketch.AddBatch(data);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_DDSketchAddBatch_Log);

void BM_DDSketchAddBatch_Cubic(benchmark::State& state) {
  const auto data = TestData();
  auto sketch = MakeDDSketchFast();
  for (auto _ : state) {
    sketch.AddBatch(data);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_DDSketchAddBatch_Cubic);

void BM_DDSketchAdd_Sparse(benchmark::State& state) {
  const auto data = TestData();
  DDSketchConfig config;
  config.store = StoreType::kSparse;
  config.max_num_buckets = 0;
  auto sketch = std::move(DDSketch::Create(config)).value();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Add(data[i++ & (data.size() - 1)]);
  }
}
BENCHMARK(BM_DDSketchAdd_Sparse);

void BM_GKArrayAdd(benchmark::State& state) {
  const auto data = TestData();
  auto sketch = MakeGK();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Add(data[i++ & (data.size() - 1)]);
  }
}
BENCHMARK(BM_GKArrayAdd);

void BM_HdrRecord(benchmark::State& state) {
  const auto data = TestData();
  auto sketch = MakeHdrFor(DatasetId::kPareto);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Record(data[i++ & (data.size() - 1)]);
  }
}
BENCHMARK(BM_HdrRecord);

void BM_MomentsAdd(benchmark::State& state) {
  const auto data = TestData();
  auto sketch = MakeMoments();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Add(data[i++ & (data.size() - 1)]);
  }
}
BENCHMARK(BM_MomentsAdd);

// ---- Mapping index computation ---------------------------------------------

void BM_MappingIndex(benchmark::State& state) {
  const auto type = static_cast<MappingType>(state.range(0));
  auto mapping = std::move(IndexMapping::Create(type, 0.01)).value();
  const auto data = TestData();
  size_t i = 0;
  int64_t sink = 0;
  for (auto _ : state) {
    sink += mapping->Index(data[i++ & (data.size() - 1)]);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MappingIndex)
    ->Arg(static_cast<int>(MappingType::kLogarithmic))
    ->Arg(static_cast<int>(MappingType::kLinearInterpolated))
    ->Arg(static_cast<int>(MappingType::kQuadraticInterpolated))
    ->Arg(static_cast<int>(MappingType::kCubicInterpolated));

// ---- Merge -----------------------------------------------------------------

void BM_DDSketchMerge(benchmark::State& state) {
  auto a = MakeDDSketch(), b = MakeDDSketch();
  DataStream s1(MakeDataset(DatasetId::kPareto), 1);
  DataStream s2(MakeDataset(DatasetId::kPareto), 2);
  for (int i = 0; i < 1000000; ++i) {
    a.Add(s1.Next());
    b.Add(s2.Next());
  }
  for (auto _ : state) {
    DDSketch target = a;
    benchmark::DoNotOptimize(target.MergeFrom(b));
  }
}
BENCHMARK(BM_DDSketchMerge);

void BM_MomentsMerge(benchmark::State& state) {
  auto a = MakeMoments(), b = MakeMoments();
  DataStream s1(MakeDataset(DatasetId::kPareto), 1);
  for (int i = 0; i < 100000; ++i) {
    a.Add(s1.Next());
    b.Add(s1.Next());
  }
  for (auto _ : state) {
    MomentSketch target = a;
    benchmark::DoNotOptimize(target.MergeFrom(b));
  }
}
BENCHMARK(BM_MomentsMerge);

void BM_HdrMerge(benchmark::State& state) {
  auto a = MakeHdrFor(DatasetId::kPareto), b = MakeHdrFor(DatasetId::kPareto);
  DataStream s1(MakeDataset(DatasetId::kPareto), 1);
  for (int i = 0; i < 1000000; ++i) {
    a.Record(s1.Next());
    b.Record(s1.Next());
  }
  for (auto _ : state) {
    HdrDoubleHistogram target = a;
    benchmark::DoNotOptimize(target.MergeFrom(b));
  }
}
BENCHMARK(BM_HdrMerge);

void BM_GKMerge(benchmark::State& state) {
  auto a = MakeGK(), b = MakeGK();
  DataStream s1(MakeDataset(DatasetId::kPareto), 1);
  for (int i = 0; i < 1000000; ++i) {
    a.Add(s1.Next());
    b.Add(s1.Next());
  }
  a.Flush();
  b.Flush();
  for (auto _ : state) {
    GKArray target = a;
    target.MergeFrom(b);
    benchmark::DoNotOptimize(target);
  }
}
BENCHMARK(BM_GKMerge);

// ---- Quantile query ---------------------------------------------------------

void BM_DDSketchQuantile(benchmark::State& state) {
  auto sketch = MakeDDSketch();
  DataStream s(MakeDataset(DatasetId::kPareto), 1);
  for (int i = 0; i < 1000000; ++i) sketch.Add(s.Next());
  double q = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.QuantileOrNaN(q));
    q += 0.001;
    if (q > 0.999) q = 0.001;
  }
}
BENCHMARK(BM_DDSketchQuantile);

void BM_MomentsQuantile(benchmark::State& state) {
  auto sketch = MakeMoments();
  DataStream s(MakeDataset(DatasetId::kPareto), 1);
  for (int i = 0; i < 100000; ++i) sketch.Add(s.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.QuantileOrNaN(0.99));
  }
}
BENCHMARK(BM_MomentsQuantile);

// ---- Serialization ----------------------------------------------------------

void BM_DDSketchSerialize(benchmark::State& state) {
  auto sketch = MakeDDSketch();
  DataStream s(MakeDataset(DatasetId::kPareto), 1);
  for (int i = 0; i < 1000000; ++i) sketch.Add(s.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Serialize());
  }
}
BENCHMARK(BM_DDSketchSerialize);

void BM_DDSketchDeserialize(benchmark::State& state) {
  auto sketch = MakeDDSketch();
  DataStream s(MakeDataset(DatasetId::kPareto), 1);
  for (int i = 0; i < 1000000; ++i) sketch.Add(s.Next());
  const std::string payload = sketch.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DDSketch::Deserialize(payload));
  }
}
BENCHMARK(BM_DDSketchDeserialize);

}  // namespace
}  // namespace dd::bench

BENCHMARK_MAIN();
