// Section 3.3: theoretical sketch-size bounds vs observed bucket counts.
//
// Paper, with delta1 = delta2 = e^-10 and alpha = 0.01:
//  * exponential(lambda): bound 51 (log(4 log n + 41) - log(0.47)) + 1,
//    e.g. ~273 buckets suffice for the upper half of 1e6 samples;
//  * Pareto(a=1): bound 51 (4 log n + 11) + 1, e.g. ~3380 buckets for 1e6
//    samples — and the paper notes the observed size is far below this.
//
// This harness draws the samples, counts the buckets a sketch actually
// needs for the upper-half order statistics (buckets at or above the
// median's bucket), and prints bound vs observed.

#include <cmath>
#include <cstdio>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "core/ddsketch.h"
#include "data/distributions.h"
#include "data/ground_truth.h"

namespace dd::bench {
namespace {

// Buckets needed for the (0.5, 1)-sketch: per Proposition 4 this is the
// index span between the median's bucket and the maximum's bucket.
size_t UpperHalfBuckets(const DDSketch& sketch, double median, double max) {
  return static_cast<size_t>(sketch.mapping().Index(max) -
                             sketch.mapping().Index(median)) +
         1;
}

void Run(const char* name, const Distribution& dist, double bound_coeff_log,
         bool pareto_form) {
  Table table({"n", "theory_bound", "observed_span", "observed_buckets"});
  for (size_t n = 10000; n <= 10000000; n *= 10) {
    auto sketch = std::move(DDSketch::Create(0.01, 0x7fffffff)).value();
    auto data = GenerateN(dist, n, 77);
    for (double x : data) sketch.Add(x);
    ExactQuantiles truth(data);
    const double logn = std::log(static_cast<double>(n));
    // Paper's closed forms (delta = e^-10, 1/log(gamma) < 51).
    const double bound =
        pareto_form ? 51.0 * (4.0 * logn + 11.0) + 1.0
                    : 51.0 * (std::log(4.0 * logn + 41.0) -
                              std::log(bound_coeff_log)) +
                          1.0;
    const size_t span =
        UpperHalfBuckets(sketch, truth.Quantile(0.5), truth.max());
    table.AddRow({FmtInt(n), Fmt(bound, "%.0f"), FmtInt(span),
                  FmtInt(sketch.num_buckets())});
  }
  std::printf("\n§3.3 — %s\n", name);
  table.Print(std::string("sec33_") + name);
}

}  // namespace
}  // namespace dd::bench

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf(
      "=== Section 3.3: size bounds (alpha=0.01, delta=e^-10) ===\n"
      "The observed upper-half bucket span must sit below the theoretical "
      "bound; the paper notes the slack is large in practice.\n");
  Exponential exponential(1.0);
  Run("exponential", exponential, 0.47, /*pareto_form=*/false);
  Pareto pareto(1.0, 1.0);
  Run("pareto", pareto, 0.0, /*pareto_form=*/true);
  return 0;
}
