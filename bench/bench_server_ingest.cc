// Serving-layer ingest throughput: what group commit buys on the WAL
// hot path. Three configurations over the same value stream:
//
//   per_request_fsync   DurableSketchStore with sync_every_ingest, one
//                       fsync per acknowledged record (the durability
//                       baseline a naive server would ship);
//   group_commit_N      IngestBatch with batch size N — N acknowledged
//                       records per fsync (the committer's drain path);
//   socket_4conns       the full daemon: sketchd serving core + 4
//                       pipelined SketchClient connections over
//                       loopback, group commit at batch 64.
//
// The acceptance bar (ISSUE 3): group_commit_64 ingests at >= 5x the
// per-request-fsync rate. The fsyncs column shows why — the fsync count
// collapses by the batch factor while the bytes written stay identical.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/common/table.h"
#include "server/client.h"
#include "server/server.h"
#include "timeseries/durable_store.h"
#include "timeseries/wal.h"
#include "util/file_io.h"

namespace dd::bench {
namespace {

using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

/// Local DD_BENCH_FULL check (bench/common/params.h pulls in dd_data
/// headers; this bench deliberately sticks to the production stack).
bool FullScaleRun() {
  const char* env = std::getenv("DD_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

struct RunResult {
  double seconds = 0;
  uint64_t fsyncs = 0;
};

/// A deterministic value stream (no dd_data dependency: this bench links
/// the production serving stack plus dd_server only).
double ValueAt(size_t i) { return 1.0 + static_cast<double>((i * 31) % 997); }

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dd_bench_server_" + name);
  fs::remove_all(dir);
  return dir;
}

RunResult RunPerRequestFsync(size_t n) {
  const fs::path dir = FreshDir("per_request");
  DurableSketchStoreOptions options;
  options.sync_every_ingest = true;
  auto store = std::move(DurableSketchStore::Open(dir.string(), options)).value();
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    if (!store.IngestValue("svc", static_cast<int64_t>(i % 600), ValueAt(i))
             .ok()) {
      std::abort();
    }
  }
  const auto stop = Clock::now();
  RunResult result;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  fs::remove_all(dir);
  return result;
}

RunResult RunGroupCommit(size_t n, size_t batch) {
  const fs::path dir = FreshDir("group_" + std::to_string(batch));
  auto store = std::move(DurableSketchStore::Open(dir.string(), {})).value();
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  std::vector<WalRecord> records;
  records.reserve(batch);
  for (size_t i = 0; i < n;) {
    records.clear();
    for (size_t j = 0; j < batch && i < n; ++j, ++i) {
      WalRecord record;
      record.type = WalRecord::Type::kIngestValue;
      record.series = "svc";
      record.timestamp = static_cast<int64_t>(i % 600);
      record.value = ValueAt(i);
      records.push_back(std::move(record));
    }
    if (!store.IngestBatch(records).ok()) std::abort();
  }
  const auto stop = Clock::now();
  RunResult result;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  fs::remove_all(dir);
  return result;
}

RunResult RunSocket(size_t n, size_t connections) {
  const fs::path dir = FreshDir("socket");
  SketchServerOptions options;
  options.commit_batch = 64;
  auto server = std::move(SketchServer::Start(dir.string(), options)).value();
  const size_t per_conn = n / connections;
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&server, c, per_conn] {
      auto client = SketchClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) std::abort();
      std::vector<std::pair<int64_t, double>> points;
      points.reserve(per_conn);
      for (size_t i = 0; i < per_conn; ++i) {
        const size_t k = c * per_conn + i;
        points.emplace_back(static_cast<int64_t>(k % 600), ValueAt(k));
      }
      if (!client.value().IngestValues("svc", points).ok()) std::abort();
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stop = Clock::now();
  RunResult result;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  server->Stop();
  fs::remove_all(dir);
  return result;
}

}  // namespace
}  // namespace dd::bench

int main() {
  using namespace dd::bench;
  const size_t n = FullScaleRun() ? 200000 : 20000;
  std::printf(
      "=== Serving-layer ingest: group commit vs per-request fsync "
      "(n = %zu values) ===\n",
      n);

  Table table({"mode", "records_per_sec", "fsyncs", "records_per_fsync",
               "speedup_vs_fsync"});
  const RunResult base = RunPerRequestFsync(n);
  const double base_rate = static_cast<double>(n) / base.seconds;
  auto add = [&](const std::string& mode, const RunResult& r) {
    const double rate = static_cast<double>(n) / r.seconds;
    table.AddRow({mode, Fmt(rate, "%.0f"), FmtInt(r.fsyncs),
                  Fmt(static_cast<double>(n) /
                          static_cast<double>(r.fsyncs ? r.fsyncs : 1),
                      "%.1f"),
                  Fmt(rate / base_rate, "%.2f")});
  };
  add("per_request_fsync", base);
  for (size_t batch : {8u, 64u, 256u}) {
    add("group_commit_" + std::to_string(batch), RunGroupCommit(n, batch));
  }
  add("socket_4conns", RunSocket(n, 4));
  table.Print("server_ingest");
  return 0;
}
