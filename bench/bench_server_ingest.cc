// Serving-layer ingest throughput: what group commit buys on the WAL
// hot path, and what sharding adds on top. Configurations over the same
// value stream:
//
//   per_request_fsync   DurableSketchStore with sync_every_ingest, one
//                       fsync per acknowledged record (the durability
//                       baseline a naive server would ship);
//   group_commit_N      IngestBatch with batch size N — N acknowledged
//                       records per fsync (a committer's drain path);
//   socket_4conns       the full daemon: sketchd serving core + 4
//                       pipelined SketchClient connections over
//                       loopback, group commit at batch 64, at
//                       shards = 1 and shards = 4 (per-shard committers
//                       fsync in parallel; ISSUE 5's scaling axis);
//   socket_Nconns       the event-loop scaling axis (ISSUE 6): the same
//                       4 hot connections with N-4 idle ones parked on
//                       the epoll loops. Parked connections must be
//                       nearly free — the hot-minority rate stays
//                       within ~10% of the bare 4-conn number and the
//                       process RSS stays flat (rss_delta_kb column);
//   socket_overload     deliberate overload: a one-record staged-bytes
//                       budget with client retries disabled. Refusals
//                       surface as BUSY, and the bench verifies zero
//                       lost acks by reopening the store and recounting.
//
// The acceptance bar (ISSUE 3): group_commit_64 ingests at >= 5x the
// per-request-fsync rate. The fsyncs column shows why — the fsync count
// collapses by the batch factor while the bytes written stay identical.
//
// Every socket row also reports the server's own INGEST ack-latency
// percentiles (srv_p50/p99/p999_us): sketchd sketches its request
// latencies into per-loop DDSketches (protocol v4 STATS), so the bench
// shows both sides — client-observed throughput and server-measured
// tail latency — from one run.
//
// JSON for CI trend tracking (uploaded as part of the BENCH artifact):
//   bench_server_ingest [--json FILE]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/common/table.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"
#include "timeseries/durable_store.h"
#include "timeseries/wal.h"
#include "util/file_io.h"

namespace dd::bench {
namespace {

using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

/// Local DD_BENCH_FULL check (bench/common/params.h pulls in dd_data
/// headers; this bench deliberately sticks to the production stack).
bool FullScaleRun() {
  const char* env = std::getenv("DD_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

struct RunResult {
  std::string mode;
  size_t shards = 1;
  double seconds = 0;
  uint64_t fsyncs = 0;
  uint64_t busy_rejections = 0;
  long rss_delta_kb = 0;
  /// Records actually acknowledged; 0 means "all n" (only the overload
  /// row acks fewer than it attempts).
  size_t records = 0;
  /// Server-side INGEST ack-latency percentiles (protocol v4 STATS,
  /// microseconds) — the daemon measuring itself, alongside the
  /// client-side rate. Zero for the store-only (no server) modes.
  uint64_t srv_lat_count = 0;
  double srv_p50_us = 0;
  double srv_p99_us = 0;
  double srv_p999_us = 0;
};

/// Pulls the server's own INGEST latency row over the wire (one extra
/// STATS connection, after the timed region).
void FillServerLatency(SketchServer* server, RunResult* result) {
  auto client = SketchClient::Connect("127.0.0.1", server->port());
  if (!client.ok()) return;
  auto stats = client.value().Stats();
  if (!stats.ok()) return;
  const OpLatencyStats& row =
      stats.value().op_latencies[static_cast<size_t>(LatencyOp::kIngest)];
  result->srv_lat_count = row.count;
  result->srv_p50_us = row.p50_us;
  result->srv_p99_us = row.p99_us;
  result->srv_p999_us = row.p999_us;
}

/// A deterministic value stream (no dd_data dependency: this bench links
/// the production serving stack plus dd_server only).
double ValueAt(size_t i) { return 1.0 + static_cast<double>((i * 31) % 997); }

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dd_bench_server_" + name);
  fs::remove_all(dir);
  return dir;
}

RunResult RunPerRequestFsync(size_t n) {
  const fs::path dir = FreshDir("per_request");
  DurableSketchStoreOptions options;
  options.sync_every_ingest = true;
  auto store = std::move(DurableSketchStore::Open(dir.string(), options)).value();
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    if (!store.IngestValue("svc", static_cast<int64_t>(i % 600), ValueAt(i))
             .ok()) {
      std::abort();
    }
  }
  const auto stop = Clock::now();
  RunResult result;
  result.mode = "per_request_fsync";
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  fs::remove_all(dir);
  return result;
}

RunResult RunGroupCommit(size_t n, size_t batch) {
  const fs::path dir = FreshDir("group_" + std::to_string(batch));
  auto store = std::move(DurableSketchStore::Open(dir.string(), {})).value();
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  std::vector<WalRecord> records;
  records.reserve(batch);
  for (size_t i = 0; i < n;) {
    records.clear();
    for (size_t j = 0; j < batch && i < n; ++j, ++i) {
      WalRecord record;
      record.type = WalRecord::Type::kIngestValue;
      record.series = "svc";
      record.timestamp = static_cast<int64_t>(i % 600);
      record.value = ValueAt(i);
      records.push_back(std::move(record));
    }
    if (!store.IngestBatch(records).ok()) std::abort();
  }
  const auto stop = Clock::now();
  RunResult result;
  result.mode = "group_commit_" + std::to_string(batch);
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  fs::remove_all(dir);
  return result;
}

RunResult RunSocket(size_t n, size_t connections, size_t shards) {
  const fs::path dir = FreshDir("socket_s" + std::to_string(shards));
  SketchServerOptions options;
  options.commit_batch = 64;
  options.shards = shards;
  auto server = std::move(SketchServer::Start(dir.string(), options)).value();
  const size_t per_conn = n / connections;
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&server, c, per_conn] {
      auto client = SketchClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) std::abort();
      std::vector<std::pair<int64_t, double>> points;
      points.reserve(per_conn);
      for (size_t i = 0; i < per_conn; ++i) {
        const size_t k = c * per_conn + i;
        points.emplace_back(static_cast<int64_t>(k % 600), ValueAt(k));
      }
      // One series per connection: with shards > 1 the hash spreads the
      // series over shards, exercising the parallel committers.
      if (!client.value()
               .IngestValues("svc." + std::to_string(c), points)
               .ok()) {
        std::abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stop = Clock::now();
  RunResult result;
  result.mode = "socket_" + std::to_string(connections) + "conns";
  result.shards = shards;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  FillServerLatency(server.get(), &result);
  server->Stop();
  fs::remove_all(dir);
  return result;
}

long RssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %ld", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

/// Raises the fd soft limit toward the hard limit and reports whether
/// `needed` descriptors fit (the 1024-connection row needs ~2.3k: both
/// socket ends live in this process).
bool EnsureFdLimit(rlim_t needed) {
  struct rlimit lim;
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return false;
  if (lim.rlim_cur < needed && lim.rlim_max > lim.rlim_cur) {
    lim.rlim_cur = lim.rlim_max < needed ? lim.rlim_max : needed;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  return lim.rlim_cur >= needed;
}

/// The event-loop scaling row: `total_conns` connections of which 4 are
/// hot (splitting the n records) and the rest are parked idle — hello
/// completed, then silent. Also reports the RSS delta across the run:
/// parked connections must cost epoll registrations, not stacks.
RunResult RunSocketParked(size_t n, size_t total_conns) {
  constexpr size_t kHot = 4;
  const fs::path dir = FreshDir("parked_" + std::to_string(total_conns));
  SketchServerOptions options;
  options.commit_batch = 64;
  auto server = std::move(SketchServer::Start(dir.string(), options)).value();

  const std::string hello = EncodeHello();
  std::vector<int> parked;
  parked.reserve(total_conns - kHot);
  for (size_t i = kHot; i < total_conns; ++i) {
    auto fd = ConnectTcp("127.0.0.1", server->port());
    if (!fd.ok()) std::abort();
    if (::send(fd.value(), hello.data(), hello.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(hello.size())) {
      std::abort();
    }
    parked.push_back(fd.value());
  }

  const long rss_before = RssKb();
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kHot; ++c) {
    threads.emplace_back([&server, c, n] {
      const size_t per_conn = n / kHot;
      auto client = SketchClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) std::abort();
      std::vector<std::pair<int64_t, double>> points;
      points.reserve(per_conn);
      for (size_t i = 0; i < per_conn; ++i) {
        const size_t k = c * per_conn + i;
        points.emplace_back(static_cast<int64_t>(k % 600), ValueAt(k));
      }
      if (!client.value()
               .IngestValues("svc." + std::to_string(c), points)
               .ok()) {
        std::abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stop = Clock::now();
  RunResult result;
  result.mode = "socket_" + std::to_string(total_conns) + "conns";
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  result.rss_delta_kb = RssKb() - rss_before;
  FillServerLatency(server.get(), &result);
  for (int fd : parked) ::close(fd);
  server->Stop();
  fs::remove_all(dir);
  return result;
}

/// Deliberate overload: a budget of ~one staged record and no client
/// retries, so refusals surface as BUSY. The invariant checked here is
/// the serving layer's core promise — an acked record is never lost, a
/// refused one is never committed — verified by reopening the store and
/// recounting. The reported rate is acked records over wall clock.
RunResult RunSocketOverload(size_t n) {
  constexpr size_t kConns = 4;
  const fs::path dir = FreshDir("overload");
  SketchServerOptions options;
  options.commit_batch = 64;
  options.staged_bytes_budget = 160;
  options.commit_interval_us = 1000;
  auto server = std::move(SketchServer::Start(dir.string(), options)).value();
  std::vector<uint64_t> acked(kConns, 0);
  std::vector<uint64_t> busy(kConns, 0);
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kConns; ++c) {
    threads.emplace_back([&server, &acked, &busy, c, n] {
      auto client = SketchClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) std::abort();
      client.value().set_busy_retries(0);
      const std::string series = "svc." + std::to_string(c);
      for (size_t i = 0; i < n / kConns; ++i) {
        const Status status = client.value().IngestValue(
            series, static_cast<int64_t>(i % 600), ValueAt(i));
        if (status.ok()) {
          ++acked[c];
        } else if (status.code() == StatusCode::kBusy) {
          ++busy[c];
        } else {
          std::abort();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stop = Clock::now();
  RunResult result;
  FillServerLatency(server.get(), &result);
  server->Stop();

  uint64_t total_acked = 0;
  uint64_t total_busy = 0;
  for (size_t c = 0; c < kConns; ++c) {
    total_acked += acked[c];
    total_busy += busy[c];
  }
  // Zero lost acks: the reopened store must hold exactly what was acked.
  auto reopened = DurableSketchStore::Open(dir.string(), {});
  if (!reopened.ok()) std::abort();
  double recovered = 0;
  for (size_t c = 0; c < kConns; ++c) {
    auto range = reopened.value().QueryRange("svc." + std::to_string(c), 0,
                                             1 << 20);
    if (range.ok()) recovered += range.value().count();
  }
  if (recovered != static_cast<double>(total_acked)) {
    std::fprintf(stderr,
                 "overload run lost acked records: acked %llu, recovered "
                 "%.0f\n",
                 static_cast<unsigned long long>(total_acked), recovered);
    std::abort();
  }
  result.mode = "socket_overload";
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  result.busy_rejections = total_busy;
  result.records = static_cast<size_t>(total_acked);
  fs::remove_all(dir);
  return result;
}

/// Emits the rows as a small JSON document (part of CI's BENCH artifact)
/// so the serving-path trajectory is diffable across commits.
void WriteJson(const std::string& path, size_t n,
               const std::vector<RunResult>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"server_ingest\",\n"
               "  \"n\": %zu,\n"
               "  \"unit\": \"records_per_sec\",\n"
               "  \"rows\": [\n",
               n);
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    const size_t records = r.records ? r.records : n;
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"shards\": %zu, "
                 "\"records_per_sec\": %.0f, \"fsyncs\": %llu, "
                 "\"busy_rejections\": %llu, \"rss_delta_kb\": %ld, "
                 "\"srv_ingest_count\": %llu, \"srv_p50_us\": %.3f, "
                 "\"srv_p99_us\": %.3f, \"srv_p999_us\": %.3f}%s\n",
                 r.mode.c_str(), r.shards,
                 static_cast<double>(records) / r.seconds,
                 static_cast<unsigned long long>(r.fsyncs),
                 static_cast<unsigned long long>(r.busy_rejections),
                 r.rss_delta_kb,
                 static_cast<unsigned long long>(r.srv_lat_count), r.srv_p50_us,
                 r.srv_p99_us, r.srv_p999_us,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace dd::bench

int main(int argc, char** argv) {
  using namespace dd::bench;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const size_t n = FullScaleRun() ? 200000 : 20000;
  std::printf(
      "=== Serving-layer ingest: group commit vs per-request fsync "
      "(n = %zu values) ===\n",
      n);

  std::vector<RunResult> rows;
  rows.push_back(RunPerRequestFsync(n));
  const double base_rate = static_cast<double>(n) / rows[0].seconds;
  for (size_t batch : {8u, 64u, 256u}) {
    rows.push_back(RunGroupCommit(n, batch));
  }
  double four_conn_rate = 0;  // the 4-conn single-shard reference point
  for (size_t shards : {1u, 4u}) {
    rows.push_back(RunSocket(n, 4, shards));
    if (shards == 1) four_conn_rate = static_cast<double>(n) / rows.back().seconds;
  }

  // The event-loop scaling axis: the same 4 hot connections with an
  // idle majority parked on the loops. connections = {4, 256, 1024}
  // (the 4-conn point is the socket_4conns row above).
  for (size_t total : {256u, 1024u}) {
    // Both socket ends plus the store live in this process.
    if (!EnsureFdLimit(2 * total + 256)) {
      std::printf("skipping %zu-conn row: fd limit too low\n", total);
      continue;
    }
    rows.push_back(RunSocketParked(n, total));
    const double rate = static_cast<double>(n) / rows.back().seconds;
    std::printf("%zu parked conns: hot-minority rate at %.0f%% of the "
                "4-conn rate, rss %+ld kB\n",
                total - 4, 100.0 * rate / four_conn_rate,
                rows.back().rss_delta_kb);
  }
  rows.push_back(RunSocketOverload(n));

  Table table({"mode", "shards", "records_per_sec", "fsyncs",
               "records_per_fsync", "speedup_vs_fsync", "busy",
               "rss_delta_kb", "srv_p50_us", "srv_p99_us", "srv_p999_us"});
  for (const RunResult& r : rows) {
    const size_t records = r.records ? r.records : n;
    const double rate = static_cast<double>(records) / r.seconds;
    table.AddRow({r.mode, FmtInt(r.shards), Fmt(rate, "%.0f"),
                  FmtInt(r.fsyncs),
                  Fmt(static_cast<double>(records) /
                          static_cast<double>(r.fsyncs ? r.fsyncs : 1),
                      "%.1f"),
                  Fmt(rate / base_rate, "%.2f"), FmtInt(r.busy_rejections),
                  FmtInt(static_cast<uint64_t>(
                      r.rss_delta_kb > 0 ? r.rss_delta_kb : 0)),
                  Fmt(r.srv_p50_us, "%.1f"), Fmt(r.srv_p99_us, "%.1f"),
                  Fmt(r.srv_p999_us, "%.1f")});
  }
  table.Print("server_ingest");
  if (!json_path.empty()) WriteJson(json_path, n, rows);
  return 0;
}
