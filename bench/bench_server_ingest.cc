// Serving-layer ingest throughput: what group commit buys on the WAL
// hot path, and what sharding adds on top. Configurations over the same
// value stream:
//
//   per_request_fsync   DurableSketchStore with sync_every_ingest, one
//                       fsync per acknowledged record (the durability
//                       baseline a naive server would ship);
//   group_commit_N      IngestBatch with batch size N — N acknowledged
//                       records per fsync (a committer's drain path);
//   socket_4conns       the full daemon: sketchd serving core + 4
//                       pipelined SketchClient connections over
//                       loopback, group commit at batch 64, at
//                       shards = 1 and shards = 4 (per-shard committers
//                       fsync in parallel; ISSUE 5's scaling axis).
//
// The acceptance bar (ISSUE 3): group_commit_64 ingests at >= 5x the
// per-request-fsync rate. The fsyncs column shows why — the fsync count
// collapses by the batch factor while the bytes written stay identical.
//
// JSON for CI trend tracking (uploaded as part of the BENCH artifact):
//   bench_server_ingest [--json FILE]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/common/table.h"
#include "server/client.h"
#include "server/server.h"
#include "timeseries/durable_store.h"
#include "timeseries/wal.h"
#include "util/file_io.h"

namespace dd::bench {
namespace {

using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

/// Local DD_BENCH_FULL check (bench/common/params.h pulls in dd_data
/// headers; this bench deliberately sticks to the production stack).
bool FullScaleRun() {
  const char* env = std::getenv("DD_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

struct RunResult {
  std::string mode;
  size_t shards = 1;
  double seconds = 0;
  uint64_t fsyncs = 0;
};

/// A deterministic value stream (no dd_data dependency: this bench links
/// the production serving stack plus dd_server only).
double ValueAt(size_t i) { return 1.0 + static_cast<double>((i * 31) % 997); }

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dd_bench_server_" + name);
  fs::remove_all(dir);
  return dir;
}

RunResult RunPerRequestFsync(size_t n) {
  const fs::path dir = FreshDir("per_request");
  DurableSketchStoreOptions options;
  options.sync_every_ingest = true;
  auto store = std::move(DurableSketchStore::Open(dir.string(), options)).value();
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    if (!store.IngestValue("svc", static_cast<int64_t>(i % 600), ValueAt(i))
             .ok()) {
      std::abort();
    }
  }
  const auto stop = Clock::now();
  RunResult result;
  result.mode = "per_request_fsync";
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  fs::remove_all(dir);
  return result;
}

RunResult RunGroupCommit(size_t n, size_t batch) {
  const fs::path dir = FreshDir("group_" + std::to_string(batch));
  auto store = std::move(DurableSketchStore::Open(dir.string(), {})).value();
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  std::vector<WalRecord> records;
  records.reserve(batch);
  for (size_t i = 0; i < n;) {
    records.clear();
    for (size_t j = 0; j < batch && i < n; ++j, ++i) {
      WalRecord record;
      record.type = WalRecord::Type::kIngestValue;
      record.series = "svc";
      record.timestamp = static_cast<int64_t>(i % 600);
      record.value = ValueAt(i);
      records.push_back(std::move(record));
    }
    if (!store.IngestBatch(records).ok()) std::abort();
  }
  const auto stop = Clock::now();
  RunResult result;
  result.mode = "group_commit_" + std::to_string(batch);
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  fs::remove_all(dir);
  return result;
}

RunResult RunSocket(size_t n, size_t connections, size_t shards) {
  const fs::path dir = FreshDir("socket_s" + std::to_string(shards));
  SketchServerOptions options;
  options.commit_batch = 64;
  options.shards = shards;
  auto server = std::move(SketchServer::Start(dir.string(), options)).value();
  const size_t per_conn = n / connections;
  const uint64_t fsyncs_before = TotalFsyncCount();
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&server, c, per_conn] {
      auto client = SketchClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) std::abort();
      std::vector<std::pair<int64_t, double>> points;
      points.reserve(per_conn);
      for (size_t i = 0; i < per_conn; ++i) {
        const size_t k = c * per_conn + i;
        points.emplace_back(static_cast<int64_t>(k % 600), ValueAt(k));
      }
      // One series per connection: with shards > 1 the hash spreads the
      // series over shards, exercising the parallel committers.
      if (!client.value()
               .IngestValues("svc." + std::to_string(c), points)
               .ok()) {
        std::abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stop = Clock::now();
  RunResult result;
  result.mode = "socket_" + std::to_string(connections) + "conns";
  result.shards = shards;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.fsyncs = TotalFsyncCount() - fsyncs_before;
  server->Stop();
  fs::remove_all(dir);
  return result;
}

/// Emits the rows as a small JSON document (part of CI's BENCH artifact)
/// so the serving-path trajectory is diffable across commits.
void WriteJson(const std::string& path, size_t n,
               const std::vector<RunResult>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"server_ingest\",\n"
               "  \"n\": %zu,\n"
               "  \"unit\": \"records_per_sec\",\n"
               "  \"rows\": [\n",
               n);
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"shards\": %zu, "
                 "\"records_per_sec\": %.0f, \"fsyncs\": %llu}%s\n",
                 r.mode.c_str(), r.shards,
                 static_cast<double>(n) / r.seconds,
                 static_cast<unsigned long long>(r.fsyncs),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace dd::bench

int main(int argc, char** argv) {
  using namespace dd::bench;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const size_t n = FullScaleRun() ? 200000 : 20000;
  std::printf(
      "=== Serving-layer ingest: group commit vs per-request fsync "
      "(n = %zu values) ===\n",
      n);

  std::vector<RunResult> rows;
  rows.push_back(RunPerRequestFsync(n));
  const double base_rate = static_cast<double>(n) / rows[0].seconds;
  for (size_t batch : {8u, 64u, 256u}) {
    rows.push_back(RunGroupCommit(n, batch));
  }
  for (size_t shards : {1u, 4u}) {
    rows.push_back(RunSocket(n, 4, shards));
  }

  Table table({"mode", "shards", "records_per_sec", "fsyncs",
               "records_per_fsync", "speedup_vs_fsync"});
  for (const RunResult& r : rows) {
    const double rate = static_cast<double>(n) / r.seconds;
    table.AddRow({r.mode, FmtInt(r.shards), Fmt(rate, "%.0f"),
                  FmtInt(r.fsyncs),
                  Fmt(static_cast<double>(n) /
                          static_cast<double>(r.fsyncs ? r.fsyncs : 1),
                      "%.1f"),
                  Fmt(rate / base_rate, "%.2f")});
  }
  table.Print("server_ingest");
  if (!json_path.empty()) WriteJson(json_path, n, rows);
  return 0;
}
