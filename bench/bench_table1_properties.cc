// Table 1: the qualitative comparison matrix — guarantee type, supported
// value range, and mergeability — verified empirically for all four
// sketches rather than just asserted.
//
//                 guarantee   range      mergeability
//   DDSketch      relative    arbitrary  full
//   HDR Histogram relative    bounded    full
//   GKArray       rank        arbitrary  one-way
//   Moments       avg rank    bounded    full

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common/params.h"
#include "bench/common/table.h"
#include "data/datasets.h"
#include "data/ground_truth.h"

namespace dd::bench {
namespace {

const char* PassFail(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace
}  // namespace dd::bench

int main() {
  using namespace dd;
  using namespace dd::bench;
  std::printf("=== Table 1: quantile sketching algorithm properties ===\n");

  // Workload: heavy-tailed data split across 16 workers, merged pairwise.
  const auto data = GenerateDataset(DatasetId::kPareto, 320000);
  ExactQuantiles truth(data);

  // --- relative / rank error per sketch on the full stream ---
  auto dd = MakeDDSketch();
  auto gk = MakeGK();
  auto hdr = MakeHdrFor(DatasetId::kPareto);
  auto moments = MakeMoments();
  for (double x : data) {
    dd.Add(x);
    gk.Add(x);
    hdr.Record(x);
    moments.Add(x);
  }
  double dd_rel = 0, hdr_rel = 0, gk_rank = 0, mo_rank = 0;
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double actual = truth.Quantile(q);
    dd_rel = std::max(dd_rel, RelativeError(dd.QuantileOrNaN(q), actual));
    hdr_rel = std::max(hdr_rel, RelativeError(hdr.QuantileOrNaN(q), actual));
    gk_rank = std::max(gk_rank, RankError(truth, q, gk.QuantileOrNaN(q)));
    const double mo = moments.QuantileOrNaN(q);
    mo_rank = std::max(mo_rank,
                       std::isnan(mo) ? 1.0 : RankError(truth, q, mo));
  }

  // --- arbitrary vs bounded range ---
  auto range_probe = MakeDDSketch();
  range_probe.Add(1e-200);
  range_probe.Add(1e200);
  const bool dd_arbitrary =
      RelativeError(range_probe.QuantileOrNaN(0.0), 1e-200) <= 0.011 &&
      RelativeError(range_probe.QuantileOrNaN(1.0), 1e200) <= 0.011;
  const bool hdr_bounded =
      !HdrDoubleHistogram::Create(kHdrSignificantDigits, 1e-200, 1e200).ok();

  // --- full vs one-way mergeability: merged-vs-single equality ---
  auto dd_single = MakeDDSketch();
  std::vector<DDSketch> dd_parts;
  for (int i = 0; i < 16; ++i) dd_parts.push_back(MakeDDSketch());
  for (size_t i = 0; i < data.size(); ++i) {
    dd_single.Add(data[i]);
    dd_parts[i % 16].Add(data[i]);
  }
  while (dd_parts.size() > 1) {
    std::vector<DDSketch> next;
    for (size_t i = 0; i + 1 < dd_parts.size(); i += 2) {
      DDSketch m = dd_parts[i];
      (void)m.MergeFrom(dd_parts[i + 1]);
      next.push_back(std::move(m));
    }
    dd_parts = std::move(next);
  }
  bool dd_full_merge = true;
  for (double q = 0.01; q < 1.0; q += 0.01) {
    if (dd_parts[0].QuantileOrNaN(q) != dd_single.QuantileOrNaN(q)) {
      dd_full_merge = false;
    }
  }

  // GK: pairwise merge tree degrades rank error beyond epsilon (one-way).
  std::vector<GKArray> gk_parts;
  for (int i = 0; i < 16; ++i) gk_parts.push_back(MakeGK());
  for (size_t i = 0; i < data.size(); ++i) gk_parts[i % 16].Add(data[i]);
  while (gk_parts.size() > 1) {
    std::vector<GKArray> next;
    for (size_t i = 0; i + 1 < gk_parts.size(); i += 2) {
      GKArray m = gk_parts[i];
      m.MergeFrom(gk_parts[i + 1]);
      next.push_back(std::move(m));
    }
    gk_parts = std::move(next);
  }
  double gk_merged_rank = 0;
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    gk_merged_rank = std::max(
        gk_merged_rank, RankError(truth, q, gk_parts[0].QuantileOrNaN(q)));
  }

  Table table({"sketch", "guarantee", "observed_err", "range",
               "mergeability", "holds"});
  table.AddRow({"DDSketch", "relative<=0.01", Fmt(dd_rel, "%.4f"),
                dd_arbitrary ? "arbitrary" : "bounded", "full",
                PassFail(dd_rel <= 0.0101 && dd_arbitrary && dd_full_merge)});
  table.AddRow({"HDRHistogram", "relative<=0.01", Fmt(hdr_rel, "%.4f"),
                hdr_bounded ? "bounded" : "arbitrary", "full",
                PassFail(hdr_rel <= 0.011 && hdr_bounded)});
  table.AddRow({"GKArray", "rank<=0.01", Fmt(gk_rank, "%.4f"), "arbitrary",
                "one-way", PassFail(gk_rank <= 0.0105)});
  table.AddRow({"MomentSketch", "avg rank", Fmt(mo_rank, "%.4f"), "bounded",
                "full", "-"});
  table.Print("table1");
  std::printf(
      "\nGK rank error after a 4-deep merge tree: %.4f (vs single-stream "
      "%.4f; epsilon=0.01) — the one-way merge penalty.\n",
      gk_merged_rank, gk_rank);
  std::printf("DDSketch merged == single sketch on every quantile: %s\n",
              dd_full_merge ? "yes" : "NO");
  return 0;
}
