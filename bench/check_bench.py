#!/usr/bin/env python3
"""Perf gate: compare a bench --json output against a committed baseline.

Usage:
  bench/check_bench.py --baseline bench/baselines/BENCH_insert.json \
      --current BENCH_insert.json [--margin 1.0]

The gate exists to catch algorithmic collapses (an accidental O(n) on
the hot path, a lost batching win), not single-digit-percent drift:
CI hardware differs from the machine a baseline was recorded on, so
the margin is deliberately generous — a metric fails only when it is
worse than baseline by more than MARGIN (default 1.0 = 2x worse).
Refresh a baseline by copying the BENCH artifact of a healthy CI run
over the file in bench/baselines/.

Direction comes from the file's "unit" field: *_per_sec is
higher-is-better, ns_* is lower-is-better. Rows are matched by their
identity keys ("n" for the insert bench, mode+shards for the server
bench). Rows present on only one side are reported but never fail the
gate (new modes appear, old ones retire). The deliberate-overload
server row is skipped: its throughput measures admission refusal
speed under saturation, which is noise by design.
"""

import argparse
import json
import sys

# Keys that identify a row rather than measure it.
IDENTITY_KEYS = ("n", "mode", "shards", "dataset")
# Server-bench metrics that are environment counters, not performance.
NON_PERF_METRICS = {"fsyncs", "busy_rejections", "rss_delta_kb",
                    "srv_ingest_count"}
# Modes whose throughput is intentionally degenerate.
SKIP_MODES = {"socket_overload"}


def row_key(row):
    return tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)


def metrics(row):
    out = {}
    for key, value in row.items():
        if key in IDENTITY_KEYS or key in NON_PERF_METRICS:
            continue
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = float(value)
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--margin", type=float, default=1.0,
                        help="allowed fractional worsening (1.0 = 2x)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    unit = cur.get("unit", "")
    higher_is_better = unit.endswith("_per_sec")
    base_rows = {row_key(r): r for r in base.get("rows", [])}
    cur_rows = {row_key(r): r for r in cur.get("rows", [])}

    failures = []
    print(f"perf gate: {cur.get('bench', '?')} ({unit}, "
          f"{'higher' if higher_is_better else 'lower'} is better, "
          f"margin {args.margin:.0%})")
    for key, row in sorted(cur_rows.items()):
        label = " ".join(f"{k}={v}" for k, v in key)
        if row.get("mode") in SKIP_MODES:
            print(f"  skip  {label} (degenerate by design)")
            continue
        if key not in base_rows:
            print(f"  new   {label} (no baseline; not gated)")
            continue
        base_metrics = metrics(base_rows[key])
        for name, value in sorted(metrics(row).items()):
            if name not in base_metrics or base_metrics[name] <= 0:
                continue
            ref = base_metrics[name]
            ratio = value / ref
            if higher_is_better:
                bad = value < ref / (1.0 + args.margin)
            else:
                bad = value > ref * (1.0 + args.margin)
            mark = "FAIL" if bad else "ok"
            print(f"  {mark:4}  {label} {name}: {value:.2f} "
                  f"vs baseline {ref:.2f} ({ratio:.2f}x)")
            if bad:
                failures.append(f"{label} {name}")
    for key in sorted(base_rows.keys() - cur_rows.keys()):
        label = " ".join(f"{k}={v}" for k, v in key)
        print(f"  gone  {label} (present in baseline only)")

    if failures:
        print(f"perf gate FAILED: {len(failures)} metric(s) worse than "
              f"baseline beyond the {args.margin:.0%} margin:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
