// Shared experiment configuration for the figure/table harnesses.
//
// Table 2 of the paper:
//   DDSketch        alpha = 0.01, m = 2048
//   HDR Histogram   d = 2 significant decimal digits
//   GKArray         epsilon = 0.01
//   Moments sketch  k = 20, arcsinh compression enabled
//
// The "DDSketch (fast)" series uses the linearly-interpolated mapping
// (pure bit-trick log2, cheapest polynomial): the fastest insertion at the
// cost of ~1.44x the buckets — matching the paper's "DDSketch (fast) can be
// up to twice the size of DDSketch" (§4.2). The quadratic/cubic variants
// sit between the two; see bench_ablation_mappings.
//
// Stream sizes: the paper sweeps n up to 1e8 (1e6 for power, which is the
// size of the original UCI data set). The default grids here stop at 1e7 so
// the full harness finishes in minutes; set DD_BENCH_FULL=1 to extend to
// the paper's maxima.

#ifndef DDSKETCH_BENCH_COMMON_PARAMS_H_
#define DDSKETCH_BENCH_COMMON_PARAMS_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/ddsketch.h"
#include "data/datasets.h"
#include "gk/gkarray.h"
#include "hdr/hdr_histogram.h"
#include "moments/moment_sketch.h"

namespace dd::bench {

inline constexpr double kDDSketchAlpha = 0.01;
inline constexpr int32_t kDDSketchMaxBuckets = 2048;
inline constexpr int kHdrSignificantDigits = 2;
inline constexpr double kGKEpsilon = 0.01;
inline constexpr int kMomentsK = 20;
inline constexpr bool kMomentsCompress = true;

/// The quantiles reported throughout Section 4.
inline constexpr double kQuantiles[] = {0.5, 0.95, 0.99};

/// True when DD_BENCH_FULL=1: run the paper's full n grids.
inline bool FullScale() {
  const char* env = std::getenv("DD_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// True when DD_BENCH_SMOKE=1: shrink the grids further (CI perf-smoke
/// runs, which only track trends, not paper-scale curves).
inline bool SmokeScale() {
  const char* env = std::getenv("DD_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

/// n grid per data set (powers of ten, paper x-axes).
inline std::vector<size_t> SizeGrid(DatasetId id) {
  const size_t cap = id == DatasetId::kPower
                         ? 1000000  // the UCI data set has ~2M rows
                         : (FullScale() ? 100000000 : 10000000);
  std::vector<size_t> grid;
  for (size_t n = 1000; n <= cap; n *= 10) grid.push_back(n);
  return grid;
}

/// HDR needs its range declared up front; these cover each data set
/// (the very up-front knowledge DDSketch does not need — see Table 1).
inline HdrDoubleHistogram MakeHdrFor(DatasetId id) {
  double lo = 1.0, hi = 1e9;
  switch (id) {
    case DatasetId::kPareto:
      lo = 1.0;
      hi = 1e12;
      break;
    case DatasetId::kSpan:
      lo = 100.0;
      hi = 1.9e12;
      break;
    case DatasetId::kPower:
      lo = 0.076;
      hi = 11.122;
      break;
    case DatasetId::kWebLatency:
      lo = 1e-3;
      hi = 1e5;
      break;
  }
  return std::move(HdrDoubleHistogram::Create(kHdrSignificantDigits, lo, hi))
      .value();
}

inline DDSketch MakeDDSketch() {
  return std::move(DDSketch::Create(kDDSketchAlpha, kDDSketchMaxBuckets))
      .value();
}

inline DDSketch MakeDDSketchFast() {
  DDSketchConfig config;
  config.relative_accuracy = kDDSketchAlpha;
  config.mapping = MappingType::kLinearInterpolated;
  config.max_num_buckets = kDDSketchMaxBuckets;
  return std::move(DDSketch::Create(config)).value();
}

inline GKArray MakeGK() { return std::move(GKArray::Create(kGKEpsilon)).value(); }

inline MomentSketch MakeMoments() {
  return std::move(MomentSketch::Create(kMomentsK, kMomentsCompress)).value();
}

}  // namespace dd::bench

#endif  // DDSKETCH_BENCH_COMMON_PARAMS_H_
