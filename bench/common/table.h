// Minimal fixed-width table / CSV emitter for the figure harnesses. Each
// harness prints (a) a human-readable table matching the paper's series and
// (b) the same rows as machine-readable CSV lines prefixed with "csv,"
// for downstream plotting.

#ifndef DDSKETCH_BENCH_COMMON_TABLE_H_
#define DDSKETCH_BENCH_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace dd::bench {

/// Accumulates rows and prints them aligned, plus CSV mirrors.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Prints the aligned table followed by csv lines.
  void Print(const std::string& csv_tag) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
    for (const auto& row : rows_) {
      std::printf("csv,%s", csv_tag.c_str());
      for (const auto& cell : row) std::printf(",%s", cell.c_str());
      std::printf("\n");
    }
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers.
inline std::string Fmt(double v, const char* fmt = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace dd::bench

#endif  // DDSKETCH_BENCH_COMMON_TABLE_H_
