// IoT sensor pipeline: negative values, the zero bucket, deletions, and
// the sparse store.
//
//   build/examples/iot_pipeline
//
// Temperature deltas from thousands of sensors (degrees relative to a
// setpoint) stream into regional gateways. Deltas are signed, often
// exactly zero, and late "retraction" messages must remove previously
// counted readings. Regional sketches use the sparse store (few distinct
// buckets per region) and merge into a fleet-wide sketch.

#include <cstdio>
#include <vector>

#include "core/ddsketch.h"
#include "data/distributions.h"
#include "util/rng.h"

namespace {

dd::DDSketch MakeRegional() {
  dd::DDSketchConfig config;
  config.relative_accuracy = 0.005;  // tighter accuracy for sensor data
  config.store = dd::StoreType::kSparse;
  config.max_num_buckets = 0;  // sparse + unbounded: pay per distinct bucket
  return std::move(dd::DDSketch::Create(config)).value();
}

}  // namespace

int main() {
  constexpr int kRegions = 4;
  constexpr int kReadingsPerRegion = 200000;

  dd::Rng rng(77);
  dd::Normal drift(0.0, 1.5);      // most sensors hover near the setpoint
  dd::Exponential overheat(0.25);  // occasional positive excursions

  std::vector<dd::DDSketch> regions;
  std::vector<std::vector<double>> retraction_log(kRegions);
  for (int r = 0; r < kRegions; ++r) {
    regions.push_back(MakeRegional());
    for (int i = 0; i < kReadingsPerRegion; ++i) {
      double delta;
      const uint64_t kind = rng.NextBounded(100);
      if (kind < 70) {
        delta = drift.Sample(rng);
      } else if (kind < 90) {
        delta = 0.0;  // sensor reports "exactly at setpoint"
      } else {
        delta = overheat.Sample(rng);
      }
      regions[r].Add(delta);
      // 1% of readings will later be retracted (sensor self-reported a
      // calibration fault).
      if (rng.NextBounded(100) == 0) retraction_log[r].push_back(delta);
    }
  }

  // Late retractions arrive: delete the faulty readings.
  uint64_t retracted = 0;
  for (int r = 0; r < kRegions; ++r) {
    for (double delta : retraction_log[r]) {
      retracted += regions[r].Remove(delta);
    }
  }

  // Fleet-wide rollup.
  auto fleet = MakeRegional();
  for (const auto& region : regions) {
    if (dd::Status s = fleet.MergeFrom(region); !s.ok()) {
      std::fprintf(stderr, "merge failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::printf("fleet readings: %llu (after %llu retractions)\n",
              static_cast<unsigned long long>(fleet.count()),
              static_cast<unsigned long long>(retracted));
  std::printf("readings exactly at setpoint (zero bucket): %llu\n",
              static_cast<unsigned long long>(fleet.zero_count()));
  std::printf("%-10s %12s\n", "quantile", "temp delta");
  for (double q : {0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999}) {
    std::printf("p%-9g %12.3f\n", q * 100, fleet.QuantileOrNaN(q));
  }
  std::printf(
      "\nnote the signed quantiles: p1 is a negative delta (undercooling), "
      "p99.9 a large overheat; the zero bucket keeps the exact-setpoint "
      "mass out of the logarithmic buckets.\n");
  std::printf("fleet sketch footprint: %.1f kB across %zu buckets\n",
              static_cast<double>(fleet.size_in_bytes()) / 1024.0,
              fleet.num_buckets());
  return 0;
}
