// Latency monitoring: the paper's Figure 1 scenario end-to-end.
//
//   build/examples/latency_monitoring
//
// A distributed web application: many short-lived containers each handle
// requests for a few (simulated) seconds, keep a per-second DDSketch of
// request latency, serialize it, and ship it to the monitoring system. The
// monitoring system merges per-second sketches into per-minute rollups and
// alerts when the p99 breaches an SLO — all without ever seeing a raw
// latency value.

#include <cstdio>
#include <string>
#include <vector>

#include "core/ddsketch.h"
#include "data/datasets.h"
#include "util/rng.h"

namespace {

constexpr double kAlpha = 0.01;
constexpr double kSloP99 = 120.0;  // alert when p99 exceeds this (ms-ish)
constexpr int kMinutes = 5;
constexpr int kContainersPerSecond = 8;
constexpr int kRequestsPerContainerSecond = 250;

dd::DDSketch MakeSketch() {
  return std::move(dd::DDSketch::Create(kAlpha, 2048)).value();
}

/// One container handling traffic for one second: returns its serialized
/// sketch, exactly what the agent would put on the wire.
std::string ContainerSecond(dd::DataStream& traffic, bool degraded) {
  dd::DDSketch sketch = MakeSketch();
  for (int i = 0; i < kRequestsPerContainerSecond; ++i) {
    double latency = traffic.Next();
    if (degraded) latency *= 8.0;  // an incident: everything slows down
    sketch.Add(latency);
  }
  return sketch.Serialize();
}

}  // namespace

int main() {
  std::printf("monitoring %d containers, %d req/s each, alpha=%.2f\n\n",
              kContainersPerSecond,
              kContainersPerSecond * kRequestsPerContainerSecond, kAlpha);
  std::printf("%-8s %10s %10s %10s %10s  %s\n", "minute", "count", "p50",
              "p95", "p99", "status");

  dd::DataStream traffic(dd::MakeDataset(dd::DatasetId::kWebLatency), 2026);
  dd::DDSketch day_rollup = MakeSketch();

  for (int minute = 0; minute < kMinutes; ++minute) {
    dd::DDSketch minute_rollup = MakeSketch();
    // Minute 3 simulates a partial outage on some containers.
    for (int second = 0; second < 60; ++second) {
      for (int c = 0; c < kContainersPerSecond; ++c) {
        const bool degraded = (minute == 3) && (c < 3);
        const std::string wire = ContainerSecond(traffic, degraded);
        auto sketch = dd::DDSketch::Deserialize(wire);
        if (!sketch.ok()) {
          std::fprintf(stderr, "corrupt payload: %s\n",
                       sketch.status().ToString().c_str());
          return 1;
        }
        if (dd::Status s = minute_rollup.MergeFrom(sketch.value()); !s.ok()) {
          std::fprintf(stderr, "merge failed: %s\n", s.ToString().c_str());
          return 1;
        }
      }
    }
    const double p99 = minute_rollup.QuantileOrNaN(0.99);
    std::printf("%-8d %10llu %10.2f %10.2f %10.2f  %s\n", minute,
                static_cast<unsigned long long>(minute_rollup.count()),
                minute_rollup.QuantileOrNaN(0.5),
                minute_rollup.QuantileOrNaN(0.95), p99,
                p99 > kSloP99 ? "ALERT: p99 SLO breach" : "ok");
    (void)day_rollup.MergeFrom(minute_rollup);
  }

  std::printf("\n%d-minute rollup: count=%llu p50=%.2f p95=%.2f p99=%.2f\n",
              kMinutes,
              static_cast<unsigned long long>(day_rollup.count()),
              day_rollup.QuantileOrNaN(0.5), day_rollup.QuantileOrNaN(0.95),
              day_rollup.QuantileOrNaN(0.99));
  std::printf(
      "every quantile above is within %.0f%% of the true sample quantile, "
      "per the DDSketch guarantee\n",
      kAlpha * 100);
  return 0;
}
