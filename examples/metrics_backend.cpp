// Metrics backend: the full Figure 1 architecture in one process.
//
//   build/examples/metrics_backend
//
// Simulated fleet: three services, each with several containers shipping
// per-interval serialized DDSketches; a SketchStore ingests the payloads,
// answers dashboard graph queries (p50/p99 per minute), runs lossless
// rollup compaction on aging data, and serves on-demand range aggregations
// ("what was the p99 over the whole last hour?") — all without ever
// storing a raw sample.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "timeseries/sketch_store.h"

namespace {

constexpr int64_t kBaseInterval = 10;   // seconds
constexpr int64_t kHour = 3600;
constexpr int kContainersPerService = 4;

struct Service {
  const char* name;
  double scale;      // latency multiplier vs the base profile
  int degraded_minute;  // minute during which this service regresses (-1: none)
};

}  // namespace

int main() {
  dd::SketchStoreOptions options;
  options.levels = {{kBaseInterval, 600},  // keep 10 minutes raw
                    {60, 0}};              // then 1-minute buckets forever
  auto store_result = dd::SketchStore::Create(options);
  if (!store_result.ok()) {
    std::fprintf(stderr, "store: %s\n",
                 store_result.status().ToString().c_str());
    return 1;
  }
  dd::SketchStore store = std::move(store_result).value();

  const Service services[] = {
      {"api.request.duration", 1.0, 30},
      {"db.query.duration", 0.2, -1},
      {"cache.get.duration", 0.01, -1},
  };

  // --- one hour of ingestion ---
  uint64_t payloads = 0;
  size_t wire_bytes = 0;
  for (const Service& service : services) {
    for (int c = 0; c < kContainersPerService; ++c) {
      dd::DataStream traffic(dd::MakeDataset(dd::DatasetId::kWebLatency),
                             7000 + 31 * c + std::strlen(service.name));
      for (int64_t t = 0; t < kHour; t += kBaseInterval) {
        auto sketch = std::move(dd::DDSketch::Create(options.sketch)).value();
        const bool degraded =
            service.degraded_minute >= 0 &&
            t / 60 == service.degraded_minute;
        for (int i = 0; i < 50; ++i) {
          sketch.Add(traffic.Next() * service.scale * (degraded ? 6.0 : 1.0));
        }
        const std::string payload = sketch.Serialize();
        wire_bytes += payload.size();
        if (dd::Status s = store.Ingest(service.name, t, payload); !s.ok()) {
          std::fprintf(stderr, "ingest: %s\n", s.ToString().c_str());
          return 1;
        }
        ++payloads;
      }
    }
  }
  std::printf(
      "ingested %llu sketch payloads (%.1f kB on the wire) across %zu "
      "series; store holds %zu interval sketches (%.1f kB)\n\n",
      static_cast<unsigned long long>(payloads),
      static_cast<double>(wire_bytes) / 1024.0, store.num_series(),
      store.num_intervals(),
      static_cast<double>(store.size_in_bytes()) / 1024.0);

  // --- dashboard: api p50/p99 per 5 minutes, with the regression visible ---
  std::printf("api.request.duration, 5-minute resolution:\n");
  std::printf("  %-8s %10s %9s %9s\n", "minute", "count", "p50", "p99");
  auto p50 = std::move(store.QuerySeries("api.request.duration", 0, kHour,
                                          0.5, 300))
                 .value();
  auto p99 = std::move(store.QuerySeries("api.request.duration", 0, kHour,
                                          0.99, 300))
                 .value();
  for (size_t i = 0; i < p50.size(); ++i) {
    std::printf("  %-8lld %10llu %9.2f %9.2f%s\n",
                static_cast<long long>(p50[i].timestamp / 60),
                static_cast<unsigned long long>(p50[i].count), p50[i].value,
                p99[i].value,
                p50[i].timestamp / 60 == 30 ? "  <- regression" : "");
  }

  // --- compaction: age out raw intervals, answers unchanged ---
  const double hour_p99_before =
      std::move(store.QueryQuantile("api.request.duration", 0, kHour, 0.99))
          .value();
  const size_t intervals_before = store.num_intervals();
  const size_t compacted = store.Compact(kHour);
  const double hour_p99_after =
      std::move(store.QueryQuantile("api.request.duration", 0, kHour, 0.99))
          .value();
  std::printf(
      "\ncompaction: %zu raw intervals rolled up (%zu -> %zu stored); "
      "hour-wide p99 %.2f -> %.2f (%s)\n",
      compacted, intervals_before, store.num_intervals(), hour_p99_before,
      hour_p99_after,
      hour_p99_before == hour_p99_after ? "bit-identical" : "CHANGED?!");

  // --- cross-service roll call over the full hour ---
  std::printf("\nhour-wide latency per service:\n");
  std::printf("  %-22s %10s %9s %9s %9s\n", "series", "count", "p50", "p95",
              "p99");
  for (const std::string& name : store.ListSeries()) {
    auto merged = std::move(store.QueryRange(name, 0, kHour)).value();
    std::printf("  %-22s %10llu %9.3f %9.3f %9.3f\n", name.c_str(),
                static_cast<unsigned long long>(merged.count()),
                merged.QuantileOrNaN(0.5), merged.QuantileOrNaN(0.95),
                merged.QuantileOrNaN(0.99));
  }
  std::printf(
      "\nevery number above is within 1%% of the exact sample quantile, "
      "guaranteed; no raw latency ever left a container.\n");
  return 0;
}
