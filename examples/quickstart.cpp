// Quickstart: the 60-second tour of the DDSketch public API.
//
//   build/examples/quickstart
//
// Covers: creating a sketch, adding values, querying quantiles, merging
// two sketches, and shipping a sketch over the wire.

#include <cstdio>

#include "core/ddsketch.h"

int main() {
  // 1. Create a sketch with 1% relative accuracy (Table 2 defaults).
  auto result = dd::DDSketch::Create(/*relative_accuracy=*/0.01);
  if (!result.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  dd::DDSketch sketch = std::move(result).value();

  // 2. Add values — any finite double works, no range declared up front.
  for (int i = 1; i <= 100000; ++i) {
    sketch.Add(0.5 * i);  // latencies 0.5ms .. 50s
  }
  sketch.Add(1e-9);  // a nanosecond outlier
  sketch.Add(3600);  // a one-hour straggler

  // 3. Query quantiles: each answer is within 1% of the true sample
  //    quantile.
  std::printf("count = %llu, mean = %.2f\n",
              static_cast<unsigned long long>(sketch.count()), sketch.mean());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    std::printf("p%-5g = %10.2f\n", q * 100, sketch.QuantileOrNaN(q));
  }

  // 4. Merge another worker's sketch. Merging is exact: the result equals
  //    one sketch having seen both streams.
  auto other = std::move(dd::DDSketch::Create(0.01)).value();
  for (int i = 0; i < 50000; ++i) other.Add(42.0);
  if (dd::Status s = sketch.MergeFrom(other); !s.ok()) {
    std::fprintf(stderr, "merge failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("after merge: count = %llu, p50 = %.2f\n",
              static_cast<unsigned long long>(sketch.count()),
              sketch.QuantileOrNaN(0.5));

  // 5. Serialize / deserialize (what an agent sends every few seconds).
  const std::string payload = sketch.Serialize();
  auto decoded = dd::DDSketch::Deserialize(payload);
  if (!decoded.ok()) {
    std::fprintf(stderr, "decode failed: %s\n",
                 decoded.status().ToString().c_str());
    return 1;
  }
  std::printf("wire payload: %zu bytes; decoded p99 = %.2f\n", payload.size(),
              decoded.value().QuantileOrNaN(0.99));
  return 0;
}
