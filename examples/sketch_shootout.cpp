// Sketch shootout: all four sketch families side by side on a data set of
// your choice — a runnable, miniature version of the paper's Section 4.
//
//   build/examples/sketch_shootout [pareto|span|power|web_latency] [n]
//
// Prints, per sketch: footprint, add throughput, and the p50/p95/p99
// estimates with their relative and rank errors against exact ground
// truth.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/ddsketch.h"
#include "data/datasets.h"
#include "data/ground_truth.h"
#include "gk/gkarray.h"
#include "hdr/hdr_histogram.h"
#include "moments/moment_sketch.h"
#include "tdigest/tdigest.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Report {
  const char* name;
  double add_ns;
  size_t bytes;
  double estimates[3];
};

constexpr double kQs[3] = {0.5, 0.95, 0.99};

template <typename AddFn, typename QuantileFn, typename SizeFn>
Report Run(const char* name, const std::vector<double>& data, AddFn&& add,
           QuantileFn&& quantile, SizeFn&& size) {
  const auto start = Clock::now();
  for (double x : data) add(x);
  const auto stop = Clock::now();
  Report report;
  report.name = name;
  report.add_ns =
      std::chrono::duration<double, std::nano>(stop - start).count() /
      static_cast<double>(data.size());
  report.bytes = size();
  for (int i = 0; i < 3; ++i) report.estimates[i] = quantile(kQs[i]);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  dd::DatasetId id = dd::DatasetId::kPareto;
  if (argc > 1) {
    bool found = false;
    for (dd::DatasetId candidate :
         {dd::DatasetId::kPareto, dd::DatasetId::kSpan, dd::DatasetId::kPower,
          dd::DatasetId::kWebLatency}) {
      if (std::strcmp(argv[1], dd::DatasetIdToString(candidate)) == 0) {
        id = candidate;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "unknown data set '%s' (try pareto, span, power, "
                   "web_latency)\n",
                   argv[1]);
      return 1;
    }
  }
  const size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000000;

  std::printf("data set: %s, n = %zu\n", dd::DatasetIdToString(id), n);
  const auto data = dd::GenerateDataset(id, n);
  dd::ExactQuantiles truth(data);
  std::printf("exact: p50=%.6g p95=%.6g p99=%.6g\n\n", truth.Quantile(0.5),
              truth.Quantile(0.95), truth.Quantile(0.99));

  auto ddsketch = std::move(dd::DDSketch::Create(0.01, 2048)).value();
  dd::DDSketchConfig fast_config;
  fast_config.relative_accuracy = 0.01;
  fast_config.mapping = dd::MappingType::kCubicInterpolated;
  auto fast = std::move(dd::DDSketch::Create(fast_config)).value();
  auto gk = std::move(dd::GKArray::Create(0.01)).value();
  auto hdr = std::move(dd::HdrDoubleHistogram::Create(
                           2, truth.min(), truth.max() * 1.01))
                 .value();
  auto moments = std::move(dd::MomentSketch::Create(20, true)).value();
  auto tdigest = std::move(dd::TDigest::Create(100.0)).value();

  Report reports[] = {
      Run("DDSketch", data, [&](double x) { ddsketch.Add(x); },
          [&](double q) { return ddsketch.QuantileOrNaN(q); },
          [&] { return ddsketch.size_in_bytes(); }),
      Run("DDSketch(fast)", data, [&](double x) { fast.Add(x); },
          [&](double q) { return fast.QuantileOrNaN(q); },
          [&] { return fast.size_in_bytes(); }),
      Run("GKArray", data, [&](double x) { gk.Add(x); },
          [&](double q) { return gk.QuantileOrNaN(q); },
          [&] {
            gk.Flush();
            return gk.size_in_bytes();
          }),
      Run("HDRHistogram", data, [&](double x) { hdr.Record(x); },
          [&](double q) { return hdr.QuantileOrNaN(q); },
          [&] { return hdr.size_in_bytes(); }),
      Run("MomentSketch", data, [&](double x) { moments.Add(x); },
          [&](double q) { return moments.QuantileOrNaN(q); },
          [&] { return moments.size_in_bytes(); }),
      Run("TDigest", data, [&](double x) { tdigest.Add(x); },
          [&](double q) { return tdigest.QuantileOrNaN(q); },
          [&] { return tdigest.size_in_bytes(); }),
  };

  std::printf("%-15s %8s %9s  %10s %9s %9s\n", "sketch", "ns/add", "size_kB",
              "quantile", "rel_err", "rank_err");
  for (const Report& r : reports) {
    for (int i = 0; i < 3; ++i) {
      const double actual = truth.Quantile(kQs[i]);
      if (i == 0) {
        std::printf("%-15s %8.1f %9.2f", r.name, r.add_ns,
                    static_cast<double>(r.bytes) / 1024.0);
      } else {
        std::printf("%-15s %8s %9s", "", "", "");
      }
      std::printf("  p%-9g %9.4f %9.4f\n", kQs[i] * 100,
                  dd::RelativeError(r.estimates[i], actual),
                  dd::RankError(truth, kQs[i], r.estimates[i]));
    }
  }
  std::printf(
      "\nexpected shape (paper §4): DDSketch/HDR keep rel_err <= ~0.01 "
      "everywhere; GK/Moments drift on heavy tails; GK keeps rank_err <= "
      "0.01.\n");
  return 0;
}
