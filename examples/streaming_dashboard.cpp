// Streaming dashboard: the concurrency + windowing extensions together.
//
//   build/examples/streaming_dashboard
//
// Several ingestion threads feed a per-interval ConcurrentDDSketch
// (sharded, thread-safe); at each interval boundary a dashboard thread
// snapshots the closed interval, pushes it into a RollingDDSketch window,
// and renders the last-N-intervals latency percentiles — the shape of a
// real metrics agent's hot path, with no raw sample ever leaving the
// ingestion threads.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/concurrent.h"
#include "core/rolling.h"
#include "data/datasets.h"

namespace {

constexpr int kIngestThreads = 4;
constexpr int kIntervals = 10;
constexpr int kWindow = 4;  // dashboard shows the last 4 intervals
constexpr int kAddsPerThreadPerInterval = 50000;

}  // namespace

int main() {
  dd::DDSketchConfig config;  // Table 2 defaults: alpha = 0.01, m = 2048

  // One concurrent sketch per interval; threads fill interval i, the
  // dashboard closes it and windows the snapshot.
  std::vector<dd::ConcurrentDDSketch> intervals;
  for (int i = 0; i < kIntervals; ++i) {
    intervals.push_back(
        std::move(dd::ConcurrentDDSketch::Create(config)).value());
  }
  auto window = std::move(dd::RollingDDSketch::Create(config, kWindow)).value();

  std::printf("%d ingestion threads, %d-interval window\n\n", kIngestThreads,
              kWindow);
  std::printf("%-9s %10s %9s %9s %9s %11s\n", "interval", "int_count", "p50",
              "p95", "p99", "window_p99");

  std::vector<std::thread> ingest;
  for (int t = 0; t < kIngestThreads; ++t) {
    ingest.emplace_back([&intervals, t] {
      dd::DataStream stream(dd::MakeDataset(dd::DatasetId::kWebLatency),
                            9100 + static_cast<uint64_t>(t));
      for (int interval = 0; interval < kIntervals; ++interval) {
        // Interval 6 simulates a latency regression on every thread.
        const double degrade = interval == 6 ? 5.0 : 1.0;
        for (int i = 0; i < kAddsPerThreadPerInterval; ++i) {
          intervals[static_cast<size_t>(interval)].Add(stream.Next() *
                                                       degrade);
        }
      }
    });
  }

  constexpr uint64_t kIntervalTotal =
      static_cast<uint64_t>(kIngestThreads) * kAddsPerThreadPerInterval;
  for (int interval = 0; interval < kIntervals; ++interval) {
    // Wait until every thread finished writing this interval.
    while (intervals[static_cast<size_t>(interval)].count() < kIntervalTotal) {
      std::this_thread::yield();
    }
    dd::DDSketch snapshot = intervals[static_cast<size_t>(interval)].Snapshot();
    (void)window.MergeIntoCurrent(snapshot);
    std::printf("%-9d %10llu %9.2f %9.2f %9.2f %11.2f%s\n", interval,
                static_cast<unsigned long long>(snapshot.count()),
                snapshot.QuantileOrNaN(0.5), snapshot.QuantileOrNaN(0.95),
                snapshot.QuantileOrNaN(0.99), window.QuantileOrNaN(0.99),
                interval == 6 ? "  <- regression lands" : "");
    window.Advance();
  }
  for (auto& t : ingest) t.join();

  std::printf(
      "\nthe window p99 rises when the regression enters the window and "
      "falls once it ages out (interval %d onward) — computed entirely "
      "from mergeable sketches, never from raw samples.\n",
      6 + kWindow);
  return 0;
}
