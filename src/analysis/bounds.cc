#include "analysis/bounds.h"

#include <cmath>
#include <string>

namespace dd {

SubexponentialParams ExponentialSubexpParams(double lambda) {
  return {2.0 / lambda, 2.0 / lambda};
}

double SampleQuantileSlack(double delta1, uint64_t n) {
  return std::sqrt(std::log(1.0 / delta1) / (2.0 * static_cast<double>(n)));
}

double SampleMaxDeviationBound(const SubexponentialParams& params,
                               uint64_t n, double delta2) {
  return 2.0 * params.b * std::log(static_cast<double>(n) / delta2);
}

double GammaOf(double alpha) { return (1.0 + alpha) / (1.0 - alpha); }

double BucketSpan(double alpha, double x_q, double x_max) {
  return (std::log(x_max) - std::log(x_q)) / std::log(GammaOf(alpha)) + 1.0;
}

Result<double> Theorem9SizeBound(
    double alpha, double q, uint64_t n, double delta1, double delta2,
    const SubexponentialParams& params, double mean,
    const std::function<double(double)>& quantile_fn) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  const double t = SampleQuantileSlack(delta1, n);
  if (!(t < q && q <= 0.5)) {
    return Status::InvalidArgument(
        "Theorem 9 requires t < q <= 1/2 (t = " + std::to_string(t) + ")");
  }
  const double x_max_bound =
      SampleMaxDeviationBound(params, n, delta2) + mean;
  const double x_q_bound = quantile_fn(q - t);
  if (!(x_q_bound > 0.0)) {
    return Status::InvalidArgument(
        "quantile function must be positive at q - t");
  }
  return BucketSpan(alpha, x_q_bound, x_max_bound);
}

double ExponentialUpperHalfSizeBound(uint64_t n) {
  const double logn = std::log(static_cast<double>(n));
  return 51.0 * (std::log(4.0 * logn + 41.0) - std::log(0.47)) + 1.0;
}

double ParetoUpperHalfSizeBound(double shape, uint64_t n) {
  const double logn = std::log(static_cast<double>(n));
  return 51.0 / shape * (4.0 * logn + 11.0) + 1.0;
}

}  // namespace dd
