// Section 3 of the paper, as executable code: the distribution-dependent
// sketch-size bounds for DDSketch.
//
// The paper's chain of reasoning (all reproduced here and Monte-Carlo
// validated in tests/bounds_test.cc):
//   Lemma 5       — with probability >= 1 - delta1 the sample q-quantile is
//                   at least F^{-1}(q - t), t = sqrt(log(1/delta1) / 2n).
//   Corollary 8   — for (sigma, b)-subexponential X, with probability
//                   >= 1 - delta2 the sample maximum is below
//                   2 b log(n / delta2) (+ E[X]).
//   Theorem 9     — combining both, DDSketch is an alpha-accurate
//                   (q, 1)-sketch of size at most
//                   (log x_max_bound - log x_q_bound) / log(gamma) + 1.
//   §3.3 worked examples — closed forms for the exponential distribution
//                   (sketch of size ~273 covers the upper half of 1e6
//                   samples) and the Pareto distribution (~3380 at 1e6).

#ifndef DDSKETCH_ANALYSIS_BOUNDS_H_
#define DDSKETCH_ANALYSIS_BOUNDS_H_

#include <cstdint>
#include <functional>

#include "util/status.h"

namespace dd {

/// Parameters (sigma, b) of a subexponential random variable:
/// E[exp(lambda (X - EX))] <= exp(sigma^2 lambda^2 / 2) for
/// 0 <= lambda <= 1/b (Definition 6).
struct SubexponentialParams {
  double sigma;
  double b;
};

/// The exponential distribution with rate lambda is subexponential with
/// parameters (2/lambda, 2/lambda) (§3.3).
SubexponentialParams ExponentialSubexpParams(double lambda);

/// Lemma 5's t: the sample q-quantile is above F^{-1}(q - t) with
/// probability >= 1 - delta1, for t = sqrt(log(1/delta1) / (2n)).
double SampleQuantileSlack(double delta1, uint64_t n);

/// Theorem 7 / Corollary 8: upper bound on the deviation of the sample
/// maximum of n i.i.d. (sigma, b)-subexponential variables above the mean:
/// 2 b log(n / delta2), valid with probability >= 1 - delta2.
double SampleMaxDeviationBound(const SubexponentialParams& params,
                               uint64_t n, double delta2);

/// Theorem 9: bound on the number of buckets DDSketch needs to be an
/// alpha-accurate (q, 1)-sketch of n i.i.d. samples from a distribution
/// with quantile function `quantile_fn` (the generalized inverse CDF),
/// mean `mean`, and subexponential parameters `params`, with probability
/// >= 1 - delta1 - delta2. Fails if the inputs put q - t outside (0, 1).
Result<double> Theorem9SizeBound(
    double alpha, double q, uint64_t n, double delta1, double delta2,
    const SubexponentialParams& params, double mean,
    const std::function<double(double)>& quantile_fn);

/// §3.3 closed form for the exponential distribution with delta1 = delta2
/// = e^-10 and alpha = 0.01: 51 (log(4 log n + 41) - log(0.47)) + 1.
/// Valid for n > 320 and the (0.5, 1)-sketch.
double ExponentialUpperHalfSizeBound(uint64_t n);

/// §3.3 closed form for Pareto with shape a (b arbitrary), alpha = 0.01,
/// delta = e^-10: 51 a^-1 (4 log n + 11) + 1, for the (0.5, 1)-sketch.
double ParetoUpperHalfSizeBound(double shape, uint64_t n);

/// gamma = (1 + alpha) / (1 - alpha) (used throughout §2-3).
double GammaOf(double alpha);

/// Equation 1: buckets needed to cover [x_q, x_max]:
/// (log(x_max) - log(x_q)) / log(gamma) + 1. This is what Proposition 4
/// requires to be <= m.
double BucketSpan(double alpha, double x_q, double x_max);

}  // namespace dd

#endif  // DDSKETCH_ANALYSIS_BOUNDS_H_
