#include "api/quantile_sketch.h"

#include <utility>

namespace dd {
namespace {

/// CRTP-free adapter template: wraps a concrete sketch type behind the
/// QuantileSketch interface. Each specialization provides the few calls
/// whose names/signatures differ across families.
template <typename Impl, typename Derived>
class AdapterBase : public QuantileSketch {
 public:
  explicit AdapterBase(Impl impl) : impl_(std::move(impl)) {}

  Result<double> Quantile(double q) const override {
    return impl_.Quantile(q);
  }
  double QuantileOrNaN(double q) const noexcept override {
    return impl_.QuantileOrNaN(q);
  }
  uint64_t count() const noexcept override { return impl_.count(); }
  size_t size_in_bytes() const noexcept override {
    return impl_.size_in_bytes();
  }
  std::string Serialize() const override { return impl_.Serialize(); }
  std::unique_ptr<QuantileSketch> Clone() const override {
    return std::make_unique<Derived>(Impl(impl_));
  }

  const Impl& impl() const { return impl_; }

 protected:
  /// Cross-family merges fail uniformly; same-family merges delegate.
  template <typename MergeFn>
  Status MergeSameFamily(const QuantileSketch& other, MergeFn&& merge) {
    const auto* peer = dynamic_cast<const Derived*>(&other);
    if (peer == nullptr) {
      return Status::Incompatible(std::string("cannot merge ") +
                                  other.family() + " into " + family());
    }
    return merge(impl_, peer->impl());
  }

  Impl impl_;
};

class DDSketchAdapter final : public AdapterBase<DDSketch, DDSketchAdapter> {
 public:
  using AdapterBase::AdapterBase;
  void Add(double value) override { impl_.Add(value); }
  Status MergeFrom(const QuantileSketch& other) override {
    return MergeSameFamily(other, [](DDSketch& a, const DDSketch& b) {
      return a.MergeFrom(b);
    });
  }
  const char* family() const noexcept override { return "ddsketch"; }
};

class GKAdapter final : public AdapterBase<GKArray, GKAdapter> {
 public:
  using AdapterBase::AdapterBase;
  void Add(double value) override { impl_.Add(value); }
  Status MergeFrom(const QuantileSketch& other) override {
    return MergeSameFamily(other, [](GKArray& a, const GKArray& b) {
      a.MergeFrom(b);
      return Status::OK();
    });
  }
  const char* family() const noexcept override { return "gk"; }
};

class HdrAdapter final
    : public AdapterBase<HdrDoubleHistogram, HdrAdapter> {
 public:
  using AdapterBase::AdapterBase;
  void Add(double value) override { impl_.Record(value); }
  Status MergeFrom(const QuantileSketch& other) override {
    return MergeSameFamily(
        other, [](HdrDoubleHistogram& a, const HdrDoubleHistogram& b) {
          return a.MergeFrom(b);
        });
  }
  const char* family() const noexcept override { return "hdr"; }
};

class MomentsAdapter final
    : public AdapterBase<MomentSketch, MomentsAdapter> {
 public:
  using AdapterBase::AdapterBase;
  void Add(double value) override { impl_.Add(value); }
  Status MergeFrom(const QuantileSketch& other) override {
    return MergeSameFamily(other,
                           [](MomentSketch& a, const MomentSketch& b) {
                             return a.MergeFrom(b);
                           });
  }
  const char* family() const noexcept override { return "moments"; }
};

class TDigestAdapter final : public AdapterBase<TDigest, TDigestAdapter> {
 public:
  using AdapterBase::AdapterBase;
  void Add(double value) override { impl_.Add(value); }
  Status MergeFrom(const QuantileSketch& other) override {
    return MergeSameFamily(other, [](TDigest& a, const TDigest& b) {
      a.MergeFrom(b);
      return Status::OK();
    });
  }
  const char* family() const noexcept override { return "tdigest"; }
};

class KllAdapter final : public AdapterBase<KllSketch, KllAdapter> {
 public:
  using AdapterBase::AdapterBase;
  void Add(double value) override { impl_.Add(value); }
  Status MergeFrom(const QuantileSketch& other) override {
    return MergeSameFamily(other, [](KllSketch& a, const KllSketch& b) {
      return a.MergeFrom(b);
    });
  }
  const char* family() const noexcept override { return "kll"; }
};

class CkmsAdapter final : public AdapterBase<CkmsSketch, CkmsAdapter> {
 public:
  using AdapterBase::AdapterBase;
  void Add(double value) override { impl_.Add(value); }
  Status MergeFrom(const QuantileSketch& other) override {
    return MergeSameFamily(other, [](CkmsSketch& a, const CkmsSketch& b) {
      a.MergeFrom(b);
      return Status::OK();
    });
  }
  const char* family() const noexcept override { return "ckms"; }
};

template <typename Result_, typename Adapter>
Result<std::unique_ptr<QuantileSketch>> WrapResult(Result_ result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<QuantileSketch>(
      std::make_unique<Adapter>(std::move(result).value()));
}

}  // namespace

Result<std::unique_ptr<QuantileSketch>> NewDDSketch(double relative_accuracy,
                                                    int32_t max_num_buckets) {
  return WrapResult<Result<DDSketch>, DDSketchAdapter>(
      DDSketch::Create(relative_accuracy, max_num_buckets));
}

Result<std::unique_ptr<QuantileSketch>> NewGKArray(double rank_accuracy) {
  return WrapResult<Result<GKArray>, GKAdapter>(
      GKArray::Create(rank_accuracy));
}

Result<std::unique_ptr<QuantileSketch>> NewHdrHistogram(int significant_digits,
                                                        double expected_min,
                                                        double expected_max) {
  return WrapResult<Result<HdrDoubleHistogram>, HdrAdapter>(
      HdrDoubleHistogram::Create(significant_digits, expected_min,
                                 expected_max));
}

Result<std::unique_ptr<QuantileSketch>> NewMomentSketch(int num_moments,
                                                        bool compress) {
  return WrapResult<Result<MomentSketch>, MomentsAdapter>(
      MomentSketch::Create(num_moments, compress));
}

Result<std::unique_ptr<QuantileSketch>> NewTDigest(double compression) {
  return WrapResult<Result<TDigest>, TDigestAdapter>(
      TDigest::Create(compression));
}

Result<std::unique_ptr<QuantileSketch>> NewKllSketch(int k, uint64_t seed) {
  return WrapResult<Result<KllSketch>, KllAdapter>(KllSketch::Create(k, seed));
}

Result<std::unique_ptr<QuantileSketch>> NewCkmsSketch(
    std::vector<CkmsSketch::Target> targets) {
  return WrapResult<Result<CkmsSketch>, CkmsAdapter>(
      CkmsSketch::Create(std::move(targets)));
}

Result<std::unique_ptr<QuantileSketch>> DeserializeSketch(
    std::string_view payload) {
  if (payload.size() < 4) {
    return Status::Corruption("payload too short to identify a sketch");
  }
  const std::string_view magic = payload.substr(0, 4);
  if (magic == "DDSK") {
    return WrapResult<Result<DDSketch>, DDSketchAdapter>(
        DDSketch::Deserialize(payload));
  }
  if (magic == "GKAR") {
    return WrapResult<Result<GKArray>, GKAdapter>(
        GKArray::Deserialize(payload));
  }
  if (magic == "HDRD") {
    return WrapResult<Result<HdrDoubleHistogram>, HdrAdapter>(
        HdrDoubleHistogram::Deserialize(payload));
  }
  if (magic == "MOMT") {
    return WrapResult<Result<MomentSketch>, MomentsAdapter>(
        MomentSketch::Deserialize(payload));
  }
  if (magic == "TDIG") {
    return WrapResult<Result<TDigest>, TDigestAdapter>(
        TDigest::Deserialize(payload));
  }
  if (magic == "KLLS") {
    return WrapResult<Result<KllSketch>, KllAdapter>(
        KllSketch::Deserialize(payload));
  }
  if (magic == "CKMS") {
    return WrapResult<Result<CkmsSketch>, CkmsAdapter>(
        CkmsSketch::Deserialize(payload));
  }
  return Status::Corruption("unrecognized sketch payload magic");
}

}  // namespace dd
