// A uniform, polymorphic facade over every quantile summary in this
// repository. Downstream systems (the CLI, the shootout example, a
// metrics pipeline choosing its sketch per tenant) can hold
// `std::unique_ptr<QuantileSketch>` and stay agnostic of the family;
// `DeserializeSketch` sniffs the wire magic and reconstructs the right
// implementation.
//
// Families and their trade-offs (Table 1 of the paper plus the §1.2
// related work — see each module's header):
//   ddsketch  relative error, arbitrary range, fully mergeable
//   gk        rank error, arbitrary range, one-way mergeable
//   hdr       relative error, bounded range, fully mergeable
//   moments   average rank error, constant size, fully mergeable
//   tdigest   tail-biased rank error, one-way mergeable
//   kll       rank error (randomized), fully mergeable
//   ckms      targeted rank error, one-way mergeable

#ifndef DDSKETCH_API_QUANTILE_SKETCH_H_
#define DDSKETCH_API_QUANTILE_SKETCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "ckms/ckms_sketch.h"
#include "core/ddsketch.h"
#include "gk/gkarray.h"
#include "hdr/hdr_histogram.h"
#include "kll/kll_sketch.h"
#include "moments/moment_sketch.h"
#include "tdigest/tdigest.h"
#include "util/status.h"

namespace dd {

/// Type-erased quantile summary.
class QuantileSketch {
 public:
  virtual ~QuantileSketch() = default;

  /// Adds one value.
  virtual void Add(double value) = 0;
  /// The q-quantile estimate; error semantics depend on family().
  virtual Result<double> Quantile(double q) const = 0;
  /// NaN-returning form.
  virtual double QuantileOrNaN(double q) const noexcept = 0;
  /// Merges a sketch of the *same family and parameters*; fails with
  /// Incompatible otherwise. Whether merging degrades accuracy depends on
  /// the family (one-way vs fully mergeable).
  virtual Status MergeFrom(const QuantileSketch& other) = 0;

  /// Values accepted so far.
  virtual uint64_t count() const noexcept = 0;
  bool empty() const noexcept { return count() == 0; }
  /// Live memory footprint.
  virtual size_t size_in_bytes() const noexcept = 0;
  /// Stable family name ("ddsketch", "gk", "hdr", "moments", "tdigest",
  /// "kll", "ckms").
  virtual const char* family() const noexcept = 0;

  /// Binary wire payload (family-specific format; self-identifying magic).
  virtual std::string Serialize() const = 0;
  /// Deep copy.
  virtual std::unique_ptr<QuantileSketch> Clone() const = 0;
};

/// Factories, one per family (Table 2 parameter conventions).
Result<std::unique_ptr<QuantileSketch>> NewDDSketch(
    double relative_accuracy = 0.01, int32_t max_num_buckets = 2048);
Result<std::unique_ptr<QuantileSketch>> NewGKArray(double rank_accuracy =
                                                       0.01);
Result<std::unique_ptr<QuantileSketch>> NewHdrHistogram(int significant_digits,
                                                        double expected_min,
                                                        double expected_max);
Result<std::unique_ptr<QuantileSketch>> NewMomentSketch(int num_moments = 20,
                                                        bool compress = true);
Result<std::unique_ptr<QuantileSketch>> NewTDigest(double compression = 100);
Result<std::unique_ptr<QuantileSketch>> NewKllSketch(int k = 200,
                                                     uint64_t seed = 1);
Result<std::unique_ptr<QuantileSketch>> NewCkmsSketch(
    std::vector<CkmsSketch::Target> targets = CkmsSketch::DefaultTargets());

/// Reconstructs a sketch from any family's wire payload by sniffing the
/// magic bytes. Fails with Corruption for unrecognized payloads.
Result<std::unique_ptr<QuantileSketch>> DeserializeSketch(
    std::string_view payload);

}  // namespace dd

#endif  // DDSKETCH_API_QUANTILE_SKETCH_H_
