#include "ckms/ckms_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/varint.h"

namespace dd {

std::vector<CkmsSketch::Target> CkmsSketch::DefaultTargets() {
  return {{0.5, 0.02},  {0.75, 0.01},  {0.9, 0.005},
          {0.95, 0.005}, {0.99, 0.001}, {0.999, 0.0005}};
}

CkmsSketch::CkmsSketch(std::vector<Target> targets)
    : targets_(std::move(targets)) {
  // Flush cadence ~ the tightest epsilon (same rationale as GKArray).
  double tightest = 1.0;
  for (const Target& t : targets_) tightest = std::min(tightest, t.epsilon);
  buffer_capacity_ = static_cast<size_t>(
      std::max(64.0, std::min(1.0 / tightest, 1e6)));
}

Result<CkmsSketch> CkmsSketch::Create(std::vector<Target> targets) {
  if (targets.empty()) {
    return Status::InvalidArgument("need at least one quantile target");
  }
  for (const Target& t : targets) {
    if (!(t.quantile > 0.0 && t.quantile < 1.0) ||
        !(t.epsilon > 0.0 && t.epsilon < 1.0)) {
      return Status::InvalidArgument(
          "targets need quantile and epsilon in (0, 1)");
    }
  }
  return CkmsSketch(std::move(targets));
}

double CkmsSketch::AllowedError(double rank) const noexcept {
  const double n = static_cast<double>(count_);
  double allowed = std::numeric_limits<double>::infinity();
  for (const Target& t : targets_) {
    double f;
    if (rank >= t.quantile * n) {
      f = 2.0 * t.epsilon * rank / t.quantile;
    } else {
      f = 2.0 * t.epsilon * (n - rank) / (1.0 - t.quantile);
    }
    allowed = std::min(allowed, f);
  }
  return std::max(allowed, 1.0);
}

void CkmsSketch::Add(double value) {
  buffer_.push_back(value);
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (buffer_.size() >= buffer_capacity_) Flush();
}

void CkmsSketch::Flush() const {
  if (buffer_.empty()) return;
  std::vector<double> batch;
  batch.swap(buffer_);
  std::sort(batch.begin(), batch.end());
  InsertBatch(std::move(batch));
  Compress();
}

void CkmsSketch::InsertBatch(std::vector<double>&& batch) const {
  // Single merge pass: walk summary and sorted batch together, tracking
  // the rank lower bound (sum of g) at each position; new tuples get
  // delta = floor(f(r, n)) - 1 (0 at the extremes), the CKMS INSERT rule.
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + batch.size());
  size_t si = 0, bi = 0;
  double rank = 0;  // sum of g of tuples already placed
  while (si < entries_.size() || bi < batch.size()) {
    if (bi >= batch.size() ||
        (si < entries_.size() && entries_[si].value <= batch[bi])) {
      rank += static_cast<double>(entries_[si].g);
      merged.push_back(entries_[si++]);
    } else {
      const double v = batch[bi++];
      uint64_t delta = 0;
      if (!merged.empty() && si < entries_.size()) {
        // Interior insertion: uncertainty up to half the invariant at this
        // rank (the conservative engineering choice: slightly more tuples,
        // observed error comfortably within each target's epsilon).
        delta = static_cast<uint64_t>(
            std::max(0.0, std::floor(AllowedError(rank) / 4.0) - 1.0));
      }
      rank += 1;
      merged.push_back({v, 1, delta});
    }
  }
  entries_ = std::move(merged);
}

void CkmsSketch::Compress() const {
  if (entries_.size() < 3) return;
  // Prefix ranks of the summary before any folding; they remain valid
  // lower bounds throughout the pass because folding only moves weight
  // towards higher tuples.
  std::vector<double> rank(entries_.size());
  double cum = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    cum += static_cast<double>(entries_[i].g);
    rank[i] = cum;
  }
  // Walk from the second-to-last tuple downwards (the classic COMPRESS
  // direction), folding tuple i into its surviving successor while the
  // combined band respects f(r_i, n). The first and last tuples are never
  // folded (they pin the min/max ranks).
  std::vector<Entry> kept;
  kept.reserve(entries_.size());
  kept.push_back(entries_.back());
  for (size_t i = entries_.size() - 1; i-- > 0;) {
    const Entry& current = entries_[i];
    Entry& successor = kept.back();
    const double band = static_cast<double>(current.g) +
                        static_cast<double>(successor.g) +
                        static_cast<double>(successor.delta);
    if (i > 0 && band <= AllowedError(rank[i])) {
      successor.g += current.g;
    } else {
      kept.push_back(current);
    }
  }
  std::reverse(kept.begin(), kept.end());
  entries_ = std::move(kept);
}

double CkmsSketch::QuantileOrNaN(double q) const noexcept {
  if (empty() || !(q >= 0.0 && q <= 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  Flush();
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const double n = static_cast<double>(count_);
  const double target_rank = q * n;
  const double half_band = AllowedError(target_rank) / 2.0;
  double rank = 0;
  for (size_t i = 0; i + 1 < entries_.size(); ++i) {
    rank += static_cast<double>(entries_[i].g);
    const double next_max_rank = rank + static_cast<double>(entries_[i + 1].g) +
                                 static_cast<double>(entries_[i + 1].delta);
    if (next_max_rank > target_rank + half_band) {
      return entries_[i].value;
    }
  }
  return entries_.back().value;
}

Result<double> CkmsSketch::Quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile must be in [0, 1], got " +
                                   std::to_string(q));
  }
  if (empty()) {
    return Status::InvalidArgument("quantile of an empty sketch");
  }
  return QuantileOrNaN(q);
}

void CkmsSketch::MergeFrom(const CkmsSketch& other) {
  if (other.empty()) return;
  other.Flush();
  Flush();
  std::vector<double> weighted;
  weighted.reserve(other.count_);
  for (const Entry& e : other.entries_) {
    for (uint64_t i = 0; i < e.g; ++i) weighted.push_back(e.value);
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  std::sort(weighted.begin(), weighted.end());
  InsertBatch(std::move(weighted));
  Compress();
}

// Wire format: "CKMS" magic, version byte, target count (varint) and per
// target quantile/epsilon (doubles), count (varint), min/max (doubles),
// entry count (varint), then per entry: value (double), g (varint),
// delta (varint).
std::string CkmsSketch::Serialize() const {
  Flush();
  std::string out;
  out.reserve(32 + targets_.size() * 16 + entries_.size() * 12);
  out.append("CKMS", 4);
  out.push_back(1);
  PutVarint64(&out, targets_.size());
  for (const Target& t : targets_) {
    PutFixedDouble(&out, t.quantile);
    PutFixedDouble(&out, t.epsilon);
  }
  PutVarint64(&out, count_);
  PutFixedDouble(&out, min_);
  PutFixedDouble(&out, max_);
  PutVarint64(&out, entries_.size());
  for (const Entry& e : entries_) {
    PutFixedDouble(&out, e.value);
    PutVarint64(&out, e.g);
    PutVarint64(&out, e.delta);
  }
  return out;
}

Result<CkmsSketch> CkmsSketch::Deserialize(std::string_view payload) {
  Slice in(payload);
  std::string_view header;
  DD_RETURN_IF_ERROR(in.GetBytes(5, &header));
  if (header.substr(0, 4) != "CKMS" || header[4] != 1) {
    return Status::Corruption("not a CKMS v1 payload");
  }
  uint64_t n_targets = 0;
  DD_RETURN_IF_ERROR(in.GetVarint64(&n_targets));
  if (n_targets == 0 || n_targets > 64) {
    return Status::Corruption("target count out of range");
  }
  std::vector<Target> targets;
  targets.reserve(n_targets);
  for (uint64_t i = 0; i < n_targets; ++i) {
    Target t{};
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&t.quantile));
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&t.epsilon));
    targets.push_back(t);
  }
  auto result = Create(std::move(targets));
  if (!result.ok()) {
    return Status::Corruption("invalid targets in payload");
  }
  CkmsSketch sketch = std::move(result).value();
  DD_RETURN_IF_ERROR(in.GetVarint64(&sketch.count_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.min_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.max_));
  uint64_t n_entries = 0;
  DD_RETURN_IF_ERROR(in.GetVarint64(&n_entries));
  if (n_entries > payload.size()) {
    return Status::Corruption("entry count exceeds payload");
  }
  uint64_t total_g = 0;
  double prev = -std::numeric_limits<double>::infinity();
  sketch.entries_.reserve(n_entries);
  for (uint64_t i = 0; i < n_entries; ++i) {
    Entry e{};
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&e.value));
    DD_RETURN_IF_ERROR(in.GetVarint64(&e.g));
    DD_RETURN_IF_ERROR(in.GetVarint64(&e.delta));
    if (!(e.value >= prev) || e.g == 0) {
      return Status::Corruption("invalid CKMS entry");
    }
    prev = e.value;
    total_g += e.g;
    sketch.entries_.push_back(e);
  }
  if (!in.empty()) return Status::Corruption("trailing bytes");
  if (total_g != sketch.count_) {
    return Status::Corruption("entry weights do not sum to count");
  }
  return sketch;
}

size_t CkmsSketch::size_in_bytes() const noexcept {
  return sizeof(*this) + targets_.capacity() * sizeof(Target) +
         entries_.capacity() * sizeof(Entry) +
         buffer_.capacity() * sizeof(double);
}

}  // namespace dd
