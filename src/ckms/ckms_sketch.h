// CKMS: the biased/targeted-quantiles sketch of Cormode, Korn,
// Muthukrishnan & Srivastava ("Effective computation of biased quantiles
// over data streams", ICDE 2005 / PODS 2006) — references [7] and [8] of
// the paper. §1.2 places this line of work between uniform-rank sketches
// and t-digest: it "promises lower rank error on the quantiles further
// away from the median by biasing the data it keeps towards the higher
// (and lower) quantiles", but remains a rank-error sketch, so heavy-tailed
// relative error is still unbounded, and it is only one-way mergeable.
//
// This is the *targeted* variant: the caller declares a set of
// (quantile phi_j, epsilon_j) targets; the summary keeps a GK-style tuple
// list whose allowed uncertainty at rank r is the invariant function
//   f(r, n) = min_j  2 eps_j r / phi_j              for r >= phi_j n
//             min_j  2 eps_j (n - r) / (1 - phi_j)  for r <  phi_j n,
// so resolution concentrates exactly where the targets are.

#ifndef DDSKETCH_CKMS_CKMS_SKETCH_H_
#define DDSKETCH_CKMS_CKMS_SKETCH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dd {

/// Targeted-quantile rank-error sketch.
class CkmsSketch {
 public:
  /// One accuracy target: the phi_j-quantile must carry rank error at most
  /// epsilon_j * n.
  struct Target {
    double quantile;
    double epsilon;
  };

  /// The conventional monitoring target set: median loosely, tails tightly.
  static std::vector<Target> DefaultTargets();

  /// Fails unless every target has 0 < quantile < 1 and 0 < epsilon < 1.
  static Result<CkmsSketch> Create(std::vector<Target> targets);

  /// Adds one value (buffered; folded in batches).
  void Add(double value);

  /// The q-quantile estimate. Rank error is at most epsilon_j * n when q
  /// equals a declared target; between targets the bound interpolates via
  /// the invariant function.
  Result<double> Quantile(double q) const;
  double QuantileOrNaN(double q) const noexcept;

  /// One-way merge (same caveat as GK: error accumulates per generation).
  void MergeFrom(const CkmsSketch& other);

  uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  const std::vector<Target>& targets() const noexcept { return targets_; }

  /// Summary tuples currently held (after a flush).
  size_t num_entries() const noexcept { return entries_.size(); }
  size_t size_in_bytes() const noexcept;

  /// Folds the buffer into the summary (done automatically by queries).
  void Flush() const;

  /// The invariant function f(rank, n) (exposed for tests).
  double AllowedError(double rank) const noexcept;

  /// Serializes targets + summary (buffer flushed first).
  std::string Serialize() const;
  static Result<CkmsSketch> Deserialize(std::string_view payload);

 private:
  struct Entry {
    double value;
    uint64_t g;
    uint64_t delta;
  };

  explicit CkmsSketch(std::vector<Target> targets);

  void InsertBatch(std::vector<double>&& batch) const;
  void Compress() const;

  std::vector<Target> targets_;
  size_t buffer_capacity_;
  mutable std::vector<Entry> entries_;  // sorted by value
  mutable std::vector<double> buffer_;
  uint64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dd

#endif  // DDSKETCH_CKMS_CKMS_SKETCH_H_
