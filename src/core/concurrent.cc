#include "core/concurrent.h"

#include <functional>
#include <string>
#include <thread>

namespace dd {

Result<ConcurrentDDSketch> ConcurrentDDSketch::Create(
    const DDSketchConfig& config, int num_shards) {
  if (num_shards < 1 || num_shards > 4096) {
    return Status::InvalidArgument("num_shards must be in [1, 4096], got " +
                                   std::to_string(num_shards));
  }
  auto prototype = DDSketch::Create(config);
  if (!prototype.ok()) return prototype.status();
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards.push_back(std::make_unique<Shard>(prototype.value()));
  }
  return ConcurrentDDSketch(std::move(shards));
}

ConcurrentDDSketch::Shard& ConcurrentDDSketch::ShardForThisThread() noexcept {
  const size_t hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return *shards_[hash % shards_.size()];
}

void ConcurrentDDSketch::Add(double value, uint64_t count) noexcept {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sketch.Add(value, count);
}

void ConcurrentDDSketch::AddBatch(std::span<const double> values) noexcept {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sketch.AddBatch(values);
}

Status ConcurrentDDSketch::MergeFrom(const DDSketch& sketch) {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sketch.MergeFrom(sketch);
}

DDSketch ConcurrentDDSketch::Snapshot() const {
  // Merge shard by shard; each shard is locked only while being copied
  // into the accumulator, so ingestion stalls at most one shard at a time.
  std::unique_ptr<DDSketch> merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (merged == nullptr) {
      merged = std::make_unique<DDSketch>(shard->sketch);
    } else {
      (void)merged->MergeFrom(shard->sketch);  // same config: cannot fail
    }
  }
  return std::move(*merged);
}

uint64_t ConcurrentDDSketch::count() const noexcept {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->sketch.count();
  }
  return total;
}

}  // namespace dd
