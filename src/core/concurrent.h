// ConcurrentDDSketch: a thread-safe ingestion front-end.
//
// The deployment the paper describes has many threads/workers feeding one
// logical distribution. Because DDSketch is fully mergeable, the cheapest
// safe design is sharding: each thread hashes to one of S mutex-protected
// shard sketches (no contention in the common case), and Snapshot() merges
// the shards into a plain DDSketch. The snapshot is exactly the sketch a
// single-threaded run over the same values would produce — mergeability is
// what makes lock-striping correct here, not just fast.

#ifndef DDSKETCH_CORE_CONCURRENT_H_
#define DDSKETCH_CORE_CONCURRENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/ddsketch.h"
#include "util/status.h"

namespace dd {

/// Sharded, mutex-striped DDSketch. Add() is safe from any thread;
/// Snapshot() is safe concurrently with adds (it locks shard by shard and
/// is linearizable per shard, so a snapshot taken during ingestion is some
/// valid prefix interleaving).
class ConcurrentDDSketch {
 public:
  /// `num_shards` defaults to a small multiple of typical core counts;
  /// more shards = less contention, slightly larger snapshots cost.
  static Result<ConcurrentDDSketch> Create(const DDSketchConfig& config,
                                           int num_shards = 16);

  /// Thread-safe add.
  void Add(double value, uint64_t count = 1) noexcept;

  /// Thread-safe batch add: one lock acquisition and one
  /// DDSketch::AddBatch pass for the whole span (vs. a lock per value).
  void AddBatch(std::span<const double> values) noexcept;

  /// Thread-safe merge of a whole sketch (e.g. a decoded remote payload)
  /// into one shard.
  Status MergeFrom(const DDSketch& sketch);

  /// Merged copy of all shards.
  DDSketch Snapshot() const;

  /// Total count (sums shard counts; each shard read is locked).
  uint64_t count() const noexcept;

  int num_shards() const noexcept { return static_cast<int>(shards_.size()); }

 private:
  struct alignas(64) Shard {  // own cache line: no false sharing
    explicit Shard(DDSketch s) : sketch(std::move(s)) {}
    mutable std::mutex mutex;
    DDSketch sketch;
  };

  explicit ConcurrentDDSketch(std::vector<std::unique_ptr<Shard>> shards)
      : shards_(std::move(shards)) {}

  Shard& ShardForThisThread() noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dd

#endif  // DDSKETCH_CORE_CONCURRENT_H_
