#include "core/ddsketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace dd {
namespace {

// The negative store mirrors the positive one: indices are computed on
// |value|, so the largest indices hold the most-negative values and
// collapses must start from the highest indices (§2.2).
StoreType MirrorStoreType(StoreType type) {
  switch (type) {
    case StoreType::kCollapsingLowestDense:
      return StoreType::kCollapsingHighestDense;
    case StoreType::kCollapsingHighestDense:
      return StoreType::kCollapsingLowestDense;
    default:
      return type;
  }
}

}  // namespace

DDSketch::DDSketch(std::unique_ptr<IndexMapping> mapping,
                   std::unique_ptr<Store> positive,
                   std::unique_ptr<Store> negative,
                   bool reference_insert_path)
    : mapping_(std::move(mapping)),
      positive_(std::move(positive)),
      negative_(std::move(negative)),
      reference_insert_path_(reference_insert_path) {
  BindInsertPath();
}

void DDSketch::BindInsertPath() noexcept {
  fast_index_ = mapping_->fast_params();
  positive_dense_ = nullptr;
  negative_dense_ = nullptr;
  if (!reference_insert_path_) {
    positive_dense_ = dynamic_cast<DenseStore*>(positive_.get());
    negative_dense_ = dynamic_cast<DenseStore*>(negative_.get());
  }
}

Result<DDSketch> DDSketch::Create(const DDSketchConfig& config) {
  auto mapping = IndexMapping::Create(config.mapping, config.relative_accuracy);
  if (!mapping.ok()) return mapping.status();
  auto positive = Store::Create(config.store, config.max_num_buckets);
  if (!positive.ok()) return positive.status();
  auto negative =
      Store::Create(MirrorStoreType(config.store), config.max_num_buckets);
  if (!negative.ok()) return negative.status();
  return DDSketch(std::move(mapping).value(), std::move(positive).value(),
                  std::move(negative).value(), config.reference_insert_path);
}

Result<DDSketch> DDSketch::Create(double relative_accuracy,
                                  int32_t max_num_buckets) {
  DDSketchConfig config;
  config.relative_accuracy = relative_accuracy;
  config.max_num_buckets = max_num_buckets;
  return Create(config);
}

DDSketch::DDSketch(const DDSketch& other)
    : mapping_(other.mapping_->Clone()),
      positive_(other.positive_->Clone()),
      negative_(other.negative_->Clone()),
      zero_count_(other.zero_count_),
      rejected_count_(other.rejected_count_),
      clamped_count_(other.clamped_count_),
      sum_(other.sum_),
      min_(other.min_),
      max_(other.max_),
      reference_insert_path_(other.reference_insert_path_) {
  BindInsertPath();  // the caches must alias OUR clones, not other's stores
}

DDSketch& DDSketch::operator=(const DDSketch& other) {
  if (this == &other) return *this;
  *this = DDSketch(other);  // copy-construct then move-assign
  return *this;
}

DDSketch::DDSketch(DDSketch&& other) noexcept
    : mapping_(std::move(other.mapping_)),
      positive_(std::move(other.positive_)),
      negative_(std::move(other.negative_)),
      zero_count_(other.zero_count_),
      rejected_count_(other.rejected_count_),
      clamped_count_(other.clamped_count_),
      sum_(other.sum_),
      min_(other.min_),
      max_(other.max_),
      fast_index_(other.fast_index_),
      positive_dense_(std::exchange(other.positive_dense_, nullptr)),
      negative_dense_(std::exchange(other.negative_dense_, nullptr)),
      reference_insert_path_(other.reference_insert_path_) {}

DDSketch& DDSketch::operator=(DDSketch&& other) noexcept {
  if (this == &other) return *this;
  mapping_ = std::move(other.mapping_);
  positive_ = std::move(other.positive_);
  negative_ = std::move(other.negative_);
  zero_count_ = other.zero_count_;
  rejected_count_ = other.rejected_count_;
  clamped_count_ = other.clamped_count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
  fast_index_ = other.fast_index_;
  positive_dense_ = std::exchange(other.positive_dense_, nullptr);
  negative_dense_ = std::exchange(other.negative_dense_, nullptr);
  reference_insert_path_ = other.reference_insert_path_;
  return *this;
}

void DDSketch::Add(double value, uint64_t count) noexcept {
  if (count == 0) return;
  if (!std::isfinite(value)) {
    rejected_count_ += count;
    return;
  }
  double magnitude = std::abs(value);
  // fast_index_ snapshots the mapping's bounds, so classification reads no
  // pointer and the common case pays no virtual call at all: FastIndex is
  // an inline enum switch and TryAddFast a direct dense-slot increment.
  if (magnitude < fast_index_.min_indexable) {
    zero_count_ += count;
  } else {
    if (magnitude > fast_index_.max_indexable) {
      magnitude = fast_index_.max_indexable;
      clamped_count_ += count;
    }
    const int32_t index = FastIndex(fast_index_, magnitude);
    DenseStore* const dense = value > 0 ? positive_dense_ : negative_dense_;
    if (dense == nullptr || !dense->TryAddFast(index, count)) {
      // Sparse store, reference path, or a dense store that must grow or
      // collapse first: the generic virtual add.
      (value > 0 ? positive_ : negative_)->Add(index, count);
    }
  }
  sum_ += value * static_cast<double>(count);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

namespace {

/// Feeds a run of precomputed bucket indices into a dense store: the fast
/// run primitive consumes everything it can; an index needing growth or
/// collapse takes one virtual Add and the run resumes after it.
void DrainIndexRun(DenseStore* dense, Store* store,
                   std::span<const int32_t> indices) {
  size_t consumed = 0;
  while (consumed < indices.size()) {
    consumed += dense->TryAddFastRun(indices.subspan(consumed));
    if (consumed < indices.size()) {
      store->Add(indices[consumed], 1);
      ++consumed;
    }
  }
}

}  // namespace

void DDSketch::AddBatch(std::span<const double> values) noexcept {
  // Without dense stores on both signs (sparse config, or the pinned
  // reference path) there is no fast store primitive to batch into.
  if (positive_dense_ == nullptr || negative_dense_ == nullptr) {
    for (const double value : values) Add(value, 1);
    return;
  }
  // One scheme dispatch for the whole batch; the loops below then inline
  // the index computation with no per-value dispatch of any kind.
  switch (fast_index_.type) {
    case MappingType::kLinearInterpolated:
      return AddBatchFast<MappingType::kLinearInterpolated>(values);
    case MappingType::kQuadraticInterpolated:
      return AddBatchFast<MappingType::kQuadraticInterpolated>(values);
    case MappingType::kCubicInterpolated:
      return AddBatchFast<MappingType::kCubicInterpolated>(values);
    case MappingType::kLogarithmic:
    default:
      return AddBatchFast<MappingType::kLogarithmic>(values);
  }
}

template <MappingType kType>
void DDSketch::AddBatchFast(std::span<const double> values) noexcept {
  // Three phases per chunk, so each concern runs as its own tight loop:
  //  1. classify each value, computing its bucket index into a stack
  //     buffer (one per sign) and compacting accepted values into a third;
  //  2. drain each index buffer into its dense store, which keeps the
  //     count/extreme bookkeeping in registers for the whole run rather
  //     than a memory round trip per value;
  //  3. reduce sum/min/max over the accepted buffer with interleaved
  //     accumulators, off the critical path of the classification loop
  //     (a single serial sum chain would otherwise bound the whole batch
  //     at FP-add latency per value).
  // Anything outside the plain in-range case — NaN/inf, zero-bucket,
  // clamped magnitudes — detours through scalar Add, which maintains
  // every counter. Bucket counters make the store content insensitive to
  // the reordering between a detour and its chunk-mates (same argument
  // as merge order independence); the interleaved summation makes sum()
  // order-insensitive only up to floating-point rounding, which is all
  // MergeFrom ever promised for it.
  constexpr size_t kChunk = 512;
  int32_t pos_idx[kChunk];
  int32_t neg_idx[kChunk];
  double accepted[kChunk];
  const double lo_bound = fast_index_.min_indexable;
  const double hi_bound = fast_index_.max_indexable;
  const double multiplier = fast_index_.multiplier;
  double sum0 = 0.0, sum1 = 0.0, sum2 = 0.0, sum3 = 0.0;
  double lo0 = min_, lo1 = min_, hi0 = max_, hi1 = max_;
  for (size_t base = 0; base < values.size(); base += kChunk) {
    const size_t n = std::min(kChunk, values.size() - base);
    size_t np = 0, nn = 0, na = 0;
    for (size_t i = 0; i < n; ++i) {
      const double value = values[base + i];
      const double magnitude = std::abs(value);
      // One predicate covers every special case: NaN fails both
      // compares, +/-inf and clamped magnitudes the second, zero-bucket
      // values the first.
      if (!(magnitude >= lo_bound && magnitude <= hi_bound)) {
        Add(value, 1);
        continue;
      }
      const int32_t index = FastIndexT<kType>(multiplier, magnitude);
      if (value > 0) {
        pos_idx[np++] = index;
      } else {
        neg_idx[nn++] = index;
      }
      accepted[na++] = value;
    }
    DrainIndexRun(positive_dense_, positive_.get(), {pos_idx, np});
    DrainIndexRun(negative_dense_, negative_.get(), {neg_idx, nn});
    size_t i = 0;
    for (; i + 4 <= na; i += 4) {
      sum0 += accepted[i];
      sum1 += accepted[i + 1];
      sum2 += accepted[i + 2];
      sum3 += accepted[i + 3];
      lo0 = accepted[i] < lo0 ? accepted[i] : lo0;
      hi0 = accepted[i] > hi0 ? accepted[i] : hi0;
      lo1 = accepted[i + 1] < lo1 ? accepted[i + 1] : lo1;
      hi1 = accepted[i + 1] > hi1 ? accepted[i + 1] : hi1;
      lo0 = accepted[i + 2] < lo0 ? accepted[i + 2] : lo0;
      hi0 = accepted[i + 2] > hi0 ? accepted[i + 2] : hi0;
      lo1 = accepted[i + 3] < lo1 ? accepted[i + 3] : lo1;
      hi1 = accepted[i + 3] > hi1 ? accepted[i + 3] : hi1;
    }
    for (; i < na; ++i) {
      sum0 += accepted[i];
      lo0 = accepted[i] < lo0 ? accepted[i] : lo0;
      hi0 = accepted[i] > hi0 ? accepted[i] : hi0;
    }
  }
  sum_ += ((sum0 + sum1) + (sum2 + sum3));
  // Merge, don't overwrite: scalar Add detours above may have advanced
  // min_/max_ past this loop's local view.
  min_ = std::min(std::min(min_, lo0), lo1);
  max_ = std::max(std::max(max_, hi0), hi1);
}

uint64_t DDSketch::Remove(double value, uint64_t count) noexcept {
  if (count == 0 || !std::isfinite(value)) return 0;
  double magnitude = std::abs(value);
  uint64_t removed = 0;
  if (magnitude < fast_index_.min_indexable) {
    removed = std::min(zero_count_, count);
    zero_count_ -= removed;
  } else {
    // Mirror Add's clamping: a magnitude beyond the indexable maximum was
    // redirected into the extreme bucket on the way in, so that is where
    // it must be removed from — and it gives back its clamped_count.
    // (Before this, such values could never be removed at all, leaving
    // clamped_count() permanently inflated relative to count().)
    const bool clamped = magnitude > fast_index_.max_indexable;
    if (clamped) magnitude = fast_index_.max_indexable;
    const int32_t index = FastIndex(fast_index_, magnitude);
    removed = (value > 0) ? positive_->Remove(index, count)
                          : negative_->Remove(index, count);
    if (clamped) {
      clamped_count_ -= std::min(clamped_count_, removed);
    }
  }
  if (removed > 0) {
    sum_ -= value * static_cast<double>(removed);
    if (empty()) {
      min_ = std::numeric_limits<double>::infinity();
      max_ = -std::numeric_limits<double>::infinity();
      sum_ = 0;
    }
  }
  return removed;
}

uint64_t DDSketch::count() const noexcept {
  return positive_->total_count() + negative_->total_count() + zero_count_;
}

double DDSketch::mean() const noexcept {
  const uint64_t n = count();
  return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                : sum_ / static_cast<double>(n);
}

Result<double> DDSketch::Quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile must be in [0, 1], got " +
                                   std::to_string(q));
  }
  if (empty()) {
    return Status::InvalidArgument("quantile of an empty sketch");
  }
  return QuantileOrNaN(q);
}

double DDSketch::QuantileOrNaN(double q) const noexcept {
  const uint64_t n = count();
  if (n == 0 || !(q >= 0.0 && q <= 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // The extremes are tracked exactly (§2.2).
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Algorithm 2: find the first bucket (in value order) whose cumulative
  // count exceeds q(n-1). Value order is: negatives from most negative
  // (highest |value| index) up, then zeros, then positives ascending.
  const double rank = q * static_cast<double>(n - 1);
  const double neg_total = static_cast<double>(negative_->total_count());
  double estimate;
  if (rank < neg_total) {
    estimate = -mapping_->Value(negative_->KeyAtRankDescending(rank));
  } else if (rank < neg_total + static_cast<double>(zero_count_)) {
    estimate = 0.0;
  } else {
    const double positive_rank =
        rank - neg_total - static_cast<double>(zero_count_);
    estimate = mapping_->Value(positive_->KeyAtRank(positive_rank));
  }
  // The exact extrema are tracked, so never report beyond them; this also
  // makes q = 0 and q = 1 exact (standard sketch practice, §2.2).
  return std::clamp(estimate, min_, max_);
}

Result<std::vector<double>> DDSketch::Quantiles(
    std::span<const double> qs) const {
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    auto r = Quantile(q);
    if (!r.ok()) return r.status();
    out.push_back(r.value());
  }
  return out;
}

double DDSketch::CdfOrNaN(double value) const noexcept {
  const uint64_t n = count();
  if (n == 0 || std::isnan(value)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (value >= max_) return 1.0;
  if (value < min_) return 0.0;
  const double total = static_cast<double>(n);
  const double neg_total = static_cast<double>(negative_->total_count());
  const double magnitude = std::abs(value);
  if (value >= 0.0) {
    // Everything negative plus the zero bucket sorts below any v >= 0
    // (zero-bucket entries are within floating-point noise of zero).
    double cum = neg_total + static_cast<double>(zero_count_);
    if (magnitude >= mapping_->min_indexable_value()) {
      const int32_t index =
          mapping_->Index(std::min(magnitude, mapping_->max_indexable_value()));
      const double below =
          static_cast<double>(positive_->CumulativeCount(index - 1));
      const double in_bucket =
          static_cast<double>(positive_->CumulativeCount(index)) - below;
      const double lo = mapping_->LowerBound(index);
      const double hi = mapping_->LowerBound(index + 1);
      const double fraction =
          std::clamp((magnitude - lo) / (hi - lo), 0.0, 1.0);
      cum += below + fraction * in_bucket;
    }
    return std::clamp(cum / total, 0.0, 1.0);
  }
  // value < 0: the values <= v are the negatives with magnitude >= |v|,
  // i.e. the negative-store buckets at and above Index(|v|).
  double cum = 0.0;
  if (magnitude < mapping_->min_indexable_value()) {
    // v is a negative value within noise of zero: everything negative is
    // below it.
    cum = neg_total;
  } else {
    const int32_t index =
        mapping_->Index(std::min(magnitude, mapping_->max_indexable_value()));
    const double up_to =
        static_cast<double>(negative_->CumulativeCount(index));
    const double below_bucket =
        static_cast<double>(negative_->CumulativeCount(index - 1));
    const double in_bucket = up_to - below_bucket;
    const double lo = mapping_->LowerBound(index);
    const double hi = mapping_->LowerBound(index + 1);
    // Bucket holds negatives with magnitudes in (lo, hi]; those <= v have
    // magnitude >= |v|.
    const double fraction = std::clamp((hi - magnitude) / (hi - lo), 0.0, 1.0);
    cum = (neg_total - up_to) + fraction * in_bucket;
  }
  return std::clamp(cum / total, 0.0, 1.0);
}

Result<double> DDSketch::Cdf(double value) const {
  if (std::isnan(value)) {
    return Status::InvalidArgument("CDF of NaN");
  }
  if (empty()) {
    return Status::InvalidArgument("CDF of an empty sketch");
  }
  return CdfOrNaN(value);
}

Status DDSketch::MergeFrom(const DDSketch& other) {
  if (!mapping_->IsCompatibleWith(*other.mapping_)) {
    return Status::Incompatible(
        "cannot merge sketches with different mappings (" +
        std::string(MappingTypeToString(mapping_->type())) + " gamma=" +
        std::to_string(mapping_->gamma()) + " vs " +
        std::string(MappingTypeToString(other.mapping_->type())) + " gamma=" +
        std::to_string(other.mapping_->gamma()) + ")");
  }
  positive_->MergeFrom(*other.positive_);
  negative_->MergeFrom(*other.negative_);
  zero_count_ += other.zero_count_;
  rejected_count_ += other.rejected_count_;
  clamped_count_ += other.clamped_count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  return Status::OK();
}

size_t DDSketch::num_buckets() const noexcept {
  return positive_->num_buckets() + negative_->num_buckets() +
         (zero_count_ > 0 ? 1 : 0);
}

size_t DDSketch::size_in_bytes() const noexcept {
  return sizeof(*this) + sizeof(IndexMapping) + positive_->size_in_bytes() +
         negative_->size_in_bytes();
}

void DDSketch::Clear() noexcept {
  positive_->Clear();
  negative_->Clear();
  zero_count_ = 0;
  rejected_count_ = 0;
  clamped_count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

}  // namespace dd
