#include "core/ddsketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dd {
namespace {

// The negative store mirrors the positive one: indices are computed on
// |value|, so the largest indices hold the most-negative values and
// collapses must start from the highest indices (§2.2).
StoreType MirrorStoreType(StoreType type) {
  switch (type) {
    case StoreType::kCollapsingLowestDense:
      return StoreType::kCollapsingHighestDense;
    case StoreType::kCollapsingHighestDense:
      return StoreType::kCollapsingLowestDense;
    default:
      return type;
  }
}

}  // namespace

DDSketch::DDSketch(std::unique_ptr<IndexMapping> mapping,
                   std::unique_ptr<Store> positive,
                   std::unique_ptr<Store> negative)
    : mapping_(std::move(mapping)),
      positive_(std::move(positive)),
      negative_(std::move(negative)) {}

Result<DDSketch> DDSketch::Create(const DDSketchConfig& config) {
  auto mapping = IndexMapping::Create(config.mapping, config.relative_accuracy);
  if (!mapping.ok()) return mapping.status();
  auto positive = Store::Create(config.store, config.max_num_buckets);
  if (!positive.ok()) return positive.status();
  auto negative =
      Store::Create(MirrorStoreType(config.store), config.max_num_buckets);
  if (!negative.ok()) return negative.status();
  return DDSketch(std::move(mapping).value(), std::move(positive).value(),
                  std::move(negative).value());
}

Result<DDSketch> DDSketch::Create(double relative_accuracy,
                                  int32_t max_num_buckets) {
  DDSketchConfig config;
  config.relative_accuracy = relative_accuracy;
  config.max_num_buckets = max_num_buckets;
  return Create(config);
}

DDSketch::DDSketch(const DDSketch& other)
    : mapping_(other.mapping_->Clone()),
      positive_(other.positive_->Clone()),
      negative_(other.negative_->Clone()),
      zero_count_(other.zero_count_),
      rejected_count_(other.rejected_count_),
      clamped_count_(other.clamped_count_),
      sum_(other.sum_),
      min_(other.min_),
      max_(other.max_) {}

DDSketch& DDSketch::operator=(const DDSketch& other) {
  if (this == &other) return *this;
  *this = DDSketch(other);  // copy-construct then move-assign
  return *this;
}

void DDSketch::Add(double value, uint64_t count) noexcept {
  if (count == 0) return;
  if (!std::isfinite(value)) {
    rejected_count_ += count;
    return;
  }
  double magnitude = std::abs(value);
  if (magnitude < mapping_->min_indexable_value()) {
    zero_count_ += count;
  } else {
    if (magnitude > mapping_->max_indexable_value()) {
      magnitude = mapping_->max_indexable_value();
      clamped_count_ += count;
    }
    const int32_t index = mapping_->Index(magnitude);
    if (value > 0) {
      positive_->Add(index, count);
    } else {
      negative_->Add(index, count);
    }
  }
  sum_ += value * static_cast<double>(count);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

uint64_t DDSketch::Remove(double value, uint64_t count) noexcept {
  if (count == 0 || !std::isfinite(value)) return 0;
  const double magnitude = std::abs(value);
  uint64_t removed = 0;
  if (magnitude < mapping_->min_indexable_value()) {
    removed = std::min(zero_count_, count);
    zero_count_ -= removed;
  } else if (magnitude <= mapping_->max_indexable_value()) {
    const int32_t index = mapping_->Index(magnitude);
    removed = (value > 0) ? positive_->Remove(index, count)
                          : negative_->Remove(index, count);
  }
  if (removed > 0) {
    sum_ -= value * static_cast<double>(removed);
    if (empty()) {
      min_ = std::numeric_limits<double>::infinity();
      max_ = -std::numeric_limits<double>::infinity();
      sum_ = 0;
    }
  }
  return removed;
}

uint64_t DDSketch::count() const noexcept {
  return positive_->total_count() + negative_->total_count() + zero_count_;
}

double DDSketch::mean() const noexcept {
  const uint64_t n = count();
  return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                : sum_ / static_cast<double>(n);
}

Result<double> DDSketch::Quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile must be in [0, 1], got " +
                                   std::to_string(q));
  }
  if (empty()) {
    return Status::InvalidArgument("quantile of an empty sketch");
  }
  return QuantileOrNaN(q);
}

double DDSketch::QuantileOrNaN(double q) const noexcept {
  const uint64_t n = count();
  if (n == 0 || !(q >= 0.0 && q <= 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // The extremes are tracked exactly (§2.2).
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Algorithm 2: find the first bucket (in value order) whose cumulative
  // count exceeds q(n-1). Value order is: negatives from most negative
  // (highest |value| index) up, then zeros, then positives ascending.
  const double rank = q * static_cast<double>(n - 1);
  const double neg_total = static_cast<double>(negative_->total_count());
  double estimate;
  if (rank < neg_total) {
    estimate = -mapping_->Value(negative_->KeyAtRankDescending(rank));
  } else if (rank < neg_total + static_cast<double>(zero_count_)) {
    estimate = 0.0;
  } else {
    const double positive_rank =
        rank - neg_total - static_cast<double>(zero_count_);
    estimate = mapping_->Value(positive_->KeyAtRank(positive_rank));
  }
  // The exact extrema are tracked, so never report beyond them; this also
  // makes q = 0 and q = 1 exact (standard sketch practice, §2.2).
  return std::clamp(estimate, min_, max_);
}

Result<std::vector<double>> DDSketch::Quantiles(
    std::span<const double> qs) const {
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    auto r = Quantile(q);
    if (!r.ok()) return r.status();
    out.push_back(r.value());
  }
  return out;
}

double DDSketch::CdfOrNaN(double value) const noexcept {
  const uint64_t n = count();
  if (n == 0 || std::isnan(value)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (value >= max_) return 1.0;
  if (value < min_) return 0.0;
  const double total = static_cast<double>(n);
  const double neg_total = static_cast<double>(negative_->total_count());
  const double magnitude = std::abs(value);
  if (value >= 0.0) {
    // Everything negative plus the zero bucket sorts below any v >= 0
    // (zero-bucket entries are within floating-point noise of zero).
    double cum = neg_total + static_cast<double>(zero_count_);
    if (magnitude >= mapping_->min_indexable_value()) {
      const int32_t index =
          mapping_->Index(std::min(magnitude, mapping_->max_indexable_value()));
      const double below =
          static_cast<double>(positive_->CumulativeCount(index - 1));
      const double in_bucket =
          static_cast<double>(positive_->CumulativeCount(index)) - below;
      const double lo = mapping_->LowerBound(index);
      const double hi = mapping_->LowerBound(index + 1);
      const double fraction =
          std::clamp((magnitude - lo) / (hi - lo), 0.0, 1.0);
      cum += below + fraction * in_bucket;
    }
    return std::clamp(cum / total, 0.0, 1.0);
  }
  // value < 0: the values <= v are the negatives with magnitude >= |v|,
  // i.e. the negative-store buckets at and above Index(|v|).
  double cum = 0.0;
  if (magnitude < mapping_->min_indexable_value()) {
    // v is a negative value within noise of zero: everything negative is
    // below it.
    cum = neg_total;
  } else {
    const int32_t index =
        mapping_->Index(std::min(magnitude, mapping_->max_indexable_value()));
    const double up_to =
        static_cast<double>(negative_->CumulativeCount(index));
    const double below_bucket =
        static_cast<double>(negative_->CumulativeCount(index - 1));
    const double in_bucket = up_to - below_bucket;
    const double lo = mapping_->LowerBound(index);
    const double hi = mapping_->LowerBound(index + 1);
    // Bucket holds negatives with magnitudes in (lo, hi]; those <= v have
    // magnitude >= |v|.
    const double fraction = std::clamp((hi - magnitude) / (hi - lo), 0.0, 1.0);
    cum = (neg_total - up_to) + fraction * in_bucket;
  }
  return std::clamp(cum / total, 0.0, 1.0);
}

Result<double> DDSketch::Cdf(double value) const {
  if (std::isnan(value)) {
    return Status::InvalidArgument("CDF of NaN");
  }
  if (empty()) {
    return Status::InvalidArgument("CDF of an empty sketch");
  }
  return CdfOrNaN(value);
}

Status DDSketch::MergeFrom(const DDSketch& other) {
  if (!mapping_->IsCompatibleWith(*other.mapping_)) {
    return Status::Incompatible(
        "cannot merge sketches with different mappings (" +
        std::string(MappingTypeToString(mapping_->type())) + " gamma=" +
        std::to_string(mapping_->gamma()) + " vs " +
        std::string(MappingTypeToString(other.mapping_->type())) + " gamma=" +
        std::to_string(other.mapping_->gamma()) + ")");
  }
  positive_->MergeFrom(*other.positive_);
  negative_->MergeFrom(*other.negative_);
  zero_count_ += other.zero_count_;
  rejected_count_ += other.rejected_count_;
  clamped_count_ += other.clamped_count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  return Status::OK();
}

size_t DDSketch::num_buckets() const noexcept {
  return positive_->num_buckets() + negative_->num_buckets() +
         (zero_count_ > 0 ? 1 : 0);
}

size_t DDSketch::size_in_bytes() const noexcept {
  return sizeof(*this) + sizeof(IndexMapping) + positive_->size_in_bytes() +
         negative_->size_in_bytes();
}

void DDSketch::Clear() noexcept {
  positive_->Clear();
  negative_->Clear();
  zero_count_ = 0;
  rejected_count_ = 0;
  clamped_count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

}  // namespace dd
