// DDSketch: the paper's fully-mergeable quantile sketch with relative-error
// guarantees (Masson, Rim & Lee, PVLDB 12(12), 2019).
//
// The sketch buckets positive values by an IndexMapping (gamma-geometric
// boundaries), keeps a mirrored store for negative values and a dedicated
// zero bucket (§2.2), and answers q-quantile queries with a value within
// relative_accuracy of the true sample quantile (Proposition 3), provided
// the quantile's bucket has not been collapsed away by the size bound
// (Proposition 4).
//
// Guarantees:
//  * alpha-accurate quantiles: |estimate - x_q| <= alpha * |x_q|.
//  * full mergeability: merging sketches with equal parameters yields
//    bucket-identical results to a single sketch over the concatenation,
//    regardless of merge order or tree shape.
//  * bounded size: with a collapsing store, at most max_num_buckets buckets
//    per sign, collapsing the least-important end first.

#ifndef DDSKETCH_CORE_DDSKETCH_H_
#define DDSKETCH_CORE_DDSKETCH_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mapping.h"
#include "core/store.h"
#include "util/status.h"

namespace dd {

/// Construction parameters for DDSketch. The defaults match Table 2 of the
/// paper: alpha = 0.01 with up to 2048 buckets, logarithmic mapping.
struct DDSketchConfig {
  /// Relative accuracy alpha in (0, 1).
  double relative_accuracy = 0.01;
  /// Bucket boundary scheme. Defaults to the exact logarithmic mapping
  /// (memory-optimal, what the paper calls plain "DDSketch"); pick one of
  /// the interpolated mappings (e.g. kCubicInterpolated) for the paper's
  /// "DDSketch (fast)" variant, which trades slightly more buckets for
  /// cheaper insertion (§4).
  MappingType mapping = MappingType::kLogarithmic;
  /// Counter container strategy.
  StoreType store = StoreType::kCollapsingLowestDense;
  /// Size bound per sign; <= 0 means unbounded (ignored for
  /// kUnboundedDense). 2048 covers ~80 microseconds to ~1 year at
  /// alpha = 0.01 (§2.2).
  int32_t max_num_buckets = 2048;
  /// Forces every insert through the generic virtual Store::Add instead of
  /// the devirtualized dense fast path. Semantics are identical either
  /// way; this knob exists so differential tests (and perf comparisons)
  /// can pin the two paths against each other.
  bool reference_insert_path = false;
};

/// The quantile sketch. Not thread-safe; use one sketch per thread and
/// merge (the intended deployment mode of the paper).
class DDSketch {
 public:
  /// Validates `config` and builds a sketch.
  static Result<DDSketch> Create(const DDSketchConfig& config);

  /// Convenience: logarithmic mapping, collapsing-lowest store.
  static Result<DDSketch> Create(double relative_accuracy,
                                 int32_t max_num_buckets = 2048);

  // User-provided moves: the insert-path caches must be cleared on the
  // moved-from object — a defaulted move would leave them aliasing the
  // stores now owned by the destination, so a (misguided) Add on the
  // source would corrupt the destination instead of faulting.
  DDSketch(DDSketch&& other) noexcept;
  DDSketch& operator=(DDSketch&& other) noexcept;
  DDSketch(const DDSketch& other);
  DDSketch& operator=(const DDSketch& other);

  /// Adds one occurrence of `value`. Values in (-min_indexable,
  /// +min_indexable) go to the zero bucket; NaN and +/-inf are rejected and
  /// counted in rejected_count(); magnitudes above the indexable maximum are
  /// clamped into the extreme bucket (and counted in clamped_count()).
  void Add(double value) noexcept { Add(value, 1); }

  /// Adds `count` occurrences of `value`.
  void Add(double value, uint64_t count) noexcept;

  /// Adds every value of `values`: the batch form of Add with identical
  /// semantics (same rejection/zero-bucket/clamp handling) but a hot loop
  /// that hoists the indexable bounds, computes indices with zero virtual
  /// dispatch, increments dense-store slots directly, and reduces
  /// sum/min/max in registers. The whole ingest stack
  /// (ConcurrentDDSketch, SketchStore, DurableSketchStore, sketchd's
  /// committer) funnels value batches through here.
  void AddBatch(std::span<const double> values) noexcept;

  /// Removes up to `count` occurrences of `value`; returns how many were
  /// removed. Deletion mirrors Add bucket-wise (paper §2: "straightforward
  /// to insert items into this sketch as well as delete items"), including
  /// Add's clamping: magnitudes above the indexable maximum remove from
  /// the extreme bucket and give back their clamped_count(). min()/max()
  /// become conservative bounds after deletions. Caveat: values sharing a
  /// bucket are indistinguishable, so removing clamped mass can charge
  /// clamped_count() for unclamped same-bucket mass (and vice versa) —
  /// the counter is a best-effort diagnostic, exact whenever the extreme
  /// bucket holds only clamped values.
  uint64_t Remove(double value, uint64_t count = 1) noexcept;

  /// The q-quantile estimate (lower quantile, rank floor(1 + q(n-1))).
  /// Fails with InvalidArgument if q is outside [0, 1] or the sketch is
  /// empty. The result is within relative_accuracy of the true quantile
  /// whenever its bucket was not collapsed.
  Result<double> Quantile(double q) const;

  /// Like Quantile but returns NaN instead of an error (hot-path form).
  double QuantileOrNaN(double q) const noexcept;

  /// Batch quantile query; one cumulative scan would be possible but the
  /// simple per-q form is already dominated by the bucket walk.
  Result<std::vector<double>> Quantiles(std::span<const double> qs) const;

  /// Approximate CDF: the fraction of accepted values <= `value`, with
  /// log-linear interpolation inside the containing bucket. This is the
  /// rank-space dual of Quantile: the result is the exact CDF of some
  /// point within relative_accuracy of `value`. Returns NaN for an empty
  /// sketch or NaN input; -inf maps to 0 and +inf to 1.
  double CdfOrNaN(double value) const noexcept;

  /// Validated form of CdfOrNaN.
  Result<double> Cdf(double value) const;

  /// Approximate number of accepted values <= `value` (CdfOrNaN * count).
  double RankOrNaN(double value) const noexcept {
    return CdfOrNaN(value) * static_cast<double>(count());
  }

  /// Approximate number of accepted values in (lo, hi].
  double CountInRangeOrNaN(double lo, double hi) const noexcept {
    return RankOrNaN(hi) - RankOrNaN(lo);
  }

  /// Merges `other` into this sketch. Fails with Incompatible unless both
  /// sketches use the same mapping type and gamma. Fully mergeable: the
  /// result is bucket-identical to a single sketch over both streams.
  Status MergeFrom(const DDSketch& other);

  /// Total number of accepted values (excludes rejected, includes zeros).
  uint64_t count() const noexcept;
  /// Sum of accepted values (exact, tracked separately).
  double sum() const noexcept { return sum_; }
  /// Mean of accepted values (NaN when empty).
  double mean() const noexcept;
  /// Exact minimum accepted value (+inf when empty; conservative after
  /// Remove).
  double min() const noexcept { return min_; }
  /// Exact maximum accepted value (-inf when empty; conservative after
  /// Remove).
  double max() const noexcept { return max_; }
  /// Number of values in the zero bucket.
  uint64_t zero_count() const noexcept { return zero_count_; }
  /// Number of NaN/inf inputs dropped.
  uint64_t rejected_count() const noexcept { return rejected_count_; }
  /// Number of inputs clamped into an extreme bucket.
  uint64_t clamped_count() const noexcept { return clamped_count_; }
  /// True iff count() == 0.
  bool empty() const noexcept { return count() == 0; }

  /// Number of non-empty buckets across both signs (Figure 7).
  size_t num_buckets() const noexcept;
  /// Live memory footprint in bytes (Figure 6).
  size_t size_in_bytes() const noexcept;

  /// The configured accuracy alpha.
  double relative_accuracy() const noexcept {
    return mapping_->relative_accuracy();
  }
  /// The bucket boundary mapping.
  const IndexMapping& mapping() const noexcept { return *mapping_; }
  /// The positive-value store (negative values live in a mirrored store).
  const Store& positive_store() const noexcept { return *positive_; }
  const Store& negative_store() const noexcept { return *negative_; }

  /// Resets to empty, keeping configuration and capacity.
  void Clear() noexcept;

  /// Serializes to a compact binary payload (see serialization.cc for the
  /// format). Decoding with Deserialize() yields a sketch that answers all
  /// queries identically.
  std::string Serialize() const;

  /// Decodes a payload produced by Serialize(). Fails with Corruption on
  /// malformed input.
  static Result<DDSketch> Deserialize(std::string_view payload);

 private:
  friend class DDSketchCodec;

  DDSketch(std::unique_ptr<IndexMapping> mapping,
           std::unique_ptr<Store> positive, std::unique_ptr<Store> negative,
           bool reference_insert_path);

  /// (Re)derives the insert-path caches from mapping_/positive_/negative_:
  /// the mapping constants and, when the stores are dense and the fast
  /// path is enabled, raw DenseStore pointers for direct slot increments.
  /// Must run whenever the owned mapping/stores are (re)created — the
  /// cached pointers alias them.
  void BindInsertPath() noexcept;

  /// The sealed batch insert loop, instantiated per mapping scheme so the
  /// index computation inlines with zero dispatch of any kind (AddBatch
  /// switches on the scheme once per call).
  template <MappingType kType>
  void AddBatchFast(std::span<const double> values) noexcept;

  std::unique_ptr<IndexMapping> mapping_;
  std::unique_ptr<Store> positive_;
  std::unique_ptr<Store> negative_;  // indices of |value|; collapses highest
  uint64_t zero_count_ = 0;
  uint64_t rejected_count_ = 0;
  uint64_t clamped_count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  // Insert hot-path caches (see BindInsertPath). Moves keep them valid —
  // the pointees are heap objects owned by the unique_ptrs above; copies
  // rebind them to the cloned stores.
  FastIndexParams fast_index_;
  DenseStore* positive_dense_ = nullptr;  // null: sparse store or reference path
  DenseStore* negative_dense_ = nullptr;
  bool reference_insert_path_ = false;
};

}  // namespace dd

#endif  // DDSKETCH_CORE_DDSKETCH_H_
