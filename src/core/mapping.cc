#include "core/mapping.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "util/bits.h"

namespace dd {
namespace {

// Polynomial coefficients for the interpolated mappings (shared with the
// insert fast path as dd::log2poly, mapping.h). Each P maps [0, 1] -> [0, 1]
// monotonically with P(0)=0, P(1)=1 and approximates log2(1+u). The
// bucket-count overhead factor of an approximation is
//   c = max_{u in [0,1)} 1 / ((1+u) * ln2 * P'(u)),
// i.e. how much the worst-case derivative of true log2 w.r.t. the
// approximate log exceeds 1. The coefficients maximize min (1+u) P'(u)
// subject to P(1)=1 within their degree class:
//
//   linear     P(u) = u                          min (1+u)P'(u) = 1
//   quadratic  P(u) = (4u - u^2) / 3             min = 4/3
//   cubic      P(u) = (6u^3 - 21u^2 + 50u) / 35  min = 10/7
//
// giving overheads c = 1/ln2 (~1.4427), 3/(4 ln2) (~1.0820) and
// 7/(10 ln2) (~1.0096) respectively.
constexpr double kLn2 = 0.6931471805599453;

double SafeMaxIndexable(double gamma) {
  return std::numeric_limits<double>::max() / (2.0 * gamma);
}

double SafeMinIndexable() {
  // 4x the smallest normal double: keeps LowerBound()/Value() of every
  // valid index inside the normal range where the significand bit tricks
  // of the interpolated mappings are exact.
  return std::numeric_limits<double>::min() * 4.0;
}

double Gamma(double alpha) { return (1.0 + alpha) / (1.0 - alpha); }

}  // namespace

const char* MappingTypeToString(MappingType type) {
  switch (type) {
    case MappingType::kLogarithmic:
      return "log";
    case MappingType::kLinearInterpolated:
      return "linear";
    case MappingType::kQuadraticInterpolated:
      return "quadratic";
    case MappingType::kCubicInterpolated:
      return "cubic";
  }
  return "unknown";
}

IndexMapping::IndexMapping(MappingType type, double relative_accuracy,
                           double multiplier, double min_indexable,
                           double max_indexable) noexcept
    : params_{type, multiplier, min_indexable, max_indexable},
      relative_accuracy_(relative_accuracy),
      gamma_(Gamma(relative_accuracy)) {}

namespace {

/// index = ceil(log_gamma(x)): the paper's memory-optimal mapping
/// (Algorithm 1). Bucket i covers (gamma^(i-1), gamma^i].
class LogarithmicMapping final : public IndexMapping {
 public:
  explicit LogarithmicMapping(double alpha)
      : LogarithmicMapping(alpha, std::log1p(2.0 * alpha / (1.0 - alpha))) {}

  double LowerBound(int32_t index) const noexcept override {
    return std::exp((static_cast<double>(index) - 1.0) * log_gamma_);
  }

  std::unique_ptr<IndexMapping> Clone() const override {
    return std::make_unique<LogarithmicMapping>(relative_accuracy());
  }

 private:
  // Delegation computes log(gamma) once: it both seeds the insert-path
  // multiplier (its reciprocal) and stays around for LowerBound.
  LogarithmicMapping(double alpha, double log_gamma)
      : IndexMapping(MappingType::kLogarithmic, alpha,
                     /*multiplier=*/1.0 / log_gamma, SafeMinIndexable(),
                     SafeMaxIndexable(Gamma(alpha))),
        log_gamma_(log_gamma) {}

  double log_gamma_;
};

/// Common machinery for the "fast" mappings: an approximate log2
/// l(x) = exponent(x) + P(significand(x) - 1), evaluated with pure bit
/// extraction plus a small polynomial, and a multiplier inflated by the
/// overhead factor c so the alpha guarantee still holds. The forward
/// direction (Index) lives entirely in FastIndex (mapping.h); subclasses
/// only supply the inverse polynomial for the query side.
template <typename Derived>
class InterpolatedMapping : public IndexMapping {
 public:
  InterpolatedMapping(MappingType type, double alpha, double overhead)
      : IndexMapping(type, alpha,
                     /*multiplier=*/overhead / std::log2(Gamma(alpha)),
                     SafeMinIndexable(), SafeMaxIndexable(Gamma(alpha))) {}

  double LowerBound(int32_t index) const noexcept override {
    // Bucket i covers approx-log2 values in ((i-1)/m, i/m].
    const double t =
        (static_cast<double>(index) - 1.0) / fast_params().multiplier;
    const double e = std::floor(t);
    const double u = Derived::PolyInverse(t - e);
    return std::ldexp(1.0 + u, static_cast<int>(e));
  }

  std::unique_ptr<IndexMapping> Clone() const override {
    return std::make_unique<Derived>(relative_accuracy());
  }
};

class LinearInterpolatedMapping final
    : public InterpolatedMapping<LinearInterpolatedMapping> {
 public:
  explicit LinearInterpolatedMapping(double alpha)
      : InterpolatedMapping(MappingType::kLinearInterpolated, alpha,
                            /*overhead=*/1.0 / kLn2) {}

  static double PolyInverse(double w) noexcept { return w; }
};

class QuadraticInterpolatedMapping final
    : public InterpolatedMapping<QuadraticInterpolatedMapping> {
 public:
  explicit QuadraticInterpolatedMapping(double alpha)
      : InterpolatedMapping(MappingType::kQuadraticInterpolated, alpha,
                            /*overhead=*/3.0 / (4.0 * kLn2)) {}

  // Solve (4u - u^2)/3 = w for u in [0,1]: u^2 - 4u + 3w = 0.
  static double PolyInverse(double w) noexcept {
    return 2.0 - std::sqrt(4.0 - 3.0 * w);
  }
};

class CubicInterpolatedMapping final
    : public InterpolatedMapping<CubicInterpolatedMapping> {
 public:
  explicit CubicInterpolatedMapping(double alpha)
      : InterpolatedMapping(MappingType::kCubicInterpolated, alpha,
                            /*overhead=*/7.0 / (10.0 * kLn2)) {}

  // Inverts the monotone cubic on [0,1] by Newton iteration. P' >= 26/35 on
  // [0,1], so convergence is quadratic from any interior start; this is only
  // used on the query path (LowerBound/Value), never on insertion.
  static double PolyInverse(double w) noexcept {
    double u = w;  // P is close to the identity; w is an excellent start
    for (int iter = 0; iter < 32; ++iter) {
      const double f = log2poly::Cubic(u) - w;
      const double fp = (3.0 * log2poly::kCubicA * u + 2.0 * log2poly::kCubicB) *
                            u +
                        log2poly::kCubicC;
      const double step = f / fp;
      u -= step;
      if (std::abs(step) < 1e-16) break;
    }
    if (u < 0.0) u = 0.0;
    if (u > 1.0) u = 1.0;
    return u;
  }
};

}  // namespace

Result<std::unique_ptr<IndexMapping>> IndexMapping::Create(
    MappingType type, double relative_accuracy) {
  if (!(relative_accuracy > 0.0) || !(relative_accuracy < 1.0)) {
    return Status::InvalidArgument(
        "relative_accuracy must be in (0, 1), got " +
        std::to_string(relative_accuracy));
  }
  switch (type) {
    case MappingType::kLogarithmic:
      return std::unique_ptr<IndexMapping>(
          std::make_unique<LogarithmicMapping>(relative_accuracy));
    case MappingType::kLinearInterpolated:
      return std::unique_ptr<IndexMapping>(
          std::make_unique<LinearInterpolatedMapping>(relative_accuracy));
    case MappingType::kQuadraticInterpolated:
      return std::unique_ptr<IndexMapping>(
          std::make_unique<QuadraticInterpolatedMapping>(relative_accuracy));
    case MappingType::kCubicInterpolated:
      return std::unique_ptr<IndexMapping>(
          std::make_unique<CubicInterpolatedMapping>(relative_accuracy));
  }
  return Status::InvalidArgument("unknown mapping type");
}

}  // namespace dd
