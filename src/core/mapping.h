// Index mappings: the bucket-boundary schemes of DDSketch (paper §2.1, §4).
//
// A mapping assigns every positive value x to an integer bucket index such
// that all values sharing a bucket are within a factor gamma = (1+a)/(1-a)
// of each other, which is exactly what is needed for the bucket midpoint
// (harmonic midpoint, see Value()) to be an a-accurate representative
// (Lemma 2 of the paper).
//
// Four mappings are provided:
//  * kLogarithmic            — index = ceil(log_gamma(x)); memory-optimal
//                              (fewest buckets for a given accuracy), but
//                              each insertion computes a log.
//  * kLinearInterpolated     — extracts the IEEE-754 exponent (a free
//  * kQuadraticInterpolated    log2) and approximates log2 within the
//  * kCubicInterpolated        [1,2) significand range with a degree-1/2/3
//                              polynomial. Faster to evaluate; needs more
//                              buckets (~44% / ~8.2% / ~1.0% more) to keep
//                              the same guarantee. The paper's "DDSketch
//                              (fast)" uses these (§4: "mappings [that]
//                              make the most of the binary representation
//                              of floating-point values").
//
// Polynomial overhead factors (derivations in mapping.cc): a mapping whose
// approximate log l(x) satisfies d(log2 x)/d(l) <= c implies the bucket
// count is c times that of an exact log2 mapping. Linear: c = 1/ln2.
// Quadratic: c = 3/(4 ln2). Cubic: c = 7/(10 ln2).

#ifndef DDSKETCH_CORE_MAPPING_H_
#define DDSKETCH_CORE_MAPPING_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace dd {

/// Identifies a mapping scheme; stable values used in serialization.
enum class MappingType : uint8_t {
  kLogarithmic = 0,
  kLinearInterpolated = 1,
  kQuadraticInterpolated = 2,
  kCubicInterpolated = 3,
};

/// Returns a stable human-readable name ("log", "linear", ...).
const char* MappingTypeToString(MappingType type);

/// Maps positive doubles to integer bucket indices and back, guaranteeing
/// that Value(Index(x)) is within relative_accuracy() of x for any x in
/// [min_indexable_value(), max_indexable_value()].
///
/// Implementations are immutable and thread-safe after construction.
class IndexMapping {
 public:
  virtual ~IndexMapping() = default;

  /// The bucket index of positive value x.
  /// Precondition: min_indexable_value() <= x <= max_indexable_value().
  virtual int32_t Index(double value) const noexcept = 0;

  /// The infimum of the values mapped to `index` (bucket i covers
  /// (LowerBound(i), LowerBound(i+1)]).
  virtual double LowerBound(int32_t index) const noexcept = 0;

  /// The representative value of bucket `index`: the harmonic midpoint
  /// 2*a*b/(a+b) of the bucket boundaries (a, b], which is the point
  /// minimizing the worst-case relative error over the bucket. Equals the
  /// paper's 2*gamma^i/(gamma+1) for the logarithmic mapping.
  double Value(int32_t index) const noexcept {
    // Computed in ratio form lo * 2r/(1+r), r = hi/lo (~gamma), so that
    // neither lo*hi nor lo+hi can underflow or overflow at the extremes of
    // the double range.
    const double lo = LowerBound(index);
    const double ratio = LowerBound(index + 1) / lo;
    return lo * (2.0 * ratio / (1.0 + ratio));
  }

  /// The accuracy parameter alpha this mapping guarantees.
  double relative_accuracy() const noexcept { return relative_accuracy_; }

  /// gamma = (1 + alpha) / (1 - alpha): max ratio between two values in one
  /// bucket. Two sketches are mergeable iff their gammas (and mapping types)
  /// match.
  double gamma() const noexcept { return gamma_; }

  /// Smallest positive value with a valid index (values below go to the
  /// sketch's zero bucket). Chosen so indices stay within int32 and the
  /// significand bit tricks stay in the normal range.
  double min_indexable_value() const noexcept { return min_indexable_; }
  /// Largest value with a valid index.
  double max_indexable_value() const noexcept { return max_indexable_; }

  /// The scheme identifier (serialization tag).
  virtual MappingType type() const noexcept = 0;

  /// Deep copy.
  virtual std::unique_ptr<IndexMapping> Clone() const = 0;

  /// True iff `other` produces identical indices (same type and gamma).
  bool IsCompatibleWith(const IndexMapping& other) const noexcept {
    return type() == other.type() && gamma_ == other.gamma_;
  }

  /// Factory. Fails with InvalidArgument unless 0 < relative_accuracy < 1.
  static Result<std::unique_ptr<IndexMapping>> Create(
      MappingType type, double relative_accuracy);

 protected:
  IndexMapping(double relative_accuracy, double min_indexable,
               double max_indexable) noexcept;

 private:
  double relative_accuracy_;
  double gamma_;
  double min_indexable_;
  double max_indexable_;
};

}  // namespace dd

#endif  // DDSKETCH_CORE_MAPPING_H_
