// Index mappings: the bucket-boundary schemes of DDSketch (paper §2.1, §4).
//
// A mapping assigns every positive value x to an integer bucket index such
// that all values sharing a bucket are within a factor gamma = (1+a)/(1-a)
// of each other, which is exactly what is needed for the bucket midpoint
// (harmonic midpoint, see Value()) to be an a-accurate representative
// (Lemma 2 of the paper).
//
// Four mappings are provided:
//  * kLogarithmic            — index = ceil(log_gamma(x)); memory-optimal
//                              (fewest buckets for a given accuracy), but
//                              each insertion computes a log.
//  * kLinearInterpolated     — extracts the IEEE-754 exponent (a free
//  * kQuadraticInterpolated    log2) and approximates log2 within the
//  * kCubicInterpolated        [1,2) significand range with a degree-1/2/3
//                              polynomial. Faster to evaluate; needs more
//                              buckets (~44% / ~8.2% / ~1.0% more) to keep
//                              the same guarantee. The paper's "DDSketch
//                              (fast)" uses these (§4: "mappings [that]
//                              make the most of the binary representation
//                              of floating-point values").
//
// Polynomial overhead factors (derivations in mapping.cc): a mapping whose
// approximate log l(x) satisfies d(log2 x)/d(l) <= c implies the bucket
// count is c times that of an exact log2 mapping. Linear: c = 1/ln2.
// Quadratic: c = 3/(4 ln2). Cubic: c = 7/(10 ln2).
//
// Index() is deliberately NON-virtual: every scheme reduces to the same
// shape — scale an (approximate) logarithm by a precomputed multiplier and
// take the ceiling — so the whole insert-side contract of a mapping is a
// four-field POD (FastIndexParams) plus one inline enum switch (FastIndex).
// DDSketch snapshots the POD at construction and indexes values with zero
// virtual dispatch; the polymorphic interface only covers the query side
// (LowerBound) and lifecycle (Clone).

#ifndef DDSKETCH_CORE_MAPPING_H_
#define DDSKETCH_CORE_MAPPING_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "util/bits.h"
#include "util/status.h"

namespace dd {

/// Identifies a mapping scheme; stable values used in serialization.
enum class MappingType : uint8_t {
  kLogarithmic = 0,
  kLinearInterpolated = 1,
  kQuadraticInterpolated = 2,
  kCubicInterpolated = 3,
};

/// Returns a stable human-readable name ("log", "linear", ...).
const char* MappingTypeToString(MappingType type);

/// Polynomial approximations of log2(1+u) on [0,1] used by the
/// interpolated mappings; each maps [0,1] -> [0,1] monotonically with
/// P(0)=0, P(1)=1 (coefficient derivations in mapping.cc). Shared between
/// the fast insert path and the mappings' own query-side inverses so the
/// two can never disagree.
namespace log2poly {
inline constexpr double kCubicA = 6.0 / 35.0;
inline constexpr double kCubicB = -3.0 / 5.0;
inline constexpr double kCubicC = 10.0 / 7.0;

inline double Linear(double u) noexcept { return u; }
inline double Quadratic(double u) noexcept { return (4.0 - u) * u / 3.0; }
inline double Cubic(double u) noexcept {
  return ((kCubicA * u + kCubicB) * u + kCubicC) * u;
}
}  // namespace log2poly

/// Everything the insert path needs from a mapping, as plain data: an enum
/// plus three doubles reproduce Index() exactly with zero virtual calls.
/// The bounds ride along so DDSketch::Add can hoist its zero-bucket and
/// clamp comparisons out of the pointer chase entirely.
struct FastIndexParams {
  MappingType type = MappingType::kLogarithmic;
  /// Scales the (approximate) log to a bucket index. Natural-log scale
  /// (1/ln gamma) for kLogarithmic; log2 scale inflated by the polynomial
  /// overhead factor (c/log2 gamma) for the interpolated schemes.
  double multiplier = 0.0;
  double min_indexable = 0.0;
  double max_indexable = 0.0;
};

/// The bucket index of positive value x when the mapping type is known at
/// compile time: the innermost form, used by the batch insert loops so
/// the scheme dispatch happens once per batch instead of once per value.
/// Precondition: min_indexable <= x <= max_indexable.
template <MappingType kType>
inline int32_t FastIndexT(double multiplier, double value) noexcept {
  double approx_log;
  if constexpr (kType == MappingType::kLogarithmic) {
    approx_log = std::log(value);
  } else {
    const double u = GetSignificandPlusOne(value) - 1.0;
    double poly;
    if constexpr (kType == MappingType::kLinearInterpolated) {
      poly = log2poly::Linear(u);
    } else if constexpr (kType == MappingType::kQuadraticInterpolated) {
      poly = log2poly::Quadratic(u);
    } else {
      poly = log2poly::Cubic(u);
    }
    approx_log = static_cast<double>(GetExponent(value)) + poly;
  }
  return static_cast<int32_t>(std::ceil(approx_log * multiplier));
}

/// The bucket index of positive value x under `params`: the one shared
/// implementation of every mapping's Index().
/// Precondition: min_indexable <= x <= max_indexable.
inline int32_t FastIndex(const FastIndexParams& params, double value) noexcept {
  switch (params.type) {
    case MappingType::kLinearInterpolated:
      return FastIndexT<MappingType::kLinearInterpolated>(params.multiplier,
                                                          value);
    case MappingType::kQuadraticInterpolated:
      return FastIndexT<MappingType::kQuadraticInterpolated>(params.multiplier,
                                                             value);
    case MappingType::kCubicInterpolated:
      return FastIndexT<MappingType::kCubicInterpolated>(params.multiplier,
                                                         value);
    case MappingType::kLogarithmic:
    default:
      return FastIndexT<MappingType::kLogarithmic>(params.multiplier, value);
  }
}

/// Maps positive doubles to integer bucket indices and back, guaranteeing
/// that Value(Index(x)) is within relative_accuracy() of x for any x in
/// [min_indexable_value(), max_indexable_value()].
///
/// Implementations are immutable and thread-safe after construction.
class IndexMapping {
 public:
  virtual ~IndexMapping() = default;

  /// The bucket index of positive value x. Non-virtual: one enum switch
  /// over precomputed constants (see FastIndex above).
  /// Precondition: min_indexable_value() <= x <= max_indexable_value().
  int32_t Index(double value) const noexcept {
    return FastIndex(params_, value);
  }

  /// The insert-path snapshot of this mapping (see FastIndexParams).
  const FastIndexParams& fast_params() const noexcept { return params_; }

  /// The infimum of the values mapped to `index` (bucket i covers
  /// (LowerBound(i), LowerBound(i+1)]).
  virtual double LowerBound(int32_t index) const noexcept = 0;

  /// The representative value of bucket `index`: the harmonic midpoint
  /// 2*a*b/(a+b) of the bucket boundaries (a, b], which is the point
  /// minimizing the worst-case relative error over the bucket. Equals the
  /// paper's 2*gamma^i/(gamma+1) for the logarithmic mapping.
  double Value(int32_t index) const noexcept {
    // Computed in ratio form lo * 2r/(1+r), r = hi/lo (~gamma), so that
    // neither lo*hi nor lo+hi can underflow or overflow at the extremes of
    // the double range.
    const double lo = LowerBound(index);
    const double ratio = LowerBound(index + 1) / lo;
    return lo * (2.0 * ratio / (1.0 + ratio));
  }

  /// The accuracy parameter alpha this mapping guarantees.
  double relative_accuracy() const noexcept { return relative_accuracy_; }

  /// gamma = (1 + alpha) / (1 - alpha): max ratio between two values in one
  /// bucket. Two sketches are mergeable iff their gammas (and mapping types)
  /// match.
  double gamma() const noexcept { return gamma_; }

  /// Smallest positive value with a valid index (values below go to the
  /// sketch's zero bucket). Chosen so indices stay within int32 and the
  /// significand bit tricks stay in the normal range.
  double min_indexable_value() const noexcept { return params_.min_indexable; }
  /// Largest value with a valid index.
  double max_indexable_value() const noexcept { return params_.max_indexable; }

  /// The scheme identifier (serialization tag).
  MappingType type() const noexcept { return params_.type; }

  /// Deep copy.
  virtual std::unique_ptr<IndexMapping> Clone() const = 0;

  /// True iff `other` produces identical indices (same type and gamma).
  bool IsCompatibleWith(const IndexMapping& other) const noexcept {
    return type() == other.type() && gamma_ == other.gamma_;
  }

  /// Factory. Fails with InvalidArgument unless 0 < relative_accuracy < 1.
  static Result<std::unique_ptr<IndexMapping>> Create(
      MappingType type, double relative_accuracy);

 protected:
  IndexMapping(MappingType type, double relative_accuracy, double multiplier,
               double min_indexable, double max_indexable) noexcept;

 private:
  FastIndexParams params_;
  double relative_accuracy_;
  double gamma_;
};

}  // namespace dd

#endif  // DDSKETCH_CORE_MAPPING_H_
