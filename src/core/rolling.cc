#include "core/rolling.h"

#include <string>

namespace dd {

RollingDDSketch::RollingDDSketch(std::vector<DDSketch> ring,
                                 DDSketch empty_template)
    : ring_(std::move(ring)),
      empty_template_(std::move(empty_template)),
      window_cache_(empty_template_) {}

Result<RollingDDSketch> RollingDDSketch::Create(const DDSketchConfig& config,
                                                int num_intervals) {
  if (num_intervals < 1 || num_intervals > 1 << 20) {
    return Status::InvalidArgument("num_intervals must be in [1, 2^20], got " +
                                   std::to_string(num_intervals));
  }
  auto prototype = DDSketch::Create(config);
  if (!prototype.ok()) return prototype.status();
  std::vector<DDSketch> ring;
  ring.reserve(static_cast<size_t>(num_intervals));
  for (int i = 0; i < num_intervals; ++i) {
    ring.push_back(prototype.value());  // deep copies of the empty sketch
  }
  return RollingDDSketch(std::move(ring), std::move(prototype).value());
}

void RollingDDSketch::Advance() noexcept {
  ++advances_;
  window_dirty_ = true;
  current_ = (current_ + 1) % ring_.size();
  // The slot re-entering service held the interval that just left the
  // window; Clear keeps its allocated bucket array for reuse.
  ring_[current_].Clear();
}

const DDSketch& RollingDDSketch::Window() const noexcept {
  if (window_dirty_) {
    window_cache_.Clear();
    for (const DDSketch& interval : ring_) {
      // Same config by construction; MergeFrom cannot fail.
      (void)window_cache_.MergeFrom(interval);
    }
    window_dirty_ = false;
    ++window_rebuilds_;
  }
  return window_cache_;
}

uint64_t RollingDDSketch::count() const noexcept {
  uint64_t total = 0;
  for (const DDSketch& interval : ring_) total += interval.count();
  return total;
}

size_t RollingDDSketch::size_in_bytes() const noexcept {
  size_t total = sizeof(*this) + window_cache_.size_in_bytes();
  for (const DDSketch& interval : ring_) total += interval.size_in_bytes();
  return total;
}

}  // namespace dd
