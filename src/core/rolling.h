// RollingDDSketch: quantiles over a sliding window of time intervals.
//
// The paper's monitoring pipeline aggregates per-interval sketches into
// rollups (§1: "rolling up the sums and counts to graph ... over much
// larger time periods"). This helper packages the pattern: a ring of K
// per-interval DDSketches; Advance() closes the current interval and
// evicts the oldest; queries answer over the union of live intervals.
// Because DDSketch is fully mergeable, the windowed answers are exactly
// what a single sketch over the window's values would produce.

#ifndef DDSKETCH_CORE_ROLLING_H_
#define DDSKETCH_CORE_ROLLING_H_

#include <cstdint>
#include <vector>

#include "core/ddsketch.h"
#include "util/status.h"

namespace dd {

/// A fixed-length ring of interval sketches with window queries.
/// Not thread-safe (like DDSketch itself).
class RollingDDSketch {
 public:
  /// `num_intervals` is the window length in Advance() steps.
  static Result<RollingDDSketch> Create(const DDSketchConfig& config,
                                        int num_intervals);

  /// Adds a value to the current interval.
  void Add(double value) noexcept {
    window_dirty_ = true;
    Current().Add(value);
  }
  void Add(double value, uint64_t count) noexcept {
    window_dirty_ = true;
    Current().Add(value, count);
  }

  /// Merges a remote per-interval sketch into the current interval (e.g. a
  /// worker's serialized sketch for this interval).
  Status MergeIntoCurrent(const DDSketch& sketch) {
    Status status = Current().MergeFrom(sketch);
    if (status.ok()) window_dirty_ = true;
    return status;
  }

  /// Closes the current interval and opens a fresh one, evicting the
  /// interval that left the window.
  void Advance() noexcept;

  /// Merged sketch over all live intervals; answers are identical to a
  /// single sketch over the window's values (full mergeability).
  DDSketch WindowSketch() const { return Window(); }

  /// Window quantile (NaN if the window is empty).
  double QuantileOrNaN(double q) const noexcept {
    return Window().QuantileOrNaN(q);
  }

  /// Window CDF (NaN if the window is empty).
  double CdfOrNaN(double value) const noexcept {
    return Window().CdfOrNaN(value);
  }

  /// Total count across the window.
  uint64_t count() const noexcept;
  bool empty() const noexcept { return count() == 0; }

  /// Number of Advance() calls so far.
  uint64_t intervals_advanced() const noexcept { return advances_; }
  /// Window length in intervals.
  int num_intervals() const noexcept {
    return static_cast<int>(ring_.size());
  }
  /// Count in the interval currently receiving adds.
  uint64_t current_interval_count() const noexcept {
    return ring_[current_].count();
  }

  /// Memory across all interval sketches.
  size_t size_in_bytes() const noexcept;

  /// How many times the window cache was rebuilt (a full K-way merge of
  /// the ring). Queries between mutations share one rebuild — the
  /// invariant rolling_test pins: a dashboard polling 5 quantiles pays
  /// one merge, not 5.
  uint64_t window_rebuilds() const noexcept { return window_rebuilds_; }

 private:
  RollingDDSketch(std::vector<DDSketch> ring, DDSketch empty_template);

  DDSketch& Current() noexcept { return ring_[current_]; }

  /// The cached window merge, rebuilt lazily after a mutation. Clear()
  /// keeps the cache's bucket allocation across rebuilds, so steady
  /// state allocates nothing.
  const DDSketch& Window() const noexcept;

  std::vector<DDSketch> ring_;
  DDSketch empty_template_;  // pristine copy used to reset evicted slots
  mutable DDSketch window_cache_;
  mutable bool window_dirty_ = true;
  mutable uint64_t window_rebuilds_ = 0;
  size_t current_ = 0;
  uint64_t advances_ = 0;
};

}  // namespace dd

#endif  // DDSKETCH_CORE_ROLLING_H_
