// Binary wire format for DDSketch.
//
// Layout (all multi-byte integers are LEB128 varints; doubles are raw
// little-endian IEEE-754):
//
//   magic      4 bytes  "DDSK"
//   version    1 byte   0x01
//   mapping    1 byte   MappingType
//   alpha      8 bytes  relative accuracy (double)
//   store      1 byte   StoreType (of the positive store)
//   max_bkts   varint   size bound (0 = unbounded)
//   zero/rej/clamped counts   3 varints
//   sum, min, max             3 doubles
//   positive store block, negative store block:
//       n_entries varint
//       first index   signed varint (zigzag)
//       then per entry: count varint, then index delta to next (varint,
//       entries ascending so deltas are positive)
//
// The decoder reconstructs by re-adding buckets into freshly-created
// stores; since entries are already collapsed, this is lossless.

#include <cstring>

#include "core/ddsketch.h"
#include "util/varint.h"

namespace dd {
namespace {

constexpr char kMagic[4] = {'D', 'D', 'S', 'K'};
constexpr uint8_t kVersion = 1;

void EncodeStore(const Store& store, std::string* out) {
  PutVarint64(out, store.num_buckets());
  bool first = true;
  int64_t prev_index = 0;
  store.ForEach([&](int32_t index, uint64_t count) {
    if (first) {
      PutVarintSigned64(out, index);
      first = false;
    } else {
      PutVarint64(out, static_cast<uint64_t>(index - prev_index));
    }
    PutVarint64(out, count);
    prev_index = index;
  });
}

Status DecodeStore(Slice* in, Store* store) {
  uint64_t n_entries = 0;
  DD_RETURN_IF_ERROR(in->GetVarint64(&n_entries));
  int64_t index = 0;
  for (uint64_t i = 0; i < n_entries; ++i) {
    if (i == 0) {
      DD_RETURN_IF_ERROR(in->GetVarintSigned64(&index));
    } else {
      uint64_t delta = 0;
      DD_RETURN_IF_ERROR(in->GetVarint64(&delta));
      if (delta == 0) return Status::Corruption("non-ascending store entry");
      index += static_cast<int64_t>(delta);
    }
    if (index < INT32_MIN || index > INT32_MAX) {
      return Status::Corruption("store index out of int32 range");
    }
    uint64_t count = 0;
    DD_RETURN_IF_ERROR(in->GetVarint64(&count));
    if (count == 0) return Status::Corruption("zero-count store entry");
    store->Add(static_cast<int32_t>(index), count);
  }
  return Status::OK();
}

}  // namespace

/// Befriended by DDSketch; owns the wire format.
class DDSketchCodec {
 public:
  static std::string Encode(const DDSketch& sketch) {
    std::string out;
    out.reserve(64 + 4 * sketch.num_buckets());
    out.append(kMagic, sizeof(kMagic));
    out.push_back(static_cast<char>(kVersion));
    out.push_back(static_cast<char>(sketch.mapping_->type()));
    PutFixedDouble(&out, sketch.mapping_->relative_accuracy());
    out.push_back(static_cast<char>(sketch.positive_->type()));
    PutVarint64(&out,
                static_cast<uint64_t>(sketch.positive_->max_num_buckets()));
    PutVarint64(&out, sketch.zero_count_);
    PutVarint64(&out, sketch.rejected_count_);
    PutVarint64(&out, sketch.clamped_count_);
    PutFixedDouble(&out, sketch.sum_);
    PutFixedDouble(&out, sketch.min_);
    PutFixedDouble(&out, sketch.max_);
    EncodeStore(*sketch.positive_, &out);
    EncodeStore(*sketch.negative_, &out);
    return out;
  }

  static Result<DDSketch> Decode(std::string_view payload) {
    Slice in(payload);
    std::string_view magic;
    DD_RETURN_IF_ERROR(in.GetBytes(sizeof(kMagic), &magic));
    if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
      return Status::Corruption("bad magic; not a DDSketch payload");
    }
    std::string_view header;
    DD_RETURN_IF_ERROR(in.GetBytes(2, &header));
    if (static_cast<uint8_t>(header[0]) != kVersion) {
      return Status::Corruption("unsupported DDSketch version");
    }
    const uint8_t mapping_tag = static_cast<uint8_t>(header[1]);
    if (mapping_tag > static_cast<uint8_t>(MappingType::kCubicInterpolated)) {
      return Status::Corruption("unknown mapping type tag");
    }
    double alpha = 0;
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&alpha));
    if (!(alpha > 0.0) || !(alpha < 1.0)) {
      return Status::Corruption("relative accuracy out of (0, 1)");
    }
    std::string_view store_tag_bytes;
    DD_RETURN_IF_ERROR(in.GetBytes(1, &store_tag_bytes));
    const uint8_t store_tag = static_cast<uint8_t>(store_tag_bytes[0]);
    if (store_tag > static_cast<uint8_t>(StoreType::kSparse)) {
      return Status::Corruption("unknown store type tag");
    }
    uint64_t max_buckets = 0;
    DD_RETURN_IF_ERROR(in.GetVarint64(&max_buckets));
    if (max_buckets > INT32_MAX) {
      return Status::Corruption("max_num_buckets out of range");
    }

    DDSketchConfig config;
    config.relative_accuracy = alpha;
    config.mapping = static_cast<MappingType>(mapping_tag);
    config.store = static_cast<StoreType>(store_tag);
    config.max_num_buckets = static_cast<int32_t>(max_buckets);
    auto sketch_result = DDSketch::Create(config);
    if (!sketch_result.ok()) {
      return Status::Corruption("invalid sketch parameters: " +
                                sketch_result.status().message());
    }
    DDSketch sketch = std::move(sketch_result).value();

    DD_RETURN_IF_ERROR(in.GetVarint64(&sketch.zero_count_));
    DD_RETURN_IF_ERROR(in.GetVarint64(&sketch.rejected_count_));
    DD_RETURN_IF_ERROR(in.GetVarint64(&sketch.clamped_count_));
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.sum_));
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.min_));
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.max_));
    DD_RETURN_IF_ERROR(DecodeStore(&in, sketch.positive_.get()));
    DD_RETURN_IF_ERROR(DecodeStore(&in, sketch.negative_.get()));
    if (!in.empty()) {
      return Status::Corruption("trailing bytes after sketch payload");
    }
    return sketch;
  }
};

std::string DDSketch::Serialize() const { return DDSketchCodec::Encode(*this); }

Result<DDSketch> DDSketch::Deserialize(std::string_view payload) {
  return DDSketchCodec::Decode(payload);
}

}  // namespace dd
