#include "core/store.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

namespace dd {
namespace {

// Dense stores grow in chunks of this many counters to amortize reallocation.
constexpr size_t kGrowthChunk = 64;

size_t RoundUpToChunk(size_t n) {
  return (n + kGrowthChunk - 1) / kGrowthChunk * kGrowthChunk;
}

}  // namespace

const char* StoreTypeToString(StoreType type) {
  switch (type) {
    case StoreType::kUnboundedDense:
      return "dense";
    case StoreType::kCollapsingLowestDense:
      return "collapsing_lowest";
    case StoreType::kCollapsingHighestDense:
      return "collapsing_highest";
    case StoreType::kSparse:
      return "sparse";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Store (generic fallbacks)
// ---------------------------------------------------------------------------

bool Store::ForEachDescending(BucketVisitor fn) const {
  // Collect ascending, then walk from the top. Dense and sparse stores
  // override with direct reverse scans; this fallback only serves
  // third-party Store implementations.
  std::vector<std::pair<int32_t, uint64_t>> buckets;
  buckets.reserve(num_buckets());
  ForEach([&](int32_t index, uint64_t count) {
    buckets.emplace_back(index, count);
  });
  for (auto it = buckets.rbegin(); it != buckets.rend(); ++it) {
    if (!fn(it->first, it->second)) return false;
  }
  return true;
}

void Store::MergeFrom(const Store& other) {
  other.ForEach([this](int32_t index, uint64_t count) { Add(index, count); });
}

int32_t Store::KeyAtRank(double rank) const noexcept {
  assert(!empty());
  uint64_t cum = 0;
  int32_t result = 0;
  bool found = false;
  // Early-terminating walk: no bucket past the answering one is visited.
  ForEach([&](int32_t index, uint64_t count) -> bool {
    cum += count;
    if (static_cast<double>(cum) > rank) {
      result = index;
      found = true;
      return false;
    }
    return true;
  });
  if (!found) result = max_index();
  return result;
}

int32_t Store::KeyAtRankDescending(double rank) const noexcept {
  assert(!empty());
  uint64_t cum = 0;
  int32_t result = min_index();
  ForEachDescending([&](int32_t index, uint64_t count) -> bool {
    cum += count;
    if (static_cast<double>(cum) > rank) {
      result = index;
      return false;
    }
    return true;
  });
  return result;
}

uint64_t Store::CumulativeCount(int32_t index) const noexcept {
  uint64_t cum = 0;
  ForEach([&](int32_t i, uint64_t count) -> bool {
    if (i > index) return false;  // ascending: nothing further can count
    cum += count;
    return true;
  });
  return cum;
}

Result<std::unique_ptr<Store>> Store::Create(StoreType type,
                                             int32_t max_num_buckets) {
  switch (type) {
    case StoreType::kUnboundedDense:
      return std::unique_ptr<Store>(std::make_unique<UnboundedDenseStore>());
    case StoreType::kCollapsingLowestDense:
      if (max_num_buckets < 1) {
        return Status::InvalidArgument(
            "collapsing store requires max_num_buckets >= 1, got " +
            std::to_string(max_num_buckets));
      }
      return std::unique_ptr<Store>(
          std::make_unique<CollapsingLowestDenseStore>(max_num_buckets));
    case StoreType::kCollapsingHighestDense:
      if (max_num_buckets < 1) {
        return Status::InvalidArgument(
            "collapsing store requires max_num_buckets >= 1, got " +
            std::to_string(max_num_buckets));
      }
      return std::unique_ptr<Store>(
          std::make_unique<CollapsingHighestDenseStore>(max_num_buckets));
    case StoreType::kSparse:
      if (max_num_buckets < 0) {
        return Status::InvalidArgument("max_num_buckets must be >= 0");
      }
      return std::unique_ptr<Store>(
          std::make_unique<SparseStore>(max_num_buckets));
  }
  return Status::InvalidArgument("unknown store type");
}

// ---------------------------------------------------------------------------
// DenseStore
// ---------------------------------------------------------------------------

void DenseStore::Extend(int32_t new_min, int32_t new_max) {
  assert(new_min <= new_max);
  if (counts_.empty()) {
    counts_.assign(
        RoundUpToChunk(static_cast<size_t>(new_max) - new_min + 1), 0);
    offset_ = new_min;
    return;
  }
  const int32_t cur_hi = offset_ + static_cast<int32_t>(counts_.size()) - 1;
  if (new_min >= offset_ && new_max <= cur_hi) return;  // already covered
  const int32_t lo = std::min(new_min, offset_);
  const int32_t hi = std::max(new_max, cur_hi);
  std::vector<uint64_t> fresh(
      RoundUpToChunk(static_cast<size_t>(hi) - lo + 1), 0);
  std::copy(counts_.begin(), counts_.end(),
            fresh.begin() + (offset_ - lo));
  counts_ = std::move(fresh);
  offset_ = lo;
}

void DenseStore::MergeFrom(const Store& other) {
  if (other.empty()) return;
  const auto* dense = dynamic_cast<const DenseStore*>(&other);
  if (dense != nullptr) {
    if (dense->has_collapsed_ && dense->type() == type()) {
      // The source's folded mass arrives at the source's fold bucket:
      // keep the Remove redirect active on the merged store. Only for a
      // source folding in the same direction — a mirror-type source's
      // fold bucket sits on the wrong side of our window, and adopting
      // it would redirect never-added indices into live buckets. When
      // both sides have folded the mass sits in two buckets; keep our
      // own fold bucket (where our mass is) as the best-effort target.
      if (!has_collapsed_) fold_index_ = dense->fold_index_;
      has_collapsed_ = true;
    }
    const int32_t lo = total_count_ == 0
                           ? dense->min_index_
                           : std::min(min_index_, dense->min_index_);
    const int32_t hi = total_count_ == 0
                           ? dense->max_index_
                           : std::max(max_index_, dense->max_index_);
    if (SpanFits(lo, hi)) {
      Extend(lo, hi);
      for (int32_t i = dense->min_index_; i <= dense->max_index_; ++i) {
        counts_[static_cast<size_t>(i - offset_)] +=
            dense->counts_[static_cast<size_t>(i - dense->offset_)];
      }
      total_count_ += dense->total_count_;
      min_index_ = lo;
      max_index_ = hi;
      return;
    }
  }
  Store::MergeFrom(other);
}

void DenseStore::Add(int32_t index, uint64_t count) {
  if (count == 0) return;
  const size_t slot = SlotFor(index);
  const int32_t effective = offset_ + static_cast<int32_t>(slot);
  if (total_count_ == 0) {
    min_index_ = max_index_ = effective;
  } else {
    min_index_ = std::min(min_index_, effective);
    max_index_ = std::max(max_index_, effective);
  }
  counts_[slot] += count;
  total_count_ += count;
}

uint64_t DenseStore::Remove(int32_t index, uint64_t count) {
  if (count == 0 || total_count_ == 0) return 0;
  // Mirror Add's collapse redirect: a value folded into the boundary
  // bucket must be removed from the boundary bucket, not from its
  // (empty, possibly never-allocated) original index.
  index = RemoveTarget(index);
  if (index < min_index_ || index > max_index_) return 0;
  uint64_t& bucket = counts_[static_cast<size_t>(index - offset_)];
  const uint64_t removed = std::min(bucket, count);
  bucket -= removed;
  total_count_ -= removed;
  if (removed > 0 && bucket == 0 && total_count_ > 0) {
    // Re-establish min/max by scanning inward from the stale extremes.
    while (counts_[static_cast<size_t>(min_index_ - offset_)] == 0) {
      ++min_index_;
    }
    while (counts_[static_cast<size_t>(max_index_ - offset_)] == 0) {
      --max_index_;
    }
  }
  return removed;
}

int32_t DenseStore::min_index() const noexcept {
  assert(total_count_ > 0);
  return min_index_;
}

int32_t DenseStore::max_index() const noexcept {
  assert(total_count_ > 0);
  return max_index_;
}

size_t DenseStore::num_buckets() const noexcept {
  if (total_count_ == 0) return 0;
  size_t n = 0;
  for (int32_t i = min_index_; i <= max_index_; ++i) {
    if (counts_[static_cast<size_t>(i - offset_)] > 0) ++n;
  }
  return n;
}

bool DenseStore::ForEach(BucketVisitor fn) const {
  if (total_count_ == 0) return true;
  for (int32_t i = min_index_; i <= max_index_; ++i) {
    const uint64_t c = counts_[static_cast<size_t>(i - offset_)];
    if (c > 0 && !fn(i, c)) return false;
  }
  return true;
}

bool DenseStore::ForEachDescending(BucketVisitor fn) const {
  if (total_count_ == 0) return true;
  for (int32_t i = max_index_; i >= min_index_; --i) {
    const uint64_t c = counts_[static_cast<size_t>(i - offset_)];
    if (c > 0 && !fn(i, c)) return false;
  }
  return true;
}

int32_t DenseStore::KeyAtRank(double rank) const noexcept {
  assert(total_count_ > 0);
  uint64_t cum = 0;
  for (int32_t i = min_index_; i <= max_index_; ++i) {
    cum += counts_[static_cast<size_t>(i - offset_)];
    if (static_cast<double>(cum) > rank) return i;
  }
  return max_index_;
}

int32_t DenseStore::KeyAtRankDescending(double rank) const noexcept {
  assert(total_count_ > 0);
  uint64_t cum = 0;
  for (int32_t i = max_index_; i >= min_index_; --i) {
    cum += counts_[static_cast<size_t>(i - offset_)];
    if (static_cast<double>(cum) > rank) return i;
  }
  return min_index_;
}

uint64_t DenseStore::CumulativeCount(int32_t index) const noexcept {
  if (total_count_ == 0 || index < min_index_) return 0;
  if (index >= max_index_) return total_count_;
  uint64_t cum = 0;
  for (int32_t i = min_index_; i <= index; ++i) {
    cum += counts_[static_cast<size_t>(i - offset_)];
  }
  return cum;
}

size_t DenseStore::size_in_bytes() const noexcept {
  return sizeof(*this) + counts_.capacity() * sizeof(uint64_t);
}

void DenseStore::Clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  min_index_ = max_index_ = 0;
  has_collapsed_ = false;  // a cleared store has lost nothing
}

// ---------------------------------------------------------------------------
// UnboundedDenseStore
// ---------------------------------------------------------------------------

size_t UnboundedDenseStore::SlotFor(int32_t index) {
  Extend(index, index);
  return static_cast<size_t>(index - offset_);
}

// ---------------------------------------------------------------------------
// CollapsingLowestDenseStore
// ---------------------------------------------------------------------------

size_t CollapsingLowestDenseStore::SlotFor(int32_t index) {
  if (total_count_ == 0) {
    Extend(index, index);
    return static_cast<size_t>(index - offset_);
  }
  const int32_t lo = std::min(index, min_index_);
  const int32_t hi = std::max(index, max_index_);
  if (hi - lo < max_num_buckets_) {
    Extend(lo, hi);
    return static_cast<size_t>(index - offset_);
  }
  has_collapsed_ = true;
  const int32_t new_min = hi - max_num_buckets_ + 1;
  fold_index_ = new_min;  // Remove's redirect target (see RemoveTarget)
  if (index <= new_min) {
    // Incoming value is at or below the fold boundary: redirect it there.
    Extend(new_min, hi);
    return static_cast<size_t>(new_min - offset_);
  }
  // Incoming value raises the ceiling: fold existing low buckets upward.
  // (The array may transiently address more than max_num_buckets_ slots
  // during the fold; capacity is retained but the live span is bounded.)
  Extend(std::min(min_index_, new_min), hi);
  uint64_t folded = 0;
  for (int32_t j = min_index_; j < new_min; ++j) {
    uint64_t& c = counts_[static_cast<size_t>(j - offset_)];
    folded += c;
    c = 0;
  }
  counts_[static_cast<size_t>(new_min - offset_)] += folded;
  if (folded > 0) {
    min_index_ = new_min;
  } else if (min_index_ < new_min) {
    min_index_ = new_min;  // stale extreme with zero count
  }
  return static_cast<size_t>(index - offset_);
}

// ---------------------------------------------------------------------------
// CollapsingHighestDenseStore
// ---------------------------------------------------------------------------

size_t CollapsingHighestDenseStore::SlotFor(int32_t index) {
  if (total_count_ == 0) {
    Extend(index, index);
    return static_cast<size_t>(index - offset_);
  }
  const int32_t lo = std::min(index, min_index_);
  const int32_t hi = std::max(index, max_index_);
  if (hi - lo < max_num_buckets_) {
    Extend(lo, hi);
    return static_cast<size_t>(index - offset_);
  }
  has_collapsed_ = true;
  const int32_t new_max = lo + max_num_buckets_ - 1;
  fold_index_ = new_max;
  if (index >= new_max) {
    Extend(lo, new_max);
    return static_cast<size_t>(new_max - offset_);
  }
  Extend(lo, std::max(max_index_, new_max));
  uint64_t folded = 0;
  for (int32_t j = max_index_; j > new_max; --j) {
    uint64_t& c = counts_[static_cast<size_t>(j - offset_)];
    folded += c;
    c = 0;
  }
  counts_[static_cast<size_t>(new_max - offset_)] += folded;
  if (folded > 0) {
    max_index_ = new_max;
  } else if (max_index_ > new_max) {
    max_index_ = new_max;
  }
  return static_cast<size_t>(index - offset_);
}

// ---------------------------------------------------------------------------
// SparseStore
// ---------------------------------------------------------------------------

void SparseStore::Add(int32_t index, uint64_t count) {
  if (count == 0) return;
  counts_[index] += count;
  total_count_ += count;
  CollapseIfNeeded();
}

void SparseStore::CollapseIfNeeded() {
  if (max_num_buckets_ <= 0) return;
  // Algorithm 3, literally: while too many non-empty buckets, merge the two
  // lowest into the higher of the two.
  while (static_cast<int32_t>(counts_.size()) > max_num_buckets_) {
    auto lowest = counts_.begin();
    auto second = std::next(lowest);
    second->second += lowest->second;
    counts_.erase(lowest);
  }
}

uint64_t SparseStore::Remove(int32_t index, uint64_t count) {
  if (count == 0) return 0;
  auto it = counts_.find(index);
  if (it == counts_.end()) return 0;
  const uint64_t removed = std::min(it->second, count);
  it->second -= removed;
  if (it->second == 0) counts_.erase(it);
  total_count_ -= removed;
  return removed;
}

int32_t SparseStore::min_index() const noexcept {
  assert(!counts_.empty());
  return counts_.begin()->first;
}

int32_t SparseStore::max_index() const noexcept {
  assert(!counts_.empty());
  return counts_.rbegin()->first;
}

bool SparseStore::ForEach(BucketVisitor fn) const {
  for (const auto& [index, count] : counts_) {
    if (!fn(index, count)) return false;
  }
  return true;
}

bool SparseStore::ForEachDescending(BucketVisitor fn) const {
  for (auto it = counts_.rbegin(); it != counts_.rend(); ++it) {
    if (!fn(it->first, it->second)) return false;
  }
  return true;
}

size_t SparseStore::size_in_bytes() const noexcept {
  // Red-black tree node: payload + parent/left/right pointers + color,
  // rounded to the typical libstdc++ _Rb_tree_node layout.
  constexpr size_t kNodeOverhead = 4 * sizeof(void*);
  return sizeof(*this) +
         counts_.size() *
             (sizeof(std::pair<const int32_t, uint64_t>) + kNodeOverhead);
}

void SparseStore::Clear() noexcept {
  counts_.clear();
  total_count_ = 0;
}

}  // namespace dd
