// Bucket stores: the counter containers behind DDSketch (paper §2.2).
//
// The paper discusses several storage strategies and we provide all of them:
//
//  * kUnboundedDense     — contiguous array of counters spanning
//                          [min_index, max_index]; fastest adds, grows
//                          without bound (the paper's "basic" sketch).
//  * kCollapsingLowestDense  — dense array capped at max_num_buckets
//                          *contiguous* buckets; when the span would exceed
//                          the cap, the lowest buckets are folded upward
//                          (Algorithm 3/4 of the paper, contiguous-range
//                          variant: guarantees max_index - min_index <
//                          max_num_buckets, which is the exact premise of
//                          Proposition 4).
//  * kCollapsingHighestDense — mirror image, folding the highest buckets
//                          downward; used for the negative-value sketch
//                          ("collapses start from the highest indices",
//                          §2.2).
//  * kSparse             — ordered map from index to counter; minimal
//                          memory for sparse data, slower adds ("sacrificing
//                          speed for space efficiency", §2.2). Optionally
//                          bounded by max *non-empty* buckets, which is the
//                          paper-literal Algorithm 3 collapse.
//
// All stores are fully mergeable with any other store holding the same
// index space (merging iterates (index, count) pairs).

#ifndef DDSKETCH_CORE_STORE_H_
#define DDSKETCH_CORE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "util/status.h"

namespace dd {

/// Identifies a store strategy; stable values used in serialization.
enum class StoreType : uint8_t {
  kUnboundedDense = 0,
  kCollapsingLowestDense = 1,
  kCollapsingHighestDense = 2,
  kSparse = 3,
};

/// Returns a stable human-readable name ("dense", "collapsing_lowest", ...).
const char* StoreTypeToString(StoreType type);

/// A multiset of integer bucket indices with 64-bit counts.
class Store {
 public:
  virtual ~Store() = default;

  /// Adds `count` to bucket `index`. May collapse buckets if the store is
  /// bounded and the new index would exceed the configured size.
  virtual void Add(int32_t index, uint64_t count) = 0;
  void Add(int32_t index) { Add(index, 1); }

  /// Removes up to `count` from bucket `index`; returns the number actually
  /// removed (0 if the bucket is empty or out of range). Supports the
  /// paper's "delete items" operation; deleting a value that was previously
  /// folded by a collapse is not tracked (same caveat as the paper's
  /// collapsed quantiles).
  virtual uint64_t Remove(int32_t index, uint64_t count) = 0;

  /// Total count across all buckets.
  virtual uint64_t total_count() const noexcept = 0;

  /// True iff total_count() == 0.
  bool empty() const noexcept { return total_count() == 0; }

  /// Lowest index with a non-zero count. Precondition: !empty().
  virtual int32_t min_index() const noexcept = 0;
  /// Highest index with a non-zero count. Precondition: !empty().
  virtual int32_t max_index() const noexcept = 0;

  /// Number of non-empty buckets (Figure 7 of the paper).
  virtual size_t num_buckets() const noexcept = 0;

  /// Calls `fn(index, count)` for every non-empty bucket in ascending
  /// index order.
  virtual void ForEach(
      const std::function<void(int32_t, uint64_t)>& fn) const = 0;

  /// Adds every (index, count) of `other` into this store, collapsing as
  /// needed (Algorithm 4). Works across store implementations.
  virtual void MergeFrom(const Store& other);

  /// The smallest index i such that the cumulative count of buckets
  /// <= i strictly exceeds `rank` (0-based). Precondition: !empty() and
  /// rank < total_count(). This is the scan of Algorithm 2.
  virtual int32_t KeyAtRank(double rank) const noexcept;

  /// Like KeyAtRank but scanning downward from the highest index: the
  /// largest index i such that the cumulative count of buckets >= i exceeds
  /// `rank`. Used by the negative-value sketch, whose index order is the
  /// reverse of the value order.
  virtual int32_t KeyAtRankDescending(double rank) const noexcept;

  /// Total count of buckets with index <= `index` (the inverse of
  /// KeyAtRank; backs the sketch's rank/CDF queries).
  virtual uint64_t CumulativeCount(int32_t index) const noexcept;

  /// Bytes of live memory retained (buffers + bookkeeping), the quantity
  /// plotted in Figure 6.
  virtual size_t size_in_bytes() const noexcept = 0;

  /// Resets to empty without releasing capacity.
  virtual void Clear() noexcept = 0;

  /// Deep copy.
  virtual std::unique_ptr<Store> Clone() const = 0;

  /// The strategy tag (serialization).
  virtual StoreType type() const noexcept = 0;

  /// Upper bound on buckets (contiguous span for dense collapsing stores,
  /// non-empty count for bounded sparse stores); 0 means unbounded.
  virtual int32_t max_num_buckets() const noexcept { return 0; }

  /// Factory. `max_num_buckets` is required (> 0) for collapsing stores,
  /// optional (0 = unbounded) for sparse, ignored for unbounded dense.
  static Result<std::unique_ptr<Store>> Create(StoreType type,
                                               int32_t max_num_buckets);
};

/// Contiguous counter array over [offset, offset + counts.size()), growing
/// in both directions in chunks. Base class of the three dense variants.
class DenseStore : public Store {
 public:
  void Add(int32_t index, uint64_t count) override;
  /// Dense-to-dense merges add the counter arrays directly (one pass, no
  /// per-bucket virtual dispatch) whenever the combined span fits without
  /// collapsing; otherwise falls back to the generic bucket walk.
  void MergeFrom(const Store& other) override;
  uint64_t Remove(int32_t index, uint64_t count) override;
  uint64_t total_count() const noexcept override { return total_count_; }
  int32_t min_index() const noexcept override;
  int32_t max_index() const noexcept override;
  size_t num_buckets() const noexcept override;
  void ForEach(
      const std::function<void(int32_t, uint64_t)>& fn) const override;
  int32_t KeyAtRank(double rank) const noexcept override;
  int32_t KeyAtRankDescending(double rank) const noexcept override;
  uint64_t CumulativeCount(int32_t index) const noexcept override;
  size_t size_in_bytes() const noexcept override;
  void Clear() noexcept override;

 protected:
  /// Returns the array slot for `index`, growing or collapsing as needed;
  /// a negative return means the add must be redirected to the slot
  /// ~returned (collapsed boundary bucket).
  virtual size_t SlotFor(int32_t index) = 0;

  /// Grows `counts_` so that [new_min, new_max] fits, preserving contents.
  void Extend(int32_t new_min, int32_t new_max);

  /// True iff holding the contiguous span [lo, hi] requires no collapse.
  virtual bool SpanFits(int32_t lo, int32_t hi) const noexcept {
    (void)lo;
    (void)hi;
    return true;
  }

  std::vector<uint64_t> counts_;
  int32_t offset_ = 0;          // counts_[i] holds bucket offset_ + i
  uint64_t total_count_ = 0;
  int32_t min_index_ = 0;       // valid iff total_count_ > 0
  int32_t max_index_ = 0;       // valid iff total_count_ > 0
};

/// DenseStore with no size bound (the paper's basic sketch storage).
class UnboundedDenseStore final : public DenseStore {
 public:
  UnboundedDenseStore() = default;
  StoreType type() const noexcept override {
    return StoreType::kUnboundedDense;
  }
  std::unique_ptr<Store> Clone() const override {
    return std::make_unique<UnboundedDenseStore>(*this);
  }

 protected:
  size_t SlotFor(int32_t index) override;
};

/// DenseStore whose contiguous span is capped at `max_num_buckets`; indices
/// below max_index - max_num_buckets + 1 are folded into that lowest kept
/// bucket. This keeps exactly the invariant Proposition 4 needs.
class CollapsingLowestDenseStore final : public DenseStore {
 public:
  explicit CollapsingLowestDenseStore(int32_t max_num_buckets)
      : max_num_buckets_(max_num_buckets) {}
  StoreType type() const noexcept override {
    return StoreType::kCollapsingLowestDense;
  }
  int32_t max_num_buckets() const noexcept override {
    return max_num_buckets_;
  }
  std::unique_ptr<Store> Clone() const override {
    return std::make_unique<CollapsingLowestDenseStore>(*this);
  }
  /// True iff any add has ever been folded (collapsed) — quantiles below
  /// the fold boundary lose their accuracy guarantee.
  bool has_collapsed() const noexcept { return has_collapsed_; }

 protected:
  size_t SlotFor(int32_t index) override;
  bool SpanFits(int32_t lo, int32_t hi) const noexcept override {
    return hi - lo < max_num_buckets_;
  }

 private:
  int32_t max_num_buckets_;
  bool has_collapsed_ = false;
};

/// Mirror of CollapsingLowestDenseStore: folds the *highest* indices
/// downward. Used by the negative sketch, where high indices correspond to
/// large magnitudes, i.e. the most-negative values (§2.2).
class CollapsingHighestDenseStore final : public DenseStore {
 public:
  explicit CollapsingHighestDenseStore(int32_t max_num_buckets)
      : max_num_buckets_(max_num_buckets) {}
  StoreType type() const noexcept override {
    return StoreType::kCollapsingHighestDense;
  }
  int32_t max_num_buckets() const noexcept override {
    return max_num_buckets_;
  }
  std::unique_ptr<Store> Clone() const override {
    return std::make_unique<CollapsingHighestDenseStore>(*this);
  }
  bool has_collapsed() const noexcept { return has_collapsed_; }

 protected:
  size_t SlotFor(int32_t index) override;
  bool SpanFits(int32_t lo, int32_t hi) const noexcept override {
    return hi - lo < max_num_buckets_;
  }

 private:
  int32_t max_num_buckets_;
  bool has_collapsed_ = false;
};

/// Ordered-map store: memory proportional to *non-empty* buckets. When
/// `max_num_buckets` > 0, enforces the paper-literal Algorithm 3 bound on
/// the number of non-empty buckets by merging the two lowest non-empty
/// buckets whenever the bound is exceeded.
class SparseStore final : public Store {
 public:
  explicit SparseStore(int32_t max_num_buckets = 0)
      : max_num_buckets_(max_num_buckets) {}

  void Add(int32_t index, uint64_t count) override;
  uint64_t Remove(int32_t index, uint64_t count) override;
  uint64_t total_count() const noexcept override { return total_count_; }
  int32_t min_index() const noexcept override;
  int32_t max_index() const noexcept override;
  size_t num_buckets() const noexcept override { return counts_.size(); }
  void ForEach(
      const std::function<void(int32_t, uint64_t)>& fn) const override;
  size_t size_in_bytes() const noexcept override;
  void Clear() noexcept override;
  StoreType type() const noexcept override { return StoreType::kSparse; }
  int32_t max_num_buckets() const noexcept override {
    return max_num_buckets_;
  }
  std::unique_ptr<Store> Clone() const override {
    return std::make_unique<SparseStore>(*this);
  }

 private:
  void CollapseIfNeeded();

  std::map<int32_t, uint64_t> counts_;
  uint64_t total_count_ = 0;
  int32_t max_num_buckets_;
};

}  // namespace dd

#endif  // DDSKETCH_CORE_STORE_H_
