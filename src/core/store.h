// Bucket stores: the counter containers behind DDSketch (paper §2.2).
//
// The paper discusses several storage strategies and we provide all of them:
//
//  * kUnboundedDense     — contiguous array of counters spanning
//                          [min_index, max_index]; fastest adds, grows
//                          without bound (the paper's "basic" sketch).
//  * kCollapsingLowestDense  — dense array capped at max_num_buckets
//                          *contiguous* buckets; when the span would exceed
//                          the cap, the lowest buckets are folded upward
//                          (Algorithm 3/4 of the paper, contiguous-range
//                          variant: guarantees max_index - min_index <
//                          max_num_buckets, which is the exact premise of
//                          Proposition 4).
//  * kCollapsingHighestDense — mirror image, folding the highest buckets
//                          downward; used for the negative-value sketch
//                          ("collapses start from the highest indices",
//                          §2.2).
//  * kSparse             — ordered map from index to counter; minimal
//                          memory for sparse data, slower adds ("sacrificing
//                          speed for space efficiency", §2.2). Optionally
//                          bounded by max *non-empty* buckets, which is the
//                          paper-literal Algorithm 3 collapse.
//
// All stores are fully mergeable with any other store holding the same
// index space (merging iterates (index, count) pairs).
//
// Iteration uses BucketVisitor, a non-owning function_ref: callers pass any
// callable (no std::function allocation) and may return false to stop the
// walk early — which is what lets the generic rank queries (KeyAtRank,
// Algorithm 2) stop at the answering bucket instead of scanning the tail.

#ifndef DDSKETCH_CORE_STORE_H_
#define DDSKETCH_CORE_STORE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace dd {

/// Identifies a store strategy; stable values used in serialization.
enum class StoreType : uint8_t {
  kUnboundedDense = 0,
  kCollapsingLowestDense = 1,
  kCollapsingHighestDense = 2,
  kSparse = 3,
};

/// Returns a stable human-readable name ("dense", "collapsing_lowest", ...).
const char* StoreTypeToString(StoreType type);

/// Non-owning view of a bucket callback: fn(index, count) returning either
/// void (visit everything) or bool (false stops the walk). A trivial
/// {context, trampoline} pair — no allocation, no virtual templates —
/// valid only for the duration of the call it is passed to.
class BucketVisitor {
 public:
  template <typename Fn,
            typename = std::enable_if_t<
                std::is_invocable_v<Fn&, int32_t, uint64_t> &&
                !std::is_same_v<std::decay_t<Fn>, BucketVisitor>>>
  BucketVisitor(Fn&& fn) noexcept  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* ctx, int32_t index, uint64_t count) -> bool {
          using F = std::remove_reference_t<Fn>;
          if constexpr (std::is_void_v<
                            std::invoke_result_t<F&, int32_t, uint64_t>>) {
            (*static_cast<F*>(ctx))(index, count);
            return true;
          } else {
            return (*static_cast<F*>(ctx))(index, count);
          }
        }) {}

  /// Returns false when the walk should stop.
  bool operator()(int32_t index, uint64_t count) const {
    return call_(ctx_, index, count);
  }

 private:
  void* ctx_;
  bool (*call_)(void*, int32_t, uint64_t);
};

/// A multiset of integer bucket indices with 64-bit counts.
class Store {
 public:
  virtual ~Store() = default;

  /// Adds `count` to bucket `index`. May collapse buckets if the store is
  /// bounded and the new index would exceed the configured size.
  virtual void Add(int32_t index, uint64_t count) = 0;
  void Add(int32_t index) { Add(index, 1); }

  /// Removes up to `count` from bucket `index`; returns the number actually
  /// removed (0 if the bucket is empty or out of range). Supports the
  /// paper's "delete items" operation. Collapsing dense stores that have
  /// folded redirect beyond-the-fold indices to the most recent fold
  /// bucket — where folded mass actually sits — so a value whose Add was
  /// folded can be removed. Best-effort, like collapsed quantiles: mass
  /// folded under an older boundary that later shifted may be missed.
  /// Fold history is runtime state — it survives Clone() and MergeFrom()
  /// but is not serialized (the wire format carries bucket contents
  /// only), so a deserialized store conservatively rejects removals of
  /// previously folded mass (returns 0; it never drains a wrong bucket).
  virtual uint64_t Remove(int32_t index, uint64_t count) = 0;

  /// Total count across all buckets.
  virtual uint64_t total_count() const noexcept = 0;

  /// True iff total_count() == 0.
  bool empty() const noexcept { return total_count() == 0; }

  /// Lowest index with a non-zero count. Precondition: !empty().
  virtual int32_t min_index() const noexcept = 0;
  /// Highest index with a non-zero count. Precondition: !empty().
  virtual int32_t max_index() const noexcept = 0;

  /// Number of non-empty buckets (Figure 7 of the paper).
  virtual size_t num_buckets() const noexcept = 0;

  /// Calls `fn(index, count)` for every non-empty bucket in ascending
  /// index order, stopping early when `fn` returns false. Returns false
  /// iff the walk was stopped.
  virtual bool ForEach(BucketVisitor fn) const = 0;

  /// ForEach in descending index order (the negative sketch's value
  /// order). Generic fallback buffers the buckets; dense and sparse
  /// stores override with direct reverse scans.
  virtual bool ForEachDescending(BucketVisitor fn) const;

  /// Adds every (index, count) of `other` into this store, collapsing as
  /// needed (Algorithm 4). Works across store implementations.
  virtual void MergeFrom(const Store& other);

  /// The smallest index i such that the cumulative count of buckets
  /// <= i strictly exceeds `rank` (0-based). Precondition: !empty() and
  /// rank < total_count(). This is the scan of Algorithm 2; it stops at
  /// the answering bucket.
  virtual int32_t KeyAtRank(double rank) const noexcept;

  /// Like KeyAtRank but scanning downward from the highest index: the
  /// largest index i such that the cumulative count of buckets >= i exceeds
  /// `rank`. Used by the negative-value sketch, whose index order is the
  /// reverse of the value order.
  virtual int32_t KeyAtRankDescending(double rank) const noexcept;

  /// Total count of buckets with index <= `index` (the inverse of
  /// KeyAtRank; backs the sketch's rank/CDF queries).
  virtual uint64_t CumulativeCount(int32_t index) const noexcept;

  /// Bytes of live memory retained (buffers + bookkeeping), the quantity
  /// plotted in Figure 6.
  virtual size_t size_in_bytes() const noexcept = 0;

  /// Resets to empty without releasing capacity.
  virtual void Clear() noexcept = 0;

  /// Deep copy.
  virtual std::unique_ptr<Store> Clone() const = 0;

  /// The strategy tag (serialization).
  virtual StoreType type() const noexcept = 0;

  /// Upper bound on buckets (contiguous span for dense collapsing stores,
  /// non-empty count for bounded sparse stores); 0 means unbounded.
  virtual int32_t max_num_buckets() const noexcept { return 0; }

  /// Factory. `max_num_buckets` is required (> 0) for collapsing stores,
  /// optional (0 = unbounded) for sparse, ignored for unbounded dense.
  static Result<std::unique_ptr<Store>> Create(StoreType type,
                                               int32_t max_num_buckets);
};

/// Contiguous counter array over [offset, offset + counts.size()), growing
/// in both directions in chunks. Base class of the three dense variants.
class DenseStore : public Store {
 public:
  void Add(int32_t index, uint64_t count) override;

  /// The branchless in-range fast path of Add, non-virtual and inline so
  /// DDSketch's devirtualized insert can call it directly: succeeds iff
  /// `index` lands in the already-allocated array without growing it or
  /// collapsing (the steady state once the working span is warm), doing
  /// exactly what Add would do in that case. Returns false — with the
  /// store untouched — when the caller must fall back to virtual Add.
  bool TryAddFast(int32_t index, uint64_t count) noexcept {
    const int64_t slot = static_cast<int64_t>(index) - offset_;
    if (total_count_ == 0 || slot < 0 ||
        slot >= static_cast<int64_t>(counts_.size())) {
      return false;
    }
    // Conditional moves, not branches: min/max tracking and the span-cap
    // check compile without a data-dependent jump.
    const int32_t lo = index < min_index_ ? index : min_index_;
    const int32_t hi = index > max_index_ ? index : max_index_;
    if (static_cast<int64_t>(hi) - lo >= span_cap_) return false;
    counts_[static_cast<size_t>(slot)] += count;
    total_count_ += count;
    min_index_ = lo;
    max_index_ = hi;
    return true;
  }

  /// The batch form of TryAddFast: adds 1 to each bucket of `indices` in
  /// order, keeping the count/extreme bookkeeping in registers for the
  /// whole run instead of round-tripping it through memory per value.
  /// Stops at the first index that would need growth or collapse and
  /// returns how many indices were consumed; the caller routes that one
  /// through virtual Add and resumes.
  size_t TryAddFastRun(std::span<const int32_t> indices) noexcept {
    if (total_count_ == 0) return 0;
    const int64_t cap = span_cap_;
    const int64_t offset = offset_;
    const int64_t slots = static_cast<int64_t>(counts_.size());
    uint64_t* const counts = counts_.data();
    int32_t lo = min_index_, hi = max_index_;
    size_t i = 0;
    for (; i < indices.size(); ++i) {
      const int32_t index = indices[i];
      const int64_t slot = static_cast<int64_t>(index) - offset;
      if (slot < 0 || slot >= slots) break;
      const int32_t nlo = index < lo ? index : lo;
      const int32_t nhi = index > hi ? index : hi;
      if (static_cast<int64_t>(nhi) - nlo >= cap) break;
      ++counts[slot];
      lo = nlo;
      hi = nhi;
    }
    total_count_ += i;
    min_index_ = lo;
    max_index_ = hi;
    return i;
  }

  /// Dense-to-dense merges add the counter arrays directly (one pass, no
  /// per-bucket virtual dispatch) whenever the combined span fits without
  /// collapsing; otherwise falls back to the generic bucket walk.
  void MergeFrom(const Store& other) override;
  uint64_t Remove(int32_t index, uint64_t count) override;
  uint64_t total_count() const noexcept override { return total_count_; }
  int32_t min_index() const noexcept override;
  int32_t max_index() const noexcept override;
  size_t num_buckets() const noexcept override;
  bool ForEach(BucketVisitor fn) const override;
  bool ForEachDescending(BucketVisitor fn) const override;
  int32_t KeyAtRank(double rank) const noexcept override;
  int32_t KeyAtRankDescending(double rank) const noexcept override;
  uint64_t CumulativeCount(int32_t index) const noexcept override;
  size_t size_in_bytes() const noexcept override;
  void Clear() noexcept override;

 protected:
  /// Returns the array slot for `index`, growing or collapsing as needed;
  /// a negative return means the add must be redirected to the slot
  /// ~returned (collapsed boundary bucket).
  virtual size_t SlotFor(int32_t index) = 0;

  /// Where Remove must look for `index` given the current collapse state:
  /// collapsing stores redirect indices beyond the fold boundary to the
  /// boundary bucket, exactly mirroring where Add would land them now.
  virtual int32_t RemoveTarget(int32_t index) const noexcept { return index; }

  /// Grows `counts_` so that [new_min, new_max] fits, preserving contents.
  void Extend(int32_t new_min, int32_t new_max);

  /// True iff holding the contiguous span [lo, hi] requires no collapse.
  virtual bool SpanFits(int32_t lo, int32_t hi) const noexcept {
    (void)lo;
    (void)hi;
    return true;
  }

  std::vector<uint64_t> counts_;
  int32_t offset_ = 0;          // counts_[i] holds bucket offset_ + i
  uint64_t total_count_ = 0;
  int32_t min_index_ = 0;       // valid iff total_count_ > 0
  int32_t max_index_ = 0;       // valid iff total_count_ > 0
  // Whether any add has ever been folded since construction or Clear();
  // set by the collapsing subclasses' SlotFor, reset by Clear() (which is
  // why it lives here), always false for the unbounded store. Gates the
  // Remove fold redirect: only a store that actually lost information may
  // redirect beyond-the-fold removals into the boundary bucket.
  bool has_collapsed_ = false;
  // The boundary bucket of the most recent fold (valid iff has_collapsed_):
  // where all folded mass currently sits, recorded at collapse time rather
  // than derived from the live window — removes can shrink max_index_/
  // min_index_ afterwards, which must not strand the folded mass.
  int32_t fold_index_ = 0;
  // Max contiguous live span TryAddFast may produce without consulting
  // SlotFor (collapsing subclasses set their bucket cap; unbounded stores
  // never cap). Mirrors SpanFits, hoisted into a plain field so the fast
  // path reads it without a virtual call.
  int64_t span_cap_ = std::numeric_limits<int64_t>::max();
};

/// DenseStore with no size bound (the paper's basic sketch storage).
class UnboundedDenseStore final : public DenseStore {
 public:
  UnboundedDenseStore() = default;
  StoreType type() const noexcept override {
    return StoreType::kUnboundedDense;
  }
  std::unique_ptr<Store> Clone() const override {
    return std::make_unique<UnboundedDenseStore>(*this);
  }

 protected:
  size_t SlotFor(int32_t index) override;
};

/// DenseStore whose contiguous span is capped at `max_num_buckets`; indices
/// below max_index - max_num_buckets + 1 are folded into that lowest kept
/// bucket. This keeps exactly the invariant Proposition 4 needs.
class CollapsingLowestDenseStore final : public DenseStore {
 public:
  explicit CollapsingLowestDenseStore(int32_t max_num_buckets)
      : max_num_buckets_(max_num_buckets) {
    span_cap_ = max_num_buckets;
  }
  StoreType type() const noexcept override {
    return StoreType::kCollapsingLowestDense;
  }
  int32_t max_num_buckets() const noexcept override {
    return max_num_buckets_;
  }
  std::unique_ptr<Store> Clone() const override {
    return std::make_unique<CollapsingLowestDenseStore>(*this);
  }
  /// True iff any add has ever been folded (collapsed) — quantiles below
  /// the fold boundary lose their accuracy guarantee.
  bool has_collapsed() const noexcept { return has_collapsed_; }

 protected:
  size_t SlotFor(int32_t index) override;
  int32_t RemoveTarget(int32_t index) const noexcept override {
    // Redirect only an index that (a) lies outside the live window — an
    // in-window bucket is always the right target, including mass added
    // below the fold bucket after removals shrank the window — and
    // (b) sits beyond a fold that actually happened; before any fold, a
    // below-window index was simply never added (a lossless store must
    // reject, not drain a different value's bucket). The recorded fold
    // bucket — not a boundary recomputed from the live window — is where
    // folded mass actually lives.
    if (total_count_ == 0 || !has_collapsed_ || index >= min_index_) {
      return index;
    }
    return index < fold_index_ ? fold_index_ : index;
  }
  bool SpanFits(int32_t lo, int32_t hi) const noexcept override {
    return hi - lo < max_num_buckets_;
  }

 private:
  int32_t max_num_buckets_;
};

/// Mirror of CollapsingLowestDenseStore: folds the *highest* indices
/// downward. Used by the negative sketch, where high indices correspond to
/// large magnitudes, i.e. the most-negative values (§2.2).
class CollapsingHighestDenseStore final : public DenseStore {
 public:
  explicit CollapsingHighestDenseStore(int32_t max_num_buckets)
      : max_num_buckets_(max_num_buckets) {
    span_cap_ = max_num_buckets;
  }
  StoreType type() const noexcept override {
    return StoreType::kCollapsingHighestDense;
  }
  int32_t max_num_buckets() const noexcept override {
    return max_num_buckets_;
  }
  std::unique_ptr<Store> Clone() const override {
    return std::make_unique<CollapsingHighestDenseStore>(*this);
  }
  bool has_collapsed() const noexcept { return has_collapsed_; }

 protected:
  size_t SlotFor(int32_t index) override;
  int32_t RemoveTarget(int32_t index) const noexcept override {
    if (total_count_ == 0 || !has_collapsed_ || index <= max_index_) {
      return index;
    }
    return index > fold_index_ ? fold_index_ : index;
  }
  bool SpanFits(int32_t lo, int32_t hi) const noexcept override {
    return hi - lo < max_num_buckets_;
  }

 private:
  int32_t max_num_buckets_;
};

/// Ordered-map store: memory proportional to *non-empty* buckets. When
/// `max_num_buckets` > 0, enforces the paper-literal Algorithm 3 bound on
/// the number of non-empty buckets by merging the two lowest non-empty
/// buckets whenever the bound is exceeded.
class SparseStore final : public Store {
 public:
  explicit SparseStore(int32_t max_num_buckets = 0)
      : max_num_buckets_(max_num_buckets) {}

  void Add(int32_t index, uint64_t count) override;
  uint64_t Remove(int32_t index, uint64_t count) override;
  uint64_t total_count() const noexcept override { return total_count_; }
  int32_t min_index() const noexcept override;
  int32_t max_index() const noexcept override;
  size_t num_buckets() const noexcept override { return counts_.size(); }
  bool ForEach(BucketVisitor fn) const override;
  bool ForEachDescending(BucketVisitor fn) const override;
  size_t size_in_bytes() const noexcept override;
  void Clear() noexcept override;
  StoreType type() const noexcept override { return StoreType::kSparse; }
  int32_t max_num_buckets() const noexcept override {
    return max_num_buckets_;
  }
  std::unique_ptr<Store> Clone() const override {
    return std::make_unique<SparseStore>(*this);
  }

 private:
  void CollapseIfNeeded();

  std::map<int32_t, uint64_t> counts_;
  uint64_t total_count_ = 0;
  int32_t max_num_buckets_;
};

}  // namespace dd

#endif  // DDSKETCH_CORE_STORE_H_
