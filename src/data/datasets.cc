#include "data/datasets.h"

#include <cmath>

namespace dd {
namespace {

std::unique_ptr<Distribution> MakeSpanDataset() {
  // Service tiers of a distributed trace, in nanoseconds:
  //   in-process cache hits   ~ tens of microseconds
  //   intra-datacenter RPCs   ~ a millisecond
  //   database queries        ~ tens of milliseconds
  //   external calls          ~ a second
  //   batch/background spans  ~ a minute, with a Pareto tail reaching the
  //                             paper's observed maximum of 1.9e12 ns.
  std::vector<Mixture::Component> tiers;
  tiers.push_back({0.34, std::make_unique<Lognormal>(std::log(5e4), 1.1)});
  tiers.push_back({0.30, std::make_unique<Lognormal>(std::log(1e6), 1.0)});
  tiers.push_back({0.20, std::make_unique<Lognormal>(std::log(3e7), 1.2)});
  tiers.push_back({0.10, std::make_unique<Lognormal>(std::log(1e9), 1.3)});
  tiers.push_back({0.05, std::make_unique<Lognormal>(std::log(4e10), 1.2)});
  tiers.push_back({0.01, std::make_unique<Pareto>(1.1, 1e10)});
  return std::make_unique<Clamped>(
      std::make_unique<Rounded>(std::make_unique<Mixture>(std::move(tiers))),
      100.0, 1.9e12);
}

std::unique_ptr<Distribution> MakePowerDataset() {
  // Global active power in kW: a dominant baseline-load mode plus
  // appliance modes (kettle/heating/oven), matching the multi-modal shape
  // and [0.076, 11.122] range of the UCI data set (Figure 5, right).
  std::vector<Mixture::Component> modes;
  modes.push_back({0.52, std::make_unique<Normal>(0.33, 0.12)});
  modes.push_back({0.18, std::make_unique<Normal>(1.45, 0.35)});
  modes.push_back({0.16, std::make_unique<Normal>(2.60, 0.55)});
  modes.push_back({0.10, std::make_unique<Normal>(4.40, 0.80)});
  modes.push_back({0.04, std::make_unique<Normal>(6.50, 1.10)});
  return std::make_unique<Clamped>(std::make_unique<Mixture>(std::move(modes)),
                                   0.076, 11.122);
}

std::unique_ptr<Distribution> MakeWebLatencyDataset() {
  // Latency body: lognormal with median 2 and p75 ~ 4 (sigma chosen so
  // p75/p50 = 2), plus a 2% Pareto tail that pushes p99 towards the
  // 80-220 band of Figure 4 and the multi-second stragglers of Figure 3.
  std::vector<Mixture::Component> parts;
  parts.push_back({0.98, std::make_unique<Lognormal>(std::log(2.0), 1.028)});
  parts.push_back({0.02, std::make_unique<Pareto>(0.9, 20.0)});
  return std::make_unique<Clamped>(std::make_unique<Mixture>(std::move(parts)),
                                   1e-3, 1e5);
}

}  // namespace

const char* DatasetIdToString(DatasetId id) {
  switch (id) {
    case DatasetId::kPareto:
      return "pareto";
    case DatasetId::kSpan:
      return "span";
    case DatasetId::kPower:
      return "power";
    case DatasetId::kWebLatency:
      return "web_latency";
  }
  return "unknown";
}

std::unique_ptr<Distribution> MakeDataset(DatasetId id) {
  switch (id) {
    case DatasetId::kPareto:
      return std::make_unique<Pareto>(1.0, 1.0);
    case DatasetId::kSpan:
      return MakeSpanDataset();
    case DatasetId::kPower:
      return MakePowerDataset();
    case DatasetId::kWebLatency:
      return MakeWebLatencyDataset();
  }
  return nullptr;
}

std::vector<double> GenerateDataset(DatasetId id, size_t n, uint64_t seed) {
  return GenerateN(*MakeDataset(id), n, seed);
}

}  // namespace dd
