// The paper's evaluation data sets (§4.1, Figure 5), as deterministic
// generators.
//
// * pareto — exactly the paper's: Pareto with a = b = 1 (infinite mean,
//   the heavy-tail stress case).
// * span  — SUBSTITUTION. The paper uses internal Datadog trace span
//   durations: integers in nanoseconds spanning 1e2 .. 1.9e12 with a heavy
//   tail. We generate a mixture of lognormal "service tiers" (cache hit,
//   RPC, DB query, batch job) plus a Pareto tail, rounded to integer ns and
//   clamped to the paper's observed range. This preserves the properties
//   the paper exercises: extreme dynamic range (10 orders of magnitude),
//   integrality, heavy tail.
// * power — SUBSTITUTION. The paper uses the UCI household electric power
//   data set (global active power, ~2M rows, 0.076 .. 11.122 kW,
//   multi-modal and dense). We generate a mixture of Gaussians at the
//   baseline-load and appliance peaks, clamped to the same range. This
//   preserves the properties the paper exercises: narrow range, high
//   density, multi-modality (the easy case contrasting the heavy tails).
// * web_latency — the request-latency stream behind Figures 2-4: a
//   lognormal body (median ~2s in the figure's units) with a Pareto tail
//   pushing p99 into the 80-220 range, matching the quantile levels
//   visible in Figure 4.

#ifndef DDSKETCH_DATA_DATASETS_H_
#define DDSKETCH_DATA_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "data/distributions.h"

namespace dd {

/// Identifies one of the benchmark data sets.
enum class DatasetId {
  kPareto,
  kSpan,
  kPower,
  kWebLatency,
};

/// Stable lowercase name ("pareto", "span", "power", "web_latency").
const char* DatasetIdToString(DatasetId id);

/// Builds the generator for a data set.
std::unique_ptr<Distribution> MakeDataset(DatasetId id);

/// All three §4.1 data sets, in paper order.
inline constexpr DatasetId kPaperDatasets[] = {
    DatasetId::kPareto, DatasetId::kSpan, DatasetId::kPower};

/// Default seed used by the figure harnesses (arbitrary but fixed).
inline constexpr uint64_t kDefaultSeed = 0xDD5EED2019ULL;

/// Generates the data set deterministically: MakeDataset(id) sampled n
/// times with `seed`.
std::vector<double> GenerateDataset(DatasetId id, size_t n,
                                    uint64_t seed = kDefaultSeed);

}  // namespace dd

#endif  // DDSKETCH_DATA_DATASETS_H_
