#include "data/distributions.h"

#include <cassert>
#include <sstream>

namespace dd {
namespace {

std::string FormatDouble(double x) {
  std::ostringstream out;
  out << x;
  return out.str();
}

}  // namespace

std::string Uniform::name() const {
  return "uniform(" + FormatDouble(lo_) + "," + FormatDouble(hi_) + ")";
}

std::string Exponential::name() const {
  return "exponential(" + FormatDouble(lambda_) + ")";
}

std::string Pareto::name() const {
  return "pareto(" + FormatDouble(shape_) + "," + FormatDouble(scale_) + ")";
}

std::string Normal::name() const {
  return "normal(" + FormatDouble(mean_) + "," + FormatDouble(stddev_) + ")";
}

std::string Lognormal::name() const {
  return "lognormal";
}

std::string Weibull::name() const {
  return "weibull(" + FormatDouble(shape_) + "," + FormatDouble(scale_) + ")";
}

Mixture::Mixture(std::vector<Component> components)
    : components_(std::move(components)) {
  assert(!components_.empty());
  double total = 0;
  for (const auto& c : components_) {
    assert(c.weight > 0);
    total += c.weight;
  }
  double cum = 0;
  cumulative_.reserve(components_.size());
  for (const auto& c : components_) {
    cum += c.weight / total;
    cumulative_.push_back(cum);
  }
  cumulative_.back() = 1.0;  // guard against rounding drift
}

Mixture::Mixture(const Mixture& other) : cumulative_(other.cumulative_) {
  components_.reserve(other.components_.size());
  for (const auto& c : other.components_) {
    components_.push_back({c.weight, c.distribution->Clone()});
  }
}

double Mixture::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Linear scan: component counts are tiny (< 10) in every workload here.
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) return components_[i].distribution->Sample(rng);
  }
  return components_.back().distribution->Sample(rng);
}

std::string Mixture::name() const {
  std::string out = "mixture(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += ",";
    out += components_[i].distribution->name();
  }
  out += ")";
  return out;
}

std::string Clamped::name() const {
  return "clamped(" + inner_->name() + ",[" + FormatDouble(lo_) + "," +
         FormatDouble(hi_) + "])";
}

std::string Rounded::name() const { return "rounded(" + inner_->name() + ")"; }

std::vector<double> GenerateN(const Distribution& distribution, size_t n,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& x : out) x = distribution.Sample(rng);
  return out;
}

}  // namespace dd
