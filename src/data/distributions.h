// Deterministic sampling distributions for workload generation.
//
// All transforms are fully specified (inverse-CDF or Box-Muller on the
// xoshiro engine), so a (distribution, seed) pair identifies a data set
// exactly — required for the figure harnesses to be reproducible across
// machines and standard libraries.

#ifndef DDSKETCH_DATA_DISTRIBUTIONS_H_
#define DDSKETCH_DATA_DISTRIBUTIONS_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace dd {

/// A real-valued sampling distribution. Implementations are immutable;
/// all sampling state lives in the caller's Rng.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample using `rng`.
  virtual double Sample(Rng& rng) const = 0;

  /// Short name for reports ("pareto", "lognormal(0,2)", ...).
  virtual std::string name() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Distribution> Clone() const = 0;
};

/// Uniform on [lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {}
  double Sample(Rng& rng) const override {
    return lo_ + (hi_ - lo_) * rng.NextDouble();
  }
  std::string name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<Uniform>(*this);
  }

 private:
  double lo_, hi_;
};

/// Exponential with rate lambda: F(t) = 1 - exp(-lambda t). Subexponential
/// with parameters (2/lambda, 2/lambda) — the light-tail case of §3.3.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double lambda) : lambda_(lambda) {}
  double Sample(Rng& rng) const override {
    return -std::log(rng.NextDoubleOpenZero()) / lambda_;
  }
  std::string name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<Exponential>(*this);
  }

 private:
  double lambda_;
};

/// Pareto with shape a and scale b: F(t) = 1 - (b/t)^a for t >= b.
/// The paper's heavy-tail workhorse (pareto data set uses a = b = 1,
/// which has infinite mean).
class Pareto final : public Distribution {
 public:
  Pareto(double shape, double scale) : shape_(shape), scale_(scale) {}
  double Sample(Rng& rng) const override {
    return scale_ * std::pow(rng.NextDoubleOpenZero(), -1.0 / shape_);
  }
  std::string name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<Pareto>(*this);
  }

 private:
  double shape_, scale_;
};

/// Gaussian via Box-Muller (both variates consumed; no cached state, so
/// sampling stays a pure function of the Rng stream position).
class Normal final : public Distribution {
 public:
  Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {}
  double Sample(Rng& rng) const override {
    const double u1 = rng.NextDoubleOpenZero();
    const double u2 = rng.NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean_ + stddev_ * r * std::cos(6.283185307179586 * u2);
  }
  std::string name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<Normal>(*this);
  }

 private:
  double mean_, stddev_;
};

/// exp(Normal(mu, sigma)): the canonical latency-shaped distribution; its
/// logarithm is subgaussian, so §3.3's bounds apply with room to spare.
class Lognormal final : public Distribution {
 public:
  Lognormal(double mu, double sigma) : normal_(mu, sigma) {}
  double Sample(Rng& rng) const override {
    return std::exp(normal_.Sample(rng));
  }
  std::string name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<Lognormal>(*this);
  }

 private:
  Normal normal_;
};

/// Weibull with shape k and scale lambda: heavy-ish tails for k < 1.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale) : shape_(shape), scale_(scale) {}
  double Sample(Rng& rng) const override {
    return scale_ *
           std::pow(-std::log(rng.NextDoubleOpenZero()), 1.0 / shape_);
  }
  std::string name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<Weibull>(*this);
  }

 private:
  double shape_, scale_;
};

/// Weighted mixture of component distributions.
class Mixture final : public Distribution {
 public:
  struct Component {
    double weight;
    std::unique_ptr<Distribution> distribution;
  };

  explicit Mixture(std::vector<Component> components);
  Mixture(const Mixture& other);

  double Sample(Rng& rng) const override;
  std::string name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<Mixture>(*this);
  }

 private:
  std::vector<Component> components_;
  std::vector<double> cumulative_;  // normalized CDF over components
};

/// Decorator clamping samples to [lo, hi].
class Clamped final : public Distribution {
 public:
  Clamped(std::unique_ptr<Distribution> inner, double lo, double hi)
      : inner_(std::move(inner)), lo_(lo), hi_(hi) {}
  Clamped(const Clamped& other)
      : inner_(other.inner_->Clone()), lo_(other.lo_), hi_(other.hi_) {}
  double Sample(Rng& rng) const override {
    const double x = inner_->Sample(rng);
    return x < lo_ ? lo_ : (x > hi_ ? hi_ : x);
  }
  std::string name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<Clamped>(*this);
  }

 private:
  std::unique_ptr<Distribution> inner_;
  double lo_, hi_;
};

/// Decorator rounding samples to the nearest integer (integral data sets
/// such as nanosecond durations).
class Rounded final : public Distribution {
 public:
  explicit Rounded(std::unique_ptr<Distribution> inner)
      : inner_(std::move(inner)) {}
  Rounded(const Rounded& other) : inner_(other.inner_->Clone()) {}
  double Sample(Rng& rng) const override {
    return std::round(inner_->Sample(rng));
  }
  std::string name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<Rounded>(*this);
  }

 private:
  std::unique_ptr<Distribution> inner_;
};

/// Draws `n` samples with a fresh engine seeded by `seed`.
std::vector<double> GenerateN(const Distribution& distribution, size_t n,
                              uint64_t seed);

/// A resumable stream of samples — what a monitored worker process looks
/// like to a sketch: values arrive one at a time, unbounded.
class DataStream {
 public:
  DataStream(std::unique_ptr<Distribution> distribution, uint64_t seed)
      : distribution_(std::move(distribution)), rng_(seed) {}

  /// The next sample.
  double Next() { return distribution_->Sample(rng_); }

  /// Fills `out` with the next out.size() samples.
  void Fill(std::vector<double>& out) {
    for (double& x : out) x = Next();
  }

  const Distribution& distribution() const { return *distribution_; }

 private:
  std::unique_ptr<Distribution> distribution_;
  Rng rng_;
};

}  // namespace dd

#endif  // DDSKETCH_DATA_DISTRIBUTIONS_H_
