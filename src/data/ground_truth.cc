#include "data/ground_truth.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dd {

ExactQuantiles::ExactQuantiles(std::span<const double> values)
    : sorted_(values.begin(), values.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

void ExactQuantiles::AddAll(std::span<const double> values) {
  sorted_.insert(sorted_.end(), values.begin(), values.end());
  std::sort(sorted_.begin(), sorted_.end());
}

double ExactQuantiles::Quantile(double q) const {
  assert(!sorted_.empty());
  assert(q >= 0.0 && q <= 1.0);
  // rank (1-based) = floor(1 + q(n-1)); index (0-based) = rank - 1.
  const double n = static_cast<double>(sorted_.size());
  const size_t index = static_cast<size_t>(std::floor(q * (n - 1.0)));
  return sorted_[std::min(index, sorted_.size() - 1)];
}

uint64_t ExactQuantiles::RankUpperOf(double value) const {
  return static_cast<uint64_t>(
      std::upper_bound(sorted_.begin(), sorted_.end(), value) -
      sorted_.begin());
}

uint64_t ExactQuantiles::RankLowerOf(double value) const {
  return static_cast<uint64_t>(
      std::lower_bound(sorted_.begin(), sorted_.end(), value) -
      sorted_.begin());
}

double RelativeError(double estimate, double actual) {
  if (actual == 0.0) {
    return estimate == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::abs(estimate - actual) / std::abs(actual);
}

double RankError(const ExactQuantiles& truth, double q, double estimate) {
  assert(!truth.empty());
  const double n = static_cast<double>(truth.size());
  // 1-based rank of the true quantile.
  const double target = std::floor(1.0 + q * (n - 1.0));
  // Ranks consistent with the estimate: [#{x < v}, #{x <= v}]. For a value
  // absent from the multiset both ends equal c(v); for a duplicated value
  // the interval spans the whole run (the charitable convention).
  const double lo = static_cast<double>(truth.RankLowerOf(estimate));
  const double hi = static_cast<double>(truth.RankUpperOf(estimate));
  double distance = 0.0;
  if (target < lo) {
    distance = lo - target;
  } else if (target > hi) {
    distance = target - hi;
  }
  return distance / n;
}

}  // namespace dd
