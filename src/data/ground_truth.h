// Exact order statistics and the error metrics of the paper's evaluation.
//
// Quantile convention (paper §1): the q-quantile of a multiset of size n is
// the element of rank floor(1 + q(n-1)) in sorted order (1-based) — the
// "lower quantile". Both error metrics follow §4.4:
//   relative error:  |estimate - x_q| / |x_q|           (Figure 10)
//   rank error:      |R(estimate) - R(x_q)| / n          (Figure 11)
// where R(v) is the number of elements <= v; since the estimate almost
// never equals a sample exactly, its rank is taken as the interval
// [#\{x < v\}, #\{x <= v\}] and the error is measured to the nearest end —
// the standard charitable convention for rank-error evaluation.

#ifndef DDSKETCH_DATA_GROUND_TRUTH_H_
#define DDSKETCH_DATA_GROUND_TRUTH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dd {

/// Holds a sorted copy of a sample and answers exact quantile/rank queries.
class ExactQuantiles {
 public:
  /// Copies and sorts `values`. O(n log n).
  explicit ExactQuantiles(std::span<const double> values);

  /// Appends more values and re-sorts.
  void AddAll(std::span<const double> values);

  /// The exact lower q-quantile. Precondition: !empty(), 0 <= q <= 1.
  double Quantile(double q) const;

  /// Number of elements <= value.
  uint64_t RankUpperOf(double value) const;
  /// Number of elements < value.
  uint64_t RankLowerOf(double value) const;

  size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// |estimate - actual| / |actual|; 0 when both are 0, +inf when only
/// `actual` is 0.
double RelativeError(double estimate, double actual);

/// Rank error of `estimate` against the exact q-quantile (see file comment).
double RankError(const ExactQuantiles& truth, double q, double estimate);

}  // namespace dd

#endif  // DDSKETCH_DATA_GROUND_TRUTH_H_
