#include "gk/gkarray.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/varint.h"

namespace dd {
namespace {

// Buffered adds are folded into the summary once the buffer reaches
// ~1/epsilon values, amortizing the merge-and-compress pass.
size_t BufferCapacityFor(double epsilon) {
  const double c = std::ceil(1.0 / epsilon);
  return static_cast<size_t>(std::max(16.0, std::min(c, 1e6)));
}

}  // namespace

GKArray::GKArray(double rank_accuracy)
    : rank_accuracy_(rank_accuracy),
      buffer_capacity_(BufferCapacityFor(rank_accuracy)) {}

Result<GKArray> GKArray::Create(double rank_accuracy) {
  if (!(rank_accuracy > 0.0) || !(rank_accuracy < 1.0)) {
    return Status::InvalidArgument("rank_accuracy must be in (0, 1), got " +
                                   std::to_string(rank_accuracy));
  }
  return GKArray(rank_accuracy);
}

void GKArray::Add(double value) {
  buffer_.push_back(value);
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (buffer_.size() >= buffer_capacity_) Flush();
}

void GKArray::Add(double value, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) Add(value);
}

void GKArray::Flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<Entry> incoming;
  incoming.reserve(buffer_.size());
  for (double v : buffer_) {
    // Run-length collapse exact duplicates in the batch.
    if (!incoming.empty() && incoming.back().value == v) {
      ++incoming.back().g;
    } else {
      incoming.push_back({v, 1, 0});
    }
  }
  buffer_.clear();
  CompressWith(std::move(incoming));
}

void GKArray::CompressWith(std::vector<Entry>&& incoming) const {
  // Phase 1: merge the sorted incoming batch into the sorted summary.
  // A new tuple placed before summary entry s gets delta = s.g + s.delta - 1,
  // the tight sound bound on its rank uncertainty (it lies somewhere below
  // s's max rank); a new tuple beyond the last summary entry has an exactly
  // known rank, delta = 0.
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + incoming.size());
  size_t si = 0, ii = 0;
  while (si < entries_.size() || ii < incoming.size()) {
    if (ii >= incoming.size() ||
        (si < entries_.size() && entries_[si].value <= incoming[ii].value)) {
      merged.push_back(entries_[si++]);
    } else {
      Entry e = incoming[ii++];
      if (si < entries_.size()) {
        e.delta += entries_[si].g + entries_[si].delta - 1;
      }
      merged.push_back(e);
    }
  }

  // Phase 2: compress. Tuple i may be folded into tuple i+1 whenever the
  // combined band g_i + g_{i+1} + delta_{i+1} stays within the invariant
  // threshold floor(2 * eps * n).
  const uint64_t threshold = static_cast<uint64_t>(
      std::floor(2.0 * rank_accuracy_ * static_cast<double>(count_)));
  std::vector<Entry> compressed;
  compressed.reserve(merged.size());
  uint64_t pending_g = 0;  // weight of folded-away predecessors
  for (size_t i = 0; i + 1 < merged.size(); ++i) {
    const Entry& cur = merged[i];
    const Entry& next = merged[i + 1];
    if (pending_g + cur.g + next.g + next.delta <= threshold) {
      pending_g += cur.g;  // fold cur into next
    } else {
      Entry kept = cur;
      kept.g += pending_g;
      pending_g = 0;
      compressed.push_back(kept);
    }
  }
  if (!merged.empty()) {
    Entry last = merged.back();
    last.g += pending_g;
    compressed.push_back(last);
  }
  entries_ = std::move(compressed);
}

double GKArray::QuantileOrNaN(double q) const noexcept {
  if (empty() || !(q >= 0.0 && q <= 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  Flush();
  // Desired 1-based rank and allowed spread.
  const double n = static_cast<double>(count_);
  const uint64_t rank = static_cast<uint64_t>(q * (n - 1.0)) + 1;
  const uint64_t spread =
      static_cast<uint64_t>(rank_accuracy_ * (n - 1.0));
  uint64_t g_sum = 0;
  size_t i = 0;
  for (; i < entries_.size(); ++i) {
    g_sum += entries_[i].g;
    if (g_sum + entries_[i].delta > rank + spread) break;
  }
  if (i == 0) return min_;
  return entries_[i - 1].value;
}

Result<double> GKArray::Quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile must be in [0, 1], got " +
                                   std::to_string(q));
  }
  if (empty()) {
    return Status::InvalidArgument("quantile of an empty sketch");
  }
  return QuantileOrNaN(q);
}

void GKArray::MergeFrom(const GKArray& other) {
  if (other.empty()) return;
  other.Flush();
  // One-way merge: re-insert the other summary's tuples as weighted values.
  // Representing each band by its upper value can misplace at most
  // max(g + delta) - 1 <= 2 * eps_other * n_other ranks for any query, so
  // the merged sketch's error is eps_self * n + 2 * eps_other * n_other:
  // the error accumulation that makes GK only one-way mergeable (§1.2).
  std::vector<Entry> incoming;
  incoming.reserve(other.entries_.size());
  for (const Entry& e : other.entries_) {
    incoming.push_back({e.value, e.g, 0});
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  Flush();  // fold our own buffer first so thresholds use the new count
  CompressWith(std::move(incoming));
}

size_t GKArray::size_in_bytes() const noexcept {
  return sizeof(*this) + entries_.capacity() * sizeof(Entry) +
         buffer_.capacity() * sizeof(double);
}

// Wire format: "GKAR" magic, version byte, epsilon (double), count
// (varint), min/max (doubles), entry count (varint), then per entry:
// value (double), g (varint), delta (varint).
std::string GKArray::Serialize() const {
  Flush();
  std::string out;
  out.reserve(16 + entries_.size() * 12);
  out.append("GKAR", 4);
  out.push_back(1);
  PutFixedDouble(&out, rank_accuracy_);
  PutVarint64(&out, count_);
  PutFixedDouble(&out, min_);
  PutFixedDouble(&out, max_);
  PutVarint64(&out, entries_.size());
  for (const Entry& e : entries_) {
    PutFixedDouble(&out, e.value);
    PutVarint64(&out, e.g);
    PutVarint64(&out, e.delta);
  }
  return out;
}

Result<GKArray> GKArray::Deserialize(std::string_view payload) {
  Slice in(payload);
  std::string_view header;
  DD_RETURN_IF_ERROR(in.GetBytes(5, &header));
  if (header.substr(0, 4) != "GKAR" || header[4] != 1) {
    return Status::Corruption("not a GKArray v1 payload");
  }
  double epsilon = 0;
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&epsilon));
  auto sketch_result = Create(epsilon);
  if (!sketch_result.ok()) {
    return Status::Corruption("invalid rank accuracy in payload");
  }
  GKArray sketch = std::move(sketch_result).value();
  DD_RETURN_IF_ERROR(in.GetVarint64(&sketch.count_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.min_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.max_));
  uint64_t n_entries = 0;
  DD_RETURN_IF_ERROR(in.GetVarint64(&n_entries));
  if (n_entries > payload.size()) {
    return Status::Corruption("entry count exceeds payload");
  }
  uint64_t total_g = 0;
  double prev_value = -std::numeric_limits<double>::infinity();
  sketch.entries_.reserve(n_entries);
  for (uint64_t i = 0; i < n_entries; ++i) {
    Entry e{};
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&e.value));
    DD_RETURN_IF_ERROR(in.GetVarint64(&e.g));
    DD_RETURN_IF_ERROR(in.GetVarint64(&e.delta));
    if (!(e.value >= prev_value) || e.g == 0) {
      return Status::Corruption("invalid GK summary entry");
    }
    prev_value = e.value;
    total_g += e.g;
    sketch.entries_.push_back(e);
  }
  if (!in.empty()) return Status::Corruption("trailing bytes");
  if (total_g != sketch.count_) {
    return Status::Corruption("summary weights do not sum to count");
  }
  return sketch;
}

}  // namespace dd
