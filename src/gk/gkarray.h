// GKArray: the Greenwald-Khanna rank-error quantile sketch, array variant.
//
// This is the baseline the paper compares against (§1.2, §4; their Java
// implementation is the "GKArray" of Luo et al., "Quantiles over data
// streams: experimental comparisons, new analyses, and further
// improvements", VLDB Journal 2016). It summarizes a stream with tuples
// (v, g, delta) such that the rank of v lies in
//   [ sum_{j<=i} g_j , sum_{j<=i} g_j + delta_i ],
// maintaining the invariant g_i + delta_i <= floor(2 * epsilon * n), which
// bounds the worst-case rank error of any quantile query by epsilon * n.
//
// Incoming values are buffered and folded into the summary in sorted
// batches (the "array" optimization: no per-item tree surgery, one
// merge-and-compress pass per batch).
//
// Merging is "one-way" (§1.2): a merged summary's error grows by the
// merged-in sketch's error, so merge trees must stay shallow — exactly the
// limitation DDSketch removes.

#ifndef DDSKETCH_GK_GKARRAY_H_
#define DDSKETCH_GK_GKARRAY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dd {

/// Greenwald-Khanna sketch with epsilon worst-case rank accuracy.
class GKArray {
 public:
  /// One summary tuple. rank(v) is in (g-prefix-sum, g-prefix-sum + delta].
  struct Entry {
    double value;
    uint64_t g;
    uint64_t delta;
  };

  /// Fails with InvalidArgument unless 0 < rank_accuracy < 1.
  static Result<GKArray> Create(double rank_accuracy);

  /// Adds one value. Amortized O(log(1/eps)); worst case one compress pass.
  void Add(double value);

  /// Adds a value with an integer weight (used by merging).
  void Add(double value, uint64_t count);

  /// The q-quantile estimate, with rank error at most epsilon * n.
  /// Fails with InvalidArgument if q is outside [0,1] or the sketch is
  /// empty.
  Result<double> Quantile(double q) const;

  /// NaN-returning form of Quantile.
  double QuantileOrNaN(double q) const noexcept;

  /// One-way merge: folds `other`'s summary into this sketch. The rank
  /// error of the result is bounded by this->epsilon + other's current
  /// error (error accumulates across merge generations).
  void MergeFrom(const GKArray& other);

  /// Number of values added.
  uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  /// Exact extremes.
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Configured epsilon.
  double rank_accuracy() const noexcept { return rank_accuracy_; }

  /// Live memory footprint (entries + buffer), for Figure 6.
  size_t size_in_bytes() const noexcept;
  /// Number of summary tuples currently held.
  size_t num_entries() const noexcept { return entries_.size(); }

  /// Removes buffered values by folding them into the summary; called
  /// automatically by queries and merges.
  void Flush() const;

  /// Serializes the summary (buffer flushed first) to a compact binary
  /// payload; Deserialize restores a sketch answering all queries
  /// identically.
  std::string Serialize() const;
  static Result<GKArray> Deserialize(std::string_view payload);

 private:
  explicit GKArray(double rank_accuracy);

  /// Sorted-batch fold of `incoming` (weighted values) into `entries_`,
  /// then a compress pass restoring g + delta <= 2 eps n.
  void CompressWith(std::vector<Entry>&& incoming) const;

  double rank_accuracy_;
  size_t buffer_capacity_;

  // Summary state is mutable so queries (logically const) can flush the
  // buffer. All mutation is deterministic and order-preserving.
  mutable std::vector<Entry> entries_;      // sorted by value
  mutable std::vector<double> buffer_;      // unsorted incoming values
  uint64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dd

#endif  // DDSKETCH_GK_GKARRAY_H_
