#include "hdr/hdr_histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "util/bits.h"
#include "util/varint.h"

namespace dd {

HdrHistogram::HdrHistogram(int significant_digits, uint64_t highest_trackable)
    : significant_digits_(significant_digits),
      highest_trackable_(highest_trackable) {
  // The finest level must distinguish 2 * 10^d adjacent values so that
  // within any power-of-two bucket the linear sub-buckets resolve 10^-d
  // relative differences.
  const uint64_t required = 2 * static_cast<uint64_t>(std::llround(
                                    std::pow(10.0, significant_digits)));
  sub_bucket_count_ = RoundUpToPowerOfTwo(required);
  sub_bucket_magnitude_ = FloorLog2(sub_bucket_count_);
  sub_bucket_half_count_ = sub_bucket_count_ / 2;
  // Bucket b >= 1 covers [sub_bucket_half_count << b, sub_bucket_count << b).
  int buckets = 1;
  uint64_t max_covered = sub_bucket_count_ - 1;
  while (max_covered < highest_trackable_) {
    buckets += 1;
    max_covered = (sub_bucket_count_ << (buckets - 1)) - 1;
  }
  bucket_count_ = buckets;
  counts_.assign((static_cast<size_t>(bucket_count_) + 1) *
                     sub_bucket_half_count_,
                 0);
}

Result<HdrHistogram> HdrHistogram::Create(int significant_digits,
                                          uint64_t highest_trackable) {
  if (significant_digits < 1 || significant_digits > 5) {
    return Status::InvalidArgument(
        "significant_digits must be in [1, 5], got " +
        std::to_string(significant_digits));
  }
  if (highest_trackable < 2 || highest_trackable > (uint64_t{1} << 62)) {
    return Status::InvalidArgument("highest_trackable out of range");
  }
  return HdrHistogram(significant_digits, highest_trackable);
}

size_t HdrHistogram::CountsIndexFor(uint64_t value) const noexcept {
  if (value < sub_bucket_count_) return static_cast<size_t>(value);
  const int exponent = FloorLog2(value);  // >= sub_bucket_magnitude_
  const int bucket = exponent - (sub_bucket_magnitude_ - 1);
  const uint64_t sub = value >> bucket;  // in [half_count, count)
  return static_cast<size_t>(bucket + 1) * sub_bucket_half_count_ +
         static_cast<size_t>(sub - sub_bucket_half_count_);
}

uint64_t HdrHistogram::LowestValueAt(size_t index) const noexcept {
  if (index < sub_bucket_count_) return index;
  const int bucket =
      static_cast<int>(index / sub_bucket_half_count_) - 1;
  const uint64_t sub =
      index % sub_bucket_half_count_ + sub_bucket_half_count_;
  return sub << bucket;
}

uint64_t HdrHistogram::BinWidthAt(size_t index) const noexcept {
  if (index < sub_bucket_count_) return 1;
  const int bucket =
      static_cast<int>(index / sub_bucket_half_count_) - 1;
  return uint64_t{1} << bucket;
}

void HdrHistogram::Record(uint64_t value, uint64_t count) noexcept {
  if (count == 0) return;
  if (value > highest_trackable_) {
    value = highest_trackable_;
    clamped_count_ += count;
  }
  counts_[CountsIndexFor(value)] += count;
  total_count_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double HdrHistogram::QuantileOrNaN(double q) const noexcept {
  if (total_count_ == 0 || !(q >= 0.0 && q <= 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double rank = q * static_cast<double>(total_count_ - 1);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) > rank) {
      const double mid = static_cast<double>(LowestValueAt(i)) +
                         static_cast<double>(BinWidthAt(i)) / 2.0;
      // Exact extremes are tracked; never report beyond them.
      return std::clamp(mid, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

Result<double> HdrHistogram::Quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile must be in [0, 1], got " +
                                   std::to_string(q));
  }
  if (empty()) {
    return Status::InvalidArgument("quantile of an empty histogram");
  }
  return QuantileOrNaN(q);
}

Status HdrHistogram::MergeFrom(const HdrHistogram& other) {
  if (significant_digits_ != other.significant_digits_ ||
      highest_trackable_ != other.highest_trackable_) {
    return Status::Incompatible(
        "HDR histograms must share configuration to merge");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  clamped_count_ += other.clamped_count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  return Status::OK();
}

size_t HdrHistogram::size_in_bytes() const noexcept {
  return sizeof(*this) + counts_.capacity() * sizeof(uint64_t);
}

size_t HdrHistogram::num_buckets() const noexcept {
  size_t n = 0;
  for (uint64_t c : counts_) n += (c > 0);
  return n;
}

// Wire format: "HDRH" magic, version byte, significant digits byte,
// highest_trackable (varint), total/clamped counts, min/max (varints),
// non-empty slot count, then per slot: index delta (varint) and count
// (varint).
std::string HdrHistogram::Serialize() const {
  std::string out;
  out.append("HDRH", 4);
  out.push_back(1);
  out.push_back(static_cast<char>(significant_digits_));
  PutVarint64(&out, highest_trackable_);
  PutVarint64(&out, total_count_);
  PutVarint64(&out, clamped_count_);
  PutVarint64(&out, min_);
  PutVarint64(&out, max_);
  PutVarint64(&out, num_buckets());
  uint64_t prev = 0;
  bool first = true;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    PutVarint64(&out, first ? i : i - prev);
    PutVarint64(&out, counts_[i]);
    prev = i;
    first = false;
  }
  return out;
}

Result<HdrHistogram> HdrHistogram::Deserialize(std::string_view payload) {
  Slice in(payload);
  std::string_view header;
  DD_RETURN_IF_ERROR(in.GetBytes(6, &header));
  if (header.substr(0, 4) != "HDRH" || header[4] != 1) {
    return Status::Corruption("not an HdrHistogram v1 payload");
  }
  const int digits = static_cast<int>(header[5]);
  uint64_t highest = 0;
  DD_RETURN_IF_ERROR(in.GetVarint64(&highest));
  auto result = Create(digits, highest);
  if (!result.ok()) {
    return Status::Corruption("invalid histogram configuration: " +
                              result.status().message());
  }
  HdrHistogram histogram = std::move(result).value();
  DD_RETURN_IF_ERROR(in.GetVarint64(&histogram.total_count_));
  DD_RETURN_IF_ERROR(in.GetVarint64(&histogram.clamped_count_));
  DD_RETURN_IF_ERROR(in.GetVarint64(&histogram.min_));
  DD_RETURN_IF_ERROR(in.GetVarint64(&histogram.max_));
  uint64_t n_slots = 0;
  DD_RETURN_IF_ERROR(in.GetVarint64(&n_slots));
  uint64_t slot = 0;
  uint64_t summed = 0;
  for (uint64_t i = 0; i < n_slots; ++i) {
    uint64_t delta = 0, count = 0;
    DD_RETURN_IF_ERROR(in.GetVarint64(&delta));
    DD_RETURN_IF_ERROR(in.GetVarint64(&count));
    slot = (i == 0) ? delta : slot + delta;
    if (slot >= histogram.counts_.size() || count == 0 || (i > 0 && delta == 0)) {
      return Status::Corruption("invalid histogram slot entry");
    }
    histogram.counts_[slot] = count;
    summed += count;
  }
  if (!in.empty()) return Status::Corruption("trailing bytes");
  if (summed != histogram.total_count_) {
    return Status::Corruption("slot counts do not sum to total");
  }
  return histogram;
}

// ---------------------------------------------------------------------------
// HdrDoubleHistogram
// ---------------------------------------------------------------------------

Result<HdrDoubleHistogram> HdrDoubleHistogram::Create(int significant_digits,
                                                      double expected_min,
                                                      double expected_max) {
  if (!(expected_min > 0.0) || !(expected_max > expected_min)) {
    return Status::InvalidArgument(
        "need 0 < expected_min < expected_max for the fixed-point scale");
  }
  // Scale so the smallest expected value lands at 2 * 10^d integer units,
  // where a full digit of sub-bucket resolution is available.
  const double units_at_min =
      2.0 * std::pow(10.0, significant_digits);
  const double scale = units_at_min / expected_min;
  const double highest = expected_max * scale;
  if (!(highest < std::pow(2.0, 62))) {
    return Status::InvalidArgument(
        "expected range too wide: scaled maximum exceeds 2^62 "
        "(HDR histograms require a bounded range)");
  }
  auto histogram = HdrHistogram::Create(
      significant_digits, static_cast<uint64_t>(std::ceil(highest)));
  if (!histogram.ok()) return histogram.status();
  return HdrDoubleHistogram(std::move(histogram).value(), scale);
}

void HdrDoubleHistogram::Record(double value, uint64_t count) noexcept {
  if (!std::isfinite(value) || value < 0.0) {
    rejected_count_ += count;
    return;
  }
  histogram_.Record(static_cast<uint64_t>(std::llround(value * scale_)),
                    count);
}

double HdrDoubleHistogram::QuantileOrNaN(double q) const noexcept {
  return histogram_.QuantileOrNaN(q) / scale_;
}

Result<double> HdrDoubleHistogram::Quantile(double q) const {
  auto r = histogram_.Quantile(q);
  if (!r.ok()) return r.status();
  return r.value() / scale_;
}

Status HdrDoubleHistogram::MergeFrom(const HdrDoubleHistogram& other) {
  if (scale_ != other.scale_) {
    return Status::Incompatible(
        "HDR double histograms must share the fixed-point scale to merge");
  }
  rejected_count_ += other.rejected_count_;
  return histogram_.MergeFrom(other.histogram_);
}

// Wire format: "HDRD" magic, version byte, scale (double), rejected count
// (varint), then the embedded integer histogram payload.
std::string HdrDoubleHistogram::Serialize() const {
  std::string out;
  out.append("HDRD", 4);
  out.push_back(1);
  PutFixedDouble(&out, scale_);
  PutVarint64(&out, rejected_count_);
  out += histogram_.Serialize();
  return out;
}

Result<HdrDoubleHistogram> HdrDoubleHistogram::Deserialize(
    std::string_view payload) {
  Slice in(payload);
  std::string_view header;
  DD_RETURN_IF_ERROR(in.GetBytes(5, &header));
  if (header.substr(0, 4) != "HDRD" || header[4] != 1) {
    return Status::Corruption("not an HdrDoubleHistogram v1 payload");
  }
  double scale = 0;
  uint64_t rejected = 0;
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&scale));
  DD_RETURN_IF_ERROR(in.GetVarint64(&rejected));
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    return Status::Corruption("invalid fixed-point scale");
  }
  std::string_view rest;
  DD_RETURN_IF_ERROR(in.GetBytes(in.remaining(), &rest));
  auto inner = HdrHistogram::Deserialize(rest);
  if (!inner.ok()) return inner.status();
  HdrDoubleHistogram out(std::move(inner).value(), scale);
  out.rejected_count_ = rejected;
  return out;
}

}  // namespace dd
