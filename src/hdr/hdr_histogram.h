// HDR Histogram: the bounded-range relative-error histogram of Tene
// (http://hdrhistogram.org/), the other relative-error sketch the paper
// evaluates (§1.2, §4).
//
// Values are non-negative integers in [0, highest_trackable]. Accuracy is
// configured as d significant decimal digits: any recorded value is
// resolved to within 10^-d of its magnitude. Internally, values are binned
// into a two-level structure — a top level of power-of-two "buckets", each
// split into 2^ceil(log2(2*10^d))/2 linear sub-buckets — so indexing costs
// one count-leading-zeros and a couple of shifts (the paper: "extremely
// fast insertion times (only requiring low-level binary operations), as
// the bucket sizes are optimized for insertion speed instead of size").
//
// The trade-offs the paper calls out, all visible here: the range must be
// chosen up front (kOutOfRange/clamping otherwise), and the counts array is
// allocated for the whole range up front, which makes the footprint large
// (Figure 6) and merges linear in the array size rather than in the
// non-empty buckets (Figure 9: "fully mergeable (though very slow)").
//
// HdrDoubleHistogram adapts real-valued data by fixed-point scaling chosen
// from the expected [min, max] — exactly the up-front range knowledge
// DDSketch does not need.

#ifndef DDSKETCH_HDR_HDR_HISTOGRAM_H_
#define DDSKETCH_HDR_HDR_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dd {

/// Integer-valued HDR histogram.
class HdrHistogram {
 public:
  /// Builds a histogram covering [0, highest_trackable] with
  /// `significant_digits` in 1..5 decimal digits of value resolution.
  static Result<HdrHistogram> Create(int significant_digits,
                                     uint64_t highest_trackable);

  /// Records `count` occurrences of `value`. Values above the trackable
  /// range are clamped into the top bucket and counted in clamped_count().
  void Record(uint64_t value, uint64_t count = 1) noexcept;

  /// The q-quantile estimate (lower-quantile convention, midpoint of the
  /// containing bin). Fails if q is outside [0,1] or the histogram is
  /// empty.
  Result<double> Quantile(double q) const;
  /// NaN-returning form.
  double QuantileOrNaN(double q) const noexcept;

  /// Element-wise merge. Fails with Incompatible unless both histograms
  /// have identical configuration. Cost is linear in the counts array
  /// (the paper's "very slow" merge).
  Status MergeFrom(const HdrHistogram& other);

  uint64_t count() const noexcept { return total_count_; }
  bool empty() const noexcept { return total_count_ == 0; }
  uint64_t clamped_count() const noexcept { return clamped_count_; }
  uint64_t min() const noexcept { return min_; }
  uint64_t max() const noexcept { return max_; }

  int significant_digits() const noexcept { return significant_digits_; }
  uint64_t highest_trackable() const noexcept { return highest_trackable_; }

  /// Full allocated footprint (the counts array dominates), for Figure 6.
  size_t size_in_bytes() const noexcept;
  /// Counts array length (all slots, empty or not).
  size_t counts_array_length() const noexcept { return counts_.size(); }
  /// Non-empty bin count.
  size_t num_buckets() const noexcept;

  /// Serializes to a compact binary payload (non-empty slots only).
  std::string Serialize() const;
  /// Restores a histogram; fails with Corruption on malformed input.
  static Result<HdrHistogram> Deserialize(std::string_view payload);

  /// The slot a value bins into (exposed for tests).
  size_t CountsIndexFor(uint64_t value) const noexcept;
  /// The lowest value binning into slot `index` (exposed for tests).
  uint64_t LowestValueAt(size_t index) const noexcept;
  /// The bin width at slot `index` (exposed for tests).
  uint64_t BinWidthAt(size_t index) const noexcept;

 private:
  HdrHistogram(int significant_digits, uint64_t highest_trackable);

  int significant_digits_;
  uint64_t highest_trackable_;
  int sub_bucket_magnitude_;      // sub_bucket_count = 2^this
  uint64_t sub_bucket_count_;
  uint64_t sub_bucket_half_count_;
  int bucket_count_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  uint64_t clamped_count_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// Fixed-point adapter for real-valued data: values are scaled so that
/// `expected_min` lands at full sub-bucket resolution, then recorded into
/// an integer HdrHistogram covering `expected_max`. Values outside the
/// expected range lose the accuracy guarantee (below) or are clamped
/// (above) — the bounded-range limitation the paper contrasts with
/// DDSketch's arbitrary range.
class HdrDoubleHistogram {
 public:
  /// Fails unless 0 < expected_min < expected_max and the scaled range is
  /// trackable in 62 bits.
  static Result<HdrDoubleHistogram> Create(int significant_digits,
                                           double expected_min,
                                           double expected_max);

  /// Records a non-negative value (negative values are rejected and
  /// counted).
  void Record(double value, uint64_t count = 1) noexcept;

  Result<double> Quantile(double q) const;
  double QuantileOrNaN(double q) const noexcept;

  Status MergeFrom(const HdrDoubleHistogram& other);

  uint64_t count() const noexcept { return histogram_.count(); }
  bool empty() const noexcept { return histogram_.empty(); }
  uint64_t rejected_count() const noexcept { return rejected_count_; }
  size_t size_in_bytes() const noexcept {
    return sizeof(*this) - sizeof(HdrHistogram) + histogram_.size_in_bytes();
  }
  const HdrHistogram& integer_histogram() const noexcept {
    return histogram_;
  }

  /// Serializes scale + the embedded integer histogram.
  std::string Serialize() const;
  static Result<HdrDoubleHistogram> Deserialize(std::string_view payload);

 private:
  HdrDoubleHistogram(HdrHistogram histogram, double scale)
      : histogram_(std::move(histogram)), scale_(scale) {}

  HdrHistogram histogram_;
  double scale_;
  uint64_t rejected_count_ = 0;
};

}  // namespace dd

#endif  // DDSKETCH_HDR_HDR_HISTOGRAM_H_
