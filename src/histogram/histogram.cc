#include "histogram/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>

namespace dd {
namespace {

// Sum and sum-of-squares prefixes over sorted data, for O(1) SSE of any
// contiguous range [i, j).
struct Prefixes {
  std::vector<double> sum;
  std::vector<double> sum_sq;

  explicit Prefixes(std::span<const double> sorted) {
    sum.resize(sorted.size() + 1, 0.0);
    sum_sq.resize(sorted.size() + 1, 0.0);
    for (size_t i = 0; i < sorted.size(); ++i) {
      sum[i + 1] = sum[i] + sorted[i];
      sum_sq[i + 1] = sum_sq[i] + sorted[i] * sorted[i];
    }
  }

  // Squared error of representing [i, j) by its mean.
  double Sse(size_t i, size_t j) const {
    if (j <= i + 1) return 0.0;
    const double n = static_cast<double>(j - i);
    const double s = sum[j] - sum[i];
    return std::max(0.0, (sum_sq[j] - sum_sq[i]) - s * s / n);
  }

  double Mean(size_t i, size_t j) const {
    return (sum[j] - sum[i]) / static_cast<double>(j - i);
  }
};

std::vector<double> SortedCopy(std::span<const double> data) {
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

Histogram BucketsFromSplits(const std::vector<double>& sorted,
                            const Prefixes& prefixes,
                            const std::vector<size_t>& splits) {
  // `splits` are range starts, ascending, beginning with 0.
  std::vector<HistogramBucket> buckets;
  buckets.reserve(splits.size());
  for (size_t b = 0; b < splits.size(); ++b) {
    const size_t i = splits[b];
    const size_t j = b + 1 < splits.size() ? splits[b + 1] : sorted.size();
    assert(j > i);
    buckets.push_back({sorted[i], sorted[j - 1],
                       static_cast<uint64_t>(j - i), prefixes.Mean(i, j)});
  }
  return Histogram(std::move(buckets));
}

}  // namespace

Histogram::Histogram(std::vector<HistogramBucket> buckets)
    : buckets_(std::move(buckets)) {
  for (const HistogramBucket& b : buckets_) total_count_ += b.count;
}

double Histogram::QuantileOrNaN(double q) const noexcept {
  if (total_count_ == 0 || !(q >= 0.0 && q <= 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double rank = q * static_cast<double>(total_count_ - 1);
  double cum = 0;
  for (const HistogramBucket& b : buckets_) {
    cum += static_cast<double>(b.count);
    if (cum > rank) return b.representative;
  }
  return buckets_.back().representative;
}

double Histogram::SquaredError(std::span<const double> sorted_data) const {
  double total = 0;
  size_t bucket = 0;
  for (double x : sorted_data) {
    // Advance to the bucket covering x (buckets are ordered; items beyond
    // the last bucket's hi charge against the last representative).
    while (bucket + 1 < buckets_.size() && x > buckets_[bucket].hi) {
      ++bucket;
    }
    const double d = x - buckets_[bucket].representative;
    total += d * d;
  }
  return total;
}

Histogram Histogram::NaiveMerge(const Histogram& a, const Histogram& b,
                                size_t max_buckets) {
  // Union of boundaries -> segments; each source histogram contributes
  // count to a segment proportionally to overlap (uniform-within-bucket
  // assumption). This is the best one can do without the data — and is
  // precisely why the paper calls equi-depth histograms non-mergeable.
  std::vector<double> edges;
  for (const auto& h : {a, b}) {
    for (const HistogramBucket& bk : h.buckets()) {
      edges.push_back(bk.lo);
      edges.push_back(bk.hi);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  if (edges.size() < 2) {
    // Degenerate: single point mass.
    return Histogram({{edges.front(), edges.front(),
                       a.total_count() + b.total_count(), edges.front()}});
  }

  const double last_edge = edges.back();
  auto overlap_count = [last_edge](const Histogram& h, double lo, double hi) {
    double count = 0;
    for (const HistogramBucket& bk : h.buckets()) {
      const double width = bk.hi - bk.lo;
      if (width <= 0) {
        // Point-mass bucket: attribute to exactly one segment (half-open,
        // the final segment is closed at the top edge).
        if ((bk.lo >= lo && bk.lo < hi) || (bk.lo == hi && hi == last_edge)) {
          count += static_cast<double>(bk.count);
        }
        continue;
      }
      const double o = std::max(0.0, std::min(hi, bk.hi) - std::max(lo, bk.lo));
      count += static_cast<double>(bk.count) * (o / width);
    }
    return count;
  };

  std::vector<HistogramBucket> segments;
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    const double lo = edges[i];
    const double hi = edges[i + 1];
    const double count = overlap_count(a, lo, hi) + overlap_count(b, lo, hi);
    if (count <= 0) continue;
    segments.push_back({lo, hi, static_cast<uint64_t>(std::llround(count)),
                        (lo + hi) / 2});
  }
  // Reduce to max_buckets by fusing the adjacent pair with the smallest
  // combined count.
  while (segments.size() > max_buckets && segments.size() > 1) {
    size_t best = 0;
    uint64_t best_count = UINT64_MAX;
    for (size_t i = 0; i + 1 < segments.size(); ++i) {
      const uint64_t c = segments[i].count + segments[i + 1].count;
      if (c < best_count) {
        best_count = c;
        best = i;
      }
    }
    HistogramBucket fused = segments[best];
    const HistogramBucket& right = segments[best + 1];
    const double w_l = static_cast<double>(fused.count);
    const double w_r = static_cast<double>(right.count);
    fused.hi = right.hi;
    fused.representative =
        w_l + w_r > 0
            ? (fused.representative * w_l + right.representative * w_r) /
                  (w_l + w_r)
            : (fused.lo + fused.hi) / 2;
    fused.count += right.count;
    segments[best] = fused;
    segments.erase(segments.begin() + static_cast<ptrdiff_t>(best) + 1);
  }
  return Histogram(std::move(segments));
}

Result<Histogram> BuildEquiDepth(std::span<const double> data,
                                 size_t num_buckets) {
  if (data.empty() || num_buckets == 0) {
    return Status::InvalidArgument("equi-depth needs data and >= 1 bucket");
  }
  const auto sorted = SortedCopy(data);
  const size_t buckets = std::min(num_buckets, sorted.size());
  std::vector<HistogramBucket> out;
  out.reserve(buckets);
  const size_t base = sorted.size() / buckets;
  const size_t extra = sorted.size() % buckets;
  size_t i = 0;
  for (size_t b = 0; b < buckets; ++b) {
    const size_t len = base + (b < extra ? 1 : 0);
    const size_t j = i + len;
    out.push_back({sorted[i], sorted[j - 1], static_cast<uint64_t>(len),
                   sorted[i + len / 2]});  // median representative
    i = j;
  }
  return Histogram(std::move(out));
}

Result<Histogram> BuildVOptimal(std::span<const double> data,
                                size_t num_buckets) {
  if (data.empty() || num_buckets == 0) {
    return Status::InvalidArgument("v-optimal needs data and >= 1 bucket");
  }
  const size_t n = data.size();
  if (n > 20000) {
    return Status::ResourceExhausted(
        "exact v-optimal is O(B n^2); use BuildVOptimalGreedy for n > 20000");
  }
  const auto sorted = SortedCopy(data);
  const Prefixes prefixes(sorted);
  const size_t buckets = std::min(num_buckets, n);

  // dp[j] = best error covering the first j items with the current number
  // of buckets; from[b][j] = split position achieving it.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(n + 1, kInf);
  std::vector<std::vector<uint32_t>> from(
      buckets, std::vector<uint32_t>(n + 1, 0));
  for (size_t j = 1; j <= n; ++j) dp[j] = prefixes.Sse(0, j);
  for (size_t b = 1; b < buckets; ++b) {
    std::vector<double> next(n + 1, kInf);
    for (size_t j = b + 1; j <= n; ++j) {
      for (size_t i = b; i < j; ++i) {
        const double candidate = dp[i] + prefixes.Sse(i, j);
        if (candidate < next[j]) {
          next[j] = candidate;
          from[b][j] = static_cast<uint32_t>(i);
        }
      }
    }
    dp = std::move(next);
  }
  // Backtrack the split starts.
  std::vector<size_t> splits(buckets, 0);
  size_t j = n;
  for (size_t b = buckets; b-- > 1;) {
    splits[b] = from[b][j];
    j = splits[b];
  }
  return BucketsFromSplits(sorted, prefixes, splits);
}

Result<Histogram> BuildVOptimalGreedy(std::span<const double> data,
                                      size_t num_buckets) {
  if (data.empty() || num_buckets == 0) {
    return Status::InvalidArgument("v-optimal needs data and >= 1 bucket");
  }
  const auto sorted = SortedCopy(data);
  const Prefixes prefixes(sorted);
  const size_t buckets = std::min(num_buckets, sorted.size());

  // Ranges as [start, end) pairs; repeatedly split the range whose best
  // split reduces SSE the most.
  std::vector<std::pair<size_t, size_t>> ranges = {{0, sorted.size()}};
  auto best_split = [&](size_t i, size_t j) {
    double best_gain = 0;
    size_t best_pos = 0;
    const double whole = prefixes.Sse(i, j);
    for (size_t m = i + 1; m < j; ++m) {
      const double gain = whole - prefixes.Sse(i, m) - prefixes.Sse(m, j);
      if (gain > best_gain) {
        best_gain = gain;
        best_pos = m;
      }
    }
    return std::make_pair(best_gain, best_pos);
  };
  while (ranges.size() < buckets) {
    double best_gain = 0;
    size_t best_range = SIZE_MAX, best_pos = 0;
    for (size_t r = 0; r < ranges.size(); ++r) {
      const auto [gain, pos] = best_split(ranges[r].first, ranges[r].second);
      if (gain > best_gain) {
        best_gain = gain;
        best_range = r;
        best_pos = pos;
      }
    }
    if (best_range == SIZE_MAX) break;  // no split reduces error
    const auto [i, j] = ranges[best_range];
    ranges[best_range] = {i, best_pos};
    ranges.insert(ranges.begin() + static_cast<ptrdiff_t>(best_range) + 1,
                  {best_pos, j});
  }
  std::sort(ranges.begin(), ranges.end());
  std::vector<size_t> splits;
  splits.reserve(ranges.size());
  for (const auto& [i, j] : ranges) splits.push_back(i);
  return BucketsFromSplits(sorted, prefixes, splits);
}

}  // namespace dd
