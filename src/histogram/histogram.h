// Static histogram construction — the related line of work the paper
// contrasts with quantile sketches (§1.2, last two paragraphs):
//
//  * EquiDepthHistogram — B buckets of (near-)equal count. The paper names
//    equi-depth histograms as the canonical *non-mergeable* synopsis:
//    "there is no way to accurately combine overlapping buckets". The test
//    suite demonstrates the failure concretely.
//  * VOptimalHistogram — minimizes the total squared error (the L2
//    "v-optimal" objective) with the O(B n^2) dynamic program of Jagadish
//    et al. (VLDB '98), "usually considered to be too costly", plus a
//    cheap greedy split approximation for larger inputs.
//
// These are offline, whole-data-set constructions, not streaming sketches;
// they exist here to make the paper's Table 1 framing testable: histogram
// error guarantees are *global* (sum over items), never per-quantile, so
// any individual quantile query can be arbitrarily wrong.

#ifndef DDSKETCH_HISTOGRAM_HISTOGRAM_H_
#define DDSKETCH_HISTOGRAM_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace dd {

/// One histogram bucket over [lo, hi] holding `count` items whose
/// within-bucket representative is `representative` (mean for v-optimal,
/// median for equi-depth).
struct HistogramBucket {
  double lo;
  double hi;
  uint64_t count;
  double representative;
};

/// A finished histogram: buckets ordered by value range.
class Histogram {
 public:
  explicit Histogram(std::vector<HistogramBucket> buckets);

  const std::vector<HistogramBucket>& buckets() const { return buckets_; }
  uint64_t total_count() const { return total_count_; }

  /// The q-quantile estimate: walk buckets by count, answer the
  /// representative of the containing bucket.
  double QuantileOrNaN(double q) const noexcept;

  /// Sum over all items of (item - its bucket representative)^2 — the
  /// v-optimal objective, evaluated against the original data.
  double SquaredError(std::span<const double> sorted_data) const;

  /// Naive merge by bucket-boundary union and count splitting under a
  /// uniform assumption — what one would have to do to "merge" two
  /// histograms. Provided deliberately so tests can demonstrate how much
  /// accuracy this loses (the §1.2 non-mergeability point).
  static Histogram NaiveMerge(const Histogram& a, const Histogram& b,
                              size_t max_buckets);

 private:
  std::vector<HistogramBucket> buckets_;
  uint64_t total_count_ = 0;
};

/// Builds a B-bucket equi-depth histogram of `data` (need not be sorted).
Result<Histogram> BuildEquiDepth(std::span<const double> data,
                                 size_t num_buckets);

/// Exact v-optimal histogram via dynamic programming: O(B n^2) time,
/// O(B n) space. Fails with InvalidArgument for empty data or zero
/// buckets, ResourceExhausted when n is too large for the quadratic DP
/// (use BuildVOptimalGreedy instead).
Result<Histogram> BuildVOptimal(std::span<const double> data,
                                size_t num_buckets);

/// Greedy approximation: start with one bucket, repeatedly split the
/// bucket contributing the most squared error at its best split point.
/// O(n log n + B n). No optimality guarantee (the approximation-algorithm
/// setting §1.2 cites).
Result<Histogram> BuildVOptimalGreedy(std::span<const double> data,
                                      size_t num_buckets);

}  // namespace dd

#endif  // DDSKETCH_HISTOGRAM_HISTOGRAM_H_
