#include "kll/kll_sketch.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/varint.h"

namespace dd {
namespace {

// Geometric capacity decay per level below the top (the KLL paper's c;
// 2/3 is the standard engineering choice) and the floor below which
// levels stop shrinking.
constexpr double kDecay = 2.0 / 3.0;
constexpr size_t kMinLevelCapacity = 8;

}  // namespace

KllSketch::KllSketch(int k, uint64_t seed) : k_(k), rng_(seed) {
  levels_.emplace_back();
  levels_.front().reserve(static_cast<size_t>(k));
}

Result<KllSketch> KllSketch::Create(int k, uint64_t seed) {
  if (k < 8 || k > 65535) {
    return Status::InvalidArgument("k must be in [8, 65535], got " +
                                   std::to_string(k));
  }
  return KllSketch(k, seed);
}

size_t KllSketch::LevelCapacity(size_t h, size_t num_levels) const noexcept {
  // Top level gets k; each level below decays by kDecay.
  const double depth = static_cast<double>(num_levels - 1 - h);
  const double cap = static_cast<double>(k_) * std::pow(kDecay, depth);
  return std::max(kMinLevelCapacity, static_cast<size_t>(cap));
}

size_t KllSketch::TotalCapacity() const noexcept {
  size_t total = 0;
  for (size_t h = 0; h < levels_.size(); ++h) {
    total += LevelCapacity(h, levels_.size());
  }
  return total;
}

void KllSketch::Add(double value) {
  if (!std::isfinite(value)) {
    ++rejected_count_;
    return;
  }
  levels_.front().push_back(value);
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  CompactIfNeeded();
}

void KllSketch::CompactIfNeeded() {
  while (num_retained() > TotalCapacity()) {
    // Compact the lowest level at or over its own capacity; if none is
    // individually full (possible after merges), compact the fullest.
    size_t target = levels_.size();
    for (size_t h = 0; h < levels_.size(); ++h) {
      if (levels_[h].size() >= LevelCapacity(h, levels_.size())) {
        target = h;
        break;
      }
    }
    if (target == levels_.size()) {
      size_t best = 0;
      for (size_t h = 1; h < levels_.size(); ++h) {
        if (levels_[h].size() > levels_[best].size()) best = h;
      }
      target = best;
    }
    if (levels_[target].size() < 2) break;  // nothing compactable
    CompactLevel(target);
  }
}

void KllSketch::CompactLevel(size_t h) {
  if (h + 1 >= levels_.size()) levels_.emplace_back();
  std::vector<double>& level = levels_[h];
  std::sort(level.begin(), level.end());
  // Random parity: keep the odd- or even-indexed half, promoting it with
  // doubled weight. An odd-sized level keeps its last item in place so no
  // weight is lost.
  const size_t parity = rng_.NextU64() & 1;
  std::vector<double>& above = levels_[h + 1];
  const size_t pairs = level.size() / 2;
  for (size_t p = 0; p < pairs; ++p) {
    above.push_back(level[2 * p + parity]);
  }
  if (level.size() % 2 == 1) {
    level[0] = level.back();
    level.resize(1);
  } else {
    level.clear();
  }
}

Status KllSketch::MergeFrom(const KllSketch& other) {
  if (k_ != other.k_) {
    return Status::Incompatible("KLL sketches must share k to merge");
  }
  if (other.empty()) return Status::OK();
  while (levels_.size() < other.levels_.size()) levels_.emplace_back();
  for (size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  count_ += other.count_;
  rejected_count_ += other.rejected_count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  CompactIfNeeded();
  return Status::OK();
}

std::vector<std::pair<double, uint64_t>> KllSketch::SortedWeighted() const {
  std::vector<std::pair<double, uint64_t>> items;
  items.reserve(num_retained());
  for (size_t h = 0; h < levels_.size(); ++h) {
    const uint64_t weight = uint64_t{1} << h;
    for (double v : levels_[h]) items.emplace_back(v, weight);
  }
  std::sort(items.begin(), items.end());
  return items;
}

double KllSketch::QuantileOrNaN(double q) const noexcept {
  if (empty() || !(q >= 0.0 && q <= 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const auto items = SortedWeighted();
  // Retained weights sum to count_ exactly (compaction preserves total
  // weight); find the first item whose cumulative weight exceeds q(n-1).
  const double rank = q * static_cast<double>(count_ - 1);
  double cum = 0;
  for (const auto& [value, weight] : items) {
    cum += static_cast<double>(weight);
    if (cum > rank) return value;
  }
  return max_;
}

Result<double> KllSketch::Quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile must be in [0, 1], got " +
                                   std::to_string(q));
  }
  if (empty()) {
    return Status::InvalidArgument("quantile of an empty sketch");
  }
  return QuantileOrNaN(q);
}

double KllSketch::CdfOrNaN(double value) const noexcept {
  if (empty() || std::isnan(value)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double below = 0;
  for (size_t h = 0; h < levels_.size(); ++h) {
    const double weight = static_cast<double>(uint64_t{1} << h);
    for (double v : levels_[h]) {
      if (v <= value) below += weight;
    }
  }
  return below / static_cast<double>(count_);
}

size_t KllSketch::num_retained() const noexcept {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

size_t KllSketch::size_in_bytes() const noexcept {
  size_t total = sizeof(*this);
  for (const auto& level : levels_) {
    total += sizeof(level) + level.capacity() * sizeof(double);
  }
  return total;
}

// Wire format: "KLLS" magic, version byte, k (varint), count/rejected
// (varints), min/max (doubles), level count (varint), then per level:
// item count (varint) followed by the raw item doubles.
std::string KllSketch::Serialize() const {
  std::string out;
  out.reserve(32 + num_retained() * 8);
  out.append("KLLS", 4);
  out.push_back(1);
  PutVarint64(&out, static_cast<uint64_t>(k_));
  PutVarint64(&out, count_);
  PutVarint64(&out, rejected_count_);
  PutFixedDouble(&out, min_);
  PutFixedDouble(&out, max_);
  PutVarint64(&out, levels_.size());
  for (const auto& level : levels_) {
    PutVarint64(&out, level.size());
    for (double v : level) PutFixedDouble(&out, v);
  }
  return out;
}

Result<KllSketch> KllSketch::Deserialize(std::string_view payload) {
  Slice in(payload);
  std::string_view header;
  DD_RETURN_IF_ERROR(in.GetBytes(5, &header));
  if (header.substr(0, 4) != "KLLS" || header[4] != 1) {
    return Status::Corruption("not a KLL v1 payload");
  }
  uint64_t k = 0;
  DD_RETURN_IF_ERROR(in.GetVarint64(&k));
  if (k > 65535) return Status::Corruption("k out of range");
  auto result = Create(static_cast<int>(k));
  if (!result.ok()) return Status::Corruption("invalid k in payload");
  KllSketch sketch = std::move(result).value();
  DD_RETURN_IF_ERROR(in.GetVarint64(&sketch.count_));
  DD_RETURN_IF_ERROR(in.GetVarint64(&sketch.rejected_count_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.min_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.max_));
  uint64_t n_levels = 0;
  DD_RETURN_IF_ERROR(in.GetVarint64(&n_levels));
  if (n_levels == 0 || n_levels > 64) {
    return Status::Corruption("level count out of range");
  }
  sketch.levels_.clear();
  uint64_t total_weight = 0;
  for (uint64_t h = 0; h < n_levels; ++h) {
    uint64_t n_items = 0;
    DD_RETURN_IF_ERROR(in.GetVarint64(&n_items));
    if (n_items > payload.size()) {
      return Status::Corruption("level size exceeds payload");
    }
    std::vector<double> level(n_items);
    for (double& v : level) {
      DD_RETURN_IF_ERROR(in.GetFixedDouble(&v));
    }
    total_weight += n_items << h;
    sketch.levels_.push_back(std::move(level));
  }
  if (!in.empty()) return Status::Corruption("trailing bytes");
  if (total_weight != sketch.count_) {
    return Status::Corruption("level weights do not sum to count");
  }
  return sketch;
}

}  // namespace dd
