// KLL: the randomized rank-error quantile sketch of Karnin, Lang &
// Liberty ("Optimal quantile approximation in streams", FOCS 2016) —
// reference [25] of the paper, cited as the culmination of the
// randomized line of work: O((1/eps) log log (1/delta)) space with *full*
// mergeability, unlike GK. Like every rank-error sketch, its relative
// error on heavy tails is unbounded, which is the gap DDSketch targets.
//
// Structure: a hierarchy of compactors. Level h holds items representing
// 2^h original values each. When a level overflows its capacity, it is
// sorted and every other item (random parity) is promoted to level h+1 —
// halving the item count while doubling the weight and adding at most
// half a weight-2^h rank perturbation. Capacities decay geometrically
// (factor ~2/3) from the top level's k, so total space is O(k).
//
// With the default k = 200 the single-sided rank error is ~1.65% at 99%
// confidence (Apache DataSketches' published operating point); k scales
// the accuracy as ~O(1/k).

#ifndef DDSKETCH_KLL_KLL_SKETCH_H_
#define DDSKETCH_KLL_KLL_SKETCH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace dd {

/// Randomized, fully-mergeable rank-error quantile sketch.
class KllSketch {
 public:
  /// `k` is the top-level capacity (accuracy knob); `seed` fixes the
  /// compaction coin flips so runs are reproducible.
  static Result<KllSketch> Create(int k = 200, uint64_t seed = 0xD15EA5EDULL);

  /// Adds one value (NaN/inf ignored and counted).
  void Add(double value);

  /// Full merge: levels concatenate, then compact. The result is a valid
  /// KLL sketch over the union regardless of merge order or tree shape
  /// (the property GK lacks).
  Status MergeFrom(const KllSketch& other);

  /// The q-quantile estimate (lower-quantile convention).
  Result<double> Quantile(double q) const;
  /// NaN-returning form.
  double QuantileOrNaN(double q) const noexcept;

  /// Approximate normalized rank of `value` (fraction of stream <= value).
  double CdfOrNaN(double value) const noexcept;

  uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  int k() const noexcept { return k_; }
  uint64_t rejected_count() const noexcept { return rejected_count_; }

  /// Items currently retained across all levels (the O(k) space bound).
  size_t num_retained() const noexcept;
  /// Number of compactor levels.
  size_t num_levels() const noexcept { return levels_.size(); }
  /// Live memory footprint.
  size_t size_in_bytes() const noexcept;

  /// Serializes levels + counters. The compaction RNG state is not
  /// captured: a deserialized sketch continues with fresh coin flips,
  /// which preserves the accuracy guarantee but not bit-identical future
  /// compactions.
  std::string Serialize() const;
  static Result<KllSketch> Deserialize(std::string_view payload);

 private:
  KllSketch(int k, uint64_t seed);

  /// Capacity of level `h` when `num_levels` levels exist.
  size_t LevelCapacity(size_t h, size_t num_levels) const noexcept;
  /// Total capacity across current levels.
  size_t TotalCapacity() const noexcept;
  /// While over capacity, compact the lowest overfull level.
  void CompactIfNeeded();
  /// Sorts level h and promotes a random half to level h+1.
  void CompactLevel(size_t h);

  /// Collects (value, weight) pairs sorted by value.
  std::vector<std::pair<double, uint64_t>> SortedWeighted() const;

  int k_;
  Rng rng_;
  std::vector<std::vector<double>> levels_;  // levels_[h]: weight 2^h items
  uint64_t count_ = 0;
  uint64_t rejected_count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dd

#endif  // DDSKETCH_KLL_KLL_SKETCH_H_
