#include "moments/chebyshev.h"

namespace dd {

std::vector<std::vector<double>> ChebyshevCoefficients(size_t k) {
  std::vector<std::vector<double>> coeffs(k + 1);
  coeffs[0] = {1.0};
  if (k == 0) return coeffs;
  coeffs[1] = {0.0, 1.0};
  for (size_t j = 2; j <= k; ++j) {
    std::vector<double> c(j + 1, 0.0);
    // T_j = 2x T_{j-1} - T_{j-2}
    for (size_t i = 0; i < coeffs[j - 1].size(); ++i) {
      c[i + 1] += 2.0 * coeffs[j - 1][i];
    }
    for (size_t i = 0; i < coeffs[j - 2].size(); ++i) {
      c[i] -= coeffs[j - 2][i];
    }
    coeffs[j] = std::move(c);
  }
  return coeffs;
}

std::vector<double> PowerToChebyshevMoments(const std::vector<double>& mu) {
  const size_t k = mu.size() - 1;
  const auto coeffs = ChebyshevCoefficients(k);
  std::vector<double> m(k + 1, 0.0);
  for (size_t j = 0; j <= k; ++j) {
    double acc = 0.0;
    for (size_t i = 0; i < coeffs[j].size(); ++i) {
      acc += coeffs[j][i] * mu[i];
    }
    m[j] = acc;
  }
  return m;
}

}  // namespace dd
