// Chebyshev polynomial utilities for the maximum-entropy solver.
//
// The solver works in the Chebyshev basis T_0..T_k on [-1, 1] because the
// Hessian (Gram matrix of basis products under the current density) is far
// better conditioned there than in the monomial basis — the same choice as
// the reference momentsketch solver (Gan et al., VLDB 2018).

#ifndef DDSKETCH_MOMENTS_CHEBYSHEV_H_
#define DDSKETCH_MOMENTS_CHEBYSHEV_H_

#include <cstddef>
#include <vector>

namespace dd {

/// Evaluates T_0(x)..T_k(x) into `out` (size k+1) via the three-term
/// recurrence T_{j+1} = 2x T_j - T_{j-1}.
inline void ChebyshevValues(double x, size_t k, double* out) noexcept {
  out[0] = 1.0;
  if (k == 0) return;
  out[1] = x;
  for (size_t j = 2; j <= k; ++j) {
    out[j] = 2.0 * x * out[j - 1] - out[j - 2];
  }
}

/// Returns the monomial coefficients of T_0..T_k: result[j][i] is the
/// coefficient of x^i in T_j. Used to convert power moments E[x^i] into
/// Chebyshev moments E[T_j(x)].
std::vector<std::vector<double>> ChebyshevCoefficients(size_t k);

/// Converts power moments mu[i] = E[x^i], i = 0..k (x supported on
/// [-1, 1]) into Chebyshev moments m[j] = E[T_j(x)].
std::vector<double> PowerToChebyshevMoments(const std::vector<double>& mu);

}  // namespace dd

#endif  // DDSKETCH_MOMENTS_CHEBYSHEV_H_
