#include "moments/maxent_solver.h"

#include <algorithm>
#include <cmath>

#include "moments/chebyshev.h"

namespace dd {

double MaxEntDensity::QuantileU(double q) const noexcept {
  q = std::clamp(q, 0.0, 1.0);
  // First grid point with CDF >= q; interpolate within the segment.
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), q);
  if (it == cdf_.begin()) return grid_.front();
  if (it == cdf_.end()) return grid_.back();
  const size_t hi = static_cast<size_t>(it - cdf_.begin());
  const size_t lo = hi - 1;
  const double span = cdf_[hi] - cdf_[lo];
  const double frac = span > 0.0 ? (q - cdf_[lo]) / span : 0.0;
  return grid_[lo] + frac * (grid_[hi] - grid_[lo]);
}

bool CholeskySolve(std::vector<double>& a, std::vector<double>& b, size_t n) {
  // In-place LL^T factorization (lower triangle).
  for (size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (size_t p = 0; p < j; ++p) diag -= a[j * n + p] * a[j * n + p];
    if (!(diag > 0.0)) return false;
    const double root = std::sqrt(diag);
    a[j * n + j] = root;
    for (size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (size_t p = 0; p < j; ++p) v -= a[i * n + p] * a[j * n + p];
      a[i * n + j] = v / root;
    }
  }
  // Forward substitution: L y = b.
  for (size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (size_t p = 0; p < i; ++p) v -= a[i * n + p] * b[p];
    b[i] = v / a[i * n + i];
  }
  // Back substitution: L^T x = y.
  for (size_t ir = n; ir-- > 0;) {
    double v = b[ir];
    for (size_t p = ir + 1; p < n; ++p) v -= a[p * n + ir] * b[p];
    b[ir] = v / a[ir * n + ir];
  }
  return true;
}

namespace {

/// Precomputed T_j values on the quadrature grid plus trapezoid weights.
struct GridBasis {
  std::vector<double> grid;     // N points on [-1, 1]
  std::vector<double> weights;  // trapezoid quadrature weights
  std::vector<double> basis;    // basis[j * N + p] = T_j(grid[p])

  GridBasis(size_t n_points, size_t k) {
    grid.resize(n_points);
    weights.resize(n_points);
    basis.resize((k + 1) * n_points);
    const double h = 2.0 / static_cast<double>(n_points - 1);
    std::vector<double> t(k + 1);
    for (size_t p = 0; p < n_points; ++p) {
      grid[p] = -1.0 + h * static_cast<double>(p);
      weights[p] = (p == 0 || p == n_points - 1) ? h / 2.0 : h;
      ChebyshevValues(grid[p], k, t.data());
      for (size_t j = 0; j <= k; ++j) basis[j * n_points + p] = t[j];
    }
  }
};

}  // namespace

Result<MaxEntDensity> SolveMaxEntropy(
    const std::vector<double>& chebyshev_moments,
    const MaxEntSolverOptions& options) {
  if (chebyshev_moments.empty()) {
    return Status::InvalidArgument("need at least the 0th moment");
  }
  const size_t k = chebyshev_moments.size() - 1;
  const size_t dim = k + 1;
  const size_t n_points = std::max<size_t>(options.grid_size, 4 * dim);
  const GridBasis gb(n_points, k);

  // Start from the uniform density on [-1, 1]: lambda_0 = log(1/2),
  // integrating to exactly m_0 = 1.
  std::vector<double> lambda(dim, 0.0);
  lambda[0] = std::log(0.5);

  std::vector<double> density(n_points);
  std::vector<double> grad(dim);
  std::vector<double> hess(dim * dim);
  std::vector<double> step(dim);

  auto evaluate = [&](const std::vector<double>& lam,
                      std::vector<double>& dens) {
    double potential = 0.0;
    for (size_t p = 0; p < n_points; ++p) {
      double e = 0.0;
      for (size_t j = 0; j < dim; ++j) {
        e += lam[j] * gb.basis[j * n_points + p];
      }
      dens[p] = std::exp(e);
      potential += gb.weights[p] * dens[p];
    }
    for (size_t j = 0; j < dim; ++j) {
      potential -= lam[j] * chebyshev_moments[j];
    }
    return potential;
  };

  double potential = evaluate(lambda, density);
  bool converged = false;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Gradient: model moments minus target moments.
    double grad_norm = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      double g = 0.0;
      for (size_t p = 0; p < n_points; ++p) {
        g += gb.weights[p] * gb.basis[j * n_points + p] * density[p];
      }
      grad[j] = g - chebyshev_moments[j];
      grad_norm = std::max(grad_norm, std::abs(grad[j]));
    }
    if (grad_norm < options.gradient_tolerance) {
      converged = true;
      break;
    }
    // Hessian: Gram matrix of the basis under the model density.
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = i; j < dim; ++j) {
        double h = 0.0;
        for (size_t p = 0; p < n_points; ++p) {
          h += gb.weights[p] * gb.basis[i * n_points + p] *
               gb.basis[j * n_points + p] * density[p];
        }
        hess[i * dim + j] = h;
        hess[j * dim + i] = h;
      }
    }
    // Newton step with escalating ridge until the factorization succeeds.
    std::copy(grad.begin(), grad.end(), step.begin());
    double ridge = options.ridge;
    std::vector<double> h_work;
    while (true) {
      h_work = hess;
      for (size_t i = 0; i < dim; ++i) h_work[i * dim + i] += ridge;
      std::copy(grad.begin(), grad.end(), step.begin());
      if (CholeskySolve(h_work, step, dim)) break;
      ridge = std::max(ridge * 100.0, 1e-10);
      if (ridge > 1e6) {
        return Status::Internal("maxent Hessian irreparably singular");
      }
    }
    // Backtracking line search on the convex potential.
    double scale = 1.0;
    bool improved = false;
    std::vector<double> candidate(dim);
    std::vector<double> cand_density(n_points);
    for (int half = 0; half < 40; ++half) {
      for (size_t j = 0; j < dim; ++j) {
        candidate[j] = lambda[j] - scale * step[j];
      }
      const double cand_potential = evaluate(candidate, cand_density);
      if (std::isfinite(cand_potential) && cand_potential < potential) {
        lambda.swap(candidate);
        density.swap(cand_density);
        potential = cand_potential;
        improved = true;
        break;
      }
      scale *= 0.5;
    }
    if (!improved) {
      // Stuck at numerical precision: accept the current model if the
      // residual is small enough to be usable, else fail.
      converged = grad_norm < 1e-4;
      break;
    }
  }
  if (!converged) {
    // Final residual check (the loop may exhaust iterations while already
    // being essentially converged).
    double grad_norm = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      double g = 0.0;
      for (size_t p = 0; p < n_points; ++p) {
        g += gb.weights[p] * gb.basis[j * n_points + p] * density[p];
      }
      grad_norm = std::max(grad_norm, std::abs(g - chebyshev_moments[j]));
    }
    if (grad_norm > 1e-4) {
      return Status::Internal("maxent solver did not converge");
    }
  }

  // Build the normalized CDF over the grid (trapezoid accumulation).
  std::vector<double> cdf(n_points, 0.0);
  for (size_t p = 1; p < n_points; ++p) {
    const double h = gb.grid[p] - gb.grid[p - 1];
    cdf[p] = cdf[p - 1] + 0.5 * h * (density[p] + density[p - 1]);
  }
  const double total = cdf.back();
  if (!(total > 0.0) || !std::isfinite(total)) {
    return Status::Internal("maxent density integrates to a non-positive "
                            "or non-finite mass");
  }
  for (double& c : cdf) c /= total;
  return MaxEntDensity(gb.grid, std::move(cdf));
}

}  // namespace dd
