// Maximum-entropy density estimation from Chebyshev moments.
//
// Given moments m_j = E[T_j(u)] for u supported on [-1, 1], finds the
// maximum-entropy density f(u) = exp(sum_j lambda_j T_j(u)) whose moments
// match, by minimizing the convex dual potential
//   F(lambda) = integral exp(sum_j lambda_j T_j(u)) du - sum_j lambda_j m_j
// with a damped Newton method (gradient = model moments - target moments,
// Hessian = Gram matrix of T_i T_j under the model density). Integrals are
// taken on a fixed uniform grid with trapezoid weights; the grid doubles as
// the CDF support for quantile inversion. This follows the solver design of
// the Moments sketch paper (Gan, Ding, Tai, Sharan & Bailis, VLDB 2018).

#ifndef DDSKETCH_MOMENTS_MAXENT_SOLVER_H_
#define DDSKETCH_MOMENTS_MAXENT_SOLVER_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace dd {

/// Solver configuration; defaults match the reference implementation's
/// operating point.
struct MaxEntSolverOptions {
  size_t grid_size = 1024;      ///< quadrature / CDF grid points on [-1, 1]
  size_t max_iterations = 200;  ///< Newton iteration cap
  double gradient_tolerance = 1e-9;  ///< stop when ||grad||_inf below this
  double ridge = 1e-12;         ///< Tikhonov term if the Hessian is singular
};

/// Result of a solve: the grid and the (unnormalized) CDF over it.
class MaxEntDensity {
 public:
  MaxEntDensity(std::vector<double> grid, std::vector<double> cdf)
      : grid_(std::move(grid)), cdf_(std::move(cdf)) {}

  /// The u in [-1, 1] with CDF(u) ~= q (linear interpolation on the grid).
  double QuantileU(double q) const noexcept;

  const std::vector<double>& grid() const noexcept { return grid_; }
  const std::vector<double>& cdf() const noexcept { return cdf_; }

 private:
  std::vector<double> grid_;
  std::vector<double> cdf_;  // normalized to cdf_.back() == 1
};

/// Solves for the maxent density matching `chebyshev_moments`
/// (m_0 must be 1). Fails with Internal if Newton does not converge —
/// callers typically retry with fewer moments, mirroring the reference
/// implementation's fallback.
Result<MaxEntDensity> SolveMaxEntropy(
    const std::vector<double>& chebyshev_moments,
    const MaxEntSolverOptions& options = {});

/// Solves a symmetric positive-definite system in place via Cholesky;
/// returns false if the matrix is not positive definite. `a` is row-major
/// n x n, `b` has n entries and receives the solution. Exposed for tests.
bool CholeskySolve(std::vector<double>& a, std::vector<double>& b, size_t n);

}  // namespace dd

#endif  // DDSKETCH_MOMENTS_MAXENT_SOLVER_H_
