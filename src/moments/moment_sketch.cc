#include "moments/moment_sketch.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "moments/chebyshev.h"
#include "util/varint.h"

namespace dd {
namespace {

// Pascal-triangle binomials up to row n.
std::vector<std::vector<double>> Binomials(size_t n) {
  std::vector<std::vector<double>> c(n + 1);
  for (size_t i = 0; i <= n; ++i) {
    c[i].assign(i + 1, 1.0);
    for (size_t j = 1; j < i; ++j) c[i][j] = c[i - 1][j - 1] + c[i - 1][j];
  }
  return c;
}

}  // namespace

MomentSketch::MomentSketch(int num_moments, bool compress)
    : compress_(compress), power_sums_(static_cast<size_t>(num_moments) + 1) {}

Result<MomentSketch> MomentSketch::Create(int num_moments, bool compress) {
  if (num_moments < 2 || num_moments > 40) {
    return Status::InvalidArgument("num_moments must be in [2, 40], got " +
                                   std::to_string(num_moments));
  }
  return MomentSketch(num_moments, compress);
}

double MomentSketch::Transform(double x) const noexcept {
  return compress_ ? std::asinh(x) : x;
}

double MomentSketch::InverseTransform(double t) const noexcept {
  return compress_ ? std::sinh(t) : t;
}

void MomentSketch::Add(double value) noexcept { Add(value, 1); }

void MomentSketch::Add(double value, uint64_t count) noexcept {
  if (count == 0 || !std::isfinite(value)) return;
  const double t = Transform(value);
  min_t_ = std::min(min_t_, t);
  max_t_ = std::max(max_t_, t);
  count_ += count;
  const double w = static_cast<double>(count);
  double power = 1.0;
  for (double& sum : power_sums_) {
    sum += w * power;
    power *= t;
  }
}

Status MomentSketch::MergeFrom(const MomentSketch& other) {
  if (power_sums_.size() != other.power_sums_.size() ||
      compress_ != other.compress_) {
    return Status::Incompatible(
        "moment sketches must share k and the compression flag to merge");
  }
  for (size_t i = 0; i < power_sums_.size(); ++i) {
    power_sums_[i] += other.power_sums_[i];
  }
  count_ += other.count_;
  min_t_ = std::min(min_t_, other.min_t_);
  max_t_ = std::max(max_t_, other.max_t_);
  return Status::OK();
}

double MomentSketch::min() const noexcept { return InverseTransform(min_t_); }
double MomentSketch::max() const noexcept { return InverseTransform(max_t_); }

std::vector<double> MomentSketch::ScaledChebyshevMoments(size_t k) const {
  // Affine map u = a t + b sending [min_t, max_t] to [-1, 1], then power
  // moments of u via binomial expansion of (a t + b)^j over the raw power
  // sums. This expansion is where wide data ranges lose precision: the
  // terms are huge and alternating (the Moments sketch's documented
  // weakness on the span data set).
  const double range = max_t_ - min_t_;
  const double a = 2.0 / range;
  const double b = -(max_t_ + min_t_) / range;
  const double n = static_cast<double>(count_);
  const auto binom = Binomials(k);
  std::vector<double> mu(k + 1, 0.0);
  for (size_t j = 0; j <= k; ++j) {
    double acc = 0.0;
    double a_pow = 1.0;  // a^i, built up with i
    for (size_t i = 0; i <= j; ++i) {
      const double b_pow = std::pow(b, static_cast<double>(j - i));
      acc += binom[j][i] * a_pow * b_pow * (power_sums_[i] / n);
      a_pow *= a;
    }
    mu[j] = acc;
  }
  return PowerToChebyshevMoments(mu);
}

Result<std::vector<double>> MomentSketch::Quantiles(
    std::span<const double> qs) const {
  if (empty()) {
    return Status::InvalidArgument("quantile of an empty sketch");
  }
  for (double q : qs) {
    if (!(q >= 0.0 && q <= 1.0)) {
      return Status::InvalidArgument("quantile must be in [0, 1], got " +
                                     std::to_string(q));
    }
  }
  std::vector<double> out;
  out.reserve(qs.size());
  // Degenerate support: every value equal (or a single value).
  if (!(max_t_ - min_t_ > 0.0)) {
    for (size_t i = 0; i < qs.size(); ++i) {
      out.push_back(InverseTransform(min_t_));
    }
    return out;
  }
  // Solve at full k; on failure retry with fewer moments (the reference
  // solver's fallback ladder). Even k keeps the basis symmetric-friendly.
  const size_t k_max = power_sums_.size() - 1;
  for (size_t k = k_max;; k = (k > 4 ? k - 2 : k - 1)) {
    auto solved = SolveMaxEntropy(ScaledChebyshevMoments(k));
    if (solved.ok()) {
      const MaxEntDensity& density = solved.value();
      for (double q : qs) {
        const double u = density.QuantileU(q);
        const double t = (u * (max_t_ - min_t_) + max_t_ + min_t_) / 2.0;
        out.push_back(
            std::clamp(InverseTransform(t), min(), max()));
      }
      return out;
    }
    if (k <= 2) {
      return Status::Internal("maxent inversion failed at every k: " +
                              solved.status().message());
    }
  }
}

Result<double> MomentSketch::Quantile(double q) const {
  auto r = Quantiles(std::span<const double>(&q, 1));
  if (!r.ok()) return r.status();
  return r.value()[0];
}

double MomentSketch::QuantileOrNaN(double q) const noexcept {
  auto r = Quantile(q);
  return r.ok() ? r.value() : std::numeric_limits<double>::quiet_NaN();
}

// Wire format: "MOMT" magic, version byte, k byte, compress byte, count
// (varint), min_t/max_t (doubles), then k+1 power sums (doubles). This is
// the sketch's headline property made concrete: the payload size is
// constant, independent of n.
std::string MomentSketch::Serialize() const {
  std::string out;
  out.reserve(32 + power_sums_.size() * 8);
  out.append("MOMT", 4);
  out.push_back(1);
  out.push_back(static_cast<char>(num_moments()));
  out.push_back(compress_ ? 1 : 0);
  PutVarint64(&out, count_);
  PutFixedDouble(&out, min_t_);
  PutFixedDouble(&out, max_t_);
  for (double sum : power_sums_) PutFixedDouble(&out, sum);
  return out;
}

Result<MomentSketch> MomentSketch::Deserialize(std::string_view payload) {
  Slice in(payload);
  std::string_view header;
  DD_RETURN_IF_ERROR(in.GetBytes(7, &header));
  if (header.substr(0, 4) != "MOMT" || header[4] != 1) {
    return Status::Corruption("not a MomentSketch v1 payload");
  }
  const int k = static_cast<int>(header[5]);
  const bool compress = header[6] != 0;
  auto result = Create(k, compress);
  if (!result.ok()) {
    return Status::Corruption("invalid moment count in payload");
  }
  MomentSketch sketch = std::move(result).value();
  DD_RETURN_IF_ERROR(in.GetVarint64(&sketch.count_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.min_t_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&sketch.max_t_));
  for (double& sum : sketch.power_sums_) {
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&sum));
  }
  if (!in.empty()) return Status::Corruption("trailing bytes");
  if (sketch.count_ > 0 &&
      std::llround(sketch.power_sums_[0]) !=
          static_cast<long long>(sketch.count_)) {
    return Status::Corruption("0th power sum does not match count");
  }
  return sketch;
}

}  // namespace dd
