// The Moments sketch (Gan et al., VLDB 2018): a constant-size quantile
// summary storing the first k power sums of the data (optionally of
// arcsinh-compressed data), with quantile estimates recovered by
// maximum-entropy inversion.
//
// The paper under reproduction evaluates it with k = 20 and "compression"
// (the arcsinh transform) enabled (Table 2). Properties the evaluation
// exercises, all present here:
//  * O(k) size, independent of n (smallest line in Figure 6);
//  * the fastest merges of all sketches — k additions (Figure 9);
//  * guarantees only on *average* rank error, and in practice large
//    relative errors on heavy tails and wide ranges: converting power sums
//    of wide-ranged data into scaled moments cancels catastrophically
//    (Figure 10, span column — "the Moments sketch has particular
//    difficulty with the span data set").

#ifndef DDSKETCH_MOMENTS_MOMENT_SKETCH_H_
#define DDSKETCH_MOMENTS_MOMENT_SKETCH_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "moments/maxent_solver.h"
#include "util/status.h"

namespace dd {

/// Quantile sketch storing k power sums (and min/max) of the stream.
class MomentSketch {
 public:
  /// `num_moments` is k in the paper's Table 2 (there: 20, the maximum the
  /// reference implementation recommends). `compress` applies arcsinh to
  /// every value before accumulation, improving behaviour on heavy tails.
  static Result<MomentSketch> Create(int num_moments, bool compress = true);

  /// Adds a value. O(k): one multiply-accumulate per stored power.
  void Add(double value) noexcept;

  /// Adds a value `count` times (power sums scale linearly in count).
  void Add(double value, uint64_t count) noexcept;

  /// Fully mergeable: element-wise sums of power sums. O(k).
  Status MergeFrom(const MomentSketch& other);

  /// The q-quantile estimate from the maximum-entropy density matching the
  /// stored moments. Runs the Newton solver (milliseconds); if the full-k
  /// solve fails, retries with progressively fewer moments (reference
  /// implementation behaviour). Fails only if even k = 2 is unsolvable.
  Result<double> Quantile(double q) const;

  /// Batch form: one solver run for all quantiles.
  Result<std::vector<double>> Quantiles(std::span<const double> qs) const;

  /// NaN-returning convenience form.
  double QuantileOrNaN(double q) const noexcept;

  uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double min() const noexcept;  ///< in data units (inverse-transformed)
  double max() const noexcept;
  int num_moments() const noexcept {
    return static_cast<int>(power_sums_.size()) - 1;
  }
  bool compressed() const noexcept { return compress_; }

  /// Constant footprint — the headline property (Figure 6).
  size_t size_in_bytes() const noexcept {
    return sizeof(*this) + power_sums_.capacity() * sizeof(double);
  }

  /// The raw accumulated power sums (index i = sum of t^i); for tests.
  const std::vector<double>& power_sums() const noexcept {
    return power_sums_;
  }

  /// Serializes the constant-size state (k + 3 doubles).
  std::string Serialize() const;
  static Result<MomentSketch> Deserialize(std::string_view payload);

 private:
  MomentSketch(int num_moments, bool compress);

  /// Chebyshev moments of the transform-domain data scaled to [-1, 1],
  /// using `k + 1` of the stored sums.
  std::vector<double> ScaledChebyshevMoments(size_t k) const;

  double Transform(double x) const noexcept;
  double InverseTransform(double t) const noexcept;

  bool compress_;
  uint64_t count_ = 0;
  double min_t_ = std::numeric_limits<double>::infinity();
  double max_t_ = -std::numeric_limits<double>::infinity();
  std::vector<double> power_sums_;  // power_sums_[i] = sum over data of t^i
};

}  // namespace dd

#endif  // DDSKETCH_MOMENTS_MOMENT_SKETCH_H_
