#include "server/admission.h"

#include <algorithm>
#include <cmath>

namespace dd {
namespace {

constexpr double kRefillEwmaAlpha = 0.2;

uint64_t Overflow(uint64_t staged, uint64_t floor) {
  return staged > floor ? staged - floor : 0;
}

}  // namespace

TagAdmissionLedger::TagAdmissionLedger(
    uint64_t total_budget, double floor_fraction,
    const std::vector<std::pair<std::string, uint64_t>>& weights)
    : total_budget_(total_budget), floor_fraction_(floor_fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  RegisterTagLocked("default", 1);
  for (const auto& [tag, weight] : weights) {
    if (tags_.size() >= kMaxTags) break;  // callers validate the count; defensive bound
    auto it = ids_.find(tag);
    if (it != ids_.end()) {
      tags_[it->second].weight = std::max<uint64_t>(weight, 1);
    } else {
      RegisterTagLocked(tag, std::max<uint64_t>(weight, 1));
    }
  }
  // Floors are computed once, here: only configured tags hold a slice
  // of the reserve, and nothing registered later can move it.
  ComputeFloorsLocked();
}

bool TagAdmissionLedger::ValidTagName(std::string_view tag) {
  if (tag.empty() || tag.size() > kMaxTagLength) return false;
  for (char c : tag) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::optional<uint32_t> TagAdmissionLedger::RegisterTag(
    std::string_view tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(tag));
  if (it != ids_.end()) return it->second;
  if (tags_.size() >= kMaxTags) return std::nullopt;
  // Weight 0: a late arrival borrows from the shared pool only. Floors
  // stay exactly where the operator configured them, so registering N
  // junk tags buys an attacker nothing but pool contention.
  return RegisterTagLocked(tag, 0);
}

uint32_t TagAdmissionLedger::RegisterTagLocked(std::string_view tag,
                                               uint64_t weight) {
  const uint32_t id = static_cast<uint32_t>(tags_.size());
  Tag entry;
  entry.name.assign(tag);
  entry.weight = weight;
  tags_.push_back(std::move(entry));
  ids_.emplace(tags_.back().name, id);
  return id;
}

void TagAdmissionLedger::ComputeFloorsLocked() {
  if (total_budget_ == 0) {
    for (Tag& tag : tags_) tag.floor = 0;
    shared_pool_ = 0;
    return;
  }
  uint64_t weight_sum = 0;
  for (const Tag& tag : tags_) weight_sum += tag.weight;
  const double reserve =
      static_cast<double>(total_budget_) * floor_fraction_;
  uint64_t floor_sum = 0;
  for (Tag& tag : tags_) {
    tag.floor = static_cast<uint64_t>(
        reserve * static_cast<double>(tag.weight) /
        static_cast<double>(weight_sum));
    floor_sum += tag.floor;
  }
  // Rounding always rounds down, so the floors can never oversubscribe
  // the budget; the slack joins the shared pool.
  shared_pool_ = total_budget_ - floor_sum;
}

uint64_t TagAdmissionLedger::SharedUsedLocked() const {
  uint64_t used = 0;
  for (const Tag& tag : tags_) used += Overflow(tag.staged, tag.floor);
  return used;
}

uint64_t TagAdmissionLedger::RetryHintMsLocked(const Tag& tag,
                                               uint64_t deficit) const {
  if (tag.refill_bytes_per_ms <= 0) return kDefaultRetryMs;
  const double ms =
      static_cast<double>(deficit) / tag.refill_bytes_per_ms;
  if (ms <= 1.0) return 1;
  if (ms >= static_cast<double>(kMaxRetryMs)) return kMaxRetryMs;
  return static_cast<uint64_t>(ms);
}

bool TagAdmissionLedger::TryAdmit(uint32_t tag_id, uint64_t bytes,
                                  uint64_t* retry_after_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tag_id >= tags_.size()) tag_id = kDefaultTagId;
  Tag& tag = tags_[tag_id];
  if (total_budget_ == 0) {
    tag.staged += bytes;
    total_staged_ += bytes;
    return true;
  }
  const uint64_t proposed = tag.staged + bytes;
  // Borrowing beyond the floor is doubly bounded: by the tag's
  // throttled share of the pool, and by what the pool has left after
  // every other tag's overflow.
  const uint64_t pool_cap = static_cast<uint64_t>(
      static_cast<double>(shared_pool_) * tag.share);
  const uint64_t allowed = tag.floor + pool_cap;
  // Overflow staged by every *other* tag. Floors never move after
  // construction, so the pool cannot oversubscribe — the clamp is pure
  // defense against a future bookkeeping bug.
  const uint64_t others =
      SharedUsedLocked() - Overflow(tag.staged, tag.floor);
  const uint64_t shared_free =
      shared_pool_ > others ? shared_pool_ - others : 0;
  const uint64_t globally_allowed = tag.floor + shared_free;
  if (proposed <= allowed && proposed <= globally_allowed) {
    tag.staged = proposed;
    total_staged_ += bytes;
    return true;
  }
  tag.busy++;
  if (retry_after_ms != nullptr) {
    const uint64_t limit = std::min(allowed, globally_allowed);
    const uint64_t deficit = proposed > limit ? proposed - limit : bytes;
    *retry_after_ms = RetryHintMsLocked(tag, deficit);
  }
  return false;
}

void TagAdmissionLedger::Refund(uint32_t tag_id, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tag_id >= tags_.size()) tag_id = kDefaultTagId;
  Tag& tag = tags_[tag_id];
  const uint64_t credit = std::min(bytes, tag.staged);
  tag.staged -= credit;
  total_staged_ -= std::min(credit, total_staged_);
  // Fold the refund into the tag's refill-rate EWMA once ≥1 ms of
  // observations accumulated (refunds arrive in commit-batch bursts).
  const auto now = std::chrono::steady_clock::now();
  if (!tag.refill_mark_set) {
    tag.refill_mark = now;
    tag.refill_mark_set = true;
  }
  // Accumulate the clamped credit, not the requested bytes: an
  // over-refund must not inflate the refill estimate (and with it the
  // optimism of BUSY retry hints) beyond what the ledger released.
  tag.refund_accum += credit;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(now - tag.refill_mark)
          .count();
  if (elapsed_ms >= 1.0) {
    const double sample =
        static_cast<double>(tag.refund_accum) / elapsed_ms;
    tag.refill_bytes_per_ms =
        tag.refill_bytes_per_ms <= 0
            ? sample
            : (1.0 - kRefillEwmaAlpha) * tag.refill_bytes_per_ms +
                  kRefillEwmaAlpha * sample;
    tag.refund_accum = 0;
    tag.refill_mark = now;
  }
}

double TagAdmissionLedger::borrow_share(uint32_t tag_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tag_id >= tags_.size()) return 1.0;
  return tags_[tag_id].share;
}

void TagAdmissionLedger::set_borrow_share(uint32_t tag_id, double share) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tag_id >= tags_.size()) return;
  tags_[tag_id].share = std::clamp(share, kMinBorrowShare, 1.0);
}

uint64_t TagAdmissionLedger::total_staged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_staged_;
}

size_t TagAdmissionLedger::num_tags() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tags_.size();
}

std::vector<TagLedgerEntry> TagAdmissionLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TagLedgerEntry> out;
  out.reserve(tags_.size());
  for (uint32_t id = 0; id < tags_.size(); ++id) {
    const Tag& tag = tags_[id];
    TagLedgerEntry entry;
    entry.id = id;
    entry.tag = tag.name;
    entry.floor_bytes = tag.floor;
    entry.budget_bytes =
        tag.floor + static_cast<uint64_t>(
                        static_cast<double>(shared_pool_) * tag.share);
    entry.staged_bytes = tag.staged;
    entry.busy_rejections = tag.busy;
    entry.borrow_share = tag.share;
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace dd
