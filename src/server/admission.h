// Per-tag admission control: the staged-bytes budget split into per-tag
// ledgers (protocol v7). Every connection charges its staged INGEST /
// MERGE bytes to one tag ("default" unless the client sent SET_TAG);
// each *configured* tag (--tag-budget, plus the built-in "default")
// owns a guaranteed floor — a weighted slice of floor_fraction × budget
// that no other tag can consume — plus a borrowable share of the
// remaining pool, so a flooding tag exhausts *its* allowance and gets
// BUSY while honest tags keep their floor. Floors are fixed at
// construction: tags registered later (an unanticipated SET_TAG) get no
// floor and borrow from the shared pool only, and the table is capped
// at kMaxTags — so an unauthenticated client spraying junk tag names
// can neither grow server state without bound nor dilute a configured
// tenant's guarantee.
// The throttle controller (server.cc) shrinks a misbehaving tag's
// borrowable share when the tag's own ack-latency p99 breaches the
// operator's target, and decays it back on recovery.
//
// The ledger is a pure accounting object: one mutex, no threads, no
// sockets — which is what makes its conservation invariants (grants −
// refunds == outstanding, never negative, floors never violated)
// checkable by a randomized property test (tests/admission_test.cc).

#ifndef DDSKETCH_SERVER_ADMISSION_H_
#define DDSKETCH_SERVER_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dd {

/// One tag's view of the ledger at Snapshot() time (feeds the v7
/// per-tag STATS rows).
struct TagLedgerEntry {
  uint32_t id = 0;
  std::string tag;
  uint64_t floor_bytes = 0;     ///< guaranteed slice, never borrowable away
  uint64_t budget_bytes = 0;    ///< floor + currently borrowable pool share
  uint64_t staged_bytes = 0;    ///< outstanding grants (grants − refunds)
  uint64_t busy_rejections = 0; ///< TryAdmit refusals charged to this tag
  double borrow_share = 1.0;    ///< throttle scale on the borrowable pool
};

/// The per-tag staged-bytes ledger. Thread-safe; every operation takes
/// one internal mutex (admission already sits behind a CAS-loop-grade
/// cost in the staging path, and refusal/refund are off the fast path).
class TagAdmissionLedger {
 public:
  static constexpr uint32_t kDefaultTagId = 0;
  static constexpr size_t kMaxTagLength = 64;
  /// Hard cap on distinct tags (configured + dynamically registered).
  /// Ledger entries and their latency sketches live for the server's
  /// lifetime, and STATS / the throttle tick walk every tag — the cap
  /// keeps an unauthenticated SET_TAG spray from growing any of that
  /// without bound.
  static constexpr size_t kMaxTags = 64;
  /// A throttled tag always keeps a sliver of borrowing power so the
  /// controller's decay has a signal to recover on.
  static constexpr double kMinBorrowShare = 0.02;
  /// Retry hint bounds: the default when no refill has been observed
  /// yet, and the cap so a hint can never park a client for seconds.
  static constexpr uint64_t kDefaultRetryMs = 10;
  static constexpr uint64_t kMaxRetryMs = 1000;

  /// `total_budget` 0 means unlimited: every TryAdmit succeeds but the
  /// per-tag accounting still runs (STATS still shows staged bytes).
  /// `weights` pre-registers the configured tags (from --tag-budget);
  /// only these — and "default", always registered as tag id 0 — split
  /// the floor reserve. At most kMaxTags entries (callers validate).
  TagAdmissionLedger(
      uint64_t total_budget, double floor_fraction,
      const std::vector<std::pair<std::string, uint64_t>>& weights);

  /// Tag-name contract shared with the SET_TAG op: 1..kMaxTagLength
  /// chars of [A-Za-z0-9._-].
  static bool ValidTagName(std::string_view tag);

  /// Returns the tag's dense id, registering it if unknown. A tag
  /// registered here (rather than configured at construction) gets no
  /// floor — it borrows from the shared pool only — so late arrivals
  /// never shrink a configured tenant's guarantee. Returns nullopt when
  /// the table already holds kMaxTags tags (the caller should refuse
  /// the SET_TAG and leave the connection on its current tag).
  std::optional<uint32_t> RegisterTag(std::string_view tag);

  /// Tries to stage `bytes` for `tag_id`. Admits when the tag stays
  /// within its floor, or when the overflow fits both the shared pool
  /// and the tag's throttled share of it. On refusal returns false,
  /// charges the tag a busy rejection, and sets *retry_after_ms to the
  /// tag's refill-derived hint (never 0).
  bool TryAdmit(uint32_t tag_id, uint64_t bytes, uint64_t* retry_after_ms);

  /// Returns `bytes` previously granted to `tag_id` (commit completion
  /// or staging unwind). Clamps at zero rather than underflowing so a
  /// bookkeeping bug cannot mint budget.
  void Refund(uint32_t tag_id, uint64_t bytes);

  /// Throttle-controller surface: the borrowable-pool scale for one
  /// tag, clamped to [kMinBorrowShare, 1].
  double borrow_share(uint32_t tag_id) const;
  void set_borrow_share(uint32_t tag_id, double share);

  uint64_t total_budget() const { return total_budget_; }
  uint64_t total_staged() const;
  size_t num_tags() const;

  std::vector<TagLedgerEntry> Snapshot() const;

 private:
  struct Tag {
    std::string name;
    /// Floor-reserve weight. 0 marks a dynamically registered tag:
    /// excluded from the reserve split, floor stays 0 forever.
    uint64_t weight = 1;
    uint64_t floor = 0;
    uint64_t staged = 0;
    uint64_t busy = 0;
    double share = 1.0;
    // Refill-rate EWMA (bytes per ms) behind the retry hint: refunds
    // accumulate and fold into the rate once ≥1 ms has passed.
    double refill_bytes_per_ms = 0;
    uint64_t refund_accum = 0;
    std::chrono::steady_clock::time_point refill_mark{};
    bool refill_mark_set = false;
  };

  uint32_t RegisterTagLocked(std::string_view tag, uint64_t weight);
  void ComputeFloorsLocked();
  uint64_t SharedUsedLocked() const;
  uint64_t RetryHintMsLocked(const Tag& tag, uint64_t deficit) const;

  const uint64_t total_budget_;
  const double floor_fraction_;

  mutable std::mutex mu_;
  std::vector<Tag> tags_;
  std::unordered_map<std::string, uint32_t> ids_;
  uint64_t shared_pool_ = 0;  ///< total_budget_ − Σ floors
  uint64_t total_staged_ = 0;
};

}  // namespace dd

#endif  // DDSKETCH_SERVER_ADMISSION_H_
