#include "server/client.h"

#include <algorithm>
#include <atomic>

#include <unistd.h>

namespace dd {
namespace {

/// Default jitter seed: distinct per client instance (process-wide
/// counter) and across processes (pid), so concurrently-started clients
/// never share a retry schedule by accident. Rng's splitmix64 seeding
/// does the mixing; tests override via set_busy_backoff_seed.
uint64_t DeriveBackoffSeed(int fd) {
  static std::atomic<uint64_t> counter{0};
  return (static_cast<uint64_t>(::getpid()) << 32) ^
         (counter.fetch_add(1, std::memory_order_relaxed) << 8) ^
         static_cast<uint64_t>(static_cast<uint32_t>(fd));
}

}  // namespace

Result<SketchClient> SketchClient::Connect(const std::string& host,
                                           uint16_t port) {
  auto fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  SketchClient client(fd.value());
  DD_RETURN_IF_ERROR(client.conn_->SendHello());
  DD_RETURN_IF_ERROR(client.conn_->ExpectHello());
  return client;
}

SketchClient::SketchClient(int fd)
    : fd_(fd),
      conn_(std::make_unique<FramedConn>(fd)),
      backoff_rng_(DeriveBackoffSeed(fd)) {}

SketchClient::SketchClient(SketchClient&& other) noexcept
    : fd_(other.fd_),
      conn_(std::move(other.conn_)),
      busy_retries_(other.busy_retries_),
      busy_backoff_us_(other.busy_backoff_us_),
      backoff_rng_(other.backoff_rng_) {
  other.fd_ = -1;
}

SketchClient& SketchClient::operator=(SketchClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    conn_ = std::move(other.conn_);
    busy_retries_ = other.busy_retries_;
    busy_backoff_us_ = other.busy_backoff_us_;
    backoff_rng_ = other.backoff_rng_;
    other.fd_ = -1;
  }
  return *this;
}

SketchClient::~SketchClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Response> SketchClient::Call(const Request& request) {
  DD_RETURN_IF_ERROR(conn_->WriteFrame(EncodeRequest(request)));
  auto body = conn_->ReadFrame();
  if (!body.ok()) return body.status();
  auto response = DecodeResponse(body.value());
  if (!response.ok()) return response.status();
  if (response.value().op != request.op) {
    return Status::Corruption("response does not match request op");
  }
  return response;
}

Status SketchClient::CallIngest(const Request& request) {
  BusyBackoff backoff(busy_backoff_us_, backoff_rng_.NextU64());
  for (int attempt = 0;; ++attempt) {
    auto response = Call(request);
    if (!response.ok()) return response.status();
    const Status status = ResponseStatus(response.value());
    if (status.code() != StatusCode::kBusy || attempt >= busy_retries_) {
      return status;
    }
    // Honor the server's retry hint (v7): it raises the backoff base,
    // jitter preserved.
    const int64_t hint_us =
        static_cast<int64_t>(response.value().retry_after_ms) * 1000;
    ::usleep(static_cast<useconds_t>(backoff.NextDelayUs(hint_us)));
  }
}

Status SketchClient::IngestValue(const std::string& series, int64_t timestamp,
                                 double value) {
  Request request;
  request.op = Request::Op::kIngest;
  request.series = series;
  request.timestamp = timestamp;
  request.value = value;
  return CallIngest(request);
}

Status SketchClient::Merge(const std::string& series, int64_t timestamp,
                           std::string_view payload) {
  Request request;
  request.op = Request::Op::kMerge;
  request.series = series;
  request.timestamp = timestamp;
  request.payload.assign(payload);
  return CallIngest(request);
}

Status SketchClient::IngestValues(
    const std::string& series,
    const std::vector<std::pair<int64_t, double>>& points) {
  // Pipelined in bounded windows: all requests of a window are written
  // before its first ack is read, so the server's committer finds many
  // staged records per drain even from one client. The window bound
  // keeps both sides' in-flight bytes far below socket buffer sizes
  // (writing everything first could deadlock with both buffers full).
  constexpr size_t kWindow = 512;
  Request request;
  request.op = Request::Op::kIngest;
  request.series = series;
  for (size_t begin = 0; begin < points.size(); begin += kWindow) {
    const size_t end = std::min(begin + kWindow, points.size());
    std::vector<std::pair<int64_t, double>> pending(points.begin() + begin,
                                                    points.begin() + end);
    BusyBackoff backoff(busy_backoff_us_, backoff_rng_.NextU64());
    for (int attempt = 0;; ++attempt) {
      std::string wire;
      for (const auto& point : pending) {
        request.timestamp = point.first;
        request.value = point.second;
        wire += EncodeRequest(request);
      }
      DD_RETURN_IF_ERROR(conn_->WriteFrame(wire));
      // Points the server refused with BUSY were never staged; collect
      // them and re-send just those after backing off. Any other error
      // aborts (earlier OK acks were durable commits).
      std::vector<std::pair<int64_t, double>> busy;
      int64_t hint_us = 0;
      for (const auto& point : pending) {
        auto body = conn_->ReadFrame();
        if (!body.ok()) return body.status();
        auto response = DecodeResponse(body.value());
        if (!response.ok()) return response.status();
        const Status status = ResponseStatus(response.value());
        if (status.code() == StatusCode::kBusy) {
          busy.push_back(point);
          hint_us = std::max(
              hint_us,
              static_cast<int64_t>(response.value().retry_after_ms) * 1000);
        } else if (!status.ok()) {
          return status;
        }
      }
      if (busy.empty()) break;
      if (attempt >= busy_retries_) {
        return Status::Busy("server overloaded: " +
                            std::to_string(busy.size()) +
                            " points refused after retries");
      }
      pending.swap(busy);
      ::usleep(static_cast<useconds_t>(backoff.NextDelayUs(hint_us)));
    }
  }
  return Status::OK();
}

Result<std::vector<double>> SketchClient::Query(
    const std::string& series, int64_t start, int64_t end,
    const std::vector<double>& quantiles) {
  Request request;
  request.op = Request::Op::kQuery;
  request.series = series;
  request.start = start;
  request.end = end;
  request.quantiles = quantiles;
  auto response = Call(request);
  if (!response.ok()) return response.status();
  DD_RETURN_IF_ERROR(ResponseStatus(response.value()));
  if (response.value().values.size() != quantiles.size()) {
    return Status::Corruption("query response count mismatch");
  }
  return std::move(response).value().values;
}

Result<uint64_t> SketchClient::Checkpoint() {
  Request request;
  request.op = Request::Op::kCheckpoint;
  auto response = Call(request);
  if (!response.ok()) return response.status();
  DD_RETURN_IF_ERROR(ResponseStatus(response.value()));
  return response.value().epoch;
}

Result<uint64_t> SketchClient::Compact(int64_t now) {
  Request request;
  request.op = Request::Op::kCompact;
  request.compact_now = now;
  auto response = Call(request);
  if (!response.ok()) return response.status();
  DD_RETURN_IF_ERROR(ResponseStatus(response.value()));
  return response.value().compacted;
}

Status SketchClient::SetTag(const std::string& tag) {
  Request request;
  request.op = Request::Op::kSetTag;
  request.tag = tag;
  auto response = Call(request);
  if (!response.ok()) return response.status();
  return ResponseStatus(response.value());
}

Result<uint64_t> SketchClient::Promote() {
  Request request;
  request.op = Request::Op::kPromote;
  auto response = Call(request);
  if (!response.ok()) return response.status();
  DD_RETURN_IF_ERROR(ResponseStatus(response.value()));
  return response.value().repl_token;
}

Result<StoreStats> SketchClient::Stats() {
  Request request;
  request.op = Request::Op::kStats;
  auto response = Call(request);
  if (!response.ok()) return response.status();
  DD_RETURN_IF_ERROR(ResponseStatus(response.value()));
  return response.value().stats;
}

}  // namespace dd
