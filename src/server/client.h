// SketchClient: the blocking client for sketchd's wire protocol, used by
// the ddsketch_cli remote-* subcommands, the socket smoke test, and the
// serving benchmarks. One method per protocol op, plus a pipelined bulk
// ingest that keeps many requests in flight so the server's group commit
// can batch their fsyncs.
//
// Not thread-safe: one SketchClient (one connection) per thread.

#ifndef DDSKETCH_SERVER_CLIENT_H_
#define DDSKETCH_SERVER_CLIENT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "server/net.h"
#include "server/protocol.h"
#include "util/rng.h"
#include "util/status.h"

namespace dd {

/// The BUSY retry schedule: exponential backoff with ±50% jitter.
/// Without jitter, N clients refused by the same BUSY wave sleep the
/// same deterministic delays and re-collide at the admission budget in
/// lockstep, wave after wave (the retry thundering herd). The jitter is
/// multiplicative — each delay is the current base scaled by a uniform
/// factor in [0.5, 1.5) — so the exponential envelope survives while
/// distinct seeds spread the herd out. Deterministic given its seed,
/// which is what makes the schedule testable.
///
/// A BUSY response may carry the server's retry_after_ms hint (v7, the
/// refusing tag's ledger refill estimate); the hint raises the delay's
/// base and the jitter shifts *above* it — uniform [1.0, 1.5) instead
/// of [0.5, 1.5) — so a hinted retry never fires earlier than the
/// server asked (hints beyond the 100 ms backoff cap are clamped to
/// it) while the herd still spreads. The exponential envelope continues
/// from the raised base.
class BusyBackoff {
 public:
  /// Backoff cap: the base stops doubling here (same cap as pre-jitter).
  static constexpr int64_t kMaxBackoffUs = 100000;  // 100 ms

  BusyBackoff(int64_t initial_us, uint64_t seed) noexcept
      : base_us_(std::max<int64_t>(1, initial_us)), rng_(seed) {}

  /// The next sleep in microseconds: max(base, hint) scaled by the
  /// jitter — uniform [0.5, 1.5) unhinted, [1.0, 1.5) with a hint so
  /// the sleep never undercuts what the server asked for (hint clamped
  /// to the cap) — then the base doubles from that effective value
  /// (capped). Never returns less than 1. `hint_us` 0 = no server hint.
  int64_t NextDelayUs(int64_t hint_us = 0) noexcept {
    const int64_t hint = std::min(std::max<int64_t>(hint_us, 0), kMaxBackoffUs);
    const int64_t effective = std::min(std::max(base_us_, hint), kMaxBackoffUs);
    const double jitter = hint > 0 ? 1.0 + rng_.NextDouble() * 0.5
                                   : 0.5 + rng_.NextDouble();
    const int64_t delay = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(effective) * jitter));
    base_us_ = std::min<int64_t>(effective * 2, kMaxBackoffUs);
    return delay;
  }

 private:
  int64_t base_us_;
  Rng rng_;
};

class SketchClient {
 public:
  /// Connects and completes the hello handshake.
  static Result<SketchClient> Connect(const std::string& host, uint16_t port);

  SketchClient(SketchClient&&) noexcept;
  SketchClient& operator=(SketchClient&&) noexcept;
  SketchClient(const SketchClient&) = delete;
  SketchClient& operator=(const SketchClient&) = delete;
  ~SketchClient();

  /// Ingests one value durably; OK means the server committed it.
  Status IngestValue(const std::string& series, int64_t timestamp,
                     double value);

  /// Merges a serialized worker sketch (DDSketch wire bytes) durably.
  Status Merge(const std::string& series, int64_t timestamp,
               std::string_view payload);

  /// Pipelined bulk ingest: writes every request before reading the
  /// first ack, so a single connection can fill server-side commit
  /// batches. Fails on the first non-OK ack (earlier acks were durable).
  Status IngestValues(
      const std::string& series,
      const std::vector<std::pair<int64_t, double>>& points);

  /// Quantile estimates of `series` over [start, end), one per q.
  Result<std::vector<double>> Query(const std::string& series, int64_t start,
                                    int64_t end,
                                    const std::vector<double>& quantiles);

  /// Forces a checkpoint; returns the WAL epoch after the reset.
  Result<uint64_t> Checkpoint();

  /// Ages the rollup ladder as of `now` (the server clamps it to the
  /// data horizon; INT64_MAX folds everything eligible by data time),
  /// then checkpoints. Returns the number of interval sketches folded.
  Result<uint64_t> Compact(int64_t now);

  Result<StoreStats> Stats();

  /// Promotes the server to primary (v5 failover: bumps the fencing
  /// token, unfences, stops following). Returns the new fencing token.
  Result<uint64_t> Promote();

  /// Declares this connection's admission tag (v7): every later
  /// ingest/merge is charged to `tag`'s budget ledger. Untagged
  /// connections use "default". Tags are 1-64 chars of [A-Za-z0-9._-].
  Status SetTag(const std::string& tag);

  /// BUSY retry policy for the ingest/merge paths (protocol v3). A BUSY
  /// response means the server refused the record under admission
  /// control before staging it — never durable, never acked — so a
  /// retry is always safe. Retries follow a jittered exponential
  /// BusyBackoff schedule from `initial_backoff_us`, capped at 100 ms.
  /// `max_retries` = 0 surfaces BUSY to the caller unretried.
  void set_busy_retries(int max_retries, int64_t initial_backoff_us = 1000) {
    busy_retries_ = max_retries;
    busy_backoff_us_ = initial_backoff_us;
  }

  /// Reseeds the backoff jitter. Each client derives a distinct default
  /// seed at Connect (desynchronizing concurrent clients is the whole
  /// point); inject a seed to make retry schedules reproducible in
  /// tests.
  void set_busy_backoff_seed(uint64_t seed) { backoff_rng_.Seed(seed); }

 private:
  explicit SketchClient(int fd);

  /// One request/response round trip; checks the response echoes `op`.
  Result<Response> Call(const Request& request);

  /// Call() + BUSY retry-with-backoff (ingest/merge requests only).
  Status CallIngest(const Request& request);

  int fd_ = -1;
  std::unique_ptr<FramedConn> conn_;
  int busy_retries_ = 8;
  int64_t busy_backoff_us_ = 1000;
  /// Seeds each retry episode's BusyBackoff (advances per episode, so
  /// consecutive BUSY windows do not replay one schedule).
  Rng backoff_rng_{0};
};

}  // namespace dd

#endif  // DDSKETCH_SERVER_CLIENT_H_
