#include "server/net.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/protocol.h"

namespace dd {
namespace {

std::string Errno(const std::string& op) {
  return op + ": " + std::strerror(errno);
}

Result<struct sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

Result<int> NewSocket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  // Latency matters more than segment count for request/response frames.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  auto sock = NewSocket();
  if (!sock.ok()) return sock.status();
  const int fd = sock.value();
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
             sizeof(addr.value())) != 0) {
    const Status status = Status::Internal(Errno("bind " + host));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status = Status::Internal(Errno("listen"));
    ::close(fd);
    return status;
  }
  struct sockaddr_in actual;
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&actual), &len) !=
      0) {
    const Status status = Status::Internal(Errno("getsockname"));
    ::close(fd);
    return status;
  }
  *bound_port = ntohs(actual.sin_port);
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  auto sock = NewSocket();
  if (!sock.ok()) return sock.status();
  const int fd = sock.value();
  for (;;) {
    if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
                  sizeof(addr.value())) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    const Status status = Status::Internal(Errno("connect " + host));
    ::close(fd);
    return status;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal(Errno("fcntl(F_GETFL)"));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(Errno("fcntl(F_SETFL)"));
  }
  return Status::OK();
}

Result<Epoll> Epoll::Create() {
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) return Status::Internal(Errno("epoll_create1"));
  return Epoll(fd);
}

Epoll& Epoll::operator=(Epoll&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Epoll::~Epoll() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

Status EpollCtl(int epfd, int op, int fd, uint32_t events, void* data,
                const char* what) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.ptr = data;
  if (::epoll_ctl(epfd, op, fd, op == EPOLL_CTL_DEL ? nullptr : &ev) != 0) {
    return Status::Internal(Errno(what));
  }
  return Status::OK();
}

}  // namespace

Status Epoll::Add(int fd, uint32_t events, void* data) {
  return EpollCtl(fd_, EPOLL_CTL_ADD, fd, events, data, "epoll_ctl(ADD)");
}

Status Epoll::Mod(int fd, uint32_t events, void* data) {
  return EpollCtl(fd_, EPOLL_CTL_MOD, fd, events, data, "epoll_ctl(MOD)");
}

Status Epoll::Del(int fd) {
  return EpollCtl(fd_, EPOLL_CTL_DEL, fd, 0, nullptr, "epoll_ctl(DEL)");
}

Result<int> Epoll::Wait(struct epoll_event* events, int max_events,
                        int timeout_ms) {
  for (;;) {
    const int n = ::epoll_wait(fd_, events, max_events, timeout_ms);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return Status::Internal(Errno("epoll_wait"));
  }
}

namespace {

/// Writes all of `data`; EINTR-safe, SIGPIPE-free.
Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("send"));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

}  // namespace

Status FramedConn::SendHello() { return SendAll(fd_, EncodeHello()); }

Status FramedConn::ExpectHello() {
  while (buffer_.size() < kHelloBytes) {
    char buf[64];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("recv"));
    }
    if (n == 0) return Status::Corruption("connection closed during hello");
    buffer_.append(buf, static_cast<size_t>(n));
  }
  DD_RETURN_IF_ERROR(CheckHello(std::string_view(buffer_).substr(0, kHelloBytes)));
  buffer_.erase(0, kHelloBytes);
  return Status::OK();
}

Status FramedConn::WriteFrame(std::string_view frame) {
  return SendAll(fd_, frame);
}

Result<bool> FramedConn::TryReadFrame(std::string* body) {
  for (;;) {
    size_t frame_size = 0;
    auto decoded = DecodeFrame(buffer_, &frame_size);
    if (decoded.ok()) {
      body->assign(decoded.value());
      buffer_.erase(0, frame_size);
      return true;
    }
    if (decoded.status().code() != StatusCode::kOutOfRange) {
      return decoded.status();
    }
    char buf[1 << 16];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      return Status::Internal(Errno("recv"));
    }
    if (n == 0) return false;  // EOF: surfaced by the next ReadFrame
    buffer_.append(buf, static_cast<size_t>(n));
  }
}

Result<std::string> FramedConn::ReadFrame() {
  for (;;) {
    size_t frame_size = 0;
    auto body = DecodeFrame(buffer_, &frame_size);
    if (body.ok()) {
      std::string out(body.value());
      buffer_.erase(0, frame_size);
      return out;
    }
    if (body.status().code() != StatusCode::kOutOfRange) {
      return body.status();  // Corruption: CRC mismatch / absurd length
    }
    char buf[1 << 16];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("recv"));
    }
    if (n == 0) {
      if (buffer_.empty()) {
        return Status::OutOfRange("connection closed");
      }
      return Status::Corruption("connection closed mid-frame");
    }
    buffer_.append(buf, static_cast<size_t>(n));
  }
}

Result<bool> FramedConn::FillFromSocket(bool* got_bytes) {
  *got_bytes = false;
  for (;;) {
    char buf[1 << 16];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return Status::Internal(Errno("recv"));
    }
    if (n == 0) return false;  // EOF
    buffer_.append(buf, static_cast<size_t>(n));
    *got_bytes = true;
  }
}

Result<bool> FramedConn::TryConsumeHello() {
  if (buffer_.size() < kHelloBytes) return false;
  DD_RETURN_IF_ERROR(
      CheckHello(std::string_view(buffer_).substr(0, kHelloBytes)));
  buffer_.erase(0, kHelloBytes);
  return true;
}

Result<bool> FramedConn::NextBufferedFrame(std::string* body) {
  size_t frame_size = 0;
  auto decoded = DecodeFrame(buffer_, &frame_size);
  if (decoded.ok()) {
    body->assign(decoded.value());
    buffer_.erase(0, frame_size);
    return true;
  }
  if (decoded.status().code() == StatusCode::kOutOfRange) return false;
  return decoded.status();  // Corruption: CRC mismatch / absurd length
}

void FramedConn::QueueWrite(std::string_view bytes) {
  // Compact lazily: once everything before out_off_ has been sent and
  // the dead prefix dominates, drop it instead of growing forever.
  if (out_off_ > 0 && out_off_ >= out_.size() / 2) {
    out_.erase(0, out_off_);
    out_off_ = 0;
  }
  out_.append(bytes);
}

Result<bool> FramedConn::Flush() {
  while (out_off_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_off_, out_.size() - out_off_,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      return Status::Internal(Errno("send"));
    }
    out_off_ += static_cast<size_t>(n);
  }
  out_.clear();
  out_off_ = 0;
  return true;
}

}  // namespace dd
