#include "server/net.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/protocol.h"

namespace dd {
namespace {

std::string Errno(const std::string& op) {
  return op + ": " + std::strerror(errno);
}

Result<struct sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

Result<int> NewSocket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  // Latency matters more than segment count for request/response frames.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  auto sock = NewSocket();
  if (!sock.ok()) return sock.status();
  const int fd = sock.value();
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
             sizeof(addr.value())) != 0) {
    const Status status = Status::Internal(Errno("bind " + host));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status = Status::Internal(Errno("listen"));
    ::close(fd);
    return status;
  }
  struct sockaddr_in actual;
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&actual), &len) !=
      0) {
    const Status status = Status::Internal(Errno("getsockname"));
    ::close(fd);
    return status;
  }
  *bound_port = ntohs(actual.sin_port);
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  auto sock = NewSocket();
  if (!sock.ok()) return sock.status();
  const int fd = sock.value();
  for (;;) {
    if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
                  sizeof(addr.value())) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    const Status status = Status::Internal(Errno("connect " + host));
    ::close(fd);
    return status;
  }
}

namespace {

/// Writes all of `data`; EINTR-safe, SIGPIPE-free.
Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("send"));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

}  // namespace

Status FramedConn::SendHello() { return SendAll(fd_, EncodeHello()); }

Status FramedConn::ExpectHello() {
  while (buffer_.size() < kHelloBytes) {
    char buf[64];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("recv"));
    }
    if (n == 0) return Status::Corruption("connection closed during hello");
    buffer_.append(buf, static_cast<size_t>(n));
  }
  DD_RETURN_IF_ERROR(CheckHello(std::string_view(buffer_).substr(0, kHelloBytes)));
  buffer_.erase(0, kHelloBytes);
  return Status::OK();
}

Status FramedConn::WriteFrame(std::string_view frame) {
  return SendAll(fd_, frame);
}

Result<bool> FramedConn::TryReadFrame(std::string* body) {
  for (;;) {
    size_t frame_size = 0;
    auto decoded = DecodeFrame(buffer_, &frame_size);
    if (decoded.ok()) {
      body->assign(decoded.value());
      buffer_.erase(0, frame_size);
      return true;
    }
    if (decoded.status().code() != StatusCode::kOutOfRange) {
      return decoded.status();
    }
    char buf[1 << 16];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      return Status::Internal(Errno("recv"));
    }
    if (n == 0) return false;  // EOF: surfaced by the next ReadFrame
    buffer_.append(buf, static_cast<size_t>(n));
  }
}

Result<std::string> FramedConn::ReadFrame() {
  for (;;) {
    size_t frame_size = 0;
    auto body = DecodeFrame(buffer_, &frame_size);
    if (body.ok()) {
      std::string out(body.value());
      buffer_.erase(0, frame_size);
      return out;
    }
    if (body.status().code() != StatusCode::kOutOfRange) {
      return body.status();  // Corruption: CRC mismatch / absurd length
    }
    char buf[1 << 16];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("recv"));
    }
    if (n == 0) {
      if (buffer_.empty()) {
        return Status::OutOfRange("connection closed");
      }
      return Status::Corruption("connection closed mid-frame");
    }
    buffer_.append(buf, static_cast<size_t>(n));
  }
}

}  // namespace dd
