// Minimal TCP transport for the sketchd protocol: listen / connect
// helpers with Status errors, an RAII epoll wrapper for the server's
// event loops, and FramedConn, which pumps the length-prefixed CRC
// frames of server/protocol.h over a socket.
//
// FramedConn offers two I/O styles over one read buffer:
//   - blocking (client side): SendHello/ExpectHello, WriteFrame,
//     ReadFrame — EINTR-safe loops until the operation completes;
//   - non-blocking (server event loop): FillFromSocket drains the
//     socket edge-to-EAGAIN, TryConsumeHello / NextBufferedFrame parse
//     only what is buffered, and QueueWrite / Flush buffer partial
//     writes so a slow reader never blocks a loop thread.
//
// IPv4 only (the daemon binds 127.0.0.1 by default); writes use
// MSG_NOSIGNAL so a peer that disappears surfaces as a Status instead
// of SIGPIPE.

#ifndef DDSKETCH_SERVER_NET_H_
#define DDSKETCH_SERVER_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include <sys/epoll.h>

#include "util/status.h"

namespace dd {

/// Binds and listens on `host:port` (IPv4 dotted quad). Port 0 picks an
/// ephemeral port; *bound_port always receives the actual port. Returns
/// the listening fd (CLOEXEC).
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port);

/// Connects to `host:port`. Returns the connected fd (CLOEXEC).
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// Puts `fd` into O_NONBLOCK mode (event-loop sockets).
Status SetNonBlocking(int fd);

/// RAII wrapper over an epoll instance. Move-only; closes on destruction.
/// The `data` pointer registered with Add/Mod comes back verbatim in
/// epoll_event::data.ptr from Wait.
class Epoll {
 public:
  static Result<Epoll> Create();
  Epoll(Epoll&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Epoll& operator=(Epoll&& other) noexcept;
  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;
  ~Epoll();

  Status Add(int fd, uint32_t events, void* data);
  Status Mod(int fd, uint32_t events, void* data);
  Status Del(int fd);

  /// epoll_wait, EINTR-safe. Returns the number of events filled into
  /// `events` (0 on timeout). `timeout_ms` < 0 blocks indefinitely.
  Result<int> Wait(struct epoll_event* events, int max_events,
                   int timeout_ms);

 private:
  explicit Epoll(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// A non-owning framed view over a connected socket: one side of the
/// sketchd protocol. The caller keeps ownership of the fd (the server
/// needs it for shutdown(2)-based cancellation from other threads).
/// Not thread-safe; each FramedConn is owned by exactly one event loop
/// (or one client thread).
class FramedConn {
 public:
  explicit FramedConn(int fd) : fd_(fd) {}

  /// Sends this side's 5 hello bytes.
  Status SendHello();

  /// Reads and validates the peer's 5 hello bytes.
  Status ExpectHello();

  /// Writes a fully-encoded frame (EncodeRequest/EncodeResponse output).
  Status WriteFrame(std::string_view frame);

  /// Reads the next complete frame and returns its body (CRC already
  /// verified). A clean EOF at a frame boundary fails with OutOfRange
  /// ("connection closed"); an EOF mid-frame is Corruption.
  Result<std::string> ReadFrame();

  /// Non-blocking variant: returns true and fills *body when a complete
  /// frame is already buffered or immediately readable, false when the
  /// socket has nothing more right now (including a pending EOF, which
  /// the next ReadFrame reports). Lets the server collect a pipelined
  /// run of requests and stage them as one group-commit batch.
  Result<bool> TryReadFrame(std::string* body);

  // --- non-blocking event-loop API (fd must be O_NONBLOCK) ---
  // Edge-triggered discipline: after an EPOLLIN edge, call
  // FillFromSocket once (it drains to EAGAIN) and then parse the buffer
  // with TryConsumeHello / NextBufferedFrame until they report
  // incomplete; after an EPOLLOUT edge (or any queued write), call
  // Flush until it reports drained or would-block.

  /// Drains everything the socket currently has into the read buffer
  /// (reads until EAGAIN). Returns false on EOF (peer closed), true
  /// otherwise. Sets *got_bytes when any bytes arrived.
  Result<bool> FillFromSocket(bool* got_bytes);

  /// Consumes the peer's 5 hello bytes from the read buffer only.
  /// Returns false when fewer than 5 bytes are buffered (read more),
  /// true when a valid hello was consumed; fails with Corruption /
  /// Incompatible on a bad hello.
  Result<bool> TryConsumeHello();

  /// Splits the next complete frame body off the read buffer without
  /// touching the socket. Returns false when only a frame prefix (or
  /// nothing) is buffered; Corruption on a bad CRC / implausible length.
  Result<bool> NextBufferedFrame(std::string* body);

  /// Appends bytes to the write queue without touching the socket.
  void QueueWrite(std::string_view bytes);

  /// Writes as much of the queue as the socket accepts right now.
  /// Returns true when the queue fully drained, false on would-block;
  /// errors (peer reset, ...) surface as a Status.
  Result<bool> Flush();

  /// Bytes queued by QueueWrite but not yet accepted by the socket.
  size_t pending_write_bytes() const noexcept {
    return out_.size() - out_off_;
  }

  /// Bytes received but not yet parsed into frames.
  size_t buffered_read_bytes() const noexcept { return buffer_.size(); }

  int fd() const noexcept { return fd_; }

 private:
  int fd_;
  std::string buffer_;   // bytes received but not yet consumed
  std::string out_;      // queued write bytes (out_off_ already sent)
  size_t out_off_ = 0;
};

}  // namespace dd

#endif  // DDSKETCH_SERVER_NET_H_
