// Minimal blocking TCP transport for the sketchd protocol: listen /
// connect helpers with Status errors, and FramedConn, which pumps the
// length-prefixed CRC frames of server/protocol.h over a socket.
//
// IPv4 only (the daemon binds 127.0.0.1 by default); all I/O is blocking
// and EINTR-safe, and writes use MSG_NOSIGNAL so a peer that disappears
// surfaces as a Status instead of SIGPIPE.

#ifndef DDSKETCH_SERVER_NET_H_
#define DDSKETCH_SERVER_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace dd {

/// Binds and listens on `host:port` (IPv4 dotted quad). Port 0 picks an
/// ephemeral port; *bound_port always receives the actual port. Returns
/// the listening fd (CLOEXEC).
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port);

/// Connects to `host:port`. Returns the connected fd (CLOEXEC).
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// A non-owning framed view over a connected socket: one side of the
/// sketchd protocol. The caller keeps ownership of the fd (the server
/// needs it for shutdown(2)-based cancellation from other threads).
/// Not thread-safe; one FramedConn per connection thread.
class FramedConn {
 public:
  explicit FramedConn(int fd) : fd_(fd) {}

  /// Sends this side's 5 hello bytes.
  Status SendHello();

  /// Reads and validates the peer's 5 hello bytes.
  Status ExpectHello();

  /// Writes a fully-encoded frame (EncodeRequest/EncodeResponse output).
  Status WriteFrame(std::string_view frame);

  /// Reads the next complete frame and returns its body (CRC already
  /// verified). A clean EOF at a frame boundary fails with OutOfRange
  /// ("connection closed"); an EOF mid-frame is Corruption.
  Result<std::string> ReadFrame();

  /// Non-blocking variant: returns true and fills *body when a complete
  /// frame is already buffered or immediately readable, false when the
  /// socket has nothing more right now (including a pending EOF, which
  /// the next ReadFrame reports). Lets the server collect a pipelined
  /// run of requests and stage them as one group-commit batch.
  Result<bool> TryReadFrame(std::string* body);

  int fd() const noexcept { return fd_; }

 private:
  int fd_;
  std::string buffer_;  // bytes received but not yet consumed
};

}  // namespace dd

#endif  // DDSKETCH_SERVER_NET_H_
