#include "server/protocol.h"

#include <cstring>

#include "util/crc32.h"
#include "util/varint.h"

namespace dd {
namespace {

/// Request ops are a dense range; anything else on the wire is garbage.
bool ValidOp(uint8_t op) {
  return op >= static_cast<uint8_t>(Request::Op::kIngest) &&
         op <= static_cast<uint8_t>(Request::Op::kSetTag);
}

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kFenced);
}

void PutLengthPrefixed(std::string* out, std::string_view bytes) {
  PutVarint64(out, bytes.size());
  out->append(bytes);
}

Status GetLengthPrefixed(Slice* in, std::string* out) {
  uint64_t len = 0;
  DD_RETURN_IF_ERROR(in->GetVarint64(&len));
  if (len > in->remaining()) {
    return Status::Corruption("length-prefixed field overruns frame");
  }
  std::string_view bytes;
  DD_RETURN_IF_ERROR(in->GetBytes(len, &bytes));
  out->assign(bytes);
  return Status::OK();
}

Status GetDoubles(Slice* in, std::vector<double>* out) {
  uint64_t n = 0;
  DD_RETURN_IF_ERROR(in->GetVarint64(&n));
  if (n > in->remaining() / sizeof(double)) {
    return Status::Corruption("double array overruns frame");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    double v = 0;
    DD_RETURN_IF_ERROR(in->GetFixedDouble(&v));
    out->push_back(v);
  }
  return Status::OK();
}

void PutDoubles(std::string* out, const std::vector<double>& values) {
  PutVarint64(out, values.size());
  for (double v : values) PutFixedDouble(out, v);
}

Status CheckDrained(const Slice& in) {
  if (!in.empty()) {
    return Status::Corruption("trailing bytes in protocol frame body");
  }
  return Status::OK();
}

/// (epoch, offset) pairs — SUBSCRIBE resume positions and heartbeat
/// shipping positions share one layout.
void PutPositions(std::string* out,
                  const std::vector<std::pair<uint64_t, uint64_t>>& positions) {
  PutVarint64(out, positions.size());
  for (const auto& [epoch, offset] : positions) {
    PutVarint64(out, epoch);
    PutVarint64(out, offset);
  }
}

Status GetPositions(Slice* in,
                    std::vector<std::pair<uint64_t, uint64_t>>* positions) {
  uint64_t n = 0;
  DD_RETURN_IF_ERROR(in->GetVarint64(&n));
  // Each position is at least 2 varint bytes; a count the frame cannot
  // possibly hold is corruption, not an allocation request.
  if (n > in->remaining() / 2) {
    return Status::Corruption("position list overruns frame");
  }
  positions->clear();
  positions->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t epoch = 0;
    uint64_t offset = 0;
    DD_RETURN_IF_ERROR(in->GetVarint64(&epoch));
    DD_RETURN_IF_ERROR(in->GetVarint64(&offset));
    positions->emplace_back(epoch, offset);
  }
  return Status::OK();
}

}  // namespace

std::string_view LatencyOpName(LatencyOp op) {
  switch (op) {
    case LatencyOp::kIngest:
      return "INGEST";
    case LatencyOp::kMerge:
      return "MERGE";
    case LatencyOp::kQuery:
      return "QUERY";
    case LatencyOp::kCheckpoint:
      return "CHECKPOINT";
    case LatencyOp::kStats:
      return "STATS";
    case LatencyOp::kBusy:
      return "BUSY";
  }
  return "UNKNOWN";
}

std::string EncodeHello() {
  std::string out(kProtocolMagic, sizeof(kProtocolMagic));
  out.push_back(static_cast<char>(kProtocolVersion));
  return out;
}

Status CheckHello(std::string_view hello) {
  if (hello.size() != kHelloBytes ||
      std::memcmp(hello.data(), kProtocolMagic, sizeof(kProtocolMagic)) != 0) {
    return Status::Corruption("bad protocol hello");
  }
  if (static_cast<uint8_t>(hello[sizeof(kProtocolMagic)]) !=
      kProtocolVersion) {
    return Status::Incompatible("unsupported protocol version");
  }
  return Status::OK();
}

std::string EncodeFrame(std::string_view body) {
  std::string framed;
  framed.reserve(body.size() + kMaxVarintBytes + sizeof(uint32_t));
  PutVarint64(&framed, body.size());
  PutFixed32(&framed, Crc32c(body));
  framed.append(body);
  return framed;
}

Result<std::string_view> DecodeFrame(std::string_view buffer,
                                     size_t* frame_size) {
  Slice in(buffer);
  uint64_t body_len = 0;
  if (!in.GetVarint64(&body_len).ok()) {
    // GetVarint64 fails both on truncation (need more bytes) and on a
    // malformed varint (> kMaxVarintBytes or 64-bit overflow). With a
    // full varint's worth of bytes available the length can never
    // become parseable, so reading more would buffer garbage forever.
    if (buffer.size() >= static_cast<size_t>(kMaxVarintBytes)) {
      return Status::Corruption("malformed frame length");
    }
    return Status::OutOfRange("incomplete frame");
  }
  if (body_len > kMaxFrameBytes) {
    return Status::Corruption("frame length implausibly large");
  }
  uint32_t crc = 0;
  std::string_view body;
  if (!in.GetFixed32(&crc).ok() || !in.GetBytes(body_len, &body).ok()) {
    return Status::OutOfRange("incomplete frame");
  }
  if (crc != Crc32c(body)) {
    return Status::Corruption("frame checksum mismatch");
  }
  *frame_size = buffer.size() - in.remaining();
  return body;
}

std::string EncodeRequest(const Request& request) {
  std::string body;
  body.push_back(static_cast<char>(request.op));
  switch (request.op) {
    case Request::Op::kIngest:
      PutLengthPrefixed(&body, request.series);
      PutVarintSigned64(&body, request.timestamp);
      PutFixedDouble(&body, request.value);
      break;
    case Request::Op::kMerge:
      PutLengthPrefixed(&body, request.series);
      PutVarintSigned64(&body, request.timestamp);
      PutLengthPrefixed(&body, request.payload);
      break;
    case Request::Op::kQuery:
      PutLengthPrefixed(&body, request.series);
      PutVarintSigned64(&body, request.start);
      PutVarintSigned64(&body, request.end);
      PutDoubles(&body, request.quantiles);
      break;
    case Request::Op::kSubscribe:
      PutVarint64(&body, request.repl_token);
      PutPositions(&body, request.positions);
      break;
    case Request::Op::kCompact:
      PutVarintSigned64(&body, request.compact_now);
      break;
    case Request::Op::kSetTag:
      PutLengthPrefixed(&body, request.tag);
      break;
    case Request::Op::kCheckpoint:
    case Request::Op::kStats:
    case Request::Op::kPromote:
      break;  // op byte only
  }
  return EncodeFrame(body);
}

Result<Request> DecodeRequest(std::string_view body) {
  Slice in(body);
  std::string_view op_byte;
  DD_RETURN_IF_ERROR(in.GetBytes(1, &op_byte));
  const uint8_t op = static_cast<uint8_t>(op_byte[0]);
  if (!ValidOp(op)) {
    return Status::Corruption("unknown request op");
  }
  Request request;
  request.op = static_cast<Request::Op>(op);
  switch (request.op) {
    case Request::Op::kIngest:
      DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &request.series));
      DD_RETURN_IF_ERROR(in.GetVarintSigned64(&request.timestamp));
      DD_RETURN_IF_ERROR(in.GetFixedDouble(&request.value));
      break;
    case Request::Op::kMerge:
      DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &request.series));
      DD_RETURN_IF_ERROR(in.GetVarintSigned64(&request.timestamp));
      DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &request.payload));
      break;
    case Request::Op::kQuery:
      DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &request.series));
      DD_RETURN_IF_ERROR(in.GetVarintSigned64(&request.start));
      DD_RETURN_IF_ERROR(in.GetVarintSigned64(&request.end));
      DD_RETURN_IF_ERROR(GetDoubles(&in, &request.quantiles));
      break;
    case Request::Op::kSubscribe:
      DD_RETURN_IF_ERROR(in.GetVarint64(&request.repl_token));
      DD_RETURN_IF_ERROR(GetPositions(&in, &request.positions));
      break;
    case Request::Op::kCompact:
      DD_RETURN_IF_ERROR(in.GetVarintSigned64(&request.compact_now));
      break;
    case Request::Op::kSetTag:
      DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &request.tag));
      break;
    case Request::Op::kCheckpoint:
    case Request::Op::kStats:
    case Request::Op::kPromote:
      break;
  }
  DD_RETURN_IF_ERROR(CheckDrained(in));
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string body;
  body.push_back(static_cast<char>(response.op));
  body.push_back(static_cast<char>(response.code));
  PutLengthPrefixed(&body, response.message);
  if (response.code == StatusCode::kOk) {
    switch (response.op) {
      case Request::Op::kIngest:
      case Request::Op::kMerge:
        PutVarint64(&body, response.wal_offset);
        break;
      case Request::Op::kQuery:
        PutDoubles(&body, response.values);
        break;
      case Request::Op::kCheckpoint:
        PutVarint64(&body, response.epoch);
        break;
      case Request::Op::kStats:
        PutVarint64(&body, response.stats.num_series);
        PutVarint64(&body, response.stats.num_intervals);
        PutVarint64(&body, response.stats.size_in_bytes);
        PutVarint64(&body, response.stats.wal_offset);
        PutVarint64(&body, response.stats.epoch);
        PutVarint64(&body, response.stats.batch_commits);
        PutVarint64(&body, response.stats.background_checkpoints);
        PutVarint64(&body, response.stats.connections_open);
        PutVarint64(&body, response.stats.connections_accepted);
        PutVarint64(&body, response.stats.connections_shed);
        PutVarint64(&body, response.stats.busy_rejections);
        PutVarint64(&body, response.stats.staged_bytes);
        // v4: one latency row per LatencyOp, fixed count so the decoder
        // can reject a peer that disagrees about the op set.
        PutVarint64(&body, kNumLatencyOps);
        for (const OpLatencyStats& row : response.stats.op_latencies) {
          PutVarint64(&body, row.count);
          PutFixedDouble(&body, row.p50_us);
          PutFixedDouble(&body, row.p90_us);
          PutFixedDouble(&body, row.p99_us);
          PutFixedDouble(&body, row.p999_us);
          PutFixedDouble(&body, row.max_us);
        }
        PutVarint64(&body, response.stats.shards.size());
        for (const ShardStats& shard : response.stats.shards) {
          PutVarint64(&body, shard.shard);
          PutVarint64(&body, shard.num_series);
          PutVarint64(&body, shard.wal_bytes);
          PutVarint64(&body, shard.epoch);
          PutVarint64(&body, shard.batch_commits);
          PutVarint64(&body, shard.background_checkpoints);
        }
        // v5: replication + fencing, appended after the shard rows so
        // the v4 field prefix is byte-identical.
        PutVarint64(&body, response.stats.role);
        PutVarint64(&body, response.stats.fence_token);
        PutVarint64(&body, response.stats.fenced);
        PutVarint64(&body, response.stats.repl_subscribers);
        PutVarint64(&body, response.stats.repl_shipped_bytes);
        PutVarint64(&body, response.stats.repl_applied_bytes);
        PutVarint64(&body, response.stats.repl_connected);
        PutVarint64(&body, response.stats.repl_heartbeat_age_ms);
        // v6: rollup-ladder rows, appended after the v5 fields so
        // their byte prefix is untouched.
        PutVarint64(&body, response.stats.levels.size());
        for (const LevelStatsRow& level : response.stats.levels) {
          PutVarint64(&body, level.interval_seconds);
          PutVarint64(&body, level.retention_seconds);
          PutVarint64(&body, level.num_intervals);
          PutVarint64(&body, level.rollup_merges);
          PutVarint64(&body, level.retained_bytes);
        }
        // v7: per-tag admission rows, appended after the v6 level rows
        // so every earlier version's byte prefix is untouched.
        PutVarint64(&body, response.stats.tags.size());
        for (const TagStatsRow& tag : response.stats.tags) {
          PutLengthPrefixed(&body, tag.tag);
          PutVarint64(&body, tag.floor_bytes);
          PutVarint64(&body, tag.budget_bytes);
          PutVarint64(&body, tag.staged_bytes);
          PutVarint64(&body, tag.busy_rejections);
          PutVarint64(&body, tag.throttle_permille);
          PutVarint64(&body, tag.count);
          PutFixedDouble(&body, tag.p50_us);
          PutFixedDouble(&body, tag.p99_us);
          PutFixedDouble(&body, tag.p999_us);
        }
        break;
      case Request::Op::kSubscribe:
        PutVarint64(&body, response.repl_token);
        PutVarint64(&body, response.repl_shards);
        break;
      case Request::Op::kPromote:
        PutVarint64(&body, response.repl_token);
        break;
      case Request::Op::kCompact:
        PutVarint64(&body, response.compacted);
        PutVarint64(&body, response.epoch);
        break;
      case Request::Op::kSetTag:
        break;  // acknowledgement only
    }
  } else if (response.code == StatusCode::kBusy &&
             (response.op == Request::Op::kIngest ||
              response.op == Request::Op::kMerge)) {
    // v7: a BUSY refusal is the one non-OK response with a payload —
    // the refusing tag's suggested retry delay.
    PutVarint64(&body, response.retry_after_ms);
  }
  return EncodeFrame(body);
}

Result<Response> DecodeResponse(std::string_view body) {
  Slice in(body);
  std::string_view head;
  DD_RETURN_IF_ERROR(in.GetBytes(2, &head));
  const uint8_t op = static_cast<uint8_t>(head[0]);
  const uint8_t code = static_cast<uint8_t>(head[1]);
  if (!ValidOp(op)) {
    return Status::Corruption("unknown response op");
  }
  if (!ValidStatusCode(code)) {
    return Status::Corruption("unknown response status code");
  }
  Response response;
  response.op = static_cast<Request::Op>(op);
  response.code = static_cast<StatusCode>(code);
  DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &response.message));
  if (response.code == StatusCode::kOk) {
    switch (response.op) {
      case Request::Op::kIngest:
      case Request::Op::kMerge:
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.wal_offset));
        break;
      case Request::Op::kQuery:
        DD_RETURN_IF_ERROR(GetDoubles(&in, &response.values));
        break;
      case Request::Op::kCheckpoint:
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.epoch));
        break;
      case Request::Op::kStats: {
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.num_series));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.num_intervals));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.size_in_bytes));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.wal_offset));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.epoch));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.batch_commits));
        DD_RETURN_IF_ERROR(
            in.GetVarint64(&response.stats.background_checkpoints));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.connections_open));
        DD_RETURN_IF_ERROR(
            in.GetVarint64(&response.stats.connections_accepted));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.connections_shed));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.busy_rejections));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.staged_bytes));
        // v4 latency rows: the count is fixed at kNumLatencyOps — any
        // other value means the peer's op set diverged from ours.
        uint64_t n_latency_ops = 0;
        DD_RETURN_IF_ERROR(in.GetVarint64(&n_latency_ops));
        if (n_latency_ops != kNumLatencyOps) {
          return Status::Corruption("unexpected latency row count");
        }
        for (OpLatencyStats& row : response.stats.op_latencies) {
          DD_RETURN_IF_ERROR(in.GetVarint64(&row.count));
          DD_RETURN_IF_ERROR(in.GetFixedDouble(&row.p50_us));
          DD_RETURN_IF_ERROR(in.GetFixedDouble(&row.p90_us));
          DD_RETURN_IF_ERROR(in.GetFixedDouble(&row.p99_us));
          DD_RETURN_IF_ERROR(in.GetFixedDouble(&row.p999_us));
          DD_RETURN_IF_ERROR(in.GetFixedDouble(&row.max_us));
        }
        uint64_t n_shards = 0;
        DD_RETURN_IF_ERROR(in.GetVarint64(&n_shards));
        // Every shard row is at least 6 varint bytes; a count the frame
        // cannot possibly hold is corruption, not an allocation request.
        if (n_shards > in.remaining() / 6) {
          return Status::Corruption("shard stats overrun frame");
        }
        response.stats.shards.resize(n_shards);
        for (ShardStats& shard : response.stats.shards) {
          DD_RETURN_IF_ERROR(in.GetVarint64(&shard.shard));
          DD_RETURN_IF_ERROR(in.GetVarint64(&shard.num_series));
          DD_RETURN_IF_ERROR(in.GetVarint64(&shard.wal_bytes));
          DD_RETURN_IF_ERROR(in.GetVarint64(&shard.epoch));
          DD_RETURN_IF_ERROR(in.GetVarint64(&shard.batch_commits));
          DD_RETURN_IF_ERROR(in.GetVarint64(&shard.background_checkpoints));
        }
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.role));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.fence_token));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.fenced));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.repl_subscribers));
        DD_RETURN_IF_ERROR(
            in.GetVarint64(&response.stats.repl_shipped_bytes));
        DD_RETURN_IF_ERROR(
            in.GetVarint64(&response.stats.repl_applied_bytes));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.stats.repl_connected));
        DD_RETURN_IF_ERROR(
            in.GetVarint64(&response.stats.repl_heartbeat_age_ms));
        uint64_t n_levels = 0;
        DD_RETURN_IF_ERROR(in.GetVarint64(&n_levels));
        // Every level row is at least 5 varint bytes; a count the frame
        // cannot possibly hold is corruption, not an allocation request.
        if (n_levels > in.remaining() / 5) {
          return Status::Corruption("level stats overrun frame");
        }
        response.stats.levels.resize(n_levels);
        for (LevelStatsRow& level : response.stats.levels) {
          DD_RETURN_IF_ERROR(in.GetVarint64(&level.interval_seconds));
          DD_RETURN_IF_ERROR(in.GetVarint64(&level.retention_seconds));
          DD_RETURN_IF_ERROR(in.GetVarint64(&level.num_intervals));
          DD_RETURN_IF_ERROR(in.GetVarint64(&level.rollup_merges));
          DD_RETURN_IF_ERROR(in.GetVarint64(&level.retained_bytes));
        }
        uint64_t n_tags = 0;
        DD_RETURN_IF_ERROR(in.GetVarint64(&n_tags));
        // Every tag row is at least 31 bytes (7 varints + 3 fixed
        // doubles); a count the frame cannot possibly hold is
        // corruption, not an allocation request.
        if (n_tags > in.remaining() / 31) {
          return Status::Corruption("tag stats overrun frame");
        }
        response.stats.tags.resize(n_tags);
        for (TagStatsRow& tag : response.stats.tags) {
          DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &tag.tag));
          DD_RETURN_IF_ERROR(in.GetVarint64(&tag.floor_bytes));
          DD_RETURN_IF_ERROR(in.GetVarint64(&tag.budget_bytes));
          DD_RETURN_IF_ERROR(in.GetVarint64(&tag.staged_bytes));
          DD_RETURN_IF_ERROR(in.GetVarint64(&tag.busy_rejections));
          DD_RETURN_IF_ERROR(in.GetVarint64(&tag.throttle_permille));
          DD_RETURN_IF_ERROR(in.GetVarint64(&tag.count));
          DD_RETURN_IF_ERROR(in.GetFixedDouble(&tag.p50_us));
          DD_RETURN_IF_ERROR(in.GetFixedDouble(&tag.p99_us));
          DD_RETURN_IF_ERROR(in.GetFixedDouble(&tag.p999_us));
        }
        break;
      }
      case Request::Op::kSubscribe:
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.repl_token));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.repl_shards));
        break;
      case Request::Op::kPromote:
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.repl_token));
        break;
      case Request::Op::kCompact:
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.compacted));
        DD_RETURN_IF_ERROR(in.GetVarint64(&response.epoch));
        break;
      case Request::Op::kSetTag:
        break;  // acknowledgement only
    }
  } else if (response.code == StatusCode::kBusy &&
             (response.op == Request::Op::kIngest ||
              response.op == Request::Op::kMerge)) {
    DD_RETURN_IF_ERROR(in.GetVarint64(&response.retry_after_ms));
  }
  DD_RETURN_IF_ERROR(CheckDrained(in));
  return response;
}

Status ResponseStatus(const Response& response) {
  if (response.code == StatusCode::kOk) return Status::OK();
  return Status(response.code, response.message);
}

std::string EncodeReplFrame(const ReplFrame& frame) {
  std::string body;
  body.push_back(static_cast<char>(frame.tag));
  switch (frame.tag) {
    case ReplFrame::Tag::kSnapshot:
      PutVarint64(&body, frame.shard);
      PutVarint64(&body, frame.epoch);
      PutLengthPrefixed(&body, frame.payload);
      break;
    case ReplFrame::Tag::kSegment:
      PutVarint64(&body, frame.shard);
      PutVarint64(&body, frame.epoch);
      PutVarint64(&body, frame.start_offset);
      PutLengthPrefixed(&body, frame.payload);
      break;
    case ReplFrame::Tag::kHeartbeat:
      PutVarint64(&body, frame.token);
      PutPositions(&body, frame.positions);
      break;
    case ReplFrame::Tag::kAck:
      PutVarint64(&body, frame.shard);
      PutVarint64(&body, frame.epoch);
      PutVarint64(&body, frame.offset);
      break;
    case ReplFrame::Tag::kFence:
      PutVarint64(&body, frame.token);
      break;
    case ReplFrame::Tag::kSnapshotChunk:
      PutVarint64(&body, frame.shard);
      PutLengthPrefixed(&body, frame.payload);
      break;
    case ReplFrame::Tag::kSnapshotEnd:
      PutVarint64(&body, frame.shard);
      PutVarint64(&body, frame.epoch);
      break;
  }
  return EncodeFrame(body);
}

Result<ReplFrame> DecodeReplFrame(std::string_view body) {
  Slice in(body);
  std::string_view tag_byte;
  DD_RETURN_IF_ERROR(in.GetBytes(1, &tag_byte));
  const uint8_t tag = static_cast<uint8_t>(tag_byte[0]);
  if (tag < static_cast<uint8_t>(ReplFrame::Tag::kSnapshot) ||
      tag > static_cast<uint8_t>(ReplFrame::Tag::kSnapshotEnd)) {
    return Status::Corruption("unknown replication frame tag");
  }
  ReplFrame frame;
  frame.tag = static_cast<ReplFrame::Tag>(tag);
  switch (frame.tag) {
    case ReplFrame::Tag::kSnapshot:
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.shard));
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.epoch));
      DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &frame.payload));
      break;
    case ReplFrame::Tag::kSegment:
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.shard));
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.epoch));
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.start_offset));
      DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &frame.payload));
      break;
    case ReplFrame::Tag::kHeartbeat:
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.token));
      DD_RETURN_IF_ERROR(GetPositions(&in, &frame.positions));
      break;
    case ReplFrame::Tag::kAck:
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.shard));
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.epoch));
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.offset));
      break;
    case ReplFrame::Tag::kFence:
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.token));
      break;
    case ReplFrame::Tag::kSnapshotChunk:
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.shard));
      DD_RETURN_IF_ERROR(GetLengthPrefixed(&in, &frame.payload));
      break;
    case ReplFrame::Tag::kSnapshotEnd:
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.shard));
      DD_RETURN_IF_ERROR(in.GetVarint64(&frame.epoch));
      break;
  }
  DD_RETURN_IF_ERROR(CheckDrained(in));
  return frame;
}

}  // namespace dd
