// sketchd wire protocol: the length-prefixed, CRC-framed binary format
// spoken between SketchClient and SketchServer. Byte-exact layouts for
// every frame live in docs/PROTOCOL.md; the encodings here reuse the
// varint/fixed-width codecs (util/varint.h) and CRC-32C (util/crc32.h)
// that frame the on-disk formats, and are pinned by the golden fixture
// tests/golden/protocol_v7.bin.
//
// Connection preamble: the client sends 5 hello bytes (magic "DDSP" +
// version 0x07); the server validates them and echoes the same 5 bytes.
// After the handshake both directions carry frames:
//
//   len   varint    body length in bytes (capped at 64 MiB)
//   crc   fixed32   CRC-32C of the body bytes
//   body  request or response payload (op byte first)
//
// — the same framing as a WAL record (timeseries/wal.h), so one CRC
// discipline covers every byte the system writes to disk or socket.
//
// This header is a pure codec: no sockets, no threads. Transport lives
// in server/net.h, the daemon in server/server.h.

#ifndef DDSKETCH_SERVER_PROTOCOL_H_
#define DDSKETCH_SERVER_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dd {

/// Protocol magic ("DDSP") and version, exchanged in the 5-byte hello.
/// v2 extended the STATS payload with per-shard rows (sharded store);
/// v3 added the BUSY status code (admission control: transient overload,
/// retry after backoff) and five serving counters to the STATS payload;
/// v4 added per-op ack-latency rows (self-instrumentation: the server
/// sketches its own request latencies and STATS reports the
/// percentiles); v5 added the replication channel (SUBSCRIBE/PROMOTE
/// ops, streamed ReplFrames), the FENCED status code, and
/// replication/fencing fields in STATS; v6 added the COMPACT op
/// (explicit rollup-ladder aging), per-level STATS rows, and chunked
/// replication snapshot frames (kSnapshotChunk/kSnapshotEnd, lifting
/// the 64 MiB frame cap off bootstrap snapshot size); v7 added per-tag
/// admission control (the SET_TAG op declaring a connection's tenant
/// tag, a retry_after_ms hint on BUSY ingest/merge refusals, and
/// per-tag STATS rows carrying budgets and ack-latency percentiles).
/// Everything else is unchanged from v1.
inline constexpr char kProtocolMagic[4] = {'D', 'D', 'S', 'P'};
inline constexpr uint8_t kProtocolVersion = 7;
inline constexpr size_t kHelloBytes = sizeof(kProtocolMagic) + 1;

/// Upper bound on one frame body; anything larger is corruption before
/// the CRC is even checked (mirrors the WAL's record cap).
inline constexpr uint64_t kMaxFrameBytes = uint64_t{1} << 26;  // 64 MiB

/// The 5 hello bytes each side sends once at connection start.
std::string EncodeHello();

/// Validates a peer's hello. Fails with Incompatible on a version
/// mismatch and Corruption on anything that is not a hello at all.
Status CheckHello(std::string_view hello);

/// One client request. `op` selects which fields are meaningful.
struct Request {
  enum class Op : uint8_t {
    kIngest = 1,      ///< ingest one raw value into a series
    kMerge = 2,       ///< merge a serialized worker sketch into a series
    kQuery = 3,       ///< quantiles of one series over [start, end)
    kCheckpoint = 4,  ///< snapshot + WAL reset
    kStats = 5,       ///< store/server statistics
    kSubscribe = 6,   ///< v5: become a replication follower of this server
    kPromote = 7,     ///< v5: become primary (bump fencing token, unfence)
    kCompact = 8,     ///< v6: age the rollup ladder now, then checkpoint
    kSetTag = 9,      ///< v7: declare this connection's admission tag
  };

  Op op = Op::kIngest;
  std::string series;              // kIngest, kMerge, kQuery
  int64_t timestamp = 0;           // kIngest, kMerge
  double value = 0;                // kIngest
  std::string payload;             // kMerge: DDSketch wire bytes
  int64_t start = 0;               // kQuery
  int64_t end = 0;                 // kQuery
  std::vector<double> quantiles;   // kQuery

  // kCompact: the caller's clock; the server clamps it to the data
  // horizon, so INT64_MAX means "fold everything eligible by data time".
  int64_t compact_now = 0;

  // kSubscribe: the follower's fencing token and per-shard resume
  // positions (epoch, WAL offset), one per shard it already holds.
  uint64_t repl_token = 0;
  std::vector<std::pair<uint64_t, uint64_t>> positions;

  // kSetTag (v7): the admission tag every later INGEST/MERGE on this
  // connection is charged to. Untagged connections use "default".
  std::string tag;
};

/// One shard's row in the STATS payload. A single-shard server reports
/// exactly one row whose fields equal the aggregate ones.
struct ShardStats {
  uint64_t shard = 0;        ///< shard index (series route: hash % shards)
  uint64_t num_series = 0;   ///< series stored on this shard
  uint64_t wal_bytes = 0;    ///< shard WAL size (13-byte header included)
  uint64_t epoch = 0;        ///< shard WAL generation (+1 per checkpoint)
  uint64_t batch_commits = 0;           ///< this shard's group commits
  uint64_t background_checkpoints = 0;  ///< scheduler-initiated checkpoints
};

/// The server-side latency rows STATS reports (v4). One row per request
/// op, plus a row for ingests/merges refused with BUSY (a rejection is
/// not an ingest: its ack latency is the cost of saying no, and folding
/// it into the INGEST row would make overload look fast).
enum class LatencyOp : uint8_t {
  kIngest = 0,
  kMerge = 1,
  kQuery = 2,
  kCheckpoint = 3,
  kStats = 4,
  kBusy = 5,  ///< BUSY-refused ingests/merges (admission rejections)
};
inline constexpr size_t kNumLatencyOps = 6;

/// Name of a latency row ("INGEST", ..., "BUSY") for display.
std::string_view LatencyOpName(LatencyOp op);

/// One op's ack-latency summary, measured server-side from "request
/// fully framed" to "response queued for write", in microseconds. The
/// percentiles come from a DDSketch the serving layer keeps per event
/// loop (relative accuracy = sketchd's --latency-alpha, default 0.01);
/// an empty row reports count = 0 with all percentiles 0.
struct OpLatencyStats {
  uint64_t count = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
};

/// One rollup-ladder level's row in the STATS payload (v6), finest
/// level first. Geometry comes from the store's ladder; the counters
/// aggregate across shards.
struct LevelStatsRow {
  uint64_t interval_seconds = 0;   ///< bucket width at this level
  uint64_t retention_seconds = 0;  ///< 0 = keep forever (last level)
  uint64_t num_intervals = 0;      ///< interval sketches held at this level
  uint64_t rollup_merges = 0;      ///< cumulative sketches folded into it
  uint64_t retained_bytes = 0;     ///< live bytes at this level
};

/// One admission tag's row in the STATS payload (v7). Budgets come from
/// the server's per-tag ledger; the latency percentiles come from the
/// tag's own ack-latency sketch (non-BUSY INGEST/MERGE acks only), the
/// same instrument the throttle controller reads.
struct TagStatsRow {
  std::string tag;                  ///< tag name ("default" for untagged)
  uint64_t floor_bytes = 0;         ///< guaranteed staged-bytes floor
  uint64_t budget_bytes = 0;        ///< floor + currently borrowable share
  uint64_t staged_bytes = 0;        ///< bytes this tag has staged right now
  uint64_t busy_rejections = 0;     ///< records refused with BUSY
  uint64_t throttle_permille = 1000;///< borrowable-share scale (1000 = full)
  uint64_t count = 0;               ///< acked ingest/merge latency samples
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

/// STATS response payload. The scalar fields aggregate across shards
/// (sums, except `epoch` which is the minimum shard epoch); `shards`
/// carries one row per shard.
struct StoreStats {
  uint64_t num_series = 0;
  uint64_t num_intervals = 0;
  uint64_t size_in_bytes = 0;
  uint64_t wal_offset = 0;  ///< total WAL bytes across shards
  uint64_t epoch = 0;       ///< minimum shard epoch
  uint64_t batch_commits = 0;  ///< group commits since the server started
  uint64_t background_checkpoints = 0;  ///< scheduler checkpoints, all shards

  // v3 serving counters (whole-server, not per shard).
  uint64_t connections_open = 0;      ///< currently established connections
  uint64_t connections_accepted = 0;  ///< accepts since the server started
  uint64_t connections_shed = 0;      ///< closed by deadline/overload policy
  uint64_t busy_rejections = 0;       ///< records refused with BUSY
  uint64_t staged_bytes = 0;          ///< bytes currently staged, all shards

  // v4 self-instrumentation: ack-latency percentiles per op, indexed by
  // LatencyOp, merged across event loops at STATS time.
  std::array<OpLatencyStats, kNumLatencyOps> op_latencies{};

  std::vector<ShardStats> shards;

  // v5 replication + fencing (encoded after the shard rows so v4's
  // field prefix is untouched).
  uint64_t role = 0;                 ///< 0 = primary, 1 = follower
  uint64_t fence_token = 0;          ///< current fencing token
  uint64_t fenced = 0;               ///< 1 when sticky-fenced (writes refused)
  uint64_t repl_subscribers = 0;     ///< primary: attached followers
  uint64_t repl_shipped_bytes = 0;   ///< primary: WAL bytes shipped
  uint64_t repl_applied_bytes = 0;   ///< follower: WAL bytes applied
  uint64_t repl_connected = 0;       ///< follower: 1 when tailing its primary
  uint64_t repl_heartbeat_age_ms = 0;///< follower: ms since last heartbeat

  // v6 rollup ladder, appended after the v5 fields so their byte
  // prefix is untouched.
  std::vector<LevelStatsRow> levels;

  // v7 per-tag admission rows, appended after the v6 level rows so
  // every earlier version's byte prefix is untouched.
  std::vector<TagStatsRow> tags;
};

/// One server response. Echoes the request's op; `code`/`message` carry
/// the Status outcome, and the op-specific fields are only present when
/// code == kOk — with one v7 exception: a BUSY ingest/merge refusal
/// carries `retry_after_ms`.
struct Response {
  Request::Op op = Request::Op::kIngest;
  StatusCode code = StatusCode::kOk;
  std::string message;             // empty on success

  uint64_t wal_offset = 0;         // kIngest, kMerge: offset after commit
  std::vector<double> values;      // kQuery: one result per requested q
  uint64_t epoch = 0;              // kCheckpoint, kCompact: epoch after reset
  StoreStats stats;                // kStats
  uint64_t repl_token = 0;         // kSubscribe, kPromote: fencing token
  uint64_t repl_shards = 0;        // kSubscribe: primary's shard count
  uint64_t compacted = 0;          // kCompact: interval sketches folded

  // v7: on a BUSY ingest/merge refusal, the refusing tag's suggested
  // wait before retrying, derived from its ledger refill rate. Only on
  // the wire when code == kBusy and op is kIngest/kMerge; 0 = no hint.
  uint64_t retry_after_ms = 0;
};

/// Frames an already-encoded body: len varint + body CRC + body.
std::string EncodeFrame(std::string_view body);

/// Splits one frame off the front of `buffer`. On success returns the
/// body (a view into `buffer`) and sets *frame_size to the bytes
/// consumed. Fails with OutOfRange when the buffer holds only a frame
/// prefix (read more and retry) and Corruption on a CRC mismatch or an
/// implausible length.
Result<std::string_view> DecodeFrame(std::string_view buffer,
                                     size_t* frame_size);

/// Encodes a complete framed request / response, ready to write.
std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

/// Decodes a frame *body* (the output of DecodeFrame). Any malformed,
/// truncated, or trailing bytes fail with Corruption.
Result<Request> DecodeRequest(std::string_view body);
Result<Response> DecodeResponse(std::string_view body);

/// Converts a response's code/message pair back into a Status, so client
/// callers see the server-side error exactly as the server produced it.
Status ResponseStatus(const Response& response);

/// One replication-channel frame (v5). After an OK SUBSCRIBE response
/// the connection leaves request/response mode: the primary streams
/// kSnapshot / kSegment / kHeartbeat frames down, and the follower
/// streams kAck (plus, at promotion, kFence) frames up — all in the
/// same CRC framing as every other byte on the wire.
struct ReplFrame {
  enum class Tag : uint8_t {
    kSnapshot = 1,   ///< full shard state: payload is a snapshot image,
                     ///< epoch is the WAL epoch to tail from
    kSegment = 2,    ///< raw WAL record bytes starting at start_offset
    kHeartbeat = 3,  ///< primary liveness: fence token + shard positions
    kAck = 4,        ///< follower's durable (epoch, offset) for one shard
    kFence = 5,      ///< observed fencing token (a promotion upstream)
    // v6 chunked snapshot bootstrap: a large shard snapshot streams as
    // any number of kSnapshotChunk frames (payload pieces, in order)
    // closed by one kSnapshotEnd frame, whose epoch stamps the
    // assembled image — so the 64 MiB frame cap bounds a chunk, not
    // the bootstrapable shard size. Single-frame kSnapshot remains
    // valid (and is still what small snapshots ship as).
    kSnapshotChunk = 6,  ///< one piece of a shard snapshot image
    kSnapshotEnd = 7,    ///< terminator: install the assembled image
  };

  Tag tag = Tag::kSegment;
  uint64_t shard = 0;         // kSnapshot, kSegment, kAck, kSnapshotChunk/End
  uint64_t epoch = 0;         // kSnapshot, kSegment, kAck, kSnapshotEnd
  uint64_t start_offset = 0;  // kSegment
  uint64_t offset = 0;        // kAck: durable WAL offset after apply
  uint64_t token = 0;         // kHeartbeat, kFence
  std::vector<std::pair<uint64_t, uint64_t>> positions;  // kHeartbeat
  std::string payload;        // kSnapshot, kSegment, kSnapshotChunk
};

/// Encodes a complete framed replication frame, ready to write.
std::string EncodeReplFrame(const ReplFrame& frame);

/// Decodes a replication frame *body*. Unknown tags, truncation, or
/// trailing bytes fail with Corruption.
Result<ReplFrame> DecodeReplFrame(std::string_view body);

}  // namespace dd

#endif  // DDSKETCH_SERVER_PROTOCOL_H_
