#include "server/replication.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "timeseries/wal.h"

namespace dd {
namespace {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Lexicographic (epoch, offset) order: a later epoch supersedes any
/// offset of an earlier one (the WAL was reset in between).
bool PosLess(const std::pair<uint64_t, uint64_t>& a,
             const std::pair<uint64_t, uint64_t>& b) {
  return a.first != b.first ? a.first < b.first : a.second < b.second;
}

}  // namespace

// ---------------------------------------------------------------------------
// ReplicationShipper
// ---------------------------------------------------------------------------

ReplicationShipper::ReplicationShipper(std::vector<ReplShard> shards,
                                       ReplicationShipperOptions options,
                                       std::function<void(uint64_t)> on_fence)
    : shards_(std::move(shards)),
      options_(std::move(options)),
      on_fence_(std::move(on_fence)),
      parked_(shards_.size()) {}

ReplicationShipper::~ReplicationShipper() { Stop(); }

void ReplicationShipper::Start() {
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  started_ = true;
  pump_ = std::thread([this] { PumpLoop(); });
}

void ReplicationShipper::Stop() {
  std::vector<std::function<void(bool)>> releases;
  bool fenced = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    stop_ = true;
    fenced = fenced_;
    for (size_t i = 0; i < subs_.size(); ++i) ::close(subs_[i].fd);
    subs_.clear();
    subscriber_count_.store(0, std::memory_order_relaxed);
    for (auto& queue : parked_) {
      while (!queue.empty()) {
        releases.push_back(std::move(queue.front().complete));
        queue.pop_front();
      }
    }
  }
  // Shutdown is not failover: the records are durable here and this
  // server is still the primary, so parked acks release as OK (unless a
  // promotion already fenced us).
  for (auto& fn : releases) fn(fenced);
  Wake();
  if (pump_.joinable()) pump_.join();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  wake_fd_ = -1;
}

void ReplicationShipper::AddSubscriber(
    int fd, std::string initial_out,
    std::vector<std::pair<uint64_t, uint64_t>> positions) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!stop_) {
      Subscriber sub;
      sub.fd = fd;
      sub.out = std::move(initial_out);
      positions.resize(shards_.size(), {0, 0});
      // The follower's claimed durable positions are its ack baseline:
      // nothing at or below them is owed an ack.
      sub.sent = positions;
      sub.acked = std::move(positions);
      sub.last_heartbeat = Clock::now();
      subs_.push_back(std::move(sub));
      subscriber_count_.store(subs_.size(), std::memory_order_relaxed);
      Wake();
      return;
    }
  }
  ::close(fd);  // raced with Stop
}

void ReplicationShipper::SubmitCommitted(size_t shard, uint64_t epoch,
                                         uint64_t offset,
                                         std::function<void(bool)> complete) {
  bool fenced = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fenced = fenced_;
    // Park only while gating is in effect: a subscriber is attached, or
    // earlier parked batches still await their acks (FIFO per shard —
    // releasing this one first would reorder acks). ack_timeout_ms <= 0
    // turns gating off entirely (pure async shipping).
    if (!stop_ && !fenced_ && options_.ack_timeout_ms > 0 &&
        (!subs_.empty() || !parked_[shard].empty())) {
      Parked entry;
      entry.epoch = epoch;
      entry.offset = offset;
      entry.deadline =
          Clock::now() + std::chrono::milliseconds(options_.ack_timeout_ms);
      entry.complete = std::move(complete);
      parked_[shard].push_back(std::move(entry));
      Wake();
      return;
    }
  }
  complete(fenced);
}

void ReplicationShipper::Fence() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (fenced_ || stop_) return;
    fenced_ = true;
  }
  // The pump releases every parked completion with fenced=true on its
  // next iteration (CollectReleasable stops waiting for acks once
  // fenced_ is set).
  Wake();
}

void ReplicationShipper::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  (void)n;  // EAGAIN: a wake-up is already pending
}

bool ReplicationShipper::QueueShipping(Subscriber* sub) {
  for (size_t k = 0; k < shards_.size(); ++k) {
    while (sub->out.size() - sub->out_off < options_.outbuf_bytes) {
      std::lock_guard<std::mutex> store_lk(*shards_[k].store_mu);
      const DurableSketchStore& store = *shards_[k].store;
      const uint64_t cur_epoch = store.epoch();
      const uint64_t cur_offset = store.wal_offset();
      auto& sent = sub->sent[k];
      // A subscriber sitting exactly at the end of the epoch this store
      // last checkpointed away consumed that epoch in full: roll it to
      // the new epoch's start and keep tailing. The follower's
      // epoch-crossing path (ApplyReplicatedSegment at epoch+1,
      // kWalHeaderBytes) folds its own state, so no snapshot transfer
      // is needed. prior_epoch_end() is 0 — never matched — after a
      // promotion or snapshot install: old-lineage positions must not
      // be rolled forward (their bytes may be divergent).
      if (sent.first + 1 == cur_epoch && sent.second >= kWalHeaderBytes &&
          sent.second == store.prior_epoch_end()) {
        sent = {cur_epoch, kWalHeaderBytes};
      }
      if (sent.first == cur_epoch && sent.second <= cur_offset) {
        if (sent.second < kWalHeaderBytes) sent.second = kWalHeaderBytes;
        if (sent.second >= cur_offset) break;  // caught up on this shard
        auto chunk = store.ReadWalChunk(sent.second, options_.segment_bytes);
        if (!chunk.ok()) return false;  // our own WAL unreadable: drop + let
                                        // the follower resync elsewhere
        if (chunk.value().empty()) break;
        ReplFrame frame;
        frame.tag = ReplFrame::Tag::kSegment;
        frame.shard = k;
        frame.epoch = cur_epoch;
        frame.start_offset = sent.second;
        frame.payload = std::move(chunk).value();
        sent.second += frame.payload.size();
        shipped_bytes_.fetch_add(frame.payload.size(),
                                 std::memory_order_relaxed);
        sub->out += EncodeReplFrame(frame);
        continue;
      }
      // Position mismatch — the follower is fresh, ahead of us (a
      // past-life primary), or behind a checkpoint that already
      // truncated the bytes it needs. All three resync the same way a
      // crashed store recovers: full snapshot, then tail the new WAL.
      //
      // The snapshot is the *live* state, so it already contains any
      // current-epoch records; shipping it and then tailing the current
      // epoch from its start would apply those records twice. Fold the
      // epoch first (checkpoint, under the store_mu we hold) so the
      // snapshot sits exactly on the new epoch's boundary and the tail
      // starts from an empty log.
      if (cur_offset > kWalHeaderBytes) {
        DurableSketchStore& mut_store = *shards_[k].store;
        if (!mut_store.CheckpointForReplication().ok()) {
          return false;  // can't produce a consistent snapshot: drop the
                         // subscriber, let it retry
        }
      }
      const uint64_t snap_epoch = store.epoch();  // re-read: the fold
                                                  // bumped it
      std::string image = store.EncodeReplicationSnapshot();
      shipped_bytes_.fetch_add(image.size(), std::memory_order_relaxed);
      snapshot_frames_.fetch_add(1, std::memory_order_relaxed);
      if (image.size() <= options_.snapshot_chunk_bytes) {
        ReplFrame frame;
        frame.tag = ReplFrame::Tag::kSnapshot;
        frame.shard = k;
        frame.epoch = snap_epoch;
        frame.payload = std::move(image);
        sub->out += EncodeReplFrame(frame);
      } else {
        // v6 chunked bootstrap: the image streams as ≤chunk-sized
        // pieces closed by a terminating frame, so the per-frame cap
        // never bounds how large a shard can grow and still be
        // bootstrapped. The whole train is queued at once — the pump
        // trickles `out` to the socket as the follower drains it.
        for (size_t off = 0; off < image.size();
             off += options_.snapshot_chunk_bytes) {
          ReplFrame chunk;
          chunk.tag = ReplFrame::Tag::kSnapshotChunk;
          chunk.shard = k;
          chunk.payload = image.substr(off, options_.snapshot_chunk_bytes);
          sub->out += EncodeReplFrame(chunk);
        }
        ReplFrame end;
        end.tag = ReplFrame::Tag::kSnapshotEnd;
        end.shard = k;
        end.epoch = snap_epoch;
        sub->out += EncodeReplFrame(end);
      }
      sent = {snap_epoch, kWalHeaderBytes};
    }
  }
  return true;
}

bool ReplicationShipper::ParseIncoming(Subscriber* sub,
                                       std::vector<uint64_t>* fences) {
  for (;;) {
    size_t frame_size = 0;
    auto body = DecodeFrame(sub->in, &frame_size);
    if (!body.ok()) {
      // An incomplete frame means "read more"; anything else is a
      // protocol violation and the subscriber is cut off.
      return body.status().code() == StatusCode::kOutOfRange;
    }
    auto frame = DecodeReplFrame(body.value());
    if (!frame.ok()) return false;
    switch (frame.value().tag) {
      case ReplFrame::Tag::kAck: {
        const uint64_t k = frame.value().shard;
        if (k >= shards_.size()) return false;
        const std::pair<uint64_t, uint64_t> pos{frame.value().epoch,
                                                frame.value().offset};
        if (PosLess(sub->acked[k], pos)) sub->acked[k] = pos;
        break;
      }
      case ReplFrame::Tag::kFence:
        fenced_ = true;
        fences->push_back(frame.value().token);
        break;
      default:
        return false;  // only the primary streams snapshots/segments
    }
    sub->in.erase(0, frame_size);
  }
}

void ReplicationShipper::CollectReleasable(
    std::vector<std::function<void(bool)>>* out) {
  for (size_t k = 0; k < parked_.size(); ++k) {
    auto& queue = parked_[k];
    while (!queue.empty()) {
      const Parked& front = queue.front();
      if (!fenced_ && !subs_.empty()) {
        const std::pair<uint64_t, uint64_t> pos{front.epoch, front.offset};
        bool all_acked = true;
        for (const Subscriber& sub : subs_) {
          if (PosLess(sub.acked[k], pos)) {
            all_acked = false;
            break;
          }
        }
        if (!all_acked) break;
      }
      // Release: every subscriber acked it, the last subscriber left
      // (async mode), or we are fenced (complete(true) → FENCED).
      out->push_back(std::move(queue.front().complete));
      queue.pop_front();
    }
  }
}

void ReplicationShipper::DropExpired(
    std::vector<std::function<void(bool)>>* out) {
  const TimePoint now = Clock::now();
  for (size_t k = 0; k < parked_.size(); ++k) {
    if (parked_[k].empty()) continue;
    const Parked& front = parked_[k].front();
    if (now < front.deadline) continue;
    // The oldest owed ack timed out: drop every subscriber still short
    // of it. Semi-sync degrades to async instead of stalling ingest.
    const std::pair<uint64_t, uint64_t> pos{front.epoch, front.offset};
    for (size_t i = subs_.size(); i-- > 0;) {
      if (PosLess(subs_[i].acked[k], pos)) CloseSubscriberLocked(i);
    }
  }
  CollectReleasable(out);
}

void ReplicationShipper::CloseSubscriberLocked(size_t index) {
  ::close(subs_[index].fd);
  subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(index));
  subscriber_count_.store(subs_.size(), std::memory_order_relaxed);
}

void ReplicationShipper::PumpLoop() {
  std::vector<struct pollfd> fds;
  char buf[64 * 1024];
  for (;;) {
    std::vector<std::function<void(bool)>> releases;
    std::vector<uint64_t> fences;
    bool release_fenced = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_) return;
      const TimePoint now = Clock::now();
      for (size_t i = subs_.size(); i-- > 0;) {
        Subscriber& sub = subs_[i];
        if (!QueueShipping(&sub)) {
          CloseSubscriberLocked(i);
          continue;
        }
        if (now - sub.last_heartbeat >=
            std::chrono::milliseconds(options_.heartbeat_ms)) {
          sub.last_heartbeat = now;
          ReplFrame hb;
          hb.tag = ReplFrame::Tag::kHeartbeat;
          {
            std::lock_guard<std::mutex> store_lk(*shards_[0].store_mu);
            hb.token = shards_[0].store->fence_token();
          }
          hb.positions = sub.sent;
          sub.out += EncodeReplFrame(hb);
        }
      }
      DropExpired(&releases);
      release_fenced = fenced_;
      fds.clear();
      fds.push_back({wake_fd_, POLLIN, 0});
      for (const Subscriber& sub : subs_) {
        short events = POLLIN;
        if (sub.out.size() > sub.out_off) events |= POLLOUT;
        fds.push_back({sub.fd, events, 0});
      }
    }
    for (auto& fn : releases) fn(release_fenced);
    releases.clear();

    ::poll(fds.data(), fds.size(), 50);

    if (fds[0].revents & POLLIN) {
      uint64_t v = 0;
      while (::read(wake_fd_, &v, sizeof(v)) > 0) {
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_) return;
      // fds[1+i] lines up with subs_[i] only if the set is unchanged;
      // AddSubscriber appends (indexes stable) and only this thread
      // erases, so match by fd to stay safe.
      for (size_t f = 1; f < fds.size(); ++f) {
        if (fds[f].revents == 0) continue;
        size_t i = subs_.size();
        for (size_t j = 0; j < subs_.size(); ++j) {
          if (subs_[j].fd == fds[f].fd) {
            i = j;
            break;
          }
        }
        if (i == subs_.size()) continue;  // already dropped this round
        Subscriber& sub = subs_[i];
        bool dead = (fds[f].revents & (POLLERR | POLLNVAL)) != 0;
        if (!dead && (fds[f].revents & (POLLIN | POLLHUP))) {
          for (;;) {
            const ssize_t n = ::recv(sub.fd, buf, sizeof(buf), 0);
            if (n > 0) {
              sub.in.append(buf, static_cast<size_t>(n));
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n < 0 && errno == EINTR) continue;
            dead = true;  // EOF or a hard error
            break;
          }
          if (!ParseIncoming(&sub, &fences)) dead = true;
        }
        if (!dead && sub.out.size() > sub.out_off) {
          for (;;) {
            const size_t pending = sub.out.size() - sub.out_off;
            if (pending == 0) {
              sub.out.clear();
              sub.out_off = 0;
              break;
            }
            const ssize_t n = ::send(sub.fd, sub.out.data() + sub.out_off,
                                     pending, MSG_NOSIGNAL);
            if (n > 0) {
              sub.out_off += static_cast<size_t>(n);
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n < 0 && errno == EINTR) continue;
            dead = true;
            break;
          }
        }
        if (dead) CloseSubscriberLocked(i);
      }
      CollectReleasable(&releases);
      release_fenced = fenced_;
    }
    // A FENCE frame means a follower was promoted: fence the server
    // (refuse every later write) before completing anything parked.
    for (uint64_t token : fences) {
      if (on_fence_) on_fence_(token);
    }
    for (auto& fn : releases) fn(release_fenced);
  }
}

// ---------------------------------------------------------------------------
// ReplicationFollower
// ---------------------------------------------------------------------------

ReplicationFollower::ReplicationFollower(std::vector<ReplShard> shards,
                                         ReplicationFollowerOptions options)
    : shards_(std::move(shards)),
      options_(std::move(options)),
      pending_snapshot_(shards_.size()) {}

ReplicationFollower::~ReplicationFollower() { Stop(); }

void ReplicationFollower::Start() {
  tailer_ = std::thread([this] { TailLoop(); });
}

void ReplicationFollower::Stop() {
  StopTail();
  std::lock_guard<std::mutex> lk(conn_mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void ReplicationFollower::StopTail() {
  stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    keep_fd_ = true;
    // Kick a blocking ReadFrame; the socket stays writable for the
    // promotion's FENCE frame.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
  }
  if (tailer_.joinable()) tailer_.join();
}

void ReplicationFollower::FenceUpstream(uint64_t token) {
  std::lock_guard<std::mutex> lk(conn_mu_);
  if (fd_ >= 0) {
    ReplFrame fence;
    fence.tag = ReplFrame::Tag::kFence;
    fence.token = token;
    FramedConn conn(fd_);
    (void)conn.WriteFrame(EncodeReplFrame(fence));  // best-effort
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t ReplicationFollower::heartbeat_age_ms() const {
  const int64_t last = last_heartbeat_ms_.load(std::memory_order_relaxed);
  if (last == 0) return 0;
  const int64_t age = NowMs() - last;
  return age > 0 ? static_cast<uint64_t>(age) : 0;
}

Status ReplicationFollower::incompatible() const {
  std::lock_guard<std::mutex> lk(status_mu_);
  return incompatible_;
}

void ReplicationFollower::TailLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    RunSession();
    if (!incompatible().ok()) return;  // permanent; retrying cannot help
    // Reconnect backoff, in small steps so Stop() stays prompt.
    const int64_t step_ms = 20;
    for (int64_t waited = 0;
         waited < options_.reconnect_ms &&
         !stop_.load(std::memory_order_relaxed);
         waited += step_ms) {
      ::usleep(static_cast<useconds_t>(step_ms) * 1000);
    }
  }
}

void ReplicationFollower::RunSession() {
  auto connected = ConnectTcp(options_.host, options_.port);
  if (!connected.ok()) return;
  const int fd = connected.value();
  if (options_.write_timeout_ms > 0) {
    // Bound every write on this socket (acks in ApplyFrame, the FENCE
    // in FenceUpstream) — they run under conn_mu_, which StopTail and
    // Stop must also acquire, so an unbounded send against a wedged
    // upstream would stall promotion for the TCP retransmission
    // timeout. A timed-out send fails the session; the reconnect's
    // SUBSCRIBE re-announces our durable positions, so no ack is lost.
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(options_.write_timeout_ms / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((options_.write_timeout_ms % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    fd_ = fd;
  }
  FramedConn conn(fd);
  auto fail_session = [this, fd]() {
    connected_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(conn_mu_);
    if (fd_ == fd && !keep_fd_) {
      ::close(fd_);
      fd_ = -1;
    }
  };

  Status status = conn.SendHello();
  if (status.ok()) status = conn.ExpectHello();
  if (status.code() == StatusCode::kIncompatible) {
    std::lock_guard<std::mutex> lk(status_mu_);
    incompatible_ = status;
  }
  if (!status.ok()) {
    fail_session();
    return;
  }

  // SUBSCRIBE with our durable positions; the primary resumes the
  // stream from there or ships snapshots where they no longer match.
  Request subscribe;
  subscribe.op = Request::Op::kSubscribe;
  for (const ReplShard& shard : shards_) {
    std::lock_guard<std::mutex> store_lk(*shard.store_mu);
    subscribe.repl_token =
        std::max(subscribe.repl_token, shard.store->fence_token());
    subscribe.positions.emplace_back(shard.store->epoch(),
                                     shard.store->wal_offset());
  }
  status = conn.WriteFrame(EncodeRequest(subscribe));
  if (!status.ok()) {
    fail_session();
    return;
  }
  auto body = conn.ReadFrame();
  if (!body.ok()) {
    fail_session();
    return;
  }
  auto response = DecodeResponse(body.value());
  if (!response.ok() || response.value().op != Request::Op::kSubscribe) {
    fail_session();
    return;
  }
  if (response.value().code != StatusCode::kOk) {
    // A FENCED refusal means the upstream lost a failover race; it may
    // yet be promoted again, so keep retrying rather than giving up.
    fail_session();
    return;
  }
  if (response.value().repl_shards != shards_.size()) {
    {
      std::lock_guard<std::mutex> lk(status_mu_);
      incompatible_ = Status::Incompatible(
          "primary has " + std::to_string(response.value().repl_shards) +
          " shards, this follower has " + std::to_string(shards_.size()) +
          " (shard counts are pinned at directory creation)");
    }
    fail_session();
    return;
  }
  for (const ReplShard& shard : shards_) {
    std::lock_guard<std::mutex> store_lk(*shard.store_mu);
    (void)shard.store->AdoptFenceToken(response.value().repl_token);
  }

  connected_.store(true, std::memory_order_relaxed);
  // A previous session may have died mid-chunk-train; its partial image
  // must never be completed by this session's frames.
  for (std::string& pending : pending_snapshot_) pending.clear();
  while (!stop_.load(std::memory_order_relaxed)) {
    auto frame_body = conn.ReadFrame();
    if (!frame_body.ok()) break;
    auto frame = DecodeReplFrame(frame_body.value());
    if (!frame.ok()) break;
    if (!ApplyFrame(frame.value(), &conn).ok()) break;
  }
  fail_session();
}

Status ReplicationFollower::ApplyFrame(const ReplFrame& frame,
                                       FramedConn* conn) {
  switch (frame.tag) {
    case ReplFrame::Tag::kSnapshotChunk: {
      if (frame.shard >= shards_.size()) {
        return Status::Corruption("replicated frame for unknown shard");
      }
      // Reassembly only — nothing durable happened yet, so no ack. The
      // kSnapshotEnd frame installs and acks the whole image.
      pending_snapshot_[frame.shard] += frame.payload;
      return Status::OK();
    }
    case ReplFrame::Tag::kSnapshot:
    case ReplFrame::Tag::kSnapshotEnd:
    case ReplFrame::Tag::kSegment: {
      if (frame.shard >= shards_.size()) {
        return Status::Corruption("replicated frame for unknown shard");
      }
      const ReplShard& shard = shards_[frame.shard];
      uint64_t durable_offset = 0;
      uint64_t payload_bytes = frame.payload.size();
      {
        std::lock_guard<std::mutex> store_lk(*shard.store_mu);
        if (frame.tag == ReplFrame::Tag::kSnapshot) {
          DD_RETURN_IF_ERROR(shard.store->InstallReplicatedSnapshot(
              frame.payload, frame.epoch));
        } else if (frame.tag == ReplFrame::Tag::kSnapshotEnd) {
          std::string image = std::move(pending_snapshot_[frame.shard]);
          pending_snapshot_[frame.shard].clear();
          if (image.empty()) {
            return Status::Corruption(
                "snapshot terminator without preceding chunks");
          }
          payload_bytes = image.size();
          DD_RETURN_IF_ERROR(
              shard.store->InstallReplicatedSnapshot(image, frame.epoch));
        } else {
          // OutOfRange = "segment does not extend my log": surfaces to
          // the session loop, which reconnects; the re-SUBSCRIBE's
          // positions make the primary ship a snapshot instead.
          DD_RETURN_IF_ERROR(shard.store->ApplyReplicatedSegment(
              frame.epoch, frame.start_offset, frame.payload));
        }
        durable_offset = shard.store->wal_offset();
      }
      applied_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
      ReplFrame ack;
      ack.tag = ReplFrame::Tag::kAck;
      ack.shard = frame.shard;
      ack.epoch = frame.epoch;
      ack.offset = durable_offset;
      std::lock_guard<std::mutex> lk(conn_mu_);
      return conn->WriteFrame(EncodeReplFrame(ack));
    }
    case ReplFrame::Tag::kHeartbeat: {
      last_heartbeat_ms_.store(NowMs(), std::memory_order_relaxed);
      for (const ReplShard& shard : shards_) {
        std::lock_guard<std::mutex> store_lk(*shard.store_mu);
        (void)shard.store->AdoptFenceToken(frame.token);
      }
      return Status::OK();
    }
    default:
      return Status::Corruption("unexpected replication frame from primary");
  }
}

}  // namespace dd
