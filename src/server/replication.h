// WAL-shipping replication for sketchd (protocol v5; PROTOCOL.md
// § Replication channel, ARCHITECTURE.md § Replication).
//
// Two halves, both owned by SketchServer:
//
//  * ReplicationShipper (primary side) — a pump thread that owns every
//    subscribed follower connection. It streams each shard's WAL bytes
//    (read back from the log file under the shard's store lock, so the
//    disk is the buffer and a slow follower costs no memory), falls
//    back to a full snapshot when a follower's position no longer
//    matches the log (the PR 2 epoch handshake: a checkpoint reset the
//    WAL, exactly like crash recovery), and heartbeats liveness.
//
//    Ack gating (semi-synchronous replication): while at least one
//    subscriber is attached, committed batches are *parked* — the
//    client's OK is withheld until every subscriber has acknowledged a
//    durable position at or past the batch. A subscriber that stops
//    acking for longer than the ack timeout, disconnects, or errors is
//    dropped, and dropping the last laggard releases the parked acks —
//    the primary degrades to async rather than stalling ingest (the
//    slow-loris follower can never wedge the write path). A FENCE frame
//    from a promoted follower instead releases parked acks as FENCED:
//    those records are durable here but may not exist on the new
//    primary, so acking them as OK would break the failover guarantee.
//
//  * ReplicationFollower (follower side) — one thread that connects to
//    the primary, SUBSCRIBEs with its per-shard (epoch, offset) resume
//    positions, and applies the streamed frames under the owning
//    shard's store lock: segments append + fsync + merge, snapshots
//    atomically replace shard state. Every durable apply is ack'd
//    upstream. On any error it reconnects and re-SUBSCRIBEs — resume is
//    just the subscribe handshake again, so a follower restart mid-tail
//    needs no special case.
//
// Lock order: a shipper/follower thread takes its own mutex before a
// shard's store_mu; committers call SubmitCommitted with no shard locks
// held, and parked completions run with no replication locks held.

#ifndef DDSKETCH_SERVER_REPLICATION_H_
#define DDSKETCH_SERVER_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/net.h"
#include "server/protocol.h"
#include "timeseries/durable_store.h"
#include "util/status.h"

namespace dd {

/// One shard as the replication threads see it: the store plus the
/// mutex that serializes every access to it (SketchServer::Shard owns
/// both; these are stable pointers into it).
struct ReplShard {
  std::mutex* store_mu = nullptr;
  DurableSketchStore* store = nullptr;
};

struct ReplicationShipperOptions {
  /// Park a committed batch at most this long waiting for subscriber
  /// acks before dropping the laggards and releasing the acks.
  int64_t ack_timeout_ms = 1000;
  /// Heartbeat cadence on every subscriber connection.
  int64_t heartbeat_ms = 500;
  /// Per-subscriber cap on buffered outgoing bytes; at the cap the
  /// shipper stops reading further WAL (the disk is the backlog).
  uint64_t outbuf_bytes = 4u << 20;
  /// Max WAL bytes read per segment frame.
  uint64_t segment_bytes = 1u << 20;
  /// Snapshot images larger than this ship as a kSnapshotChunk train
  /// closed by kSnapshotEnd instead of one kSnapshot frame, so the
  /// 64 MiB frame cap bounds a chunk, not the bootstrapable shard
  /// size. Small images keep the single-frame path.
  uint64_t snapshot_chunk_bytes = 4u << 20;
};

/// Primary side: owns subscriber sockets and the ack-gating ledger.
class ReplicationShipper {
 public:
  /// `on_fence` is invoked (from the pump thread, no shipper locks
  /// held) when a subscriber announces a fencing token via a FENCE
  /// frame — the server must fence its store and refuse writes.
  ReplicationShipper(std::vector<ReplShard> shards,
                     ReplicationShipperOptions options,
                     std::function<void(uint64_t)> on_fence);
  ~ReplicationShipper();

  ReplicationShipper(const ReplicationShipper&) = delete;
  ReplicationShipper& operator=(const ReplicationShipper&) = delete;

  void Start();
  /// Drops every subscriber, releases every parked completion (as OK —
  /// shutdown is not failover), joins the pump thread. Idempotent.
  void Stop();

  /// Marks this shipper fenced and wakes the pump, which releases every
  /// parked completion with fenced=true (the acks turn into FENCED).
  /// The pump's own FENCE-frame path sets the same flag; this entry
  /// point exists for fencing discovered elsewhere — a SUBSCRIBE
  /// carrying a newer token, or any other server-side self-fence — so
  /// those paths can never release parked acks as OK for records the
  /// new primary may not hold.
  void Fence();

  /// Adopts a subscriber connection handed over by an event loop after
  /// an OK SUBSCRIBE. `fd` must be non-blocking; `initial_out` (the
  /// encoded SUBSCRIBE response) is flushed before any frames.
  /// `positions` are the follower's per-shard resume positions (empty =
  /// bootstrap from snapshots).
  void AddSubscriber(int fd, std::string initial_out,
                     std::vector<std::pair<uint64_t, uint64_t>> positions);

  /// Committer hand-off for one durable batch on `shard`: either runs
  /// `complete` inline (no subscribers — async mode) or parks it until
  /// every subscriber acks (epoch, offset) or is dropped. `complete`
  /// receives true when the release happens because this server was
  /// fenced mid-park (the ack must turn into FENCED), false otherwise.
  /// Call with no shard locks held.
  void SubmitCommitted(size_t shard, uint64_t epoch, uint64_t offset,
                       std::function<void(bool)> complete);

  uint64_t subscribers() const noexcept {
    return subscriber_count_.load(std::memory_order_relaxed);
  }
  uint64_t shipped_bytes() const noexcept {
    return shipped_bytes_.load(std::memory_order_relaxed);
  }
  /// Full-snapshot frames shipped since start. A caught-up subscriber
  /// riding a checkpoint must not bump this (tests pin that).
  uint64_t snapshot_frames() const noexcept {
    return snapshot_frames_.load(std::memory_order_relaxed);
  }

 private:
  struct Subscriber {
    int fd = -1;
    std::string in;        // unparsed bytes from the follower
    std::string out;       // frames queued for the follower
    size_t out_off = 0;    // bytes of `out` already written
    /// Last (epoch, offset) whose bytes were queued, per shard.
    std::vector<std::pair<uint64_t, uint64_t>> sent;
    /// Last (epoch, offset) the follower acknowledged durable, per shard.
    std::vector<std::pair<uint64_t, uint64_t>> acked;
    std::chrono::steady_clock::time_point last_heartbeat;
  };

  /// One parked group commit awaiting subscriber acks.
  struct Parked {
    uint64_t epoch = 0;
    uint64_t offset = 0;
    std::chrono::steady_clock::time_point deadline;
    std::function<void(bool)> complete;
  };

  void PumpLoop();
  void Wake();
  /// Queues WAL bytes / snapshots for `sub` on every shard it lags.
  /// Returns false when the subscriber hit an unrecoverable error.
  bool QueueShipping(Subscriber* sub);
  /// Parses buffered follower frames (acks, fence). Returns false on a
  /// protocol violation (the subscriber must be dropped).
  bool ParseIncoming(Subscriber* sub, std::vector<uint64_t>* fences);
  /// Releases every parked entry at or below the slowest subscriber's
  /// ack on each shard; collects the completions into *out.
  void CollectReleasable(std::vector<std::function<void(bool)>>* out);
  /// Drops subscribers whose oldest owed ack is past its deadline.
  void DropExpired(std::vector<std::function<void(bool)>>* out);
  void CloseSubscriberLocked(size_t index);

  const std::vector<ReplShard> shards_;
  const ReplicationShipperOptions options_;
  const std::function<void(uint64_t)> on_fence_;

  std::mutex mu_;
  std::vector<Subscriber> subs_;            // guarded by mu_
  std::vector<std::deque<Parked>> parked_;  // per shard, guarded by mu_
  bool fenced_ = false;                     // guarded by mu_
  bool stop_ = false;                       // guarded by mu_
  bool started_ = false;
  int wake_fd_ = -1;
  std::thread pump_;

  std::atomic<uint64_t> subscriber_count_{0};
  std::atomic<uint64_t> shipped_bytes_{0};
  std::atomic<uint64_t> snapshot_frames_{0};
};

struct ReplicationFollowerOptions {
  std::string host;
  uint16_t port = 0;
  /// Delay between reconnect attempts after an error.
  int64_t reconnect_ms = 200;
  /// SO_SNDTIMEO on the upstream connection. Ack (and FENCE) writes
  /// hold conn_mu_, which StopTail/Stop also need — without a deadline
  /// a partitioned primary could wedge a blocking send for the TCP
  /// retransmission timeout (minutes) and stall promotion/shutdown for
  /// that long. Acks are resent implicitly by the next reconnect's
  /// SUBSCRIBE positions and FenceUpstream is documented best-effort,
  /// so a short deadline is safe. 0 = no deadline.
  int64_t write_timeout_ms = 2000;
};

/// Follower side: tails a primary and applies its stream.
class ReplicationFollower {
 public:
  ReplicationFollower(std::vector<ReplShard> shards,
                      ReplicationFollowerOptions options);
  ~ReplicationFollower();

  ReplicationFollower(const ReplicationFollower&) = delete;
  ReplicationFollower& operator=(const ReplicationFollower&) = delete;

  void Start();
  /// Stops tailing and closes the connection. Idempotent.
  void Stop();

  /// Promotion handshake: stops the tail thread but keeps the socket,
  /// so the caller can promote the store and then FenceUpstream() the
  /// old primary with the new token before closing.
  void StopTail();
  /// Best-effort: sends a FENCE frame with `token` up the (kept) tail
  /// connection, then closes it. The old primary self-fences on
  /// receipt; if the socket is already dead the fencing token in the
  /// LOCK files still protects us — this just makes demotion prompt.
  void FenceUpstream(uint64_t token);

  bool connected() const noexcept {
    return connected_.load(std::memory_order_relaxed);
  }
  uint64_t applied_bytes() const noexcept {
    return applied_bytes_.load(std::memory_order_relaxed);
  }
  /// Milliseconds since the last heartbeat (0 before the first one).
  uint64_t heartbeat_age_ms() const;
  /// Set when the primary is permanently incompatible (shard count or
  /// store-option mismatch); the tailer has given up retrying.
  Status incompatible() const;

 private:
  void TailLoop();
  /// One connect + subscribe + apply session. Returns when the
  /// connection dies or stop is requested.
  void RunSession();
  Status ApplyFrame(const ReplFrame& frame, FramedConn* conn);

  const std::vector<ReplShard> shards_;
  const ReplicationFollowerOptions options_;

  std::thread tailer_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> applied_bytes_{0};
  std::atomic<int64_t> last_heartbeat_ms_{0};  // steady-clock ms; 0 = never

  std::mutex conn_mu_;   // guards fd_ and writes on it (acks vs fence)
  int fd_ = -1;          // guarded by conn_mu_
  bool keep_fd_ = false; // StopTail keeps the socket for FenceUpstream

  /// Per-shard reassembly buffer for a chunked snapshot bootstrap
  /// (kSnapshotChunk frames accumulate here until kSnapshotEnd
  /// installs the image). Touched only by the tailer thread; cleared
  /// at the start of every session so a half-shipped image from a
  /// dropped connection can never be installed.
  std::vector<std::string> pending_snapshot_;

  mutable std::mutex status_mu_;
  Status incompatible_;  // guarded by status_mu_
};

}  // namespace dd

#endif  // DDSKETCH_SERVER_REPLICATION_H_
