#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

#include "core/ddsketch.h"
#include "server/net.h"

namespace dd {

Result<std::unique_ptr<SketchServer>> SketchServer::Start(
    const std::string& data_dir, const SketchServerOptions& options) {
  if (options.commit_batch == 0) {
    return Status::InvalidArgument("commit_batch must be at least 1");
  }
  auto store = DurableSketchStore::Open(data_dir, options.durable);
  if (!store.ok()) return store.status();
  // Private constructor + threads capturing `this` mean the server must
  // live at a stable address: build it on the heap before binding.
  std::unique_ptr<SketchServer> server(
      new SketchServer(options, std::move(store).value()));
  uint16_t bound_port = 0;
  auto listen_fd = ListenTcp(options.host, options.port, &bound_port);
  if (!listen_fd.ok()) return listen_fd.status();
  server->listen_fd_ = listen_fd.value();
  server->port_ = bound_port;
  server->commit_thread_ = std::thread([s = server.get()] { s->CommitLoop(); });
  server->accept_thread_ = std::thread(
      [s = server.get(), fd = listen_fd.value()] { s->AcceptLoop(fd); });
  return server;
}

SketchServer::SketchServer(SketchServerOptions options, DurableSketchStore store)
    : options_(std::move(options)), store_(std::move(store)) {}

SketchServer::~SketchServer() { Stop(); }

void SketchServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  draining_.store(true);
  // Wake the accept loop and every blocked connection read. shutdown(2)
  // (not close) so the fds stay valid until their owning threads exit.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // joinable() guards: Start() can fail between constructing the server
  // and launching the threads (e.g. bind error), and the unique_ptr's
  // destructor still runs Stop().
  if (accept_thread_.joinable()) accept_thread_.join();
  if (commit_thread_.joinable()) commit_thread_.join();
  // The accept thread is joined, so conn_threads_ is stable now.
  for (std::thread& t : conn_threads_) t.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  store_.reset();  // releases the data-dir lock for the next opener
}

uint64_t SketchServer::batch_commits() const noexcept {
  std::lock_guard<std::mutex> lk(queue_mu_);
  return batch_commits_;
}

void SketchServer::AcceptLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (Stop) or fatal error
    }
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (draining_.load()) {
      // Stop() already swept conn_fds_; registering now would leave
      // this connection without its shutdown(2) wake-up.
      ::close(fd);
      continue;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] {
      ServeConnection(fd);
      {
        std::lock_guard<std::mutex> inner(conns_mu_);
        conn_fds_.erase(fd);
      }
      // Closed only after deregistering, so Stop never shuts down a
      // recycled fd number.
      ::close(fd);
    });
  }
}

namespace {

bool IsIngestOp(Request::Op op) {
  return op == Request::Op::kIngest || op == Request::Op::kMerge;
}

WalRecord ToWalRecord(const Request& request) {
  WalRecord record;
  record.series = request.series;
  record.timestamp = request.timestamp;
  if (request.op == Request::Op::kIngest) {
    record.type = WalRecord::Type::kIngestValue;
    record.value = request.value;
  } else {
    record.type = WalRecord::Type::kIngestSketch;
    record.payload = request.payload;
  }
  return record;
}

}  // namespace

void SketchServer::ServeConnection(int fd) {
  FramedConn conn(fd);
  if (!conn.ExpectHello().ok()) return;
  if (!conn.SendHello().ok()) return;
  std::string body;
  bool have_body = false;  // a frame read ahead while collecting a run
  for (;;) {
    if (!have_body) {
      auto read = conn.ReadFrame();
      if (!read.ok()) return;  // clean EOF, shutdown, or transport error
      body = std::move(read).value();
    }
    have_body = false;
    auto request = DecodeRequest(body);
    if (!request.ok()) return;  // CRC passed but body malformed: broken peer
    if (!IsIngestOp(request.value().op)) {
      const Response response = HandleNonIngest(request.value());
      if (!conn.WriteFrame(EncodeResponse(response)).ok()) return;
      continue;
    }
    // Collect the pipelined run of ingest requests already sitting in
    // the socket, so one client's burst becomes one staged group (and
    // so the committer sees real batches even with a single client).
    std::vector<Request> run;
    run.push_back(std::move(request).value());
    while (run.size() < options_.commit_batch) {
      std::string next;
      auto got = conn.TryReadFrame(&next);
      if (!got.ok()) return;
      if (!got.value()) break;
      auto next_request = DecodeRequest(next);
      if (!next_request.ok()) return;
      if (!IsIngestOp(next_request.value().op)) {
        // Handle it after the run; keeps responses in request order.
        body = std::move(next);
        have_body = true;
        break;
      }
      run.push_back(std::move(next_request).value());
    }
    if (!HandleIngestRun(&conn, run)) return;
  }
}

bool SketchServer::HandleIngestRun(FramedConn* conn,
                                   const std::vector<Request>& run) {
  std::vector<PendingIngest> pendings(run.size());
  std::vector<PendingIngest*> to_stage;
  to_stage.reserve(run.size());
  for (size_t i = 0; i < run.size(); ++i) {
    pendings[i].record = ToWalRecord(run[i]);
    // Validation reads only the store's immutable configuration
    // (prototype sketch parameters), so it runs lock-free on the
    // connection thread — a bad request is rejected here and never
    // poisons or stalls a committer batch.
    pendings[i].result = store_->ValidateRecord(pendings[i].record);
    if (pendings[i].result.ok()) {
      to_stage.push_back(&pendings[i]);
    } else {
      pendings[i].done = true;
    }
  }
  StageRunAndWait(&to_stage);
  for (size_t i = 0; i < run.size(); ++i) {
    Response response;
    response.op = run[i].op;
    response.code = pendings[i].result.code();
    response.message = pendings[i].result.message();
    response.wal_offset = pendings[i].wal_offset;
    if (!conn->WriteFrame(EncodeResponse(response)).ok()) return false;
  }
  return true;
}

Response SketchServer::HandleNonIngest(const Request& request) {
  Response response;
  response.op = request.op;
  auto fail = [&response](const Status& status) {
    response.code = status.code();
    response.message = status.message();
    return response;
  };
  switch (request.op) {
    case Request::Op::kIngest:
    case Request::Op::kMerge:
      return fail(Status::Internal("ingest op routed to HandleNonIngest"));
    case Request::Op::kQuery: {
      std::lock_guard<std::mutex> lk(store_mu_);
      auto merged =
          store_->QueryRange(request.series, request.start, request.end);
      if (!merged.ok()) return fail(merged.status());
      response.values.reserve(request.quantiles.size());
      for (double q : request.quantiles) {
        auto value = merged.value().Quantile(q);
        if (!value.ok()) return fail(value.status());
        response.values.push_back(value.value());
      }
      return response;
    }
    case Request::Op::kCheckpoint: {
      std::lock_guard<std::mutex> lk(store_mu_);
      if (Status status = store_->Checkpoint(); !status.ok()) {
        return fail(status);
      }
      response.epoch = store_->epoch();
      return response;
    }
    case Request::Op::kStats: {
      std::lock_guard<std::mutex> lk(store_mu_);
      response.stats.num_series = store_->store().num_series();
      response.stats.num_intervals = store_->store().num_intervals();
      response.stats.size_in_bytes = store_->store().size_in_bytes();
      response.stats.wal_offset = store_->wal_offset();
      response.stats.epoch = store_->epoch();
      response.stats.batch_commits = batch_commits();
      return response;
    }
  }
  return fail(Status::Internal("unhandled request op"));
}

void SketchServer::StageRunAndWait(std::vector<PendingIngest*>* run) {
  if (run->empty()) return;
  std::unique_lock<std::mutex> lk(queue_mu_);
  if (stopping_ || !commit_error_.ok()) {
    const Status status =
        stopping_ ? Status::ResourceExhausted("server is shutting down")
                  : commit_error_;
    for (PendingIngest* pending : *run) {
      pending->result = status;
      pending->done = true;
    }
    return;
  }
  for (PendingIngest* pending : *run) {
    queue_.push_back(pending);
  }
  queue_cv_.notify_all();
  done_cv_.wait(lk, [run] {
    for (const PendingIngest* pending : *run) {
      if (!pending->done) return false;
    }
    return true;
  });
}

void SketchServer::CommitLoop() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  for (;;) {
    queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and nothing left to commit
    if (options_.commit_interval_us > 0 &&
        queue_.size() < options_.commit_batch) {
      // Give concurrent ingests a window to fill the batch; a full batch
      // (or shutdown) commits immediately.
      queue_cv_.wait_for(
          lk, std::chrono::microseconds(options_.commit_interval_us),
          [this] { return stopping_ || queue_.size() >= options_.commit_batch; });
    }
    CommitOneBatch(&lk);
  }
}

void SketchServer::CommitOneBatch(std::unique_lock<std::mutex>* lk) {
  std::vector<PendingIngest*> batch;
  batch.reserve(std::min(queue_.size(), options_.commit_batch));
  while (!queue_.empty() && batch.size() < options_.commit_batch) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  // A batch staged before a commit failure must not reach the store:
  // after a failed WAL repair the log may end in a torn frame, and
  // anything appended behind it would be ACKed yet silently dropped by
  // recovery. Fail it with the sticky error instead.
  Status status = commit_error_;
  lk->unlock();

  uint64_t offset = 0;
  if (status.ok()) {
    std::vector<WalRecord> records;
    records.reserve(batch.size());
    for (PendingIngest* pending : batch) records.push_back(pending->record);
    std::lock_guard<std::mutex> store_lk(store_mu_);
    status = store_->IngestBatch(records);
    offset = store_->wal_offset();
  }

  lk->lock();
  if (status.ok()) {
    ++batch_commits_;
  } else if (commit_error_.ok()) {
    commit_error_ = status;  // fail-stop the ingest path (see server.h)
  }
  for (PendingIngest* pending : batch) {
    pending->result = status;
    pending->wal_offset = offset;
    pending->done = true;
  }
  done_cv_.notify_all();
}

}  // namespace dd
