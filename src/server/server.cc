#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/concurrent.h"
#include "core/ddsketch.h"
#include "server/net.h"
#include "timeseries/wal.h"

namespace dd {
namespace {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

bool IsIngestOp(Request::Op op) {
  return op == Request::Op::kIngest || op == Request::Op::kMerge;
}

WalRecord ToWalRecord(const Request& request) {
  WalRecord record;
  record.series = request.series;
  record.timestamp = request.timestamp;
  if (request.op == Request::Op::kIngest) {
    record.type = WalRecord::Type::kIngestValue;
    record.value = request.value;
  } else {
    record.type = WalRecord::Type::kIngestSketch;
    record.payload = request.payload;
  }
  return record;
}

/// Fixed per-record charge against the staged-bytes budget on top of the
/// variable series/payload bytes: queue node, WalRecord struct, response
/// slot. Keeps tiny records from being "free" under admission control.
constexpr uint64_t kStagedRecordOverhead = 64;

/// The throttle controller ignores a tag's latency window below this
/// many samples — a handful of acks is noise, not a p99.
constexpr uint64_t kThrottleMinSamples = 32;

/// The latency row a non-ingest request's ack is recorded into. Ingests
/// and merges are routed by their per-entry outcome instead (a BUSY
/// refusal lands in the BUSY row, see FinishRun).
LatencyOp NonIngestLatencyOp(Request::Op op) {
  switch (op) {
    case Request::Op::kQuery:
      return LatencyOp::kQuery;
    case Request::Op::kCheckpoint:
    case Request::Op::kCompact:  // a compact IS a checkpoint with aging
      return LatencyOp::kCheckpoint;
    default:
      return LatencyOp::kStats;
  }
}

}  // namespace

/// One staged pipelined run of INGEST/MERGE requests from a single
/// connection. Heap-allocated and owned by the Conn; shard committers
/// hold pointers into `entries` (sized once, never reallocated) and
/// decrement `remaining`, and whichever committer finishes last posts
/// the run back to `loop`. While a run is in flight its connection is
/// not read — one run per connection at a time.
struct SketchServer::IngestRun {
  EventLoop* loop = nullptr;
  Conn* conn = nullptr;
  /// When the run's first request was fully framed; every entry's ack
  /// latency is measured from here (the requests of one run arrive in
  /// one buffered burst, so a per-entry stamp would add clock reads
  /// without adding information).
  TimePoint start{};
  std::vector<Request> requests;
  std::vector<PendingIngest> entries;  // parallel to requests
  /// Outstanding completions: one per staged entry, plus one staging
  /// sentinel held by the event loop until every entry is routed (so a
  /// committer can never see the count hit zero mid-staging).
  std::atomic<size_t> remaining{0};
};

/// One client connection, owned by exactly one event loop and only ever
/// touched from that loop's thread.
struct SketchServer::Conn {
  explicit Conn(int fd_in) : fd(fd_in), io(fd_in) {}

  int fd;
  FramedConn io;
  bool hello_done = false;
  bool saw_eof = false;
  /// fd closed and deregistered. A closed Conn with `run` set is a
  /// zombie: it stays alive (committers point into the run's entries)
  /// until the completion arrives, then is destroyed.
  bool closed = false;
  /// Admission tag every INGEST/MERGE on this connection is charged to
  /// (ledger id; 0 = "default" until a SET_TAG arrives).
  uint32_t tag_id = TagAdmissionLedger::kDefaultTagId;
  std::unique_ptr<IngestRun> run;  // staged run in flight (reads paused)
  bool have_deferred = false;
  std::string deferred_body;  // non-ingest frame parsed mid-run collection
  /// When the deferred frame was parsed: its ack latency must include
  /// the wait behind the run it deferred to.
  TimePoint deferred_stamp{};
  TimePoint last_activity{};
  /// Deadline for the pending unit of I/O (hello, partial frame, unread
  /// responses) to COMPLETE. Armed when the unit starts; byte-at-a-time
  /// progress does not push it back, which is what defeats a slow
  /// loris. Zero = no unit pending.
  TimePoint stall_deadline{};
};

/// One tag's ack-latency instrument (v7): a cumulative sketch feeding
/// the per-tag STATS percentiles and a window sketch the throttle
/// controller drains every tick. Guarded by its own mutex — loop
/// threads Add one value per finished run, contending only with runs
/// of the same tag.
struct SketchServer::TagLatency {
  TagLatency(DDSketch cumulative_in, DDSketch window_in)
      : cumulative(std::move(cumulative_in)), window(std::move(window_in)) {}

  std::mutex mu;
  DDSketch cumulative;
  DDSketch window;
};

/// One epoll event-loop thread. Owns a set of connections; loop 0 also
/// owns the listening socket and distributes accepted connections
/// round-robin over all loops. Cross-thread input (adopted fds from the
/// accepting loop, completed runs from committers, stop requests)
/// arrives through mutex-guarded queues plus an eventfd wake-up; all
/// connection state is then handled on the loop thread only.
class SketchServer::EventLoop {
 public:
  EventLoop(SketchServer* server, int listen_fd)
      : server_(server), listen_fd_(listen_fd) {}
  ~EventLoop() {
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  Status Init() {
    auto epoll = Epoll::Create();
    if (!epoll.ok()) return epoll.status();
    epoll_.emplace(std::move(epoll).value());
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      return Status::Internal("eventfd: " + std::string(std::strerror(errno)));
    }
    DD_RETURN_IF_ERROR(epoll_->Add(wake_fd_, EPOLLIN, &wake_tag_));
    if (listen_fd_ >= 0) {
      DD_RETURN_IF_ERROR(epoll_->Add(listen_fd_, EPOLLIN, &listen_tag_));
    }
    // Self-instrumentation (v4): one latency sketch per LatencyOp.
    // num_shards = 1 because only this loop's thread Adds (an
    // uncontended lock, ~sketch-Add cost); the STATS handler — possibly
    // another loop's thread — Snapshot()s concurrently, which is what
    // ConcurrentDDSketch exists for. Create() also validates
    // --latency-alpha, so a bad alpha fails Start() instead of crashing
    // a loop.
    DDSketchConfig latency_config;
    latency_config.relative_accuracy = server_->options_.latency_alpha;
    latency_rows_.reserve(kNumLatencyOps);
    for (size_t i = 0; i < kNumLatencyOps; ++i) {
      auto sketch = ConcurrentDDSketch::Create(latency_config, 1);
      if (!sketch.ok()) return sketch.status();
      latency_rows_.push_back(std::move(sketch).value());
    }
    return Status::OK();
  }

  /// The per-op latency sketch, for the STATS handler's merge.
  const ConcurrentDDSketch& latency_row(size_t op) const {
    return latency_rows_[op];
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  void RequestStop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Hands a freshly accepted fd to this loop (called by the accepting
  /// loop's thread).
  void AdoptConn(int fd) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      adopted_fds_.push_back(fd);
    }
    Wake();
  }

  /// Called by the shard committer that completed the run's last entry.
  void PostCompletion(IngestRun* run) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      completions_.push_back(run);
    }
    Wake();
  }

  /// After Join: closes fds adopted too late for the loop to see them.
  void CloseLeftovers() {
    std::lock_guard<std::mutex> lk(mu_);
    for (int fd : adopted_fds_) ::close(fd);
    adopted_fds_.clear();
  }

 private:
  /// Records one ack latency (microseconds, measured `start` → `now`)
  /// into this loop's row for `op`. The floor keeps a sub-tick
  /// measurement out of the sketch's zero bucket, where it would stop
  /// counting toward the percentiles' log buckets.
  void RecordLatency(LatencyOp op, TimePoint start, TimePoint now) {
    const double us =
        std::chrono::duration<double, std::micro>(now - start).count();
    latency_rows_[static_cast<size_t>(op)].Add(std::max(us, 1e-3));
  }

  void Wake() {
    const uint64_t one = 1;
    const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    (void)n;  // EAGAIN just means a wake-up is already pending
  }

  void Run() {
    constexpr int kMaxEvents = 64;
    struct epoll_event events[kMaxEvents];
    TimePoint last_sweep = Clock::now();
    for (;;) {
      auto wait = epoll_->Wait(events, kMaxEvents, 50);
      const int n_events = wait.ok() ? wait.value() : 0;
      std::vector<int> adopted;
      std::vector<IngestRun*> completed;
      bool stop = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        adopted.swap(adopted_fds_);
        completed.swap(completions_);
        stop = stop_;
      }
      for (int i = 0; i < n_events; ++i) {
        void* tag = events[i].data.ptr;
        if (tag == &wake_tag_) {
          uint64_t v = 0;
          while (::read(wake_fd_, &v, sizeof(v)) > 0) {
          }
        } else if (tag == &listen_tag_) {
          AcceptNew();
        } else {
          HandleEvent(static_cast<Conn*>(tag), events[i].events);
        }
      }
      for (IngestRun* run : completed) HandleRunComplete(run);
      for (int fd : adopted) {
        if (stop || shutdown_started_) {
          ::close(fd);
        } else {
          AddConn(fd);
        }
      }
      if (stop && !shutdown_started_) BeginShutdown();
      const TimePoint now = Clock::now();
      if (!shutdown_started_ &&
          now - last_sweep >= std::chrono::milliseconds(50)) {
        last_sweep = now;
        SweepDeadlines();
      }
      graveyard_.clear();
      if (shutdown_started_ && conns_.empty()) return;
    }
  }

  void AcceptNew() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // EAGAIN (drained) or the listener is shutting down
      }
      server_->connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const size_t pick =
          server_->next_loop_.fetch_add(1, std::memory_order_relaxed);
      EventLoop* target = server_->loops_[pick % server_->loops_.size()].get();
      if (target == this) {
        AddConn(fd);
      } else {
        target->AdoptConn(fd);
      }
    }
  }

  void AddConn(int fd) {
    auto owned = std::make_unique<Conn>(fd);
    Conn* c = owned.get();
    c->last_activity = Clock::now();
    if (!epoll_
             ->Add(fd, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET, c)
             .ok()) {
      ::close(fd);
      return;
    }
    conns_.emplace(c, std::move(owned));
    server_->connections_open_.fetch_add(1, std::memory_order_relaxed);
    ArmDeadline(c);    // the hello is a pending unit from byte zero
    PumpConn(c);       // bytes may have raced ahead of the epoll add
  }

  void HandleEvent(Conn* c, uint32_t ev) {
    if (c->closed) return;
    if (ev & (EPOLLHUP | EPOLLERR)) {
      CloseConn(c, false);
      return;
    }
    if (ev & EPOLLOUT) {
      FlushConn(c);
      if (c->closed) return;
    }
    if (ev & (EPOLLIN | EPOLLRDHUP)) PumpConn(c);
  }

  /// Read side: drain the socket (edge-triggered: one drain per edge),
  /// parse what is buffered, and either respond or stage a run. A
  /// connection with a run in flight is deliberately NOT read — TCP
  /// flow control pushes back on the client — and the missed edges are
  /// recovered by the refill in HandleRunComplete.
  void PumpConn(Conn* c) {
    if (c->closed || c->run) return;
    bool got = false;
    auto alive = c->io.FillFromSocket(&got);
    if (!alive.ok()) {
      CloseConn(c, false);
      return;
    }
    if (!alive.value()) c->saw_eof = true;
    if (got) c->last_activity = Clock::now();
    ProcessBuffered(c);
    if (c->closed) return;
    if (c->saw_eof && !c->run) {
      // Peer is done sending and everything parseable was handled; a
      // leftover partial frame is a mid-frame disconnect either way.
      CloseConn(c, false);
      return;
    }
    ArmDeadline(c);
  }

  void ProcessBuffered(Conn* c) {
    while (!c->closed && !c->run) {
      if (!c->hello_done) {
        auto hello = c->io.TryConsumeHello();
        if (!hello.ok()) {
          CloseConn(c, true);  // garbage or incompatible hello
          return;
        }
        if (!hello.value()) return;  // need more bytes
        c->hello_done = true;
        c->stall_deadline = {};
        c->io.QueueWrite(EncodeHello());
        FlushConn(c);
        continue;
      }
      std::string body;
      TimePoint unit_start;  // instrumentation: request fully framed
      if (c->have_deferred) {
        body = std::move(c->deferred_body);
        c->have_deferred = false;
        unit_start = c->deferred_stamp;
      } else {
        auto got = c->io.NextBufferedFrame(&body);
        if (!got.ok()) {
          CloseConn(c, true);  // corrupt frame / implausible length
          return;
        }
        if (!got.value()) return;  // only a frame prefix buffered
        c->stall_deadline = {};    // a unit completed; restart the clock
        unit_start = Clock::now();
      }
      auto request = DecodeRequest(body);
      if (!request.ok()) {
        CloseConn(c, true);  // CRC passed but body malformed: broken peer
        return;
      }
      if (request.value().op == Request::Op::kSubscribe) {
        HandleSubscribe(c, request.value(), unit_start);
        if (c->closed) return;  // adopted by the shipper (or shed)
        continue;
      }
      if (request.value().op == Request::Op::kSetTag) {
        // Intercepted here (like SUBSCRIBE) because it mutates the
        // Conn: every later ingest on this connection charges the
        // declared tag's ledger.
        Response response;
        response.op = Request::Op::kSetTag;
        const std::string& tag = request.value().tag;
        if (!TagAdmissionLedger::ValidTagName(tag)) {
          response.code = StatusCode::kInvalidArgument;
          response.message = "invalid tag: want 1-64 chars of [A-Za-z0-9._-]";
        } else if (const auto id = server_->RegisterTag(tag)) {
          c->tag_id = *id;
        } else {
          // Table full: refuse distinctly (not BUSY — retrying cannot
          // help) and leave the connection on its current tag, so a
          // junk-tag spray cannot grow server state without bound.
          response.code = StatusCode::kResourceExhausted;
          response.message = "tag table full; connection keeps its current tag";
        }
        c->io.QueueWrite(EncodeResponse(response));
        RecordLatency(LatencyOp::kStats, unit_start, Clock::now());
        FlushConn(c);
        continue;
      }
      if (!IsIngestOp(request.value().op)) {
        c->io.QueueWrite(
            EncodeResponse(server_->HandleNonIngest(request.value())));
        RecordLatency(NonIngestLatencyOp(request.value().op), unit_start,
                      Clock::now());
        FlushConn(c);
        continue;
      }
      // Collect the pipelined run of ingest requests already buffered,
      // so one client's burst becomes one staged group per shard. The
      // cap scales with the shard count (the run is split across shard
      // queues) but is bounded per connection by max_conn_inflight.
      const size_t run_cap = std::max<size_t>(
          1, std::min(server_->options_.commit_batch * server_->shards_.size(),
                      server_->options_.max_conn_inflight));
      auto run = std::make_unique<IngestRun>();
      run->loop = this;
      run->conn = c;
      run->start = unit_start;
      run->requests.push_back(std::move(request).value());
      while (run->requests.size() < run_cap) {
        std::string next;
        auto more = c->io.NextBufferedFrame(&next);
        if (!more.ok()) {
          CloseConn(c, true);
          return;
        }
        if (!more.value()) break;
        c->stall_deadline = {};
        auto next_request = DecodeRequest(next);
        if (!next_request.ok()) {
          CloseConn(c, true);
          return;
        }
        if (!IsIngestOp(next_request.value().op)) {
          // Handle it after the run; keeps responses in request order.
          c->deferred_body = std::move(next);
          c->have_deferred = true;
          c->deferred_stamp = Clock::now();
          break;
        }
        run->requests.push_back(std::move(next_request).value());
      }
      c->run = std::move(run);
      if (server_->StageIngestRun(c->run.get())) {
        FinishRun(c);  // nothing reached a committer: respond inline
      }
      // Otherwise reads stay paused until the completion is posted.
    }
  }

  /// SUBSCRIBE: validate, then hand the socket to the replication
  /// shipper. An OK subscribe takes the connection out of
  /// request/response mode for good, so it must be quiescent — nothing
  /// else buffered in either direction, no deferred frame, no EOF.
  void HandleSubscribe(Conn* c, const Request& request, TimePoint unit_start) {
    Response response = server_->PrepareSubscribe(request);
    if (response.code == StatusCode::kOk &&
        (c->io.buffered_read_bytes() > 0 || c->io.pending_write_bytes() > 0 ||
         c->have_deferred || c->saw_eof)) {
      response = Response{};
      response.op = Request::Op::kSubscribe;
      response.code = StatusCode::kInvalidArgument;
      response.message = "SUBSCRIBE must be the connection's only in-flight "
                         "request";
    }
    RecordLatency(LatencyOp::kStats, unit_start, Clock::now());
    if (response.code != StatusCode::kOk) {
      c->io.QueueWrite(EncodeResponse(response));
      FlushConn(c);
      return;
    }
    // Adopt: deregister the fd WITHOUT closing it and give it to the
    // shipper with the OK response as its first outgoing bytes. The
    // Conn is destroyed at the end of the loop iteration like any
    // closed connection; the fd now belongs to the shipper.
    const int fd = c->fd;
    epoll_->Del(fd);
    c->fd = -1;
    c->closed = true;
    server_->connections_open_.fetch_sub(1, std::memory_order_relaxed);
    auto it = conns_.find(c);
    graveyard_.push_back(std::move(it->second));
    conns_.erase(it);
    // A subscriber whose fencing token is older than ours last synced
    // under a deposed lineage: its WAL may end in a divergent suffix
    // that was never replicated, so its resume positions cannot be
    // trusted as prefixes of our log. Ignore them — empty positions
    // bootstrap every shard from a snapshot, which discards that
    // suffix. (A follower that merely restarted carries our token in
    // its LOCK files and keeps segment resume.)
    std::vector<std::pair<uint64_t, uint64_t>> positions = request.positions;
    if (request.repl_token < response.repl_token) positions.clear();
    server_->shipper_->AddSubscriber(fd, EncodeResponse(response),
                                     std::move(positions));
  }

  /// Writes the run's responses in request order and releases the run.
  void FinishRun(Conn* c) {
    IngestRun* run = c->run.get();
    std::string out;
    const TimePoint now = Clock::now();
    size_t acked = 0;
    for (size_t i = 0; i < run->requests.size(); ++i) {
      Response response;
      response.op = run->requests[i].op;
      response.code = run->entries[i].result.code();
      response.message = run->entries[i].result.message();
      response.wal_offset = run->entries[i].wal_offset;
      response.retry_after_ms = run->entries[i].retry_after_ms;
      out += EncodeResponse(response);
      // A BUSY refusal's ack is the cost of saying no, not an ingest
      // latency; it gets its own row. Only committed entries count as
      // acked for the tag sketch — a validation failure's round trip
      // would skew the p99 the throttle controller judges by.
      const bool busy = response.code == StatusCode::kBusy;
      if (run->entries[i].result.ok()) ++acked;
      RecordLatency(busy ? LatencyOp::kBusy
                         : (response.op == Request::Op::kIngest
                                ? LatencyOp::kIngest
                                : LatencyOp::kMerge),
                    run->start, now);
    }
    // The tag's own ack-latency sketch (v7): the instrument the
    // throttle controller and the per-tag STATS rows read. One value
    // for the whole run — every entry shares the run's stamp.
    if (acked > 0) {
      const double us =
          std::chrono::duration<double, std::micro>(now - run->start).count();
      server_->RecordTagAckLatency(c->tag_id, us, acked);
    }
    c->run.reset();
    c->last_activity = Clock::now();
    c->io.QueueWrite(out);
    FlushConn(c);
  }

  void HandleRunComplete(IngestRun* run) {
    Conn* c = run->conn;
    if (c->closed) {
      // Zombie: the peer is gone; the run only kept the Conn alive so
      // the committers' entry pointers stayed valid.
      auto it = conns_.find(c);
      graveyard_.push_back(std::move(it->second));
      conns_.erase(it);
      return;
    }
    FinishRun(c);
    if (c->closed) return;
    PumpConn(c);  // recover read edges consumed while the run was staged
  }

  void FlushConn(Conn* c) {
    if (c->closed) return;
    auto drained = c->io.Flush();
    if (!drained.ok()) {
      CloseConn(c, false);
      return;
    }
    ArmDeadline(c);
  }

  /// Arms the stall deadline when a unit of I/O is pending and no
  /// deadline is running; clears it when nothing is pending. Never
  /// pushes a running deadline back (progress trickles don't pay rent).
  void ArmDeadline(Conn* c) {
    const bool unit_pending =
        !c->run && (!c->hello_done || c->io.buffered_read_bytes() > 0 ||
                    c->io.pending_write_bytes() > 0);
    if (!unit_pending) {
      c->stall_deadline = {};
      return;
    }
    const int64_t stall_ms = server_->options_.stall_timeout_ms;
    if (stall_ms > 0 && c->stall_deadline == TimePoint{}) {
      c->stall_deadline = Clock::now() + std::chrono::milliseconds(stall_ms);
    }
  }

  void SweepDeadlines() {
    const TimePoint now = Clock::now();
    const int64_t idle_ms = server_->options_.idle_timeout_ms;
    std::vector<Conn*> doomed;
    for (auto& entry : conns_) {
      Conn* c = entry.first;
      if (c->closed) continue;
      if (c->stall_deadline != TimePoint{} && now >= c->stall_deadline) {
        doomed.push_back(c);
        continue;
      }
      if (idle_ms > 0 && !c->run && c->stall_deadline == TimePoint{} &&
          now - c->last_activity >= std::chrono::milliseconds(idle_ms)) {
        doomed.push_back(c);
      }
    }
    for (Conn* c : doomed) CloseConn(c, true);
  }

  /// Deregisters and closes the fd. `shed` marks a policy close
  /// (deadline, protocol violation, overload) for the counters. The
  /// Conn is destroyed at the end of the loop iteration — or, with a
  /// run in flight, after the completion arrives (zombie).
  void CloseConn(Conn* c, bool shed) {
    if (c->closed) return;
    c->closed = true;
    epoll_->Del(c->fd);
    ::close(c->fd);
    c->fd = -1;
    server_->connections_open_.fetch_sub(1, std::memory_order_relaxed);
    if (shed) {
      server_->connections_shed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!c->run) {
      auto it = conns_.find(c);
      graveyard_.push_back(std::move(it->second));
      conns_.erase(it);
    }
  }

  void BeginShutdown() {
    shutdown_started_ = true;
    if (listen_fd_ >= 0) epoll_->Del(listen_fd_);
    std::vector<Conn*> all;
    all.reserve(conns_.size());
    for (auto& entry : conns_) all.push_back(entry.first);
    for (Conn* c : all) CloseConn(c, false);
    // Zombies stay in conns_; Run() exits once their completions drain.
  }

  SketchServer* const server_;
  const int listen_fd_;  // -1: this loop does not accept
  std::optional<Epoll> epoll_;
  int wake_fd_ = -1;
  std::thread thread_;

  std::mutex mu_;
  bool stop_ = false;                    // guarded by mu_
  std::vector<int> adopted_fds_;         // guarded by mu_
  std::vector<IngestRun*> completions_;  // guarded by mu_

  /// v4 self-instrumentation: ack-latency sketches, indexed by
  /// LatencyOp. Written by this loop's thread only; read (Snapshot) by
  /// whichever loop serves STATS.
  std::vector<ConcurrentDDSketch> latency_rows_;

  // Loop-thread-only state.
  std::unordered_map<Conn*, std::unique_ptr<Conn>> conns_;
  std::vector<std::unique_ptr<Conn>> graveyard_;
  bool shutdown_started_ = false;
  char listen_tag_ = 0;  // epoll data.ptr markers
  char wake_tag_ = 0;
};

Result<std::unique_ptr<SketchServer>> SketchServer::Start(
    const std::string& data_dir, const SketchServerOptions& options) {
  if (options.commit_batch == 0) {
    return Status::InvalidArgument("commit_batch must be at least 1");
  }
  if (options.max_conn_inflight == 0) {
    return Status::InvalidArgument("max_conn_inflight must be at least 1");
  }
  if (options.tag_floor_fraction < 0.0 || options.tag_floor_fraction > 1.0 ||
      !(options.tag_floor_fraction == options.tag_floor_fraction)) {
    return Status::InvalidArgument("tag_floor_fraction must be in [0, 1]");
  }
  if (options.tag_p99_target_us < 0) {
    return Status::InvalidArgument("tag_p99_target_us must be >= 0");
  }
  if (options.tag_throttle_interval_ms <= 0) {
    return Status::InvalidArgument("tag_throttle_interval_ms must be >= 1");
  }
  for (const auto& [tag, weight] : options.tag_weights) {
    if (!TagAdmissionLedger::ValidTagName(tag)) {
      return Status::InvalidArgument(
          "invalid tag in tag budget: '" + tag +
          "' (want 1-64 chars of [A-Za-z0-9._-])");
    }
    if (weight == 0) {
      return Status::InvalidArgument("tag weight must be >= 1 for '" + tag +
                                     "'");
    }
  }
  if (options.tag_weights.size() + 1 > TagAdmissionLedger::kMaxTags) {
    return Status::InvalidArgument(
        "too many tags in tag budget (max " +
        std::to_string(TagAdmissionLedger::kMaxTags - 1) +
        " plus the built-in default)");
  }
  if (options.durable.role == StoreRole::kFollower &&
      (options.follow_host.empty() || options.follow_port == 0)) {
    return Status::InvalidArgument(
        "follower role requires a primary to follow (--follow host:port)");
  }
  ShardedDurableStoreOptions store_options;
  store_options.durable = options.durable;
  store_options.shards = options.shards;
  auto store = ShardedDurableStore::Open(data_dir, store_options);
  if (!store.ok()) return store.status();
  // Private constructor + threads capturing `this` mean the server must
  // live at a stable address: build it on the heap before binding.
  std::unique_ptr<SketchServer> server(
      new SketchServer(options, std::move(store).value()));
  uint16_t bound_port = 0;
  auto listen_fd = ListenTcp(options.host, options.port, &bound_port);
  if (!listen_fd.ok()) return listen_fd.status();
  server->listen_fd_ = listen_fd.value();
  server->port_ = bound_port;
  DD_RETURN_IF_ERROR(SetNonBlocking(server->listen_fd_));
  size_t n_loops = options.event_loops;
  if (n_loops == 0) {
    const size_t hw = std::thread::hardware_concurrency();
    n_loops = std::min<size_t>(4, std::max<size_t>(1, hw / 2));
  }
  for (size_t i = 0; i < n_loops; ++i) {
    server->loops_.push_back(std::make_unique<EventLoop>(
        server.get(), i == 0 ? server->listen_fd_ : -1));
    DD_RETURN_IF_ERROR(server->loops_.back()->Init());
  }
  // Replication plumbing before any committer starts (committers route
  // their completion handshakes through the shipper). ReplShard holds
  // stable pointers: shards_ elements are unique_ptrs and the store
  // lives behind the optional for the server's whole life.
  std::vector<ReplShard> repl_shards;
  repl_shards.reserve(server->shards_.size());
  for (size_t k = 0; k < server->shards_.size(); ++k) {
    repl_shards.push_back(
        ReplShard{&server->shards_[k]->store_mu, &server->store_->shard(k)});
  }
  ReplicationShipperOptions ship_options;
  ship_options.ack_timeout_ms = options.repl_ack_timeout_ms;
  ship_options.heartbeat_ms = options.repl_heartbeat_ms;
  ship_options.snapshot_chunk_bytes = options.repl_snapshot_chunk_bytes;
  server->shipper_ = std::make_unique<ReplicationShipper>(
      repl_shards, ship_options,
      [s = server.get()](uint64_t token) { s->FenceSelf(token); });
  server->shipper_->Start();
  server->role_follower_.store(
      options.durable.role == StoreRole::kFollower, std::memory_order_relaxed);
  server->writes_fenced_.store(server->store_->WritesFenced(),
                               std::memory_order_relaxed);
  for (size_t k = 0; k < server->shards_.size(); ++k) {
    server->shards_[k]->committer =
        std::thread([s = server.get(), k] { s->CommitLoop(k); });
  }
  if (server->SchedulerEnabled()) {
    server->checkpoint_thread_ =
        std::thread([s = server.get()] { s->CheckpointLoop(); });
  }
  if (options.tag_p99_target_us > 0) {
    server->throttle_thread_ =
        std::thread([s = server.get()] { s->ThrottleLoop(); });
  }
  for (auto& loop : server->loops_) loop->StartThread();
  if (options.durable.role == StoreRole::kFollower) {
    ReplicationFollowerOptions follow_options;
    follow_options.host = options.follow_host;
    follow_options.port = options.follow_port;
    server->follower_ = std::make_unique<ReplicationFollower>(
        std::move(repl_shards), follow_options);
    server->follower_->Start();
  }
  return server;
}

SketchServer::SketchServer(SketchServerOptions options,
                           ShardedDurableStore store)
    : options_(std::move(options)), store_(std::move(store)) {
  ledger_ = std::make_unique<TagAdmissionLedger>(options_.staged_bytes_budget,
                                                 options_.tag_floor_fraction,
                                                 options_.tag_weights);
  const auto now = Clock::now();
  shards_.reserve(store_->num_shards());
  for (size_t k = 0; k < store_->num_shards(); ++k) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->checkpoint_deadline_base = now;
  }
}

SketchServer::~SketchServer() { Stop(); }

void SketchServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // 0. Replication first: the follower stops applying, and the shipper
  // drops its subscribers and releases every parked completion — the
  // event loops (step 1) cannot drain their in-flight runs while acks
  // sit parked, and later commits complete inline once the shipper is
  // stopped.
  if (follower_) follower_->Stop();
  if (shipper_) shipper_->Stop();
  // 1. Stop the event loops first: they shed every connection, and any
  // in-flight run needs the committers still alive to complete (zombie
  // connections wait inside the loop for their completions).
  for (auto& loop : loops_) loop->RequestStop();
  for (auto& loop : loops_) loop->Join();
  for (auto& loop : loops_) loop->CloseLeftovers();
  // 2. Committers: drain every staged record (each was admitted before
  // the loops stopped), then exit.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->queue_mu);
    shard->stopping = true;
  }
  for (auto& shard : shards_) shard->queue_cv.notify_all();
  // joinable() guards: Start() can fail between constructing the server
  // and launching the threads (e.g. bind error), and the unique_ptr's
  // destructor still runs Stop().
  for (auto& shard : shards_) {
    if (shard->committer.joinable()) shard->committer.join();
  }
  {
    std::lock_guard<std::mutex> lk(scheduler_mu_);
    scheduler_stop_ = true;
  }
  scheduler_cv_.notify_all();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  {
    std::lock_guard<std::mutex> lk(throttle_mu_);
    throttle_stop_ = true;
  }
  throttle_cv_.notify_all();
  if (throttle_thread_.joinable()) throttle_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  store_.reset();  // releases every shard's data-dir lock for reopeners
}

uint64_t SketchServer::batch_commits() const noexcept {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->queue_mu);
    total += shard->batch_commits;
  }
  return total;
}

uint64_t SketchServer::background_checkpoints() const noexcept {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->store_mu);
    total += shard->background_checkpoints;
  }
  return total;
}

bool SketchServer::StageIngestRun(IngestRun* run) {
  const size_t n = run->requests.size();
  run->entries.resize(n);  // address-stable from here on
  // A follower or fenced ex-primary refuses every write up front,
  // before validation or admission (mirrors the BUSY refusal shape:
  // never staged, never acknowledged). The durable gate in the store
  // backstops this fast path if a fence races in after the check.
  if (writes_fenced_.load(std::memory_order_relaxed)) {
    const Status refusal = Status::Fenced(
        role_follower_.load(std::memory_order_relaxed)
            ? "this server is a follower; writes must go to the primary"
            : "writer fenced: a newer primary holds the fencing token");
    for (size_t i = 0; i < n; ++i) {
      run->entries[i].run = run;
      run->entries[i].result = refusal;
      run->entries[i].done = true;
    }
    return true;
  }
  std::vector<std::vector<PendingIngest*>> by_shard(shards_.size());
  size_t staged = 0;
  for (size_t i = 0; i < n; ++i) {
    PendingIngest& entry = run->entries[i];
    entry.run = run;
    entry.record = ToWalRecord(run->requests[i]);
    // Validation reads only the store's immutable configuration
    // (prototype sketch parameters), so it runs lock-free on the loop
    // thread — a bad request is rejected here and never poisons or
    // stalls a committer batch.
    entry.result = store_->ValidateRecord(entry.record);
    if (!entry.result.ok()) {
      entry.done = true;
      continue;
    }
    // Admission control: charge the connection's tag ledger before the
    // record can queue. A record that would blow the tag's allowance
    // (floor + borrowable pool share) is refused with BUSY — never
    // staged, never acknowledged — so one flooding tenant exhausts its
    // own budget while every other tag keeps its floor. The refusal
    // carries the tag's refill-derived retry hint.
    const uint64_t bytes = entry.record.series.size() +
                           entry.record.payload.size() + kStagedRecordOverhead;
    entry.tag_id = run->conn->tag_id;
    uint64_t hint_ms = 0;
    if (!ledger_->TryAdmit(entry.tag_id, bytes, &hint_ms)) {
      entry.result =
          Status::Busy("staged-bytes budget exceeded; retry with backoff");
      entry.retry_after_ms = hint_ms;
      entry.done = true;
      busy_rejections_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    entry.bytes = bytes;
    by_shard[store_->ShardOf(entry.record.series)].push_back(&entry);
    ++staged;
  }
  if (staged == 0) return true;  // everything refused: respond inline
  // One completion per staged entry plus the staging sentinel: a
  // committer finishing instantly can never drive the count to zero
  // while entries are still being routed below.
  run->remaining.store(staged + 1, std::memory_order_relaxed);
  for (size_t k = 0; k < by_shard.size(); ++k) {
    if (by_shard[k].empty()) continue;
    Shard& shard = *shards_[k];
    std::lock_guard<std::mutex> lk(shard.queue_mu);
    if (shard.stopping || !shard.commit_error.ok()) {
      // Refused at staging time (shutdown or a fail-stopped shard):
      // complete on the spot and refund the admission charge.
      const Status status =
          shard.stopping ? Status::ResourceExhausted("server is shutting down")
                         : shard.commit_error;
      for (PendingIngest* entry : by_shard[k]) {
        entry->result = status;
        entry->done = true;
        ledger_->Refund(entry->tag_id, entry->bytes);
        entry->bytes = 0;
      }
      run->remaining.fetch_sub(by_shard[k].size(), std::memory_order_acq_rel);
      continue;
    }
    for (PendingIngest* entry : by_shard[k]) {
      shard.queue.push_back(entry);
    }
    shard.queue_cv.notify_all();
  }
  // Drop the sentinel. If it was the last count, every staged entry was
  // already completed (all groups refused, or the committers raced
  // ahead) and no completion will be posted — finish inline.
  return run->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

Response SketchServer::HandleNonIngest(const Request& request) {
  Response response;
  response.op = request.op;
  auto fail = [&response](const Status& status) {
    response.code = status.code();
    response.message = status.message();
    return response;
  };
  switch (request.op) {
    case Request::Op::kIngest:
    case Request::Op::kMerge:
      return fail(Status::Internal("ingest op routed to HandleNonIngest"));
    case Request::Op::kQuery: {
      // A series lives on exactly one shard (pinned hash, immutable
      // count), so the read locks only the owner — queries never
      // contend with the other shards' committers or checkpoints.
      const size_t owner = store_->ShardOf(request.series);
      std::lock_guard<std::mutex> lk(shards_[owner]->store_mu);
      auto merged = store_->shard(owner).QueryRange(request.series,
                                                    request.start, request.end);
      if (!merged.ok()) return fail(merged.status());
      response.values.reserve(request.quantiles.size());
      for (double q : request.quantiles) {
        auto value = merged.value().Quantile(q);
        if (!value.ok()) return fail(value.status());
        response.values.push_back(value.value());
      }
      return response;
    }
    case Request::Op::kCheckpoint: {
      if (writes_fenced_.load(std::memory_order_relaxed)) {
        return fail(Status::Fenced(
            role_follower_.load(std::memory_order_relaxed)
                ? "this server is a follower; checkpoints run on the primary"
                : "writer fenced: a newer primary holds the fencing token"));
      }
      // "Checkpoint all shards", one shard lock at a time so ingest on
      // the others keeps flowing while each snapshot is written.
      uint64_t min_epoch = 0;
      for (size_t k = 0; k < shards_.size(); ++k) {
        std::lock_guard<std::mutex> lk(shards_[k]->store_mu);
        if (Status status = store_->shard(k).Checkpoint(); !status.ok()) {
          return fail(status);
        }
        shards_[k]->checkpoint_deadline_base = Clock::now();
        const uint64_t epoch = store_->shard(k).epoch();
        min_epoch = k == 0 ? epoch : std::min(min_epoch, epoch);
      }
      response.epoch = min_epoch;
      return response;
    }
    case Request::Op::kCompact: {
      if (writes_fenced_.load(std::memory_order_relaxed)) {
        return fail(Status::Fenced(
            role_follower_.load(std::memory_order_relaxed)
                ? "this server is a follower; compaction runs on the primary"
                : "writer fenced: a newer primary holds the fencing token"));
      }
      // Like CHECKPOINT: every shard, one lock at a time. The explicit
      // fold honours the caller's clock (clamped to the data horizon
      // inside the store); the checkpoint that persists it also ages
      // anything eligible by data time.
      uint64_t folded = 0;
      uint64_t min_epoch = 0;
      for (size_t k = 0; k < shards_.size(); ++k) {
        std::lock_guard<std::mutex> lk(shards_[k]->store_mu);
        auto compacted = store_->shard(k).Compact(request.compact_now);
        if (!compacted.ok()) return fail(compacted.status());
        folded += compacted.value();
        shards_[k]->checkpoint_deadline_base = Clock::now();
        const uint64_t epoch = store_->shard(k).epoch();
        min_epoch = k == 0 ? epoch : std::min(min_epoch, epoch);
      }
      response.compacted = folded;
      response.epoch = min_epoch;
      return response;
    }
    case Request::Op::kStats: {
      StoreStats& stats = response.stats;
      stats.shards.reserve(shards_.size());
      for (size_t k = 0; k < shards_.size(); ++k) {
        ShardStats row;
        row.shard = k;
        {
          std::lock_guard<std::mutex> lk(shards_[k]->store_mu);
          const DurableSketchStore& shard_store = store_->shard(k);
          row.num_series = shard_store.store().num_series();
          row.wal_bytes = shard_store.wal_offset();
          row.epoch = shard_store.epoch();
          row.background_checkpoints = shards_[k]->background_checkpoints;
          stats.num_intervals += shard_store.store().num_intervals();
          stats.size_in_bytes += shard_store.store().size_in_bytes();
          // v6: per-level ladder rows, summed across shards (all shards
          // share one ladder — pinned by each shard's snapshot).
          const std::vector<LevelUsage> levels = shard_store.LevelStats();
          if (stats.levels.size() < levels.size()) {
            stats.levels.resize(levels.size());
          }
          for (size_t i = 0; i < levels.size(); ++i) {
            stats.levels[i].interval_seconds =
                static_cast<uint64_t>(levels[i].interval_seconds);
            stats.levels[i].retention_seconds =
                static_cast<uint64_t>(levels[i].retention_seconds);
            stats.levels[i].num_intervals += levels[i].num_intervals;
            stats.levels[i].rollup_merges += levels[i].rollup_merges;
            stats.levels[i].retained_bytes += levels[i].retained_bytes;
          }
          // v5: fencing state, aggregated conservatively (max token; one
          // fenced shard fences the server).
          stats.fence_token =
              std::max(stats.fence_token, shard_store.fence_token());
          if (shard_store.fenced()) stats.fenced = 1;
          if (k == 0) {
            stats.role =
                shard_store.role() == StoreRole::kFollower ? 1 : 0;
          }
        }
        {
          std::lock_guard<std::mutex> lk(shards_[k]->queue_mu);
          row.batch_commits = shards_[k]->batch_commits;
        }
        stats.num_series += row.num_series;
        stats.wal_offset += row.wal_bytes;
        stats.epoch = k == 0 ? row.epoch : std::min(stats.epoch, row.epoch);
        stats.batch_commits += row.batch_commits;
        stats.background_checkpoints += row.background_checkpoints;
        stats.shards.push_back(row);
      }
      stats.connections_open =
          connections_open_.load(std::memory_order_relaxed);
      stats.connections_accepted =
          connections_accepted_.load(std::memory_order_relaxed);
      stats.connections_shed =
          connections_shed_.load(std::memory_order_relaxed);
      stats.busy_rejections =
          busy_rejections_.load(std::memory_order_relaxed);
      stats.staged_bytes = ledger_->total_staged();
      // v7: one row per admission tag — ledger state plus the tag's own
      // ack-latency percentiles (the throttle controller's instrument).
      for (const TagLedgerEntry& row : ledger_->Snapshot()) {
        TagStatsRow tag_row;
        tag_row.tag = row.tag;
        tag_row.floor_bytes = row.floor_bytes;
        tag_row.budget_bytes = row.budget_bytes;
        tag_row.staged_bytes = row.staged_bytes;
        tag_row.busy_rejections = row.busy_rejections;
        tag_row.throttle_permille =
            static_cast<uint64_t>(row.borrow_share * 1000.0 + 0.5);
        if (TagLatency* lat = TagLatencyFor(row.id)) {
          std::lock_guard<std::mutex> lat_lk(lat->mu);
          tag_row.count = lat->cumulative.count();
          if (tag_row.count > 0) {
            tag_row.p50_us = lat->cumulative.QuantileOrNaN(0.5);
            tag_row.p99_us = lat->cumulative.QuantileOrNaN(0.99);
            tag_row.p999_us = lat->cumulative.QuantileOrNaN(0.999);
          }
        }
        stats.tags.push_back(std::move(tag_row));
      }
      stats.repl_subscribers = shipper_ ? shipper_->subscribers() : 0;
      stats.repl_shipped_bytes = shipper_ ? shipper_->shipped_bytes() : 0;
      if (follower_) {
        stats.repl_applied_bytes = follower_->applied_bytes();
        stats.repl_connected = follower_->connected() ? 1 : 0;
        stats.repl_heartbeat_age_ms = follower_->heartbeat_age_ms();
      }
      FillOpLatencies(&stats);
      return response;
    }
    case Request::Op::kSubscribe:
      // Intercepted on the event loop (the connection is handed to the
      // shipper before this dispatcher runs); reaching here is a bug.
      return fail(Status::Internal("SUBSCRIBE routed to HandleNonIngest"));
    case Request::Op::kSetTag:
      // Intercepted on the event loop (it mutates the Conn's tag);
      // reaching here is a bug.
      return fail(Status::Internal("SET_TAG routed to HandleNonIngest"));
    case Request::Op::kPromote: {
      auto token = Promote();
      if (!token.ok()) return fail(token.status());
      response.repl_token = token.value();
      return response;
    }
  }
  return fail(Status::Internal("unhandled request op"));
}

void SketchServer::FillOpLatencies(StoreStats* stats) const {
  if (loops_.empty()) return;
  for (size_t i = 0; i < kNumLatencyOps; ++i) {
    DDSketch merged = loops_[0]->latency_row(i).Snapshot();
    for (size_t l = 1; l < loops_.size(); ++l) {
      // Every loop built its sketch from the same config, so the merge
      // cannot fail (full mergeability: the result equals one sketch
      // over all loops' latencies).
      (void)merged.MergeFrom(loops_[l]->latency_row(i).Snapshot());
    }
    OpLatencyStats& row = stats->op_latencies[i];
    row.count = merged.count();
    if (row.count == 0) continue;  // empty rows report zeros, never NaN
    row.p50_us = merged.QuantileOrNaN(0.5);
    row.p90_us = merged.QuantileOrNaN(0.9);
    row.p99_us = merged.QuantileOrNaN(0.99);
    row.p999_us = merged.QuantileOrNaN(0.999);
    row.max_us = merged.max();
  }
}

SketchServer::TagLatency* SketchServer::TagLatencyFor(uint32_t tag_id) {
  std::lock_guard<std::mutex> lk(tag_latency_mu_);
  if (tag_latency_.size() <= tag_id) tag_latency_.resize(tag_id + 1);
  if (!tag_latency_[tag_id]) {
    DDSketchConfig config;
    config.relative_accuracy = options_.latency_alpha;
    auto cumulative = DDSketch::Create(config);
    auto window = DDSketch::Create(config);
    // latency_alpha was validated when the event loops built their own
    // sketches at Start; a failure here is unreachable.
    if (!cumulative.ok() || !window.ok()) return nullptr;
    tag_latency_[tag_id] = std::make_unique<TagLatency>(
        std::move(cumulative).value(), std::move(window).value());
  }
  return tag_latency_[tag_id].get();
}

std::optional<uint32_t> SketchServer::RegisterTag(std::string_view tag) {
  const std::optional<uint32_t> id = ledger_->RegisterTag(tag);
  if (id) (void)TagLatencyFor(*id);  // the controller ticks over existing slots
  return id;
}

void SketchServer::RecordTagAckLatency(uint32_t tag_id, double us, size_t n) {
  TagLatency* lat = TagLatencyFor(tag_id);
  if (lat == nullptr || n == 0) return;
  // Same sub-tick floor as the per-loop rows: a value in the sketch's
  // zero bucket would stop counting toward the percentiles.
  const double value = std::max(us, 1e-3);
  std::lock_guard<std::mutex> lk(lat->mu);
  lat->cumulative.Add(value, n);
  lat->window.Add(value, n);
}

void SketchServer::ThrottleLoop() {
  const auto interval = std::chrono::milliseconds(
      std::max<int64_t>(1, options_.tag_throttle_interval_ms));
  const double target_us = static_cast<double>(options_.tag_p99_target_us);
  std::unique_lock<std::mutex> lk(throttle_mu_);
  for (;;) {
    throttle_cv_.wait_for(lk, interval, [this] { return throttle_stop_; });
    if (throttle_stop_) return;
    lk.unlock();
    size_t n_tags = 0;
    {
      std::lock_guard<std::mutex> tags_lk(tag_latency_mu_);
      n_tags = tag_latency_.size();
    }
    for (uint32_t id = 0; id < n_tags; ++id) {
      TagLatency* lat = nullptr;
      {
        std::lock_guard<std::mutex> tags_lk(tag_latency_mu_);
        lat = tag_latency_[id].get();
      }
      if (lat == nullptr) continue;
      // Drain the tag's window: its p99 over the last tick is the
      // controller's whole input (dogfooding the paper's sketch —
      // mergeable, fixed-size, relative-error percentiles).
      uint64_t window_count = 0;
      double window_p99 = 0;
      {
        std::lock_guard<std::mutex> lat_lk(lat->mu);
        window_count = lat->window.count();
        if (window_count > 0) {
          window_p99 = lat->window.QuantileOrNaN(0.99);
          DDSketchConfig config;
          config.relative_accuracy = options_.latency_alpha;
          auto fresh = DDSketch::Create(config);
          if (fresh.ok()) lat->window = std::move(fresh).value();
        }
      }
      const double share = ledger_->borrow_share(id);
      if (window_count >= kThrottleMinSamples && window_p99 > target_us) {
        // Breach: halve the tag's borrowable share. Its floor is
        // untouchable, so a throttled tenant degrades, never starves.
        ledger_->set_borrow_share(id, share * 0.5);
      } else if (share < 1.0 && window_p99 <= target_us) {
        // Recovery: decay back toward full borrowing, additive nudge so
        // a fully-halved share escapes zero-progress multiplication.
        ledger_->set_borrow_share(id, share * 1.25 + 0.01);
      }
    }
    lk.lock();
  }
}

void SketchServer::CommitLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::unique_lock<std::mutex> lk(shard.queue_mu);
  for (;;) {
    shard.queue_cv.wait(
        lk, [&shard] { return shard.stopping || !shard.queue.empty(); });
    if (shard.queue.empty()) return;  // stopping and nothing left to commit
    if (options_.commit_interval_us > 0 &&
        shard.queue.size() < options_.commit_batch) {
      // Give concurrent ingests a window to fill the batch; a full batch
      // (or shutdown) commits immediately.
      shard.queue_cv.wait_for(
          lk, std::chrono::microseconds(options_.commit_interval_us),
          [this, &shard] {
            return shard.stopping ||
                   shard.queue.size() >= options_.commit_batch;
          });
    }
    CommitOneBatch(shard_index, &lk);
  }
}

void SketchServer::CommitOneBatch(size_t shard_index,
                                  std::unique_lock<std::mutex>* lk) {
  Shard& shard = *shards_[shard_index];
  std::vector<PendingIngest*> batch;
  batch.reserve(std::min(shard.queue.size(), options_.commit_batch));
  while (!shard.queue.empty() && batch.size() < options_.commit_batch) {
    batch.push_back(shard.queue.front());
    shard.queue.pop_front();
  }
  // A batch staged before a commit failure must not reach the store:
  // after a failed WAL repair the log may end in a torn frame, and
  // anything appended behind it would be ACKed yet silently dropped by
  // recovery. Fail it with the sticky error instead.
  Status status = shard.commit_error;
  lk->unlock();

  uint64_t offset = 0;
  uint64_t epoch = 0;
  if (status.ok()) {
    std::vector<WalRecord> records;
    records.reserve(batch.size());
    for (PendingIngest* pending : batch) records.push_back(pending->record);
    std::lock_guard<std::mutex> store_lk(shard.store_mu);
    status = store_->shard(shard_index).IngestBatch(records);
    offset = store_->shard(shard_index).wal_offset();
    epoch = store_->shard(shard_index).epoch();
  }

  lk->lock();
  if (status.ok()) {
    ++shard.batch_commits;
  } else if (shard.commit_error.ok() &&
             status.code() != StatusCode::kFenced) {
    // Fail-stop this shard's ingest path — except on FENCED, which
    // refuses before the WAL is touched: the durability substrate is
    // intact and a later Promote() makes the shard writable again.
    shard.commit_error = status;
  }
  lk->unlock();
  // Admission charges are refunded to their tags' ledgers as soon as
  // the batch leaves the staging pipeline — parked bytes below are
  // durable, not staged. (The refunds also feed each tag's refill-rate
  // estimate behind the BUSY retry hint.)
  for (PendingIngest* pending : batch) {
    ledger_->Refund(pending->tag_id, pending->bytes);
    pending->bytes = 0;
  }
  // Completion handshake outside queue_mu: fill the entries, then
  // decrement the runs' counters. The acq_rel chain on `remaining`
  // orders every committer's entry writes before the final
  // decrementer's PostCompletion, whose queue mutex in turn orders them
  // before the event loop's reads. With replication subscribers
  // attached, a durable batch's handshake is parked in the shipper
  // until its (epoch, offset) is acknowledged downstream (semi-sync); a
  // fenced release turns the acks into FENCED, because records the new
  // primary never acked may not survive the failover.
  auto complete = [batch = std::move(batch), status, offset](bool fenced) {
    const Status final_status =
        fenced ? Status::Fenced(
                     "not acknowledged: this primary was fenced before the "
                     "batch replicated")
               : status;
    for (PendingIngest* pending : batch) {
      pending->result = final_status;
      pending->wal_offset = offset;
      pending->done = true;
      IngestRun* run = pending->run;
      if (run->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        run->loop->PostCompletion(run);
      }
    }
  };
  if (status.ok() && shipper_) {
    shipper_->SubmitCommitted(shard_index, epoch, offset, std::move(complete));
  } else {
    complete(false);  // a failed batch has no durable position to gate on
  }
  lk->lock();
}

void SketchServer::CheckpointLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.checkpoint_interval_ms);
  // Poll cadence: fine-grained enough that a tiny test interval fires
  // promptly, coarse enough that an idle daemon costs nothing. Each poll
  // is a few mutex-guarded integer reads per shard.
  auto poll = std::chrono::milliseconds(50);
  if (options_.checkpoint_interval_ms > 0) {
    poll = std::min(
        poll, std::chrono::milliseconds(
                  std::max<int64_t>(1, options_.checkpoint_interval_ms / 2)));
  }
  std::unique_lock<std::mutex> lk(scheduler_mu_);
  for (;;) {
    scheduler_cv_.wait_for(lk, poll, [this] { return scheduler_stop_; });
    if (scheduler_stop_) return;
    // A follower (or fenced ex-primary) never checkpoints on its own:
    // the primary's stream drives its epochs. Checked every poll so a
    // Promote() re-enables the scheduler in place.
    if (writes_fenced_.load(std::memory_order_relaxed)) continue;
    lk.unlock();
    for (size_t k = 0; k < shards_.size(); ++k) {
      Shard& shard = *shards_[k];
      std::lock_guard<std::mutex> store_lk(shard.store_mu);
      DurableSketchStore& shard_store = store_->shard(k);
      const bool dirty = shard_store.wal_offset() > kWalHeaderBytes;
      if (!dirty) {
        // Nothing to fold; keep pushing the age deadline forward so an
        // idle shard never checkpoints and a newly-dirty one gets a full
        // interval before the time trigger fires.
        shard.checkpoint_deadline_base = Clock::now();
        continue;
      }
      const bool size_due = options_.checkpoint_wal_bytes > 0 &&
                            shard_store.wal_offset() - kWalHeaderBytes >=
                                options_.checkpoint_wal_bytes;
      const bool time_due =
          options_.checkpoint_interval_ms > 0 &&
          Clock::now() - shard.checkpoint_deadline_base >= interval;
      if (!size_due && !time_due) continue;
      if (Clock::now() < shard.checkpoint_backoff_until) continue;
      // Holding only this shard's store_mu: its committer waits, every
      // other shard keeps committing. A scheduler checkpoint failure is
      // not fail-stop — the WAL is untouched by a failed snapshot
      // write, so ingest stays safe — but a full snapshot attempt every
      // poll against a broken disk would burn CPU/IO silently, so
      // failures back off and reach the operator's log.
      if (Status status = shard_store.Checkpoint(); status.ok()) {
        ++shard.background_checkpoints;
      } else {
        std::fprintf(stderr,
                     "sketchd: background checkpoint of shard %zu failed "
                     "(will retry in 5s): %s\n",
                     k, status.ToString().c_str());
        shard.checkpoint_backoff_until =
            Clock::now() + std::chrono::seconds(5);
      }
      shard.checkpoint_deadline_base = Clock::now();
    }
    lk.lock();
  }
}

Response SketchServer::PrepareSubscribe(const Request& request) {
  Response response;
  response.op = Request::Op::kSubscribe;
  auto fail = [&response](const Status& status) {
    response.code = status.code();
    response.message = status.message();
    return response;
  };
  if (role_follower_.load(std::memory_order_relaxed)) {
    return fail(Status::InvalidArgument(
        "this server is a follower; SUBSCRIBE to the primary (chained "
        "replication is not supported)"));
  }
  if (!request.positions.empty() &&
      request.positions.size() != shards_.size()) {
    return fail(Status::InvalidArgument(
        "SUBSCRIBE carries " + std::to_string(request.positions.size()) +
        " resume positions for a " + std::to_string(shards_.size()) +
        "-shard primary"));
  }
  uint64_t token = 0;
  bool fenced = false;
  for (size_t k = 0; k < shards_.size(); ++k) {
    std::lock_guard<std::mutex> lk(shards_[k]->store_mu);
    DurableSketchStore& shard_store = store_->shard(k);
    if (request.repl_token > shard_store.fence_token()) {
      // The subscriber has seen a newer primary than us: we were
      // deposed while we weren't looking. Self-fence before refusing.
      (void)shard_store.Fence(request.repl_token);
    }
    token = std::max(token, shard_store.fence_token());
    fenced = fenced || shard_store.fenced();
  }
  if (fenced) {
    writes_fenced_.store(true, std::memory_order_relaxed);
    // Same reason as FenceSelf: anything parked awaiting subscriber
    // acks must now release as FENCED, not OK.
    if (shipper_) shipper_->Fence();
    return fail(Status::Fenced(
        "writer fenced: a newer primary holds the fencing token"));
  }
  response.repl_token = token;
  response.repl_shards = shards_.size();
  return response;
}

void SketchServer::FenceSelf(uint64_t observed_token) {
  for (size_t k = 0; k < shards_.size(); ++k) {
    std::lock_guard<std::mutex> lk(shards_[k]->store_mu);
    (void)store_->shard(k).Fence(observed_token);
  }
  writes_fenced_.store(true, std::memory_order_relaxed);
  // Fence the shipper too, whichever path discovered the demotion:
  // batches parked for subscriber acks must release as FENCED, not OK —
  // those records may not exist on the new primary.
  if (shipper_) shipper_->Fence();
}

Result<uint64_t> SketchServer::Promote() {
  std::lock_guard<std::mutex> promote_lk(promote_mu_);
  // Stop applying the old primary's stream before flipping roles; the
  // socket is kept open so the new token can be sent up it afterwards.
  if (follower_) follower_->StopTail();
  uint64_t max_token = 0;
  for (size_t k = 0; k < shards_.size(); ++k) {
    std::lock_guard<std::mutex> lk(shards_[k]->store_mu);
    max_token = std::max(max_token, store_->shard(k).fence_token());
  }
  uint64_t new_token = 0;
  for (size_t k = 0; k < shards_.size(); ++k) {
    std::lock_guard<std::mutex> lk(shards_[k]->store_mu);
    DurableSketchStore& shard_store = store_->shard(k);
    // Equalize first so every shard lands on the same new token even if
    // a crash left them divergent.
    DD_RETURN_IF_ERROR(shard_store.AdoptFenceToken(max_token));
    auto token = shard_store.Promote();
    if (!token.ok()) return token.status();
    new_token = token.value();
  }
  role_follower_.store(false, std::memory_order_relaxed);
  writes_fenced_.store(false, std::memory_order_relaxed);
  // Tell the deposed primary it lost the token. Best-effort: if it is
  // already dead this is a no-op, and its next life must rejoin as a
  // follower (docs/OPERATIONS.md runbook) — any replication handshake
  // it attempts with its stale token fences it then.
  if (follower_) follower_->FenceUpstream(new_token);
  return new_token;
}

}  // namespace dd
