#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

#include "core/ddsketch.h"
#include "server/net.h"
#include "timeseries/wal.h"

namespace dd {

Result<std::unique_ptr<SketchServer>> SketchServer::Start(
    const std::string& data_dir, const SketchServerOptions& options) {
  if (options.commit_batch == 0) {
    return Status::InvalidArgument("commit_batch must be at least 1");
  }
  ShardedDurableStoreOptions store_options;
  store_options.durable = options.durable;
  store_options.shards = options.shards;
  auto store = ShardedDurableStore::Open(data_dir, store_options);
  if (!store.ok()) return store.status();
  // Private constructor + threads capturing `this` mean the server must
  // live at a stable address: build it on the heap before binding.
  std::unique_ptr<SketchServer> server(
      new SketchServer(options, std::move(store).value()));
  uint16_t bound_port = 0;
  auto listen_fd = ListenTcp(options.host, options.port, &bound_port);
  if (!listen_fd.ok()) return listen_fd.status();
  server->listen_fd_ = listen_fd.value();
  server->port_ = bound_port;
  for (size_t k = 0; k < server->shards_.size(); ++k) {
    server->shards_[k]->committer =
        std::thread([s = server.get(), k] { s->CommitLoop(k); });
  }
  if (server->SchedulerEnabled()) {
    server->checkpoint_thread_ =
        std::thread([s = server.get()] { s->CheckpointLoop(); });
  }
  server->accept_thread_ = std::thread(
      [s = server.get(), fd = listen_fd.value()] { s->AcceptLoop(fd); });
  return server;
}

SketchServer::SketchServer(SketchServerOptions options,
                           ShardedDurableStore store)
    : options_(std::move(options)), store_(std::move(store)) {
  const auto now = std::chrono::steady_clock::now();
  shards_.reserve(store_->num_shards());
  for (size_t k = 0; k < store_->num_shards(); ++k) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->checkpoint_deadline_base = now;
  }
}

SketchServer::~SketchServer() { Stop(); }

void SketchServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->queue_mu);
    shard->stopping = true;
  }
  for (auto& shard : shards_) shard->queue_cv.notify_all();
  {
    std::lock_guard<std::mutex> lk(scheduler_mu_);
    scheduler_stop_ = true;
  }
  scheduler_cv_.notify_all();
  draining_.store(true);
  // Wake the accept loop and every blocked connection read. shutdown(2)
  // (not close) so the fds stay valid until their owning threads exit.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // joinable() guards: Start() can fail between constructing the server
  // and launching the threads (e.g. bind error), and the unique_ptr's
  // destructor still runs Stop().
  if (accept_thread_.joinable()) accept_thread_.join();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  for (auto& shard : shards_) {
    if (shard->committer.joinable()) shard->committer.join();
  }
  // The accept thread is joined, so conn_threads_ is stable now.
  for (std::thread& t : conn_threads_) t.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  store_.reset();  // releases every shard's data-dir lock for reopeners
}

uint64_t SketchServer::batch_commits() const noexcept {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->queue_mu);
    total += shard->batch_commits;
  }
  return total;
}

uint64_t SketchServer::background_checkpoints() const noexcept {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->store_mu);
    total += shard->background_checkpoints;
  }
  return total;
}

void SketchServer::AcceptLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (Stop) or fatal error
    }
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (draining_.load()) {
      // Stop() already swept conn_fds_; registering now would leave
      // this connection without its shutdown(2) wake-up.
      ::close(fd);
      continue;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] {
      ServeConnection(fd);
      {
        std::lock_guard<std::mutex> inner(conns_mu_);
        conn_fds_.erase(fd);
      }
      // Closed only after deregistering, so Stop never shuts down a
      // recycled fd number.
      ::close(fd);
    });
  }
}

namespace {

bool IsIngestOp(Request::Op op) {
  return op == Request::Op::kIngest || op == Request::Op::kMerge;
}

WalRecord ToWalRecord(const Request& request) {
  WalRecord record;
  record.series = request.series;
  record.timestamp = request.timestamp;
  if (request.op == Request::Op::kIngest) {
    record.type = WalRecord::Type::kIngestValue;
    record.value = request.value;
  } else {
    record.type = WalRecord::Type::kIngestSketch;
    record.payload = request.payload;
  }
  return record;
}

}  // namespace

void SketchServer::ServeConnection(int fd) {
  FramedConn conn(fd);
  if (!conn.ExpectHello().ok()) return;
  if (!conn.SendHello().ok()) return;
  std::string body;
  bool have_body = false;  // a frame read ahead while collecting a run
  for (;;) {
    if (!have_body) {
      auto read = conn.ReadFrame();
      if (!read.ok()) return;  // clean EOF, shutdown, or transport error
      body = std::move(read).value();
    }
    have_body = false;
    auto request = DecodeRequest(body);
    if (!request.ok()) return;  // CRC passed but body malformed: broken peer
    if (!IsIngestOp(request.value().op)) {
      const Response response = HandleNonIngest(request.value());
      if (!conn.WriteFrame(EncodeResponse(response)).ok()) return;
      continue;
    }
    // Collect the pipelined run of ingest requests already sitting in
    // the socket, so one client's burst becomes one staged group per
    // shard (and so the committers see real batches even with a single
    // client). The run cap scales with the shard count because the run
    // is split across shard queues before committing.
    const size_t run_cap = options_.commit_batch * shards_.size();
    std::vector<Request> run;
    run.push_back(std::move(request).value());
    while (run.size() < run_cap) {
      std::string next;
      auto got = conn.TryReadFrame(&next);
      if (!got.ok()) return;
      if (!got.value()) break;
      auto next_request = DecodeRequest(next);
      if (!next_request.ok()) return;
      if (!IsIngestOp(next_request.value().op)) {
        // Handle it after the run; keeps responses in request order.
        body = std::move(next);
        have_body = true;
        break;
      }
      run.push_back(std::move(next_request).value());
    }
    if (!HandleIngestRun(&conn, run)) return;
  }
}

bool SketchServer::HandleIngestRun(FramedConn* conn,
                                   const std::vector<Request>& run) {
  std::vector<PendingIngest> pendings(run.size());
  RunWaiter waiter;
  // Per-shard staging groups: each entry of the run goes to the queue of
  // the shard that owns its series.
  std::vector<std::vector<PendingIngest*>> by_shard(shards_.size());
  for (size_t i = 0; i < run.size(); ++i) {
    pendings[i].record = ToWalRecord(run[i]);
    pendings[i].waiter = &waiter;
    // Validation reads only the store's immutable configuration
    // (prototype sketch parameters), so it runs lock-free on the
    // connection thread — a bad request is rejected here and never
    // poisons or stalls a committer batch.
    pendings[i].result = store_->ValidateRecord(pendings[i].record);
    if (pendings[i].result.ok()) {
      by_shard[store_->ShardOf(pendings[i].record.series)].push_back(
          &pendings[i]);
    } else {
      pendings[i].done = true;
    }
  }
  // The waiter owes one completion per validated entry. The count is
  // set BEFORE anything is staged: once an entry is on a shard queue its
  // committer may finish (and decrement) immediately.
  size_t to_stage = 0;
  for (const auto& group : by_shard) to_stage += group.size();
  waiter.remaining = to_stage;
  // Stage every shard's group; entries refused at staging time
  // (shutdown or a fail-stopped shard) are completed on the spot, which
  // takes their completions back out of the waiter.
  for (size_t k = 0; k < by_shard.size(); ++k) {
    if (by_shard[k].empty()) continue;
    Shard& shard = *shards_[k];
    std::lock_guard<std::mutex> lk(shard.queue_mu);
    if (shard.stopping || !shard.commit_error.ok()) {
      const Status status =
          shard.stopping ? Status::ResourceExhausted("server is shutting down")
                         : shard.commit_error;
      for (PendingIngest* pending : by_shard[k]) {
        pending->result = status;
        pending->done = true;
      }
      std::lock_guard<std::mutex> done_lk(waiter.mu);
      waiter.remaining -= by_shard[k].size();
      continue;
    }
    for (PendingIngest* pending : by_shard[k]) {
      shard.queue.push_back(pending);
    }
    shard.queue_cv.notify_all();
  }
  if (to_stage > 0) {
    std::unique_lock<std::mutex> lk(waiter.mu);
    waiter.cv.wait(lk, [&waiter] { return waiter.remaining == 0; });
  }
  for (size_t i = 0; i < run.size(); ++i) {
    Response response;
    response.op = run[i].op;
    response.code = pendings[i].result.code();
    response.message = pendings[i].result.message();
    response.wal_offset = pendings[i].wal_offset;
    if (!conn->WriteFrame(EncodeResponse(response)).ok()) return false;
  }
  return true;
}

Response SketchServer::HandleNonIngest(const Request& request) {
  Response response;
  response.op = request.op;
  auto fail = [&response](const Status& status) {
    response.code = status.code();
    response.message = status.message();
    return response;
  };
  switch (request.op) {
    case Request::Op::kIngest:
    case Request::Op::kMerge:
      return fail(Status::Internal("ingest op routed to HandleNonIngest"));
    case Request::Op::kQuery: {
      // A series lives on exactly one shard (pinned hash, immutable
      // count), so the read locks only the owner — queries never
      // contend with the other shards' committers or checkpoints.
      const size_t owner = store_->ShardOf(request.series);
      std::lock_guard<std::mutex> lk(shards_[owner]->store_mu);
      auto merged = store_->shard(owner).QueryRange(request.series,
                                                    request.start, request.end);
      if (!merged.ok()) return fail(merged.status());
      response.values.reserve(request.quantiles.size());
      for (double q : request.quantiles) {
        auto value = merged.value().Quantile(q);
        if (!value.ok()) return fail(value.status());
        response.values.push_back(value.value());
      }
      return response;
    }
    case Request::Op::kCheckpoint: {
      // "Checkpoint all shards", one shard lock at a time so ingest on
      // the others keeps flowing while each snapshot is written.
      uint64_t min_epoch = 0;
      for (size_t k = 0; k < shards_.size(); ++k) {
        std::lock_guard<std::mutex> lk(shards_[k]->store_mu);
        if (Status status = store_->shard(k).Checkpoint(); !status.ok()) {
          return fail(status);
        }
        shards_[k]->checkpoint_deadline_base = std::chrono::steady_clock::now();
        const uint64_t epoch = store_->shard(k).epoch();
        min_epoch = k == 0 ? epoch : std::min(min_epoch, epoch);
      }
      response.epoch = min_epoch;
      return response;
    }
    case Request::Op::kStats: {
      StoreStats& stats = response.stats;
      stats.shards.reserve(shards_.size());
      for (size_t k = 0; k < shards_.size(); ++k) {
        ShardStats row;
        row.shard = k;
        {
          std::lock_guard<std::mutex> lk(shards_[k]->store_mu);
          const DurableSketchStore& shard_store = store_->shard(k);
          row.num_series = shard_store.store().num_series();
          row.wal_bytes = shard_store.wal_offset();
          row.epoch = shard_store.epoch();
          row.background_checkpoints = shards_[k]->background_checkpoints;
          stats.num_intervals += shard_store.store().num_intervals();
          stats.size_in_bytes += shard_store.store().size_in_bytes();
        }
        {
          std::lock_guard<std::mutex> lk(shards_[k]->queue_mu);
          row.batch_commits = shards_[k]->batch_commits;
        }
        stats.num_series += row.num_series;
        stats.wal_offset += row.wal_bytes;
        stats.epoch = k == 0 ? row.epoch : std::min(stats.epoch, row.epoch);
        stats.batch_commits += row.batch_commits;
        stats.background_checkpoints += row.background_checkpoints;
        stats.shards.push_back(row);
      }
      return response;
    }
  }
  return fail(Status::Internal("unhandled request op"));
}

void SketchServer::CommitLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::unique_lock<std::mutex> lk(shard.queue_mu);
  for (;;) {
    shard.queue_cv.wait(
        lk, [&shard] { return shard.stopping || !shard.queue.empty(); });
    if (shard.queue.empty()) return;  // stopping and nothing left to commit
    if (options_.commit_interval_us > 0 &&
        shard.queue.size() < options_.commit_batch) {
      // Give concurrent ingests a window to fill the batch; a full batch
      // (or shutdown) commits immediately.
      shard.queue_cv.wait_for(
          lk, std::chrono::microseconds(options_.commit_interval_us),
          [this, &shard] {
            return shard.stopping ||
                   shard.queue.size() >= options_.commit_batch;
          });
    }
    CommitOneBatch(shard_index, &lk);
  }
}

void SketchServer::CommitOneBatch(size_t shard_index,
                                  std::unique_lock<std::mutex>* lk) {
  Shard& shard = *shards_[shard_index];
  std::vector<PendingIngest*> batch;
  batch.reserve(std::min(shard.queue.size(), options_.commit_batch));
  while (!shard.queue.empty() && batch.size() < options_.commit_batch) {
    batch.push_back(shard.queue.front());
    shard.queue.pop_front();
  }
  // A batch staged before a commit failure must not reach the store:
  // after a failed WAL repair the log may end in a torn frame, and
  // anything appended behind it would be ACKed yet silently dropped by
  // recovery. Fail it with the sticky error instead.
  Status status = shard.commit_error;
  lk->unlock();

  uint64_t offset = 0;
  if (status.ok()) {
    std::vector<WalRecord> records;
    records.reserve(batch.size());
    for (PendingIngest* pending : batch) records.push_back(pending->record);
    std::lock_guard<std::mutex> store_lk(shard.store_mu);
    status = store_->shard(shard_index).IngestBatch(records);
    offset = store_->shard(shard_index).wal_offset();
  }

  lk->lock();
  if (status.ok()) {
    ++shard.batch_commits;
  } else if (shard.commit_error.ok()) {
    shard.commit_error = status;  // fail-stop this shard's ingest path
  }
  lk->unlock();
  // Completion handshake outside queue_mu: fill the entry, then signal
  // its run's waiter. The waiter lock orders the writes before the
  // connection thread's reads.
  for (PendingIngest* pending : batch) {
    RunWaiter* waiter = pending->waiter;
    std::lock_guard<std::mutex> done_lk(waiter->mu);
    pending->result = status;
    pending->wal_offset = offset;
    pending->done = true;
    if (--waiter->remaining == 0) waiter->cv.notify_all();
  }
  lk->lock();
}

void SketchServer::CheckpointLoop() {
  using Clock = std::chrono::steady_clock;
  const auto interval =
      std::chrono::milliseconds(options_.checkpoint_interval_ms);
  // Poll cadence: fine-grained enough that a tiny test interval fires
  // promptly, coarse enough that an idle daemon costs nothing. Each poll
  // is a few mutex-guarded integer reads per shard.
  auto poll = std::chrono::milliseconds(50);
  if (options_.checkpoint_interval_ms > 0) {
    poll = std::min(
        poll, std::chrono::milliseconds(
                  std::max<int64_t>(1, options_.checkpoint_interval_ms / 2)));
  }
  std::unique_lock<std::mutex> lk(scheduler_mu_);
  for (;;) {
    scheduler_cv_.wait_for(lk, poll, [this] { return scheduler_stop_; });
    if (scheduler_stop_) return;
    lk.unlock();
    for (size_t k = 0; k < shards_.size(); ++k) {
      Shard& shard = *shards_[k];
      std::lock_guard<std::mutex> store_lk(shard.store_mu);
      DurableSketchStore& shard_store = store_->shard(k);
      const bool dirty = shard_store.wal_offset() > kWalHeaderBytes;
      if (!dirty) {
        // Nothing to fold; keep pushing the age deadline forward so an
        // idle shard never checkpoints and a newly-dirty one gets a full
        // interval before the time trigger fires.
        shard.checkpoint_deadline_base = Clock::now();
        continue;
      }
      const bool size_due = options_.checkpoint_wal_bytes > 0 &&
                            shard_store.wal_offset() - kWalHeaderBytes >=
                                options_.checkpoint_wal_bytes;
      const bool time_due =
          options_.checkpoint_interval_ms > 0 &&
          Clock::now() - shard.checkpoint_deadline_base >= interval;
      if (!size_due && !time_due) continue;
      if (Clock::now() < shard.checkpoint_backoff_until) continue;
      // Holding only this shard's store_mu: its committer waits, every
      // other shard keeps committing. A scheduler checkpoint failure is
      // not fail-stop — the WAL is untouched by a failed snapshot
      // write, so ingest stays safe — but a full snapshot attempt every
      // poll against a broken disk would burn CPU/IO silently, so
      // failures back off and reach the operator's log.
      if (Status status = shard_store.Checkpoint(); status.ok()) {
        ++shard.background_checkpoints;
      } else {
        std::fprintf(stderr,
                     "sketchd: background checkpoint of shard %zu failed "
                     "(will retry in 5s): %s\n",
                     k, status.ToString().c_str());
        shard.checkpoint_backoff_until =
            Clock::now() + std::chrono::seconds(5);
      }
      shard.checkpoint_deadline_base = Clock::now();
    }
    lk.lock();
  }
}

}  // namespace dd
