// sketchd's serving core: a TCP daemon in front of a DurableSketchStore.
//
// Threading model (documented in docs/ARCHITECTURE.md, "Serving"):
//
//   accept thread ──▶ one thread per connection ──▶ request handlers
//                                   │ INGEST / MERGE
//                                   ▼
//                        staging queue (queue_mu_)
//                                   │
//                        committer thread (the single WAL writer)
//                                   │ append batch → 1 fsync → merge
//                                   ▼
//                        DurableSketchStore (store_mu_)
//
// Group commit: INGEST/MERGE requests are validated on their connection
// thread, staged, and the committer drains up to `commit_batch` staged
// records per commit — N acknowledged ingests for one fsync. Staged
// records come from two sources of concurrency: multiple connections
// ingesting at once, and a single connection pipelining requests (the
// handler drains already-buffered ingest frames without blocking and
// stages the whole run as one group). When `commit_interval_us` > 0 the
// committer additionally waits that long for a partial batch to fill;
// at 0 batching is purely natural (whatever queued while the previous
// fsync ran). A connection thread is only unblocked — and its client
// only sees OK — after the batch containing its record is durable, so
// an acknowledged ingest always replays after a crash.
//
// QUERY / CHECKPOINT / STATS run on the connection thread under
// store_mu_, the one lock serializing every DurableSketchStore access.

#ifndef DDSKETCH_SERVER_SERVER_H_
#define DDSKETCH_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "server/protocol.h"
#include "timeseries/durable_store.h"
#include "util/status.h"

namespace dd {

struct SketchServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  DurableSketchStoreOptions durable;
  /// Max staged records drained into one group commit (one fsync).
  size_t commit_batch = 64;
  /// Extra microseconds the committer waits for a partial batch to fill.
  /// 0 = commit whatever queued while the previous commit ran.
  int64_t commit_interval_us = 0;
};

/// The daemon: owns the durable store, the listening socket, and all
/// serving threads. Construct via Start(), tear down via Stop() (also
/// run by the destructor). Stop() closes the store so the data
/// directory can be reopened immediately afterwards.
class SketchServer {
 public:
  /// Opens (or recovers) `data_dir`, binds the listening socket, and
  /// launches the accept + committer threads.
  static Result<std::unique_ptr<SketchServer>> Start(
      const std::string& data_dir, const SketchServerOptions& options);

  SketchServer(const SketchServer&) = delete;
  SketchServer& operator=(const SketchServer&) = delete;
  ~SketchServer();

  /// Stops accepting, wakes every connection, commits all staged
  /// records, joins all threads, and closes the store. Idempotent.
  void Stop();

  /// The bound port (useful with options.port = 0).
  uint16_t port() const noexcept { return port_; }

  /// Group commits executed since Start (each is exactly one WAL fsync).
  uint64_t batch_commits() const noexcept;

 private:
  /// One staged INGEST/MERGE waiting for the committer. Lives on the
  /// connection thread's stack; the queue holds pointers.
  struct PendingIngest {
    WalRecord record;
    Status result;
    uint64_t wal_offset = 0;
    bool done = false;
  };

  SketchServer(SketchServerOptions options, DurableSketchStore store);

  void AcceptLoop(int listen_fd);
  void ServeConnection(int fd);
  /// Handles QUERY / CHECKPOINT / STATS on the connection thread.
  Response HandleNonIngest(const Request& request);
  /// Validates + stages a pipelined run of INGEST/MERGE requests as one
  /// group, waits for durability, and writes one response per request
  /// in order. Returns false when the connection should close.
  bool HandleIngestRun(class FramedConn* conn,
                       const std::vector<Request>& run);
  /// Blocks until the committer has made every entry durable. Entries
  /// whose result is pre-set (validation failures) are not staged.
  void StageRunAndWait(std::vector<PendingIngest*>* run);
  void CommitLoop();
  /// Drains up to commit_batch pending entries, commits them with one
  /// fsync, and wakes their connection threads. Called with queue_mu_
  /// held; returns with it held.
  void CommitOneBatch(std::unique_lock<std::mutex>* lk);

  SketchServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::mutex store_mu_;  // serializes every store_ access
  std::optional<DurableSketchStore> store_;

  mutable std::mutex queue_mu_;       // mutable: batch_commits() is const
  std::condition_variable queue_cv_;  // wakes the committer
  std::condition_variable done_cv_;   // wakes waiting connection threads
  std::deque<PendingIngest*> queue_;
  bool stopping_ = false;
  uint64_t batch_commits_ = 0;  // guarded by queue_mu_
  /// Sticky first commit error (guarded by queue_mu_). After any batch
  /// commit fails the durability substrate is suspect — and if the WAL
  /// repair failed the log is torn, where further appends would be
  /// silently dropped by recovery — so the ingest path fail-stops:
  /// every later INGEST/MERGE is refused with this status. Queries,
  /// STATS, and CHECKPOINT keep working.
  Status commit_error_;

  std::mutex conns_mu_;
  std::unordered_set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  /// Set before Stop's shutdown sweep of conn_fds_: a connection that
  /// the accept loop registers after the sweep would otherwise miss its
  /// shutdown(2) wake-up and block in recv forever.
  std::atomic<bool> draining_{false};

  std::thread accept_thread_;
  std::thread commit_thread_;
  bool stopped_ = false;  // Stop() ran to completion (main thread only)
};

}  // namespace dd

#endif  // DDSKETCH_SERVER_SERVER_H_
