// sketchd's serving core: a TCP daemon in front of a ShardedDurableStore.
//
// Threading model (documented in docs/ARCHITECTURE.md, "Serving"):
//
//   event-loop threads (epoll, edge-triggered; loop 0 also accepts)
//        │ parse frames from non-blocking FramedConns
//        │ INGEST / MERGE: validate, admission-check, route by series hash
//        ▼
//   per-shard staging queues (shard.queue_mu)
//        │                         │
//   committer thread 0   ...   committer thread N-1
//        │  append batch → 1 fsync → merge (shard.store_mu)
//        │  then post run completions back to the owning event loop
//        ▼                         ▼
//   shard-0 store     ...     shard-(N-1) store
//        ▲                         ▲
//        └──── checkpoint scheduler thread ────┘
//
// A small, fixed pool of event-loop threads multiplexes every
// connection: each loop owns an epoll set of non-blocking sockets and
// never blocks on any one peer (partial writes are buffered, stalled
// peers are shed by deadline). A connection with a staged ingest run
// in flight stops being read until the run commits — TCP flow control
// pushes back on the client, which bounds per-connection memory and
// keeps responses in request order. Committers hand completed runs
// back to the owning loop through a wake-up queue (eventfd), so the
// socket write happens on the loop thread, never on a committer.
//
// Admission control: the staged-bytes budget caps the bytes
// validated-but-not-yet-durable across all shards, split into per-tag
// ledgers (protocol v7, server/admission.h): each connection charges
// the tag it declared via SET_TAG ("default" if none), every tag keeps
// a guaranteed floor, and the rest is a borrowable shared pool — so a
// flooding tenant exhausts its own allowance and gets BUSY (with a
// retry_after_ms hint) while honest tags keep their floor. When
// --tag-p99-target-us is set, a throttle controller thread watches
// each tag's own ack-latency sketch and halves a breaching tag's
// borrowable share, decaying it back on recovery. Runs are
// additionally capped per connection (`max_conn_inflight`), and
// connections that stall mid-frame (slow loris), stop reading their
// responses, or sit idle past the configured deadlines are shed.
//
// Group commit is unchanged from PR 5: each shard's committer drains
// up to `commit_batch` staged records per commit — N acknowledged
// ingests for one fsync, with up to `shards` fsyncs in flight at once.
// A client sees OK only after the shard batch holding its record is
// durable. The background checkpoint scheduler is also unchanged.
//
// QUERY / CHECKPOINT / STATS run on the loop thread. QUERY locks only
// the owning shard's store_mu; CHECKPOINT and STATS walk the shards
// one store_mu at a time, in shard order.
//
// Replication (protocol v5, server/replication.h): a SUBSCRIBE request
// hands the connection from its event loop to the ReplicationShipper,
// which streams WAL segments (and snapshots, when the follower's
// position no longer matches) and gates ingest acks on follower acks.
// A server started with role=follower runs a ReplicationFollower that
// tails its primary and refuses every client write with FENCED; the
// read path (QUERY/STATS) serves normally. Promote() flips a follower
// (or a fenced ex-primary) back into a writable primary by bumping the
// fencing token persisted in every shard's LOCK file — a deposed
// primary that observes the new token (FENCE frame, or a SUBSCRIBE
// from a newer-tokened follower) sticky-fences itself, so late writes
// after a failover are refused instead of splitting the brain.

#ifndef DDSKETCH_SERVER_SERVER_H_
#define DDSKETCH_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/admission.h"
#include "server/protocol.h"
#include "server/replication.h"
#include "timeseries/sharded_store.h"
#include "util/status.h"

namespace dd {

struct SketchServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  DurableSketchStoreOptions durable;
  /// Shard count for the data directory: 0 auto-detects (manifest count,
  /// legacy/fresh directories open single-shard); an explicit count must
  /// match the directory (see timeseries/sharded_store.h).
  size_t shards = 0;
  /// Max staged records drained into one group commit (one fsync),
  /// per shard.
  size_t commit_batch = 64;
  /// Extra microseconds a shard committer waits for a partial batch to
  /// fill. 0 = commit whatever queued while the previous commit ran.
  int64_t commit_interval_us = 0;
  /// Background checkpoint: snapshot + reset a shard's WAL once it
  /// exceeds this many bytes. 0 disables the size trigger.
  uint64_t checkpoint_wal_bytes = 0;
  /// Background checkpoint: snapshot + reset a shard's WAL once it has
  /// held records this long. 0 disables the interval trigger. (sketchd
  /// exposes this as --checkpoint-interval-s; milliseconds here keep the
  /// scheduler unit-testable.)
  int64_t checkpoint_interval_ms = 0;

  /// Event-loop threads multiplexing all connections. 0 = auto (half
  /// the hardware threads, clamped to [1, 4]).
  size_t event_loops = 0;
  /// Admission control: global cap on bytes staged (validated and
  /// queued, not yet durable) across all shards. Records arriving past
  /// the cap are refused with BUSY. 0 = unlimited. The cap is split
  /// into per-tag ledgers (v7): each tag's guaranteed floor is its
  /// weighted slice of tag_floor_fraction × budget, the rest is a
  /// shared pool any tag may borrow from.
  uint64_t staged_bytes_budget = 64u << 20;
  /// Pre-registered tag weights (from sketchd --tag-budget). Tags not
  /// listed here register on first SET_TAG with weight 1; "default"
  /// always exists.
  std::vector<std::pair<std::string, uint64_t>> tag_weights;
  /// Fraction of the budget reserved as guaranteed per-tag floors.
  double tag_floor_fraction = 0.5;
  /// Throttle controller: shrink a tag's borrowable share when its own
  /// ingest/merge ack p99 (microseconds) breaches this target.
  /// 0 disables the controller (floors still isolate tenants).
  int64_t tag_p99_target_us = 0;
  /// Controller tick cadence (also the per-tag latency window length).
  int64_t tag_throttle_interval_ms = 200;
  /// Per-connection cap on records staged in one run (one run per
  /// connection may be in flight; reads pause until it commits).
  size_t max_conn_inflight = 1024;
  /// Shed a connection that has been completely idle (hello done, no
  /// partial frame, no pending writes) this long. 0 = never.
  int64_t idle_timeout_ms = 300000;
  /// Shed a connection whose pending unit of I/O — the hello, a partial
  /// frame (slow loris), or unread responses (stalled reader) — fails
  /// to complete within this deadline. Byte-at-a-time progress does not
  /// reset it. 0 = never.
  int64_t stall_timeout_ms = 10000;
  /// Relative accuracy of the self-instrumentation sketches: each event
  /// loop records every request's ack latency into a per-op DDSketch at
  /// this alpha, and STATS reports the merged percentiles (protocol
  /// v4). The default matches the library default.
  double latency_alpha = 0.01;

  // --- Replication (protocol v5). The server's role comes from
  // durable.role: kFollower additionally requires follow_host/port. ---

  /// Primary to tail when durable.role == kFollower ("--follow").
  std::string follow_host;
  uint16_t follow_port = 0;
  /// Semi-sync ack gating: a committed batch's client acks are parked
  /// until every subscribed follower acks it, at most this long; a
  /// follower that blows the deadline is dropped and the primary
  /// degrades to async. 0 disables gating (pure async shipping).
  int64_t repl_ack_timeout_ms = 1000;
  /// Heartbeat cadence on replication connections.
  int64_t repl_heartbeat_ms = 500;
  /// Bootstrap snapshot images larger than this ship chunked
  /// (kSnapshotChunk/kSnapshotEnd, protocol v6) instead of as one
  /// frame. Tests shrink it to exercise chunking with small stores.
  uint64_t repl_snapshot_chunk_bytes = 4u << 20;
};

/// The daemon: owns the sharded durable store, the listening socket, and
/// all serving threads. Construct via Start(), tear down via Stop()
/// (also run by the destructor). Stop() closes the store so the data
/// directory can be reopened immediately afterwards.
class SketchServer {
 public:
  /// Opens (or recovers) `data_dir`, binds the listening socket, and
  /// launches the event loops, one committer per shard, and (when a
  /// checkpoint trigger is configured) the checkpoint scheduler.
  static Result<std::unique_ptr<SketchServer>> Start(
      const std::string& data_dir, const SketchServerOptions& options);

  SketchServer(const SketchServer&) = delete;
  SketchServer& operator=(const SketchServer&) = delete;
  ~SketchServer();

  /// Stops accepting, sheds every connection (in-flight runs are
  /// committed first), joins all threads, and closes the store.
  /// Idempotent. Connections arriving at any point during shutdown are
  /// owned by exactly one event loop, so none can be missed by a sweep
  /// (the race the old accept-thread design documented).
  void Stop();

  /// The bound port (useful with options.port = 0).
  uint16_t port() const noexcept { return port_; }

  size_t num_shards() const noexcept { return shards_.size(); }
  size_t num_event_loops() const noexcept { return loops_.size(); }

  /// Group commits executed since Start, totaled across shards (each is
  /// exactly one WAL fsync).
  uint64_t batch_commits() const noexcept;

  /// Checkpoints the scheduler has run since Start, totaled across
  /// shards (client CHECKPOINTs are not counted).
  uint64_t background_checkpoints() const noexcept;

  /// Serving counters (also reported via STATS).
  uint64_t connections_open() const noexcept {
    return connections_open_.load(std::memory_order_relaxed);
  }
  uint64_t connections_shed() const noexcept {
    return connections_shed_.load(std::memory_order_relaxed);
  }
  uint64_t busy_rejections() const noexcept {
    return busy_rejections_.load(std::memory_order_relaxed);
  }
  /// The per-tag admission ledger (always present; unit tests and the
  /// throttle controller read it).
  const TagAdmissionLedger& ledger() const noexcept { return *ledger_; }
  /// Full-snapshot frames the replication shipper has sent (a caught-up
  /// follower riding a checkpoint must not bump this).
  uint64_t repl_snapshot_frames() const noexcept {
    return shipper_ ? shipper_->snapshot_frames() : 0;
  }

  /// Become the (new) primary: stops tailing the old one, bumps the
  /// fencing token on every shard, unfences, and best-effort FENCEs the
  /// old primary over the replication connection. Also un-fences a
  /// fenced ex-primary (re-promotion). Returns the new token. Safe from
  /// any thread (the PROMOTE op and sketchd's SIGUSR1 both land here).
  Result<uint64_t> Promote();

  /// True while this server refuses client writes with FENCED (follower
  /// role, or a primary that observed a newer fencing token).
  bool writes_fenced() const noexcept {
    return writes_fenced_.load(std::memory_order_relaxed);
  }

 private:
  class EventLoop;
  struct Conn;
  struct IngestRun;

  /// One staged INGEST/MERGE waiting for a shard committer. Lives in
  /// its run's entries array (address-stable once staged); the shard
  /// queue holds pointers.
  struct PendingIngest {
    WalRecord record;
    Status result;
    uint64_t wal_offset = 0;
    uint64_t bytes = 0;  // admission-budget charge; 0 = never admitted
    uint32_t tag_id = 0; // ledger the charge (and refund) belongs to
    uint64_t retry_after_ms = 0;  // BUSY hint carried to the response
    bool done = false;
    IngestRun* run = nullptr;  // completion rendezvous
  };

  /// Everything one shard's committer and scheduler state needs. The
  /// shard's DurableSketchStore itself lives in store_ (same index).
  struct Shard {
    std::mutex store_mu;  // serializes every access to this shard's store

    std::mutex queue_mu;
    std::condition_variable queue_cv;  // wakes this shard's committer
    std::deque<PendingIngest*> queue;
    bool stopping = false;        // guarded by queue_mu
    uint64_t batch_commits = 0;   // guarded by queue_mu
    /// Sticky first commit error (guarded by queue_mu). After a batch
    /// commit fails this shard's durability substrate is suspect — and
    /// if the WAL repair failed its log is torn, where further appends
    /// would be silently dropped by recovery — so this shard's ingest
    /// path fail-stops: every later INGEST/MERGE routed here is refused
    /// with this status. Other shards, queries, STATS, and CHECKPOINT
    /// keep working.
    Status commit_error;

    std::thread committer;

    /// Scheduler bookkeeping (guarded by store_mu, like the store).
    std::chrono::steady_clock::time_point checkpoint_deadline_base;
    /// After a failed background checkpoint the scheduler skips this
    /// shard until here — a snapshot write is expensive, so a
    /// persistently failing one must not be retried every poll.
    std::chrono::steady_clock::time_point checkpoint_backoff_until{};
    uint64_t background_checkpoints = 0;
  };

  SketchServer(SketchServerOptions options, ShardedDurableStore store);

  /// Handles QUERY / CHECKPOINT / STATS on a loop thread (thread-safe:
  /// takes only per-shard locks).
  Response HandleNonIngest(const Request& request);
  /// Fills the v4 latency rows: merges every event loop's per-op
  /// latency sketches (ConcurrentDDSketch snapshots, safe concurrent
  /// with the loops' adds) and extracts the STATS percentiles.
  void FillOpLatencies(StoreStats* stats) const;
  /// Validates, admission-checks, and stages one run of INGEST/MERGE
  /// requests across the owning shards' queues. Returns true when the
  /// run is already complete (everything refused at validation,
  /// admission, or staging) — the caller responds inline; otherwise at
  /// least one committer owes a completion and will post the run back
  /// to its event loop.
  bool StageIngestRun(IngestRun* run);
  void CommitLoop(size_t shard_index);
  /// Drains up to commit_batch pending entries from shard `k`, commits
  /// them with one fsync, and posts completed runs back to their event
  /// loops. Called with the shard's queue_mu held; returns with it held.
  void CommitOneBatch(size_t shard_index, std::unique_lock<std::mutex>* lk);
  /// The background checkpoint scheduler: polls every shard's WAL size
  /// and age against the configured triggers.
  void CheckpointLoop();
  /// Validates a SUBSCRIBE request (role, fencing token, position
  /// count) and builds its response; called on the loop thread before
  /// the connection is handed to the shipper. A subscriber announcing a
  /// newer token than ours fences this server first.
  Response PrepareSubscribe(const Request& request);
  /// Sticky-fences every shard against `observed_token` and flips the
  /// fast-path flag (the shipper's on_fence callback).
  void FenceSelf(uint64_t observed_token);
  /// True when either background-checkpoint trigger is configured.
  bool SchedulerEnabled() const noexcept {
    return options_.checkpoint_wal_bytes > 0 ||
           options_.checkpoint_interval_ms > 0;
  }

  /// Registers `tag` in the ledger and ensures its latency slot exists;
  /// returns the tag id (SET_TAG handling on a loop thread), or nullopt
  /// when the tag table is full (the connection keeps its current tag).
  std::optional<uint32_t> RegisterTag(std::string_view tag);
  /// Records `n` acked ingest/merge latencies of `us` microseconds into
  /// the tag's cumulative + window sketches (FinishRun, loop threads).
  void RecordTagAckLatency(uint32_t tag_id, double us, size_t n);
  /// The tail-latency throttle controller: every tick, drain each tag's
  /// latency window; a tag whose p99 breaches tag_p99_target_us has its
  /// borrowable share halved, a recovering tag decays back toward 1.
  void ThrottleLoop();

  SketchServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::optional<ShardedDurableStore> store_;
  /// One entry per store shard; unique_ptr for address stability (the
  /// committer threads hold pointers into it).
  std::vector<std::unique_ptr<Shard>> shards_;

  /// The event-loop pool. Loop 0 owns the listener; accepted
  /// connections are distributed round-robin.
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_loop_{0};

  // Admission control: the per-tag staged-bytes ledger (v7) plus
  // serving counters (relaxed atomics; STATS reads are advisory).
  std::unique_ptr<TagAdmissionLedger> ledger_;
  /// Per-tag ack-latency sketches, indexed by ledger tag id. The vector
  /// grows under tag_latency_mu_; the per-tag object is stable once
  /// created and has its own lock.
  struct TagLatency;
  mutable std::mutex tag_latency_mu_;
  std::vector<std::unique_ptr<TagLatency>> tag_latency_;
  TagLatency* TagLatencyFor(uint32_t tag_id);
  std::atomic<uint64_t> busy_rejections_{0};
  std::atomic<uint64_t> connections_open_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_shed_{0};

  // Replication (v5). The shipper always exists (any primary may gain
  // subscribers); the follower only when started with role=follower.
  std::unique_ptr<ReplicationShipper> shipper_;
  std::unique_ptr<ReplicationFollower> follower_;
  /// Loop-thread fast path for the FENCED refusal in StageIngestRun;
  /// the durable truth lives in the shard LOCK files.
  std::atomic<bool> writes_fenced_{false};
  /// Role for error messages ("follower" vs "fenced"); flips on Promote.
  std::atomic<bool> role_follower_{false};
  std::mutex promote_mu_;  // serializes Promote() calls

  std::mutex scheduler_mu_;
  std::condition_variable scheduler_cv_;
  bool scheduler_stop_ = false;  // guarded by scheduler_mu_
  std::thread checkpoint_thread_;

  std::mutex throttle_mu_;
  std::condition_variable throttle_cv_;
  bool throttle_stop_ = false;  // guarded by throttle_mu_
  std::thread throttle_thread_;

  bool stopped_ = false;  // Stop() ran to completion (main thread only)
};

}  // namespace dd

#endif  // DDSKETCH_SERVER_SERVER_H_
