// sketchd's serving core: a TCP daemon in front of a ShardedDurableStore.
//
// Threading model (documented in docs/ARCHITECTURE.md, "Sharding &
// background checkpointing"):
//
//   accept thread ──▶ one thread per connection ──▶ request handlers
//                                   │ INGEST / MERGE (routed by series hash)
//                                   ▼
//              per-shard staging queues (shard.queue_mu)
//                   │                         │
//          committer thread 0   ...   committer thread N-1
//                   │  append batch → 1 fsync → merge (shard.store_mu)
//                   ▼                         ▼
//              shard-0 store     ...     shard-(N-1) store
//                   ▲                         ▲
//                   └──── checkpoint scheduler thread ────┘
//                        (snapshot + WAL reset per shard, under that
//                         shard's store_mu only)
//
// Group commit, now parallel across shards: INGEST/MERGE requests are
// validated on their connection thread, routed by the stable series
// hash, and staged on the owning shard's queue; each shard's committer
// drains up to `commit_batch` staged records per commit — N acknowledged
// ingests for one fsync, with up to `shards` fsyncs in flight at once.
// A connection thread is unblocked — and its client sees OK — only after
// every shard batch containing one of its records is durable.
//
// The checkpoint scheduler (optional, off by default) checkpoints a
// shard when its WAL grows past `checkpoint_wal_bytes` or has carried
// records for longer than `checkpoint_interval_ms`. A checkpoint holds
// only that shard's store_mu, so ingest on every other shard proceeds
// concurrently; the client-driven CHECKPOINT op remains supported and
// now means "checkpoint all shards".
//
// QUERY / CHECKPOINT / STATS run on the connection thread. QUERY locks
// only the owning shard's store_mu (a series lives on exactly one
// shard, so the owner's merge-on-read answer is the whole answer);
// CHECKPOINT and STATS walk the shards one store_mu at a time, in shard
// order.

#ifndef DDSKETCH_SERVER_SERVER_H_
#define DDSKETCH_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "server/protocol.h"
#include "timeseries/sharded_store.h"
#include "util/status.h"

namespace dd {

struct SketchServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  DurableSketchStoreOptions durable;
  /// Shard count for the data directory: 0 auto-detects (manifest count,
  /// legacy/fresh directories open single-shard); an explicit count must
  /// match the directory (see timeseries/sharded_store.h).
  size_t shards = 0;
  /// Max staged records drained into one group commit (one fsync),
  /// per shard.
  size_t commit_batch = 64;
  /// Extra microseconds a shard committer waits for a partial batch to
  /// fill. 0 = commit whatever queued while the previous commit ran.
  int64_t commit_interval_us = 0;
  /// Background checkpoint: snapshot + reset a shard's WAL once it
  /// exceeds this many bytes. 0 disables the size trigger.
  uint64_t checkpoint_wal_bytes = 0;
  /// Background checkpoint: snapshot + reset a shard's WAL once it has
  /// held records this long. 0 disables the interval trigger. (sketchd
  /// exposes this as --checkpoint-interval-s; milliseconds here keep the
  /// scheduler unit-testable.)
  int64_t checkpoint_interval_ms = 0;
};

/// The daemon: owns the sharded durable store, the listening socket, and
/// all serving threads. Construct via Start(), tear down via Stop()
/// (also run by the destructor). Stop() closes the store so the data
/// directory can be reopened immediately afterwards.
class SketchServer {
 public:
  /// Opens (or recovers) `data_dir`, binds the listening socket, and
  /// launches the accept thread, one committer per shard, and (when a
  /// checkpoint trigger is configured) the checkpoint scheduler.
  static Result<std::unique_ptr<SketchServer>> Start(
      const std::string& data_dir, const SketchServerOptions& options);

  SketchServer(const SketchServer&) = delete;
  SketchServer& operator=(const SketchServer&) = delete;
  ~SketchServer();

  /// Stops accepting, wakes every connection, commits all staged
  /// records, joins all threads, and closes the store. Idempotent.
  void Stop();

  /// The bound port (useful with options.port = 0).
  uint16_t port() const noexcept { return port_; }

  size_t num_shards() const noexcept { return shards_.size(); }

  /// Group commits executed since Start, totaled across shards (each is
  /// exactly one WAL fsync).
  uint64_t batch_commits() const noexcept;

  /// Checkpoints the scheduler has run since Start, totaled across
  /// shards (client CHECKPOINTs are not counted).
  uint64_t background_checkpoints() const noexcept;

 private:
  struct RunWaiter;

  /// One staged INGEST/MERGE waiting for a shard committer. Lives on the
  /// connection thread's stack; the shard queue holds pointers.
  struct PendingIngest {
    WalRecord record;
    Status result;
    uint64_t wal_offset = 0;
    bool done = false;
    RunWaiter* waiter = nullptr;  // signals the owning connection thread
  };

  /// Completion rendezvous for one pipelined run: entries of the run may
  /// be spread over several shard queues, so the connection thread waits
  /// on a single counter that every committer decrements.
  struct RunWaiter {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
  };

  /// Everything one shard's committer and scheduler state needs. The
  /// shard's DurableSketchStore itself lives in store_ (same index).
  struct Shard {
    std::mutex store_mu;  // serializes every access to this shard's store

    std::mutex queue_mu;
    std::condition_variable queue_cv;  // wakes this shard's committer
    std::deque<PendingIngest*> queue;
    bool stopping = false;        // guarded by queue_mu
    uint64_t batch_commits = 0;   // guarded by queue_mu
    /// Sticky first commit error (guarded by queue_mu). After a batch
    /// commit fails this shard's durability substrate is suspect — and
    /// if the WAL repair failed its log is torn, where further appends
    /// would be silently dropped by recovery — so this shard's ingest
    /// path fail-stops: every later INGEST/MERGE routed here is refused
    /// with this status. Other shards, queries, STATS, and CHECKPOINT
    /// keep working.
    Status commit_error;

    std::thread committer;

    /// Scheduler bookkeeping (guarded by store_mu, like the store).
    std::chrono::steady_clock::time_point checkpoint_deadline_base;
    /// After a failed background checkpoint the scheduler skips this
    /// shard until here — a snapshot write is expensive, so a
    /// persistently failing one must not be retried every poll.
    std::chrono::steady_clock::time_point checkpoint_backoff_until{};
    uint64_t background_checkpoints = 0;
  };

  SketchServer(SketchServerOptions options, ShardedDurableStore store);

  void AcceptLoop(int listen_fd);
  void ServeConnection(int fd);
  /// Handles QUERY / CHECKPOINT / STATS on the connection thread.
  Response HandleNonIngest(const Request& request);
  /// Validates + stages a pipelined run of INGEST/MERGE requests across
  /// the owning shards' queues, waits for durability, and writes one
  /// response per request in order. Returns false when the connection
  /// should close.
  bool HandleIngestRun(class FramedConn* conn,
                       const std::vector<Request>& run);
  void CommitLoop(size_t shard_index);
  /// Drains up to commit_batch pending entries from shard `k`, commits
  /// them with one fsync, and wakes their connection threads. Called
  /// with the shard's queue_mu held; returns with it held.
  void CommitOneBatch(size_t shard_index, std::unique_lock<std::mutex>* lk);
  /// The background checkpoint scheduler: polls every shard's WAL size
  /// and age against the configured triggers.
  void CheckpointLoop();
  /// True when either background-checkpoint trigger is configured.
  bool SchedulerEnabled() const noexcept {
    return options_.checkpoint_wal_bytes > 0 ||
           options_.checkpoint_interval_ms > 0;
  }

  SketchServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::optional<ShardedDurableStore> store_;
  /// One entry per store shard; unique_ptr for address stability (the
  /// committer threads hold pointers into it).
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex scheduler_mu_;
  std::condition_variable scheduler_cv_;
  bool scheduler_stop_ = false;  // guarded by scheduler_mu_
  std::thread checkpoint_thread_;

  std::mutex conns_mu_;
  std::unordered_set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  /// Set before Stop's shutdown sweep of conn_fds_: a connection that
  /// the accept loop registers after the sweep would otherwise miss its
  /// shutdown(2) wake-up and block in recv forever.
  std::atomic<bool> draining_{false};

  std::thread accept_thread_;
  bool stopped_ = false;  // Stop() ran to completion (main thread only)
};

}  // namespace dd

#endif  // DDSKETCH_SERVER_SERVER_H_
