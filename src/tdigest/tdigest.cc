#include "tdigest/tdigest.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/varint.h"

namespace dd {
namespace {

constexpr double kTwoPi = 6.283185307179586;

}  // namespace

TDigest::TDigest(double compression)
    : compression_(compression),
      buffer_capacity_(static_cast<size_t>(
          std::max(64.0, 5.0 * compression))) {}

Result<TDigest> TDigest::Create(double compression) {
  if (!(compression >= 10.0) || !(compression <= 10000.0)) {
    return Status::InvalidArgument(
        "compression must be in [10, 10000], got " +
        std::to_string(compression));
  }
  return TDigest(compression);
}

double TDigest::ScaleK(double q) const noexcept {
  return compression_ / kTwoPi * std::asin(2.0 * q - 1.0);
}

void TDigest::Add(double value) noexcept {
  if (!std::isfinite(value)) {
    ++rejected_count_;
    return;
  }
  buffer_.push_back(value);
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (buffer_.size() >= buffer_capacity_) Flush();
}

void TDigest::Add(double value, uint64_t count) noexcept {
  if (count == 0) return;
  if (!std::isfinite(value)) {
    rejected_count_ += count;
    return;
  }
  if (count <= 8) {
    for (uint64_t i = 0; i < count; ++i) Add(value);
    return;
  }
  // Heavy weights go straight to a compaction as a single centroid.
  Flush();
  count_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  Compress({{value, count}});
}

void TDigest::Flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<Centroid> incoming;
  incoming.reserve(buffer_.size());
  for (double v : buffer_) {
    if (!incoming.empty() && incoming.back().mean == v) {
      ++incoming.back().weight;
    } else {
      incoming.push_back({v, 1});
    }
  }
  buffer_.clear();
  Compress(std::move(incoming));
}

void TDigest::Compress(std::vector<Centroid>&& incoming) const {
  // Merge-sort the sorted centroid list with the sorted incoming batch.
  std::vector<Centroid> merged;
  merged.reserve(centroids_.size() + incoming.size());
  std::merge(centroids_.begin(), centroids_.end(), incoming.begin(),
             incoming.end(), std::back_inserter(merged),
             [](const Centroid& a, const Centroid& b) {
               return a.mean < b.mean;
             });
  if (merged.empty()) {
    centroids_.clear();
    return;
  }
  double total = 0;
  for (const Centroid& c : merged) total += static_cast<double>(c.weight);

  // Single fuse pass under the k1 budget: neighbours combine while the
  // resulting cluster spans less than one k-unit.
  std::vector<Centroid> out;
  out.reserve(merged.size());
  double emitted = 0;  // weight already emitted
  Centroid current = merged.front();
  for (size_t i = 1; i < merged.size(); ++i) {
    const Centroid& next = merged[i];
    const double q_left = emitted / total;
    const double q_right =
        (emitted + static_cast<double>(current.weight) +
         static_cast<double>(next.weight)) /
        total;
    if (ScaleK(q_right) - ScaleK(q_left) <= 1.0) {
      // Weighted-mean fuse.
      const double w = static_cast<double>(current.weight) +
                       static_cast<double>(next.weight);
      current.mean = (current.mean * static_cast<double>(current.weight) +
                      next.mean * static_cast<double>(next.weight)) /
                     w;
      current.weight += next.weight;
    } else {
      emitted += static_cast<double>(current.weight);
      out.push_back(current);
      current = next;
    }
  }
  out.push_back(current);
  centroids_ = std::move(out);
}

double TDigest::QuantileOrNaN(double q) const noexcept {
  if (empty() || !(q >= 0.0 && q <= 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  Flush();
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const double total = static_cast<double>(count_);
  const double target = q * total;  // target weight position

  // Each centroid i sits at weight position cum_before + w_i / 2.
  double cum = 0;
  double prev_pos = 0;
  double prev_mean = min_;
  for (size_t i = 0; i < centroids_.size(); ++i) {
    const double w = static_cast<double>(centroids_[i].weight);
    const double pos = cum + w / 2.0;
    if (target <= pos) {
      const double span = pos - prev_pos;
      const double frac = span > 0 ? (target - prev_pos) / span : 0.0;
      return std::clamp(prev_mean + frac * (centroids_[i].mean - prev_mean),
                        min_, max_);
    }
    prev_pos = pos;
    prev_mean = centroids_[i].mean;
    cum += w;
  }
  // Beyond the last centroid's midpoint: interpolate towards the maximum.
  const double span = total - prev_pos;
  const double frac = span > 0 ? (target - prev_pos) / span : 1.0;
  return std::clamp(prev_mean + frac * (max_ - prev_mean), min_, max_);
}

Result<double> TDigest::Quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile must be in [0, 1], got " +
                                   std::to_string(q));
  }
  if (empty()) {
    return Status::InvalidArgument("quantile of an empty digest");
  }
  return QuantileOrNaN(q);
}

void TDigest::MergeFrom(const TDigest& other) {
  if (other.empty()) return;
  other.Flush();
  Flush();
  count_ += other.count_;
  rejected_count_ += other.rejected_count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  std::vector<Centroid> incoming = other.centroids_;  // already sorted
  Compress(std::move(incoming));
}

size_t TDigest::num_centroids() const {
  Flush();
  return centroids_.size();
}

size_t TDigest::size_in_bytes() const noexcept {
  return sizeof(*this) + centroids_.capacity() * sizeof(Centroid) +
         buffer_.capacity() * sizeof(double);
}

// Wire format: "TDIG" magic, version byte, compression (double),
// count/rejected (varints), min/max (doubles), centroid count (varint),
// then per centroid: mean (double), weight (varint).
std::string TDigest::Serialize() const {
  Flush();
  std::string out;
  out.reserve(32 + centroids_.size() * 10);
  out.append("TDIG", 4);
  out.push_back(1);
  PutFixedDouble(&out, compression_);
  PutVarint64(&out, count_);
  PutVarint64(&out, rejected_count_);
  PutFixedDouble(&out, min_);
  PutFixedDouble(&out, max_);
  PutVarint64(&out, centroids_.size());
  for (const Centroid& c : centroids_) {
    PutFixedDouble(&out, c.mean);
    PutVarint64(&out, c.weight);
  }
  return out;
}

Result<TDigest> TDigest::Deserialize(std::string_view payload) {
  Slice in(payload);
  std::string_view header;
  DD_RETURN_IF_ERROR(in.GetBytes(5, &header));
  if (header.substr(0, 4) != "TDIG" || header[4] != 1) {
    return Status::Corruption("not a TDigest v1 payload");
  }
  double compression = 0;
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&compression));
  auto result = Create(compression);
  if (!result.ok()) {
    return Status::Corruption("invalid compression in payload");
  }
  TDigest digest = std::move(result).value();
  DD_RETURN_IF_ERROR(in.GetVarint64(&digest.count_));
  DD_RETURN_IF_ERROR(in.GetVarint64(&digest.rejected_count_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&digest.min_));
  DD_RETURN_IF_ERROR(in.GetFixedDouble(&digest.max_));
  uint64_t n_centroids = 0;
  DD_RETURN_IF_ERROR(in.GetVarint64(&n_centroids));
  if (n_centroids > payload.size()) {
    return Status::Corruption("centroid count exceeds payload");
  }
  uint64_t total_weight = 0;
  double prev_mean = -std::numeric_limits<double>::infinity();
  digest.centroids_.reserve(n_centroids);
  for (uint64_t i = 0; i < n_centroids; ++i) {
    Centroid c{};
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&c.mean));
    DD_RETURN_IF_ERROR(in.GetVarint64(&c.weight));
    if (!(c.mean >= prev_mean) || c.weight == 0) {
      return Status::Corruption("invalid centroid");
    }
    prev_mean = c.mean;
    total_weight += c.weight;
    digest.centroids_.push_back(c);
  }
  if (!in.empty()) return Status::Corruption("trailing bytes");
  if (total_weight != digest.count_) {
    return Status::Corruption("centroid weights do not sum to count");
  }
  return digest;
}

}  // namespace dd
