// t-digest: the biased-rank-error quantile sketch of Dunning & Ertl
// ("Computing extremely accurate quantiles using t-digests", 2019) — one of
// the two sketches Elasticsearch uses and part of the related work the
// paper positions against (§1.2: better rank error near the tails than
// uniform-rank sketches, but "still high relative error on heavy-tailed
// data sets", and only one-way mergeable).
//
// This is the *merging* t-digest variant: incoming values buffer, and a
// compaction pass merge-sorts buffer + centroids, fusing neighbours while
// the scale-function budget k(q_right) - k(q_left) <= 1 allows. The scale
// function k1(q) = (delta / 2 pi) asin(2q - 1) concentrates centroid
// resolution at both tails.
//
// Provided as an extension baseline beyond the paper's evaluated set; the
// appendix bench (bench_appendix_tdigest) contrasts its rank-vs-relative
// error trade-off with DDSketch on the paper's data sets.

#ifndef DDSKETCH_TDIGEST_TDIGEST_H_
#define DDSKETCH_TDIGEST_TDIGEST_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dd {

/// Merging t-digest with the k1 (arcsine) scale function.
class TDigest {
 public:
  /// One weighted cluster of nearby values.
  struct Centroid {
    double mean;
    uint64_t weight;
  };

  /// `compression` (delta) bounds the centroid count to ~2*delta; 100 is
  /// the conventional default.
  static Result<TDigest> Create(double compression = 100.0);

  /// Adds one value (NaN/inf ignored, counted in rejected_count()).
  void Add(double value) noexcept;
  /// Adds a value with integer weight.
  void Add(double value, uint64_t count) noexcept;

  /// The q-quantile estimate via linear interpolation between centroid
  /// means. Fails if q is outside [0,1] or the digest is empty.
  Result<double> Quantile(double q) const;
  /// NaN-returning form.
  double QuantileOrNaN(double q) const noexcept;

  /// One-way merge: folds `other`'s centroids into this digest. Like GK,
  /// repeated merging degrades accuracy (each generation re-clusters).
  void MergeFrom(const TDigest& other);

  uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double compression() const noexcept { return compression_; }
  uint64_t rejected_count() const noexcept { return rejected_count_; }

  /// Centroids currently held (flushes the buffer first).
  size_t num_centroids() const;
  /// Live memory footprint.
  size_t size_in_bytes() const noexcept;

  /// Folds buffered values into the centroid list. Called automatically by
  /// queries and merges.
  void Flush() const;

  /// Serializes the centroid list (buffer flushed first).
  std::string Serialize() const;
  static Result<TDigest> Deserialize(std::string_view payload);

 private:
  explicit TDigest(double compression);

  /// The k1 scale function (normalized to [0, 1] in q).
  double ScaleK(double q) const noexcept;

  /// Merge-sort buffer + centroids, fusing while the k-budget allows.
  void Compress(std::vector<Centroid>&& incoming) const;

  double compression_;
  size_t buffer_capacity_;
  mutable std::vector<Centroid> centroids_;  // sorted by mean
  mutable std::vector<double> buffer_;
  uint64_t count_ = 0;
  uint64_t rejected_count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dd

#endif  // DDSKETCH_TDIGEST_TDIGEST_H_
