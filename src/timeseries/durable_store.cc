#include "timeseries/durable_store.h"

#include <cmath>
#include <utility>

#include "core/ddsketch.h"
#include "timeseries/snapshot.h"
#include "util/file_io.h"

namespace dd {
namespace {

/// The options under which a directory was written must match the options
/// it is reopened with: silently adopting either side would change query
/// semantics (time geometry) or break merges (sketch parameters).
Status CheckOptionsMatch(const SketchStoreOptions& snapshot,
                         const SketchStoreOptions& requested) {
  if (snapshot.base_interval_seconds != requested.base_interval_seconds ||
      snapshot.raw_retention_seconds != requested.raw_retention_seconds ||
      snapshot.rollup_factor != requested.rollup_factor ||
      snapshot.sketch.relative_accuracy != requested.sketch.relative_accuracy ||
      snapshot.sketch.mapping != requested.sketch.mapping ||
      snapshot.sketch.store != requested.sketch.store ||
      snapshot.sketch.max_num_buckets != requested.sketch.max_num_buckets) {
    return Status::Incompatible(
        "data directory was written with different store options");
  }
  return Status::OK();
}

Status Apply(SketchStore* store, const WalRecord& record) {
  switch (record.type) {
    case WalRecord::Type::kIngestSketch: {
      auto decoded = DDSketch::Deserialize(record.payload);
      if (!decoded.ok()) return decoded.status();
      return store->IngestSketch(record.series, record.timestamp,
                                 decoded.value());
    }
    case WalRecord::Type::kIngestValue:
      return store->IngestValue(record.series, record.timestamp, record.value);
  }
  return Status::Corruption("unknown WAL record type");
}

}  // namespace

Result<DurableSketchStore> DurableSketchStore::Open(
    const std::string& data_dir, const DurableSketchStoreOptions& options) {
  DD_RETURN_IF_ERROR(CreateDirIfMissing(data_dir));
  auto lock = FileLock::Acquire(LockPath(data_dir));
  if (!lock.ok()) return lock.status();
  const std::string wal_path = WalPath(data_dir);
  const std::string snapshot_path = SnapshotPath(data_dir);

  // Base state. A fresh directory gets an empty epoch-0 snapshot first,
  // pinning the store options on disk so every later Open — including
  // one that finds only a WAL — can verify them instead of silently
  // adopting whatever it was called with.
  uint64_t snapshot_epoch = 0;
  auto base = [&]() -> Result<SketchStore> {
    if (!FileExists(snapshot_path)) {
      auto fresh = SketchStore::Create(options.store);
      if (!fresh.ok()) return fresh.status();
      DD_RETURN_IF_ERROR(
          WriteSnapshotFile(fresh.value(), /*epoch=*/0, snapshot_path));
      return fresh;
    }
    auto snapshot = ReadSnapshotFile(snapshot_path);
    if (!snapshot.ok()) return snapshot.status();
    DD_RETURN_IF_ERROR(
        CheckOptionsMatch(snapshot.value().store.options(), options.store));
    snapshot_epoch = snapshot.value().epoch;
    return std::move(snapshot).value().store;
  }();
  if (!base.ok()) return base.status();
  SketchStore store = std::move(base).value();

  // Incremental state: replay the WAL onto the base.
  if (FileExists(wal_path)) {
    auto scanned = ReadWalFile(wal_path, WalRead::kTolerateTornTail);
    if (!scanned.ok()) return scanned.status();
    const WalContents& wal = scanned.value();
    if (!wal.header_valid || wal.epoch == snapshot_epoch) {
      // Either a crash during log creation (nothing was ever
      // acknowledged) or one between snapshot rename and WAL reset (the
      // log's records are already folded into the snapshot). Both
      // finish the same way: a fresh log on the next epoch.
      auto writer = WalWriter::Create(wal_path, snapshot_epoch + 1);
      if (!writer.ok()) return writer.status();
      return DurableSketchStore(options, data_dir, std::move(lock).value(),
                                std::move(store), std::move(writer).value());
    }
    if (wal.epoch != snapshot_epoch + 1) {
      return Status::Corruption(
          "WAL epoch does not match the snapshot (mixed data directories?)");
    }
    for (const WalRecord& record : wal.records) {
      DD_RETURN_IF_ERROR(Apply(&store, record));
    }
    auto writer = WalWriter::OpenExisting(wal_path, wal.epoch, wal.valid_size);
    if (!writer.ok()) return writer.status();
    return DurableSketchStore(options, data_dir, std::move(lock).value(),
                              std::move(store), std::move(writer).value());
  }

  auto writer = WalWriter::Create(wal_path, snapshot_epoch + 1);
  if (!writer.ok()) return writer.status();
  return DurableSketchStore(options, data_dir, std::move(lock).value(),
                            std::move(store), std::move(writer).value());
}

Status DurableSketchStore::Append(const WalRecord& record) {
  DD_RETURN_IF_ERROR(wal_.Append(record));
  if (options_.sync_every_ingest) {
    DD_RETURN_IF_ERROR(wal_.Sync());
  }
  return Status::OK();
}

Status DurableSketchStore::Ingest(const std::string& series, int64_t timestamp,
                                  std::string_view payload) {
  // Validate fully before logging: the WAL must only ever contain records
  // that replay cleanly.
  auto decoded = DDSketch::Deserialize(payload);
  if (!decoded.ok()) return decoded.status();
  DD_RETURN_IF_ERROR(store_.CheckCompatible(decoded.value()));
  WalRecord record;
  record.type = WalRecord::Type::kIngestSketch;
  record.series = series;
  record.timestamp = timestamp;
  record.payload.assign(payload);
  DD_RETURN_IF_ERROR(Append(record));
  return store_.IngestSketch(series, timestamp, decoded.value());
}

Status DurableSketchStore::IngestValue(const std::string& series,
                                       int64_t timestamp, double value) {
  WalRecord record;
  record.type = WalRecord::Type::kIngestValue;
  record.series = series;
  record.timestamp = timestamp;
  record.value = value;
  DD_RETURN_IF_ERROR(Append(record));
  return store_.IngestValue(series, timestamp, value);
}

Status DurableSketchStore::ValidateRecord(const WalRecord& record) const {
  switch (record.type) {
    case WalRecord::Type::kIngestSketch: {
      auto decoded = DDSketch::Deserialize(record.payload);
      if (!decoded.ok()) return decoded.status();
      return store_.CheckCompatible(decoded.value());
    }
    case WalRecord::Type::kIngestValue:
      return Status::OK();
  }
  return Status::Corruption("unknown WAL record type");
}

Status DurableSketchStore::IngestBatch(const std::vector<WalRecord>& records) {
  // Validate everything before logging anything: the WAL must only ever
  // contain records that replay cleanly, and a half-appended batch would
  // ack nothing while still replaying its durable prefix. Sketch
  // payloads are decoded once here and the decoded sketches reused for
  // the merge below — deserialization is the expensive part of a merge
  // record, and this path is the committer's (single-writer) hot loop.
  std::vector<DDSketch> decoded;
  decoded.reserve(records.size());
  for (const WalRecord& record : records) {
    switch (record.type) {
      case WalRecord::Type::kIngestSketch: {
        auto sketch = DDSketch::Deserialize(record.payload);
        if (!sketch.ok()) return sketch.status();
        DD_RETURN_IF_ERROR(store_.CheckCompatible(sketch.value()));
        decoded.push_back(std::move(sketch).value());
        break;
      }
      case WalRecord::Type::kIngestValue:
        break;
      default:
        return Status::Corruption("unknown WAL record type");
    }
  }
  const uint64_t batch_start = wal_.offset();
  Status status;
  for (const WalRecord& record : records) {
    status = wal_.Append(record);
    if (!status.ok()) break;
  }
  if (status.ok()) {
    status = wal_.Sync();  // the one flush the batch shares
  }
  if (!status.ok()) {
    // A partial append (e.g. ENOSPC mid-record) leaves a torn frame in
    // the middle of the log; anything appended after it would be
    // silently dropped by recovery's torn-tail scan. Truncate back to
    // the batch start so the log stays clean for future commits; if
    // even that fails, escalate — the log must not be appended to
    // again (SketchServer fail-stops its ingest path on any error).
    if (Status repair = wal_.TruncateTo(batch_start); !repair.ok()) {
      return Status::Internal(
          "WAL left torn after failed batch commit (" + status.ToString() +
          "); truncate failed: " + repair.message());
    }
    return status;
  }
  // Merge phase. Value records are the committer's common case and a
  // batch is typically one client's burst into one series, so runs of
  // consecutive kIngestValue records sharing a series and raw interval
  // collapse into a single IngestValues call — one interval lookup and
  // one DDSketch::AddBatch pass instead of a lookup + virtual add per
  // record. Record order within the batch is preserved (sketch merges
  // are order-independent anyway, but the WAL replay path applies the
  // same sequence).
  std::vector<double> run_values;
  size_t next_decoded = 0;
  for (size_t i = 0; i < records.size();) {
    const WalRecord& record = records[i];
    if (record.type == WalRecord::Type::kIngestSketch) {
      DD_RETURN_IF_ERROR(store_.IngestSketch(record.series, record.timestamp,
                                             decoded[next_decoded++]));
      ++i;
      continue;
    }
    const int64_t interval = store_.RawStart(record.timestamp);
    run_values.clear();
    size_t j = i;
    for (; j < records.size(); ++j) {
      const WalRecord& next = records[j];
      if (next.type != WalRecord::Type::kIngestValue ||
          next.series != record.series ||
          store_.RawStart(next.timestamp) != interval) {
        break;
      }
      run_values.push_back(next.value);
    }
    DD_RETURN_IF_ERROR(
        store_.IngestValues(record.series, record.timestamp, run_values));
    i = j;
  }
  return Status::OK();
}

Status DurableSketchStore::Checkpoint() {
  const uint64_t epoch = wal_.epoch();
  DD_RETURN_IF_ERROR(
      WriteSnapshotFile(store_, epoch, SnapshotPath(data_dir_)));
  return wal_.Reset(epoch + 1);
}

Result<size_t> DurableSketchStore::Compact(int64_t now) {
  const size_t compacted = store_.Compact(now);
  DD_RETURN_IF_ERROR(Checkpoint());
  return compacted;
}

Status DurableSketchStore::Sync() { return wal_.Sync(); }

}  // namespace dd
