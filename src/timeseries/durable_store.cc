#include "timeseries/durable_store.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "core/ddsketch.h"
#include "timeseries/snapshot.h"
#include "util/file_io.h"

namespace dd {
namespace {

/// The options under which a directory was written must match the options
/// it is reopened with: silently adopting either side would change query
/// semantics (time geometry) or break merges (sketch parameters). The
/// one sanctioned exception: an empty requested ladder means "adopt the
/// directory's ladder" (mirroring shards = 0 auto-detection), so v1
/// directories — whose geometry maps onto a two-level ladder — and
/// default-flag restarts open in place.
Status CheckOptionsMatch(const SketchStoreOptions& snapshot,
                         const SketchStoreOptions& requested) {
  if (!requested.levels.empty() && snapshot.levels != requested.levels) {
    return Status::Incompatible(
        "data directory was written with a different rollup ladder");
  }
  if (snapshot.sketch.relative_accuracy != requested.sketch.relative_accuracy ||
      snapshot.sketch.mapping != requested.sketch.mapping ||
      snapshot.sketch.store != requested.sketch.store ||
      snapshot.sketch.max_num_buckets != requested.sketch.max_num_buckets) {
    return Status::Incompatible(
        "data directory was written with different store options");
  }
  return Status::OK();
}

Status Apply(SketchStore* store, const WalRecord& record) {
  switch (record.type) {
    case WalRecord::Type::kIngestSketch: {
      auto decoded = DDSketch::Deserialize(record.payload);
      if (!decoded.ok()) return decoded.status();
      return store->IngestSketch(record.series, record.timestamp,
                                 decoded.value());
    }
    case WalRecord::Type::kIngestValue:
      return store->IngestValue(record.series, record.timestamp, record.value);
  }
  return Status::Corruption("unknown WAL record type");
}

/// The token every directory starts at; the first promotion moves to 2.
constexpr uint64_t kInitialFenceToken = 1;

std::string EncodeFenceState(uint64_t token, bool fenced) {
  return "fence=" + std::to_string(token) + "\nfenced=" +
         (fenced ? "1" : "0") + "\n";
}

/// An empty lock file (pre-replication directories) parses as the
/// defaults; anything else must be the exact EncodeFenceState layout.
Status ParseFenceState(const std::string& contents, uint64_t* token,
                       bool* fenced) {
  *token = kInitialFenceToken;
  *fenced = false;
  if (contents.empty()) return Status::OK();
  uint64_t t = 0;
  int f = -1;
  if (std::sscanf(contents.c_str(), "fence=%" SCNu64 "\nfenced=%d", &t, &f) !=
          2 ||
      t == 0 || (f != 0 && f != 1)) {
    return Status::Corruption("unparseable fencing state in LOCK file");
  }
  *token = t;
  *fenced = f == 1;
  return Status::OK();
}

/// pread a byte range of `path`; short only at EOF.
Result<std::string> PreadRange(const std::string& path, uint64_t offset,
                               uint64_t len) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  std::string out;
  out.resize(len);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::pread(fd, &out[got], len - got,
                              static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::Internal("pread " + path + ": " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  out.resize(got);
  return out;
}

}  // namespace

Result<DurableSketchStore> DurableSketchStore::Open(
    const std::string& data_dir, const DurableSketchStoreOptions& options) {
  DD_RETURN_IF_ERROR(CreateDirIfMissing(data_dir));
  auto lock = FileLock::Acquire(LockPath(data_dir));
  if (!lock.ok()) return lock.status();
  const std::string wal_path = WalPath(data_dir);
  const std::string snapshot_path = SnapshotPath(data_dir);

  // Fencing state rides in the lock file; a pre-replication (empty) lock
  // file is stamped with the defaults so the token is always durable.
  uint64_t fence_token = kInitialFenceToken;
  bool fenced = false;
  {
    auto contents = lock.value().Read();
    if (!contents.ok()) return contents.status();
    DD_RETURN_IF_ERROR(ParseFenceState(contents.value(), &fence_token,
                                       &fenced));
    if (contents.value().empty()) {
      DD_RETURN_IF_ERROR(
          lock.value().Write(EncodeFenceState(fence_token, fenced)));
    }
  }
  const auto finish = [&](SketchStore store,
                          WalWriter writer) -> DurableSketchStore {
    DurableSketchStore opened(options, data_dir, std::move(lock).value(),
                              std::move(store), std::move(writer));
    opened.role_ = options.role;
    opened.fence_token_ = fence_token;
    opened.fenced_ = fenced;
    return opened;
  };

  // Base state. A fresh directory gets an empty epoch-0 snapshot first,
  // pinning the store options on disk so every later Open — including
  // one that finds only a WAL — can verify them instead of silently
  // adopting whatever it was called with.
  uint64_t snapshot_epoch = 0;
  auto base = [&]() -> Result<SketchStore> {
    if (!FileExists(snapshot_path)) {
      auto fresh = SketchStore::Create(options.store);
      if (!fresh.ok()) return fresh.status();
      DD_RETURN_IF_ERROR(
          WriteSnapshotFile(fresh.value(), /*epoch=*/0, snapshot_path));
      return fresh;
    }
    auto snapshot = ReadSnapshotFile(snapshot_path);
    if (!snapshot.ok()) return snapshot.status();
    DD_RETURN_IF_ERROR(
        CheckOptionsMatch(snapshot.value().store.options(), options.store));
    snapshot_epoch = snapshot.value().epoch;
    return std::move(snapshot).value().store;
  }();
  if (!base.ok()) return base.status();
  SketchStore store = std::move(base).value();

  // Incremental state: replay the WAL onto the base.
  if (FileExists(wal_path)) {
    auto scanned = ReadWalFile(wal_path, WalRead::kTolerateTornTail);
    if (!scanned.ok()) return scanned.status();
    const WalContents& wal = scanned.value();
    if (!wal.header_valid || wal.epoch == snapshot_epoch) {
      // Either a crash during log creation (nothing was ever
      // acknowledged) or one between snapshot rename and WAL reset (the
      // log's records are already folded into the snapshot). Both
      // finish the same way: a fresh log on the next epoch.
      auto writer = WalWriter::Create(wal_path, snapshot_epoch + 1);
      if (!writer.ok()) return writer.status();
      return finish(std::move(store), std::move(writer).value());
    }
    if (wal.epoch != snapshot_epoch + 1) {
      return Status::Corruption(
          "WAL epoch does not match the snapshot (mixed data directories?)");
    }
    for (const WalRecord& record : wal.records) {
      DD_RETURN_IF_ERROR(Apply(&store, record));
    }
    auto writer = WalWriter::OpenExisting(wal_path, wal.epoch, wal.valid_size);
    if (!writer.ok()) return writer.status();
    return finish(std::move(store), std::move(writer).value());
  }

  auto writer = WalWriter::Create(wal_path, snapshot_epoch + 1);
  if (!writer.ok()) return writer.status();
  return finish(std::move(store), std::move(writer).value());
}

Status DurableSketchStore::Append(const WalRecord& record) {
  DD_RETURN_IF_ERROR(wal_.Append(record));
  if (options_.sync_every_ingest) {
    DD_RETURN_IF_ERROR(wal_.Sync());
  }
  return Status::OK();
}

Status DurableSketchStore::Ingest(const std::string& series, int64_t timestamp,
                                  std::string_view payload) {
  DD_RETURN_IF_ERROR(CheckWritable());
  // Validate fully before logging: the WAL must only ever contain records
  // that replay cleanly.
  auto decoded = DDSketch::Deserialize(payload);
  if (!decoded.ok()) return decoded.status();
  DD_RETURN_IF_ERROR(store_.CheckCompatible(decoded.value()));
  WalRecord record;
  record.type = WalRecord::Type::kIngestSketch;
  record.series = series;
  record.timestamp = timestamp;
  record.payload.assign(payload);
  DD_RETURN_IF_ERROR(Append(record));
  return store_.IngestSketch(series, timestamp, decoded.value());
}

Status DurableSketchStore::IngestValue(const std::string& series,
                                       int64_t timestamp, double value) {
  DD_RETURN_IF_ERROR(CheckWritable());
  WalRecord record;
  record.type = WalRecord::Type::kIngestValue;
  record.series = series;
  record.timestamp = timestamp;
  record.value = value;
  DD_RETURN_IF_ERROR(Append(record));
  return store_.IngestValue(series, timestamp, value);
}

Status DurableSketchStore::ValidateRecord(const WalRecord& record) const {
  switch (record.type) {
    case WalRecord::Type::kIngestSketch: {
      auto decoded = DDSketch::Deserialize(record.payload);
      if (!decoded.ok()) return decoded.status();
      return store_.CheckCompatible(decoded.value());
    }
    case WalRecord::Type::kIngestValue:
      return Status::OK();
  }
  return Status::Corruption("unknown WAL record type");
}

Status DurableSketchStore::IngestBatch(const std::vector<WalRecord>& records) {
  DD_RETURN_IF_ERROR(CheckWritable());
  // Validate everything before logging anything: the WAL must only ever
  // contain records that replay cleanly, and a half-appended batch would
  // ack nothing while still replaying its durable prefix. Sketch
  // payloads are decoded once here and the decoded sketches reused for
  // the merge below — deserialization is the expensive part of a merge
  // record, and this path is the committer's (single-writer) hot loop.
  std::vector<DDSketch> decoded;
  decoded.reserve(records.size());
  for (const WalRecord& record : records) {
    switch (record.type) {
      case WalRecord::Type::kIngestSketch: {
        auto sketch = DDSketch::Deserialize(record.payload);
        if (!sketch.ok()) return sketch.status();
        DD_RETURN_IF_ERROR(store_.CheckCompatible(sketch.value()));
        decoded.push_back(std::move(sketch).value());
        break;
      }
      case WalRecord::Type::kIngestValue:
        break;
      default:
        return Status::Corruption("unknown WAL record type");
    }
  }
  const uint64_t batch_start = wal_.offset();
  Status status;
  for (const WalRecord& record : records) {
    status = wal_.Append(record);
    if (!status.ok()) break;
  }
  if (status.ok()) {
    status = wal_.Sync();  // the one flush the batch shares
  }
  if (!status.ok()) {
    // A partial append (e.g. ENOSPC mid-record) leaves a torn frame in
    // the middle of the log; anything appended after it would be
    // silently dropped by recovery's torn-tail scan. Truncate back to
    // the batch start so the log stays clean for future commits; if
    // even that fails, escalate — the log must not be appended to
    // again (SketchServer fail-stops its ingest path on any error).
    if (Status repair = wal_.TruncateTo(batch_start); !repair.ok()) {
      return Status::Internal(
          "WAL left torn after failed batch commit (" + status.ToString() +
          "); truncate failed: " + repair.message());
    }
    return status;
  }
  // Merge phase. Value records are the committer's common case and a
  // batch is typically one client's burst into one series, so runs of
  // consecutive kIngestValue records sharing a series and raw interval
  // collapse into a single IngestValues call — one interval lookup and
  // one DDSketch::AddBatch pass instead of a lookup + virtual add per
  // record. Record order within the batch is preserved (sketch merges
  // are order-independent anyway, but the WAL replay path applies the
  // same sequence).
  std::vector<double> run_values;
  size_t next_decoded = 0;
  for (size_t i = 0; i < records.size();) {
    const WalRecord& record = records[i];
    if (record.type == WalRecord::Type::kIngestSketch) {
      DD_RETURN_IF_ERROR(store_.IngestSketch(record.series, record.timestamp,
                                             decoded[next_decoded++]));
      ++i;
      continue;
    }
    const int64_t interval = store_.RawStart(record.timestamp);
    run_values.clear();
    size_t j = i;
    for (; j < records.size(); ++j) {
      const WalRecord& next = records[j];
      if (next.type != WalRecord::Type::kIngestValue ||
          next.series != record.series ||
          store_.RawStart(next.timestamp) != interval) {
        break;
      }
      run_values.push_back(next.value);
    }
    DD_RETURN_IF_ERROR(
        store_.IngestValues(record.series, record.timestamp, run_values));
    i = j;
  }
  return Status::OK();
}

Status DurableSketchStore::CheckpointUnguarded() {
  // Rollup happens here and ONLY here — at an epoch boundary, before
  // the state is snapshotted. Compact(INT64_MAX) saturates to the data
  // horizon, so the fold is a pure function of the stored multiset:
  //  * crash safety — the fold mutates memory only; until the snapshot
  //    rename lands, recovery is old snapshot + full raw WAL replay,
  //    and the next checkpoint re-folds to the identical state;
  //  * replication — a follower crossing this epoch boundary runs its
  //    own CheckpointUnguarded with bit-identical raw state (it has
  //    replayed the full epoch), so it folds to bit-identical levels.
  rollup_folded_ += store_.Compact(std::numeric_limits<int64_t>::max());
  const uint64_t epoch = wal_.epoch();
  const uint64_t end_offset = wal_.offset();
  DD_RETURN_IF_ERROR(
      WriteSnapshotFile(store_, epoch, SnapshotPath(data_dir_)));
  DD_RETURN_IF_ERROR(wal_.Reset(epoch + 1));
  prior_epoch_end_ = end_offset;
  return Status::OK();
}

Status DurableSketchStore::Checkpoint() {
  DD_RETURN_IF_ERROR(CheckWritable());
  return CheckpointUnguarded();
}

Result<size_t> DurableSketchStore::Compact(int64_t now) {
  DD_RETURN_IF_ERROR(CheckWritable());
  // The explicit fold honours the caller's clock (clamped to the data
  // horizon inside SketchStore::Compact); the checkpoint that persists
  // it then folds anything still eligible by data time.
  const size_t compacted = store_.Compact(now);
  rollup_folded_ += compacted;
  DD_RETURN_IF_ERROR(CheckpointUnguarded());
  return compacted;
}

Status DurableSketchStore::Sync() { return wal_.Sync(); }

Status DurableSketchStore::CheckWritable() const {
  if (role_ == StoreRole::kFollower) {
    return Status::Fenced(
        "store is a follower (applier mode); writes must go to the primary");
  }
  if (fenced_) {
    return Status::Fenced("writer fenced: a newer primary holds fencing "
                          "token " +
                          std::to_string(fence_token_));
  }
  return Status::OK();
}

Status DurableSketchStore::PersistFenceState() {
  return lock_.Write(EncodeFenceState(fence_token_, fenced_));
}

Status DurableSketchStore::Fence(uint64_t observed_token) {
  if (fenced_ && observed_token <= fence_token_) return Status::OK();
  fence_token_ = std::max(fence_token_, observed_token);
  fenced_ = true;
  return PersistFenceState();
}

Status DurableSketchStore::AdoptFenceToken(uint64_t token) {
  if (token <= fence_token_) return Status::OK();
  fence_token_ = token;
  return PersistFenceState();
}

Result<uint64_t> DurableSketchStore::Promote() {
  fence_token_ += 1;
  fenced_ = false;
  role_ = StoreRole::kPrimary;
  DD_RETURN_IF_ERROR(PersistFenceState());
  // Start the new lineage in a fresh WAL epoch before the first write
  // lands: a deposed primary's resume position (same epoch, offset at
  // or below ours) would otherwise pass the shipper's tail check even
  // though its log may end in a divergent, never-replicated suffix.
  // With the epoch bumped, every old-lineage position mismatches and
  // takes the snapshot path, which discards that suffix.
  DD_RETURN_IF_ERROR(CheckpointUnguarded());
  prior_epoch_end_ = 0;  // lineage break: never roll across a promotion
  return fence_token_;
}

std::string DurableSketchStore::EncodeReplicationSnapshot() const {
  return EncodeSnapshot(store_, wal_.epoch() - 1);
}

Result<std::string> DurableSketchStore::ReadWalChunk(
    uint64_t from_offset, uint64_t max_bytes) const {
  const uint64_t end = wal_.offset();
  if (from_offset < kWalHeaderBytes || from_offset > end) {
    return Status::InvalidArgument(
        "WAL chunk start is not a valid record boundary");
  }
  if (from_offset == end) return std::string();
  // A frame header (len varint + crc) is at most 14 bytes; always read
  // enough to at least parse the first frame's length.
  const uint64_t want =
      std::min<uint64_t>(std::max<uint64_t>(max_bytes, 64),
                         end - from_offset);
  auto chunk = PreadRange(WalPath(data_dir_), from_offset, want);
  if (!chunk.ok()) return chunk.status();
  if (chunk.value().size() < want) {
    return Status::Internal("WAL shrank during replication read");
  }
  // Trim to the last complete record frame. Every byte below
  // wal_offset() belongs to a complete record, so a frame split by the
  // byte cap is simply re-read whole.
  uint64_t first_frame = 0;
  size_t valid = CompleteFramePrefix(chunk.value(), &first_frame);
  if (valid == 0) {
    if (first_frame == 0 || from_offset + first_frame > end) {
      return Status::Internal("WAL byte range does not parse as records");
    }
    chunk = PreadRange(WalPath(data_dir_), from_offset, first_frame);
    if (!chunk.ok()) return chunk.status();
    valid = CompleteFramePrefix(chunk.value(), &first_frame);
    if (valid != chunk.value().size()) {
      return Status::Internal("WAL shrank during replication read");
    }
  }
  std::string bytes = std::move(chunk).value();
  bytes.resize(valid);
  return bytes;
}

Status DurableSketchStore::InstallReplicatedSnapshot(
    std::string_view snapshot_bytes, uint64_t wal_epoch) {
  if (role_ != StoreRole::kFollower) {
    return Status::Internal("InstallReplicatedSnapshot on a primary store");
  }
  auto decoded = DecodeSnapshot(snapshot_bytes);
  if (!decoded.ok()) return decoded.status();
  DD_RETURN_IF_ERROR(
      CheckOptionsMatch(decoded.value().store.options(), options_.store));
  if (decoded.value().epoch + 1 != wal_epoch) {
    return Status::Corruption(
        "replicated snapshot epoch does not precede its WAL epoch");
  }
  // Remove the WAL before replacing the snapshot: a crash between the
  // two steps reopens as "snapshot only" (old or new state, both
  // valid), never as a snapshot/WAL epoch mismatch.
  DD_RETURN_IF_ERROR(RemoveFileIfExists(WalPath(data_dir_)));
  DD_RETURN_IF_ERROR(
      WriteFileAtomic(SnapshotPath(data_dir_), snapshot_bytes));
  auto writer = WalWriter::Create(WalPath(data_dir_), wal_epoch);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(writer).value();
  store_ = std::move(decoded).value().store;
  prior_epoch_end_ = 0;  // the new WAL has no local prior-epoch history
  return Status::OK();
}

Status DurableSketchStore::ApplyReplicatedSegment(uint64_t epoch,
                                                  uint64_t start_offset,
                                                  std::string_view bytes) {
  if (role_ != StoreRole::kFollower) {
    return Status::Internal("ApplyReplicatedSegment on a primary store");
  }
  if (epoch == wal_.epoch() + 1 && start_offset == kWalHeaderBytes) {
    // The primary checkpointed past our position's epoch: fold our own
    // state the same way so the directories stay epoch-aligned, then
    // tail the new log.
    DD_RETURN_IF_ERROR(CheckpointUnguarded());
  } else if (epoch != wal_.epoch() || start_offset != wal_.offset()) {
    return Status::OutOfRange(
        "replication segment does not match the local WAL position "
        "(snapshot resync needed)");
  }
  auto records = DecodeWalSegment(bytes);
  if (!records.ok()) return records.status();
  for (const WalRecord& record : records.value()) {
    DD_RETURN_IF_ERROR(ValidateRecord(record));
  }
  DD_RETURN_IF_ERROR(wal_.AppendRaw(bytes));
  DD_RETURN_IF_ERROR(wal_.Sync());
  for (const WalRecord& record : records.value()) {
    DD_RETURN_IF_ERROR(Apply(&store_, record));
  }
  return Status::OK();
}

}  // namespace dd
