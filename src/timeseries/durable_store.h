// DurableSketchStore: a SketchStore that survives restarts.
//
// Layout of a data directory:
//   <dir>/wal.log       append-only ingest log      (timeseries/wal.h)
//   <dir>/snapshot.dds  last checkpointed full state (timeseries/snapshot.h)
//   <dir>/LOCK          flock'd while a store is open (single writer)
//
// Write path: every acknowledged ingest is validated, appended to the
// WAL (and optionally fsynced), and only then merged into the in-memory
// store — an OK return means the record replays on the next Open().
//
// Recovery protocol (Open): a fresh directory is initialized with an
// empty epoch-0 snapshot, pinning the store options so every later Open
// can verify them (a WAL-only directory must never silently adopt new
// options). Open loads the snapshot (epoch E), then scans the WAL
// tolerantly. A torn tail
// is truncated (those appends were never acknowledged). The WAL's epoch
// W decides what to replay:
//   W == E + 1 : the normal case — replay every record on top of the
//                snapshot;
//   W == E     : crash landed between snapshot rename and WAL reset
//                during a checkpoint — the log's records are already in
//                the snapshot, so the log is discarded and reset;
//   otherwise  : the directory is inconsistent — Corruption.
// A missing or header-torn WAL (crash during creation) is recreated
// empty at epoch E + 1.
//
// Checkpoint (also run by Compact after the in-memory rollup): write the
// snapshot atomically with the current WAL epoch, then reset the WAL to
// the next epoch. A crash between the two steps is exactly the W == E
// case above — never double-applied, never lost.

#ifndef DDSKETCH_TIMESERIES_DURABLE_STORE_H_
#define DDSKETCH_TIMESERIES_DURABLE_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "timeseries/sketch_store.h"
#include "timeseries/wal.h"
#include "util/status.h"

namespace dd {

/// Who owns a data directory's write path (replication; PROTOCOL.md v5).
enum class StoreRole {
  kPrimary = 0,   ///< exclusive writer: ingests, checkpoints
  kFollower = 1,  ///< applier: mutates only via replicated snapshots/segments
};

struct DurableSketchStoreOptions {
  SketchStoreOptions store;
  /// fsync the WAL on every ingest. Off by default: appends still reach
  /// the OS before the ingest is acknowledged (process-crash safe);
  /// turning this on makes each ingest power-loss safe at ~1 disk flush
  /// per record.
  bool sync_every_ingest = false;
  /// kFollower opens the directory in applier mode: the lock is still
  /// taken (two appliers on one directory would race too), but the
  /// public write API (Ingest*/Checkpoint/Compact) refuses with FENCED —
  /// only the ApplyReplicated*/InstallReplicated* methods mutate state,
  /// and only with bytes shipped by the primary.
  StoreRole role = StoreRole::kPrimary;
};

/// The durable facade: SketchStore semantics, plus Open-time recovery
/// and checkpointing. Not thread-safe (like SketchStore).
class DurableSketchStore {
 public:
  /// Opens (creating the directory, an initial snapshot, and an empty
  /// log if needed) and recovers snapshot + WAL. Fails with Incompatible
  /// when the directory was written with different options, Corruption
  /// when its files are damaged beyond the torn-tail cases recovery is
  /// designed for, and ResourceExhausted when another process holds the
  /// directory open.
  static Result<DurableSketchStore> Open(
      const std::string& data_dir, const DurableSketchStoreOptions& options);

  /// Logs and merges a serialized worker sketch. The record is on disk
  /// when this returns OK.
  Status Ingest(const std::string& series, int64_t timestamp,
                std::string_view payload);

  /// Logs and merges a single value.
  Status IngestValue(const std::string& series, int64_t timestamp,
                     double value);

  /// Validates an ingest record — decodes sketch payloads and checks
  /// sketch-parameter compatibility — without touching the log or the
  /// store. The staging half of group commit: callers (the network
  /// server) reject bad requests on their own threads so an invalid
  /// record can never poison a batch.
  Status ValidateRecord(const WalRecord& record) const;

  /// Group commit: appends every record to the WAL, fsyncs ONCE, then
  /// merges all of them into the in-memory store — N acknowledged
  /// ingests for a single disk flush. All records are re-validated
  /// before the first byte reaches the log, so a bad record fails the
  /// whole batch with nothing written. Unlike Ingest/IngestValue, the
  /// batch always fsyncs (ignoring sync_every_ingest): callers use this
  /// to acknowledge remote clients, and an acknowledgment promises
  /// power-loss durability. An OK return means every record in the
  /// batch replays on the next Open(). On an append/fsync failure the
  /// log is truncated back to the batch start (nothing from the batch
  /// replays); if even that repair fails the log is torn mid-file and
  /// the error says so — callers must stop appending (a torn frame
  /// would make recovery silently drop everything after it).
  Status IngestBatch(const std::vector<WalRecord>& records);

  /// Explicitly ages the ladder (SketchStore::Compact, with `now`
  /// clamped to the data horizon), then checkpoints. Returns the number
  /// of interval sketches the explicit fold moved or dropped; the
  /// checkpoint itself may fold more (see Checkpoint). Rollup state
  /// reaches disk only through the checkpoint's snapshot — the WAL
  /// stays a raw-ingest log.
  Result<size_t> Compact(int64_t now);

  /// Snapshot + WAL reset (bounds replay time). Every checkpoint first
  /// runs the data-time rollup (Compact saturated to the data horizon),
  /// so aging happens exactly at epoch boundaries and nowhere else:
  /// crash recovery replays raw records onto the last folded snapshot,
  /// and a replication follower crossing the boundary folds its own
  /// identical raw state to the identical ladder.
  Status Checkpoint();

  /// fsync the WAL (batch durability when sync_every_ingest is off).
  Status Sync();

  // --- Replication + fencing (server/replication.h, PROTOCOL.md v5) ---
  //
  // The fencing token lives in the LOCK file (`fence=<N>\nfenced=<0|1>`,
  // written in place on the flock'd fd — util/file_io.h explains why not
  // atomically). It totally orders primaries over a directory's history:
  // a promotion bumps the token, and a writer that has observed a larger
  // token than its own is *fenced* — sticky, persisted, every write
  // refused with FENCED — so a deposed primary's late writes can never
  // land after failover (split-brain protection).

  StoreRole role() const noexcept { return role_; }
  uint64_t fence_token() const noexcept { return fence_token_; }
  bool fenced() const noexcept { return fenced_; }
  /// True when the public write API refuses with FENCED (follower role
  /// or fenced).
  bool writes_fenced() const noexcept {
    return fenced_ || role_ == StoreRole::kFollower;
  }

  /// Records that a writer holding `observed_token` exists: adopts the
  /// larger token, sticky-fences this store, persists. Idempotent.
  Status Fence(uint64_t observed_token);

  /// Adopts the primary's token on a follower (never lowers ours, never
  /// fences).
  Status AdoptFenceToken(uint64_t token);

  /// Become the (new) primary: bump the fencing token past every token
  /// ever observed here, clear the fenced flag, flip the role to
  /// kPrimary, persist, then checkpoint. The checkpoint bumps the WAL
  /// epoch, so every stream position handed out by the old lineage —
  /// including a deposed primary's own WAL, which may hold a durable
  /// suffix this store never received — mismatches the new log and
  /// resyncs from a snapshot instead of tailing divergent bytes.
  /// Returns the new token.
  Result<uint64_t> Promote();

  /// Encodes a full-state snapshot claiming coverage through the end of
  /// wal epoch - 1 for replication bootstrap. Only exact when the WAL
  /// is empty (wal_offset() == kWalHeaderBytes): the encoded state is
  /// the *live* store, which includes any current-epoch records — a
  /// follower that installed it and then tailed the current epoch from
  /// its start would apply those records twice. The shipper therefore
  /// calls CheckpointForReplication() first whenever the WAL is
  /// non-empty, so every shipped snapshot sits on an epoch boundary.
  std::string EncodeReplicationSnapshot() const;

  /// Checkpoint on behalf of the replication shipper, folding the
  /// current epoch so EncodeReplicationSnapshot() is boundary-exact.
  /// Bypasses the writability gate: a fenced ex-primary may still be
  /// serving subscribers it owes a resync.
  Status CheckpointForReplication() { return CheckpointUnguarded(); }

  /// Reads raw framed record bytes from the WAL file, starting at
  /// `from_offset` (which must be a record boundary: kWalHeaderBytes or
  /// an offset previously returned past). At most ~`max_bytes`, but the
  /// result always ends on a record boundary — a single record larger
  /// than the cap is returned whole. Empty when already caught up.
  Result<std::string> ReadWalChunk(uint64_t from_offset,
                                   uint64_t max_bytes) const;

  /// Follower-side full resync: validates and installs a primary's
  /// snapshot image, resets the WAL to `wal_epoch` (the primary's), and
  /// swaps the in-memory store. Crash-safe: the WAL is removed before
  /// the snapshot is replaced, so every crash point reopens as either
  /// the old state or the new one.
  Status InstallReplicatedSnapshot(std::string_view snapshot_bytes,
                                   uint64_t wal_epoch);

  /// Follower-side incremental apply of a shipped WAL segment. A
  /// segment at (wal epoch, wal_offset()) extends the log — append raw,
  /// fsync, merge into memory. One at (epoch + 1, kWalHeaderBytes)
  /// means the primary checkpointed: the follower runs its own
  /// checkpoint first (keeping the directories epoch-aligned), then
  /// applies. Any other position fails with OutOfRange — the follower
  /// must resync from a snapshot.
  Status ApplyReplicatedSegment(uint64_t epoch, uint64_t start_offset,
                                std::string_view bytes);

  // Queries delegate to the in-memory store.
  Result<DDSketch> QueryRange(const std::string& series, int64_t start,
                              int64_t end) const {
    return store_.QueryRange(series, start, end);
  }
  Result<double> QueryQuantile(const std::string& series, int64_t start,
                               int64_t end, double q) const {
    return store_.QueryQuantile(series, start, end, q);
  }
  Result<std::vector<SeriesPoint>> QuerySeries(const std::string& series,
                                               int64_t start, int64_t end,
                                               double q,
                                               int64_t step_seconds) const {
    return store_.QuerySeries(series, start, end, q, step_seconds);
  }
  std::vector<std::string> ListSeries() const { return store_.ListSeries(); }

  /// The recovered/live in-memory state.
  const SketchStore& store() const noexcept { return store_; }

  /// Per-level interval counts / rollup merges / retained bytes of the
  /// live ladder (finest level first).
  std::vector<LevelUsage> LevelStats() const { return store_.LevelStats(); }

  /// Interval sketches folded or dropped by checkpoint-time rollup over
  /// this store's lifetime (process-local, like batch counters).
  uint64_t rollup_folded() const noexcept { return rollup_folded_; }

  /// Current WAL generation (advances by one per checkpoint).
  uint64_t epoch() const noexcept { return wal_.epoch(); }

  /// Append offset of the WAL; the boundary after each acknowledged
  /// ingest is a crash-consistent recovery point.
  uint64_t wal_offset() const noexcept { return wal_.offset(); }

  /// End offset the WAL had just before the most recent in-process
  /// checkpoint folded it into epoch() (0 = unknown: fresh open,
  /// snapshot install, or a promotion — a lineage break, after which
  /// prior-epoch positions may be divergent and must never be rolled
  /// forward). A subscriber sitting exactly here consumed the prior
  /// epoch in full, so the shipper can roll it across the checkpoint
  /// without a snapshot transfer.
  uint64_t prior_epoch_end() const noexcept { return prior_epoch_end_; }

  static std::string WalPath(const std::string& data_dir) {
    return data_dir + "/wal.log";
  }
  static std::string SnapshotPath(const std::string& data_dir) {
    return data_dir + "/snapshot.dds";
  }
  static std::string LockPath(const std::string& data_dir) {
    return data_dir + "/LOCK";
  }

 private:
  DurableSketchStore(DurableSketchStoreOptions options, std::string data_dir,
                     FileLock lock, SketchStore store, WalWriter wal)
      : options_(std::move(options)),
        data_dir_(std::move(data_dir)),
        lock_(std::move(lock)),
        store_(std::move(store)),
        wal_(std::move(wal)) {}

  Status Append(const WalRecord& record);
  /// FENCED when writes_fenced(); the gate on every public write path.
  Status CheckWritable() const;
  /// Checkpoint without the writability gate (the follower's own
  /// checkpoint when the primary's stream crosses an epoch).
  Status CheckpointUnguarded();
  Status PersistFenceState();

  DurableSketchStoreOptions options_;
  std::string data_dir_;
  FileLock lock_;
  SketchStore store_;
  WalWriter wal_;
  StoreRole role_ = StoreRole::kPrimary;
  uint64_t fence_token_ = 1;
  bool fenced_ = false;
  uint64_t prior_epoch_end_ = 0;
  uint64_t rollup_folded_ = 0;
};

}  // namespace dd

#endif  // DDSKETCH_TIMESERIES_DURABLE_STORE_H_
