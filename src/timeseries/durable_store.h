// DurableSketchStore: a SketchStore that survives restarts.
//
// Layout of a data directory:
//   <dir>/wal.log       append-only ingest log      (timeseries/wal.h)
//   <dir>/snapshot.dds  last checkpointed full state (timeseries/snapshot.h)
//   <dir>/LOCK          flock'd while a store is open (single writer)
//
// Write path: every acknowledged ingest is validated, appended to the
// WAL (and optionally fsynced), and only then merged into the in-memory
// store — an OK return means the record replays on the next Open().
//
// Recovery protocol (Open): a fresh directory is initialized with an
// empty epoch-0 snapshot, pinning the store options so every later Open
// can verify them (a WAL-only directory must never silently adopt new
// options). Open loads the snapshot (epoch E), then scans the WAL
// tolerantly. A torn tail
// is truncated (those appends were never acknowledged). The WAL's epoch
// W decides what to replay:
//   W == E + 1 : the normal case — replay every record on top of the
//                snapshot;
//   W == E     : crash landed between snapshot rename and WAL reset
//                during a checkpoint — the log's records are already in
//                the snapshot, so the log is discarded and reset;
//   otherwise  : the directory is inconsistent — Corruption.
// A missing or header-torn WAL (crash during creation) is recreated
// empty at epoch E + 1.
//
// Checkpoint (also run by Compact after the in-memory rollup): write the
// snapshot atomically with the current WAL epoch, then reset the WAL to
// the next epoch. A crash between the two steps is exactly the W == E
// case above — never double-applied, never lost.

#ifndef DDSKETCH_TIMESERIES_DURABLE_STORE_H_
#define DDSKETCH_TIMESERIES_DURABLE_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "timeseries/sketch_store.h"
#include "timeseries/wal.h"
#include "util/status.h"

namespace dd {

struct DurableSketchStoreOptions {
  SketchStoreOptions store;
  /// fsync the WAL on every ingest. Off by default: appends still reach
  /// the OS before the ingest is acknowledged (process-crash safe);
  /// turning this on makes each ingest power-loss safe at ~1 disk flush
  /// per record.
  bool sync_every_ingest = false;
};

/// The durable facade: SketchStore semantics, plus Open-time recovery
/// and checkpointing. Not thread-safe (like SketchStore).
class DurableSketchStore {
 public:
  /// Opens (creating the directory, an initial snapshot, and an empty
  /// log if needed) and recovers snapshot + WAL. Fails with Incompatible
  /// when the directory was written with different options, Corruption
  /// when its files are damaged beyond the torn-tail cases recovery is
  /// designed for, and ResourceExhausted when another process holds the
  /// directory open.
  static Result<DurableSketchStore> Open(
      const std::string& data_dir, const DurableSketchStoreOptions& options);

  /// Logs and merges a serialized worker sketch. The record is on disk
  /// when this returns OK.
  Status Ingest(const std::string& series, int64_t timestamp,
                std::string_view payload);

  /// Logs and merges a single value.
  Status IngestValue(const std::string& series, int64_t timestamp,
                     double value);

  /// Validates an ingest record — decodes sketch payloads and checks
  /// sketch-parameter compatibility — without touching the log or the
  /// store. The staging half of group commit: callers (the network
  /// server) reject bad requests on their own threads so an invalid
  /// record can never poison a batch.
  Status ValidateRecord(const WalRecord& record) const;

  /// Group commit: appends every record to the WAL, fsyncs ONCE, then
  /// merges all of them into the in-memory store — N acknowledged
  /// ingests for a single disk flush. All records are re-validated
  /// before the first byte reaches the log, so a bad record fails the
  /// whole batch with nothing written. Unlike Ingest/IngestValue, the
  /// batch always fsyncs (ignoring sync_every_ingest): callers use this
  /// to acknowledge remote clients, and an acknowledgment promises
  /// power-loss durability. An OK return means every record in the
  /// batch replays on the next Open(). On an append/fsync failure the
  /// log is truncated back to the batch start (nothing from the batch
  /// replays); if even that repair fails the log is torn mid-file and
  /// the error says so — callers must stop appending (a torn frame
  /// would make recovery silently drop everything after it).
  Status IngestBatch(const std::vector<WalRecord>& records);

  /// Rolls up old raw intervals (SketchStore::Compact), then checkpoints:
  /// snapshot + WAL reset. Returns the number of intervals compacted.
  Result<size_t> Compact(int64_t now);

  /// Snapshot + WAL reset without compaction (bounds replay time).
  Status Checkpoint();

  /// fsync the WAL (batch durability when sync_every_ingest is off).
  Status Sync();

  // Queries delegate to the in-memory store.
  Result<DDSketch> QueryRange(const std::string& series, int64_t start,
                              int64_t end) const {
    return store_.QueryRange(series, start, end);
  }
  Result<double> QueryQuantile(const std::string& series, int64_t start,
                               int64_t end, double q) const {
    return store_.QueryQuantile(series, start, end, q);
  }
  Result<std::vector<SeriesPoint>> QuerySeries(const std::string& series,
                                               int64_t start, int64_t end,
                                               double q,
                                               int64_t step_seconds) const {
    return store_.QuerySeries(series, start, end, q, step_seconds);
  }
  std::vector<std::string> ListSeries() const { return store_.ListSeries(); }

  /// The recovered/live in-memory state.
  const SketchStore& store() const noexcept { return store_; }

  /// Current WAL generation (advances by one per checkpoint).
  uint64_t epoch() const noexcept { return wal_.epoch(); }

  /// Append offset of the WAL; the boundary after each acknowledged
  /// ingest is a crash-consistent recovery point.
  uint64_t wal_offset() const noexcept { return wal_.offset(); }

  static std::string WalPath(const std::string& data_dir) {
    return data_dir + "/wal.log";
  }
  static std::string SnapshotPath(const std::string& data_dir) {
    return data_dir + "/snapshot.dds";
  }
  static std::string LockPath(const std::string& data_dir) {
    return data_dir + "/LOCK";
  }

 private:
  DurableSketchStore(DurableSketchStoreOptions options, std::string data_dir,
                     FileLock lock, SketchStore store, WalWriter wal)
      : options_(std::move(options)),
        data_dir_(std::move(data_dir)),
        lock_(std::move(lock)),
        store_(std::move(store)),
        wal_(std::move(wal)) {}

  Status Append(const WalRecord& record);

  DurableSketchStoreOptions options_;
  std::string data_dir_;
  FileLock lock_;
  SketchStore store_;
  WalWriter wal_;
};

}  // namespace dd

#endif  // DDSKETCH_TIMESERIES_DURABLE_STORE_H_
