#include "timeseries/sharded_store.h"

#include <algorithm>
#include <utility>

#include "util/dir_layout.h"
#include "util/file_io.h"

namespace dd {
namespace {

/// A flat (PR 2-4) single-store directory is recognized by its files; an
/// empty or freshly-created directory has none of them.
bool LegacyLayoutExists(const std::string& data_dir) {
  return FileExists(DurableSketchStore::WalPath(data_dir)) ||
         FileExists(DurableSketchStore::SnapshotPath(data_dir));
}

}  // namespace

size_t ShardedDurableStore::ShardForSeries(std::string_view series,
                                           size_t num_shards) {
  return num_shards <= 1 ? 0 : ShardHash(series) % num_shards;
}

Result<ShardedDurableStore> ShardedDurableStore::Open(
    const std::string& data_dir, const ShardedDurableStoreOptions& options) {
  if (options.shards > kMaxShards) {
    return Status::InvalidArgument("shard count out of range");
  }
  DD_RETURN_IF_ERROR(CreateDirIfMissing(data_dir));

  // The layout decision below (read manifest → maybe write manifest →
  // open shards) must be atomic against concurrent first-openers: two
  // racing creators with different shard counts could otherwise each
  // pass the "fresh directory" check, and the loser's manifest could
  // survive on disk while the winner serves with a different modulus —
  // silently mis-routing every later open. LAYOUT.lock serializes the
  // decision; it is held only for the duration of Open (the per-shard
  // LOCK files own steady-state exclusion) and is distinct from the
  // flat layout's LOCK so single-shard opens don't self-deadlock.
  auto layout_lock = FileLock::Acquire(LayoutLockPath(data_dir));
  if (!layout_lock.ok()) return layout_lock.status();

  // Decide the layout: manifest wins, then legacy files, then fresh.
  auto manifest = ReadShardManifest(data_dir);
  if (!manifest.ok()) return manifest.status();
  size_t count = 0;
  bool flat = false;
  if (manifest.value() > 0) {
    if (options.shards != 0 && options.shards != manifest.value()) {
      return Status::Incompatible(
          "data directory was created with shards=" +
          std::to_string(manifest.value()) + ", reopened with shards=" +
          std::to_string(options.shards) +
          " (re-splitting would re-route series)");
    }
    count = manifest.value();
  } else if (LegacyLayoutExists(data_dir)) {
    if (options.shards > 1) {
      return Status::Incompatible(
          "data directory has a legacy single-store layout; open it with "
          "shards=1 (or 0) — it cannot be re-split in place");
    }
    count = 1;
    flat = true;
  } else {
    count = options.shards == 0 ? 1 : options.shards;
    // Single-shard directories keep the flat layout so they stay
    // byte-compatible with DurableSketchStore; only a genuinely sharded
    // directory gets the manifest + shard-<k> subdirectories.
    flat = count == 1;
    if (!flat) {
      DD_RETURN_IF_ERROR(WriteShardManifest(data_dir, count));
    }
  }

  std::vector<std::unique_ptr<DurableSketchStore>> shards;
  shards.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    const std::string shard_dir = flat ? data_dir : ShardSubdir(data_dir, k);
    auto shard = DurableSketchStore::Open(shard_dir, options.durable);
    if (!shard.ok()) return shard.status();
    shards.push_back(
        std::make_unique<DurableSketchStore>(std::move(shard).value()));
  }
  return ShardedDurableStore(std::move(shards));
}

std::vector<std::string> ShardedDurableStore::ListSeries() const {
  std::vector<std::string> all;
  for (const auto& shard : shards_) {
    std::vector<std::string> names = shard->ListSeries();
    all.insert(all.end(), std::make_move_iterator(names.begin()),
               std::make_move_iterator(names.end()));
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

Status ShardedDurableStore::Checkpoint() {
  for (auto& shard : shards_) {
    DD_RETURN_IF_ERROR(shard->Checkpoint());
  }
  return Status::OK();
}

Result<size_t> ShardedDurableStore::Compact(int64_t now) {
  size_t total = 0;
  for (auto& shard : shards_) {
    auto compacted = shard->Compact(now);
    if (!compacted.ok()) return compacted.status();
    total += compacted.value();
  }
  return total;
}

uint64_t ShardedDurableStore::FenceToken() const {
  uint64_t token = 0;
  for (const auto& shard : shards_) {
    token = std::max(token, shard->fence_token());
  }
  return token;
}

bool ShardedDurableStore::Fenced() const {
  for (const auto& shard : shards_) {
    if (shard->fenced()) return true;
  }
  return false;
}

Status ShardedDurableStore::Fence(uint64_t observed_token) {
  for (auto& shard : shards_) {
    DD_RETURN_IF_ERROR(shard->Fence(observed_token));
  }
  return Status::OK();
}

Status ShardedDurableStore::AdoptFenceToken(uint64_t token) {
  for (auto& shard : shards_) {
    DD_RETURN_IF_ERROR(shard->AdoptFenceToken(token));
  }
  return Status::OK();
}

Result<uint64_t> ShardedDurableStore::Promote() {
  // Equalize first so every shard lands on the same new token even if
  // a crash left them divergent.
  DD_RETURN_IF_ERROR(AdoptFenceToken(FenceToken()));
  uint64_t token = 0;
  for (auto& shard : shards_) {
    auto promoted = shard->Promote();
    if (!promoted.ok()) return promoted.status();
    token = promoted.value();
  }
  return token;
}

size_t ShardedDurableStore::TotalSeries() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->store().num_series();
  return total;
}

size_t ShardedDurableStore::TotalIntervals() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->store().num_intervals();
  return total;
}

std::vector<LevelUsage> ShardedDurableStore::LevelStats() const {
  std::vector<LevelUsage> total = shards_[0]->LevelStats();
  for (size_t k = 1; k < shards_.size(); ++k) {
    const std::vector<LevelUsage> stats = shards_[k]->LevelStats();
    for (size_t i = 0; i < total.size() && i < stats.size(); ++i) {
      total[i].num_intervals += stats[i].num_intervals;
      total[i].rollup_merges += stats[i].rollup_merges;
      total[i].retained_bytes += stats[i].retained_bytes;
    }
  }
  return total;
}

uint64_t ShardedDurableStore::TotalRollupFolded() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->rollup_folded();
  return total;
}

uint64_t ShardedDurableStore::MinEpoch() const {
  uint64_t min_epoch = shards_[0]->epoch();
  for (const auto& shard : shards_) {
    min_epoch = std::min(min_epoch, shard->epoch());
  }
  return min_epoch;
}

}  // namespace dd
