// ShardedDurableStore: N independent DurableSketchStore shards under one
// data directory, with series routed to shards by a stable hash of the
// series name (util/dir_layout.h).
//
// Why shards: DDSketch is fully mergeable (paper §2.3), so the store can
// be split into independently-ingesting, independently-recovering,
// independently-checkpointing pieces and still answer any query exactly
// by merging at read time. Each shard owns its own WAL, snapshot, epoch,
// and directory lock, so fsyncs, crash recovery, and checkpoints proceed
// per shard — a checkpoint of shard 2 never stalls ingest on shard 5.
//
// Directory layouts (util/dir_layout.h):
//   sharded:  <dir>/SHARDS (manifest) + <dir>/shard-<k>/ per shard
//   legacy:   wal.log / snapshot.dds / LOCK directly under <dir>
// Single-shard mode keeps the legacy flat layout byte-for-byte: a
// shards=1 open of a PR 2-4 directory (or a fresh directory) reads and
// writes exactly what DurableSketchStore would, so nothing ever needs
// migrating to "upgrade" to this class. The manifest pins the shard
// count at creation; reopening with a different explicit count fails
// with Incompatible (re-splitting would re-route series mid-history).
//
// Thread-safety contract (what the server relies on): distinct shards
// are fully independent — concurrent calls are safe as long as no two
// threads touch the same shard at the same time. Routing (ShardOf) and
// record validation read only immutable state and are safe anywhere.
// Per-series reads (QueryRange and friends) touch only the owning
// shard; cross-shard operations (Checkpoint, Compact, ListSeries, the
// aggregate counters) touch every shard and need the caller to hold
// whatever per-shard locks it uses for ingest.

#ifndef DDSKETCH_TIMESERIES_SHARDED_STORE_H_
#define DDSKETCH_TIMESERIES_SHARDED_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "timeseries/durable_store.h"
#include "util/status.h"

namespace dd {

struct ShardedDurableStoreOptions {
  DurableSketchStoreOptions durable;
  /// Number of shards. 0 = auto-detect: adopt the directory's manifest
  /// count, open a legacy flat directory as one shard, and create fresh
  /// directories single-shard. An explicit count must match what the
  /// directory was created with (Incompatible otherwise); an explicit
  /// count > 1 on a fresh directory creates the sharded layout.
  size_t shards = 0;
};

class ShardedDurableStore {
 public:
  /// Opens (creating if needed) and recovers every shard. Each shard
  /// runs the full DurableSketchStore recovery protocol independently;
  /// the first shard failure aborts the open.
  static Result<ShardedDurableStore> Open(
      const std::string& data_dir, const ShardedDurableStoreOptions& options);

  /// The stable series -> shard route: ShardHash(series) % num_shards.
  static size_t ShardForSeries(std::string_view series, size_t num_shards);

  /// `<dir>/LAYOUT.lock` — flock'd for the duration of Open() so the
  /// layout decision (manifest read/creation + shard opens) is atomic
  /// against concurrent first-openers. Steady-state exclusion is the
  /// per-shard LOCK files' job.
  static std::string LayoutLockPath(const std::string& data_dir) {
    return data_dir + "/LAYOUT.lock";
  }

  size_t num_shards() const noexcept { return shards_.size(); }
  size_t ShardOf(std::string_view series) const {
    return ShardForSeries(series, shards_.size());
  }

  /// Direct access to one shard (the server's per-shard committers and
  /// checkpoint scheduler operate on shards, not on this facade).
  DurableSketchStore& shard(size_t k) { return *shards_[k]; }
  const DurableSketchStore& shard(size_t k) const { return *shards_[k]; }

  // Routed single-record ingest (CLI and tests; the server batches
  // per shard via shard(k).IngestBatch instead).
  Status Ingest(const std::string& series, int64_t timestamp,
                std::string_view payload) {
    return shards_[ShardOf(series)]->Ingest(series, timestamp, payload);
  }
  Status IngestValue(const std::string& series, int64_t timestamp,
                     double value) {
    return shards_[ShardOf(series)]->IngestValue(series, timestamp, value);
  }

  /// Validation reads only the (identical across shards) immutable store
  /// configuration; safe from any thread.
  Status ValidateRecord(const WalRecord& record) const {
    return shards_[0]->ValidateRecord(record);
  }

  // Reads route to the owning shard: a series lives on exactly one
  // shard by construction (the hash is pinned and the manifest count is
  // immutable), so the owner's answer IS the whole answer — merging the
  // other shards could only ever add empty results. Range queries are
  // still merge-on-read inside the shard (across interval sketches, via
  // DDSketch::MergeFrom), which is what keeps sharded answers exactly
  // equal to a single-store run.
  Result<DDSketch> QueryRange(const std::string& series, int64_t start,
                              int64_t end) const {
    return shards_[ShardOf(series)]->QueryRange(series, start, end);
  }
  Result<double> QueryQuantile(const std::string& series, int64_t start,
                               int64_t end, double q) const {
    return shards_[ShardOf(series)]->QueryQuantile(series, start, end, q);
  }
  Result<std::vector<SeriesPoint>> QuerySeries(const std::string& series,
                                               int64_t start, int64_t end,
                                               double q,
                                               int64_t step_seconds) const {
    return shards_[ShardOf(series)]->QuerySeries(series, start, end, q,
                                                 step_seconds);
  }

  /// Sorted union of every shard's series names.
  std::vector<std::string> ListSeries() const;

  /// Checkpoints every shard (snapshot + WAL reset each). The client
  /// CHECKPOINT op maps to this; the background scheduler checkpoints
  /// single shards via shard(k).Checkpoint() instead.
  Status Checkpoint();

  /// Compacts + checkpoints every shard; returns the total number of
  /// raw intervals rolled up.
  Result<size_t> Compact(int64_t now);

  // --- Replication + fencing (durable_store.h) ---
  // The fencing token is logically one per server, but each shard's LOCK
  // file is its durable home, so reads aggregate conservatively and
  // writes apply to every shard. Cross-shard like Checkpoint: the caller
  // holds whatever per-shard locks it uses for ingest.

  StoreRole role() const { return shards_[0]->role(); }
  /// Max token across shards (they only diverge mid-crash).
  uint64_t FenceToken() const;
  /// True when any shard is fenced — one fenced shard fences the server.
  bool Fenced() const;
  bool WritesFenced() const { return shards_[0]->writes_fenced() || Fenced(); }
  /// Sticky-fences every shard against `observed_token`.
  Status Fence(uint64_t observed_token);
  /// Adopts a larger token on every shard (follower tracking its primary).
  Status AdoptFenceToken(uint64_t token);
  /// Promotes every shard to primary at max-token + 1; returns the new
  /// (uniform) token.
  Result<uint64_t> Promote();

  // Aggregates across shards (the CLI; the server aggregates per shard
  // itself because it needs to interleave its per-shard locks).
  size_t TotalSeries() const;
  size_t TotalIntervals() const;
  /// Per-level usage summed across shards (every shard carries the same
  /// ladder — the geometry is pinned by each shard's snapshot).
  std::vector<LevelUsage> LevelStats() const;
  /// Total interval sketches folded by checkpoint-time rollup across
  /// shards since open.
  uint64_t TotalRollupFolded() const;
  /// Minimum epoch across shards — the conservative "generation" of the
  /// directory as a whole (every shard has checkpointed at least
  /// min_epoch - 1 times).
  uint64_t MinEpoch() const;

 private:
  explicit ShardedDurableStore(
      std::vector<std::unique_ptr<DurableSketchStore>> shards)
      : shards_(std::move(shards)) {}

  // unique_ptr: DurableSketchStore is move-only and the server hands out
  // stable references to shards while this vector lives in an optional.
  std::vector<std::unique_ptr<DurableSketchStore>> shards_;
};

}  // namespace dd

#endif  // DDSKETCH_TIMESERIES_SHARDED_STORE_H_
