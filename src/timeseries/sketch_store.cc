#include "timeseries/sketch_store.h"

#include <algorithm>
#include <limits>

namespace dd {

std::vector<RollupLevel> DefaultRollupLevels() {
  return {{10, 3600}, {60, 86400}, {3600, 0}};
}

SketchStore::SketchStore(const SketchStoreOptions& options,
                         DDSketch prototype)
    : options_(options),
      prototype_(std::move(prototype)),
      rollup_merges_(options_.levels.size(), 0) {}

Status SketchStore::ValidateLevels(const std::vector<RollupLevel>& levels) {
  if (levels.empty()) {
    return Status::InvalidArgument("rollup ladder needs at least one level");
  }
  if (levels.front().interval_seconds < 1) {
    return Status::InvalidArgument("level interval must be >= 1 second");
  }
  for (size_t i = 1; i < levels.size(); ++i) {
    const int64_t prev = levels[i - 1].interval_seconds;
    const int64_t cur = levels[i].interval_seconds;
    if (cur <= prev || cur % prev != 0) {
      return Status::InvalidArgument(
          "each level's interval must be a strict integer multiple of the "
          "previous level's");
    }
  }
  for (size_t i = 0; i < levels.size(); ++i) {
    const int64_t retention = levels[i].retention_seconds;
    if (i + 1 == levels.size()) {
      // Last level: 0 = keep forever; a finite retention must cover at
      // least one of its own intervals so the hot bucket never expires.
      if (retention != 0 && retention < levels[i].interval_seconds) {
        return Status::InvalidArgument(
            "last-level retention must be 0 (forever) or cover at least one "
            "interval");
      }
    } else if (retention < levels[i + 1].interval_seconds) {
      return Status::InvalidArgument(
          "a level's retention must cover at least one next-level interval "
          "(0 = forever is only legal on the last level)");
    }
  }
  return Status::OK();
}

Result<SketchStore> SketchStore::Create(const SketchStoreOptions& options) {
  SketchStoreOptions resolved = options;
  if (resolved.levels.empty()) resolved.levels = DefaultRollupLevels();
  DD_RETURN_IF_ERROR(ValidateLevels(resolved.levels));
  auto prototype = DDSketch::Create(resolved.sketch);
  if (!prototype.ok()) return prototype.status();
  return SketchStore(resolved, std::move(prototype).value());
}

SketchStore::Series& SketchStore::SeriesFor(const std::string& name) {
  Series& s = series_[name];
  if (s.levels.empty()) s.levels.resize(options_.levels.size());
  return s;
}

Status SketchStore::Ingest(const std::string& series, int64_t timestamp,
                           std::string_view payload) {
  auto decoded = DDSketch::Deserialize(payload);
  if (!decoded.ok()) return decoded.status();
  return IngestSketch(series, timestamp, decoded.value());
}

Status SketchStore::IngestSketch(const std::string& series, int64_t timestamp,
                                 const DDSketch& sketch) {
  // Validate before touching the map so a failed ingest leaves no empty
  // series/interval behind.
  DD_RETURN_IF_ERROR(CheckCompatible(sketch));
  Series& s = SeriesFor(series);
  const int64_t start = RawStart(timestamp);
  auto [it, inserted] = s.levels[0].try_emplace(start, prototype_);
  return it->second.MergeFrom(sketch);
}

Status SketchStore::CheckCompatible(const DDSketch& sketch) const {
  if (!prototype_.mapping().IsCompatibleWith(sketch.mapping())) {
    return Status::Incompatible(
        "sketch parameters do not match the store's configuration");
  }
  return Status::OK();
}

Status SketchStore::IngestValue(const std::string& series, int64_t timestamp,
                                double value) {
  Series& s = SeriesFor(series);
  const int64_t start = RawStart(timestamp);
  auto [it, inserted] = s.levels[0].try_emplace(start, prototype_);
  it->second.Add(value);
  return Status::OK();
}

Status SketchStore::IngestValues(const std::string& series, int64_t timestamp,
                                 std::span<const double> values) {
  if (values.empty()) return Status::OK();
  Series& s = SeriesFor(series);
  const int64_t start = RawStart(timestamp);
  auto [it, inserted] = s.levels[0].try_emplace(start, prototype_);
  it->second.AddBatch(values);
  return Status::OK();
}

void SketchStore::MergeOverlapping(const std::map<int64_t, DDSketch>& tier,
                                   int64_t width, int64_t start, int64_t end,
                                   DDSketch* out) {
  // First bucket possibly overlapping [start, end) begins at or after
  // start - width + 1.
  for (auto it = tier.lower_bound(start - width + 1);
       it != tier.end() && it->first < end; ++it) {
    (void)out->MergeFrom(it->second);  // same parameters by construction
  }
}

Result<DDSketch> SketchStore::QueryRange(const std::string& series,
                                         int64_t start, int64_t end) const {
  if (start >= end) {
    return Status::InvalidArgument("empty time range");
  }
  const auto it = series_.find(series);
  if (it == series_.end()) {
    return Status::InvalidArgument("unknown series: " + series);
  }
  // Every datum lives in exactly one level (rollup moves sketches, never
  // copies them), so merging the overlapping buckets of every level
  // yields the finest stored resolution over each part of the window
  // with no double counting.
  DDSketch merged = prototype_;
  for (size_t i = 0; i < it->second.levels.size(); ++i) {
    MergeOverlapping(it->second.levels[i], options_.levels[i].interval_seconds,
                     start, end, &merged);
  }
  return merged;
}

Result<double> SketchStore::QueryQuantile(const std::string& series,
                                          int64_t start, int64_t end,
                                          double q) const {
  auto merged = QueryRange(series, start, end);
  if (!merged.ok()) return merged.status();
  return merged.value().Quantile(q);
}

Result<std::vector<SeriesPoint>> SketchStore::QuerySeries(
    const std::string& series, int64_t start, int64_t end, double q,
    int64_t step_seconds) const {
  if (step_seconds < 1) {
    return Status::InvalidArgument("step must be >= 1 second");
  }
  std::vector<SeriesPoint> points;
  for (int64_t t = start; t < end; t += step_seconds) {
    auto merged = QueryRange(series, t, std::min(t + step_seconds, end));
    if (!merged.ok()) return merged.status();
    if (merged.value().empty()) continue;
    points.push_back({t, merged.value().count(),
                      merged.value().QuantileOrNaN(q)});
  }
  return points;
}

int64_t SketchStore::DataHorizon() const {
  int64_t horizon = std::numeric_limits<int64_t>::min();
  for (const auto& [name, s] : series_) {
    for (size_t i = 0; i < s.levels.size(); ++i) {
      if (s.levels[i].empty()) continue;
      horizon = std::max(horizon, s.levels[i].rbegin()->first +
                                      options_.levels[i].interval_seconds);
    }
  }
  return horizon;
}

size_t SketchStore::Compact(int64_t now) {
  const int64_t horizon = DataHorizon();
  if (horizon == std::numeric_limits<int64_t>::min()) return 0;
  // Clamp against the newest ingested data: a caller clock running
  // ahead of the ingest timestamps must not age still-hot intervals,
  // and INT64_MAX deliberately saturates to pure data-time rollup (the
  // deterministic form checkpoints use).
  const int64_t effective_now = std::min(now, horizon);
  size_t folded = 0;
  for (auto& [name, s] : series_) {
    // Fine → coarse, so very old data cascades through several levels
    // in one pass. Ascending map order keeps the fold deterministic.
    for (size_t i = 0; i + 1 < s.levels.size(); ++i) {
      const int64_t next_width = options_.levels[i + 1].interval_seconds;
      // Aligning the cutoff down to the next level's width means a
      // coarse bucket only ever receives its complete set of finer
      // intervals in a single pass.
      const int64_t cutoff = AlignDown(
          effective_now - options_.levels[i].retention_seconds, next_width);
      auto& fine = s.levels[i];
      auto& coarse = s.levels[i + 1];
      auto it = fine.begin();
      while (it != fine.end() && it->first < cutoff) {
        const int64_t coarse_start = AlignDown(it->first, next_width);
        auto [slot, inserted] = coarse.try_emplace(coarse_start, prototype_);
        (void)slot->second.MergeFrom(it->second);
        it = fine.erase(it);
        ++folded;
        ++rollup_merges_[i + 1];
      }
    }
    const RollupLevel& last = options_.levels.back();
    if (last.retention_seconds > 0) {
      // Only fully-expired buckets go: start < cutoff (both aligned to
      // the level width) implies start + width <= now - retention.
      const int64_t cutoff = AlignDown(
          effective_now - last.retention_seconds, last.interval_seconds);
      auto& tier = s.levels.back();
      auto it = tier.begin();
      while (it != tier.end() && it->first < cutoff) {
        it = tier.erase(it);
        ++folded;
        ++rollup_merges_.back();
      }
    }
  }
  return folded;
}

std::vector<std::string> SketchStore::ListSeries() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

size_t SketchStore::num_intervals() const {
  size_t total = 0;
  for (const auto& [name, s] : series_) {
    for (const auto& tier : s.levels) total += tier.size();
  }
  return total;
}

size_t SketchStore::size_in_bytes() const {
  size_t total = sizeof(*this);
  for (const auto& [name, s] : series_) {
    total += name.size();
    for (const auto& tier : s.levels) {
      for (const auto& [t, sketch] : tier) total += sketch.size_in_bytes();
    }
  }
  return total;
}

std::vector<LevelUsage> SketchStore::LevelStats() const {
  std::vector<LevelUsage> stats(options_.levels.size());
  for (size_t i = 0; i < stats.size(); ++i) {
    stats[i].interval_seconds = options_.levels[i].interval_seconds;
    stats[i].retention_seconds = options_.levels[i].retention_seconds;
    stats[i].rollup_merges = rollup_merges_[i];
  }
  for (const auto& [name, s] : series_) {
    for (size_t i = 0; i < s.levels.size(); ++i) {
      stats[i].num_intervals += s.levels[i].size();
      for (const auto& [t, sketch] : s.levels[i]) {
        stats[i].retained_bytes += sketch.size_in_bytes();
      }
    }
  }
  return stats;
}

}  // namespace dd
