#include "timeseries/sketch_store.h"

#include <algorithm>

namespace dd {

SketchStore::SketchStore(const SketchStoreOptions& options,
                         DDSketch prototype)
    : options_(options), prototype_(std::move(prototype)) {}

Result<SketchStore> SketchStore::Create(const SketchStoreOptions& options) {
  if (options.base_interval_seconds < 1) {
    return Status::InvalidArgument("base interval must be >= 1 second");
  }
  if (options.rollup_factor < 2) {
    return Status::InvalidArgument("rollup factor must be >= 2");
  }
  if (options.raw_retention_seconds < options.base_interval_seconds) {
    return Status::InvalidArgument(
        "raw retention must cover at least one base interval");
  }
  auto prototype = DDSketch::Create(options.sketch);
  if (!prototype.ok()) return prototype.status();
  return SketchStore(options, std::move(prototype).value());
}

Status SketchStore::Ingest(const std::string& series, int64_t timestamp,
                           std::string_view payload) {
  auto decoded = DDSketch::Deserialize(payload);
  if (!decoded.ok()) return decoded.status();
  return IngestSketch(series, timestamp, decoded.value());
}

Status SketchStore::IngestSketch(const std::string& series, int64_t timestamp,
                                 const DDSketch& sketch) {
  // Validate before touching the map so a failed ingest leaves no empty
  // series/interval behind.
  DD_RETURN_IF_ERROR(CheckCompatible(sketch));
  Series& s = series_[series];
  const int64_t start = RawStart(timestamp);
  auto [it, inserted] = s.raw.try_emplace(start, prototype_);
  return it->second.MergeFrom(sketch);
}

Status SketchStore::CheckCompatible(const DDSketch& sketch) const {
  if (!prototype_.mapping().IsCompatibleWith(sketch.mapping())) {
    return Status::Incompatible(
        "sketch parameters do not match the store's configuration");
  }
  return Status::OK();
}

Status SketchStore::IngestValue(const std::string& series, int64_t timestamp,
                                double value) {
  Series& s = series_[series];
  const int64_t start = RawStart(timestamp);
  auto [it, inserted] = s.raw.try_emplace(start, prototype_);
  it->second.Add(value);
  return Status::OK();
}

Status SketchStore::IngestValues(const std::string& series, int64_t timestamp,
                                 std::span<const double> values) {
  if (values.empty()) return Status::OK();
  Series& s = series_[series];
  const int64_t start = RawStart(timestamp);
  auto [it, inserted] = s.raw.try_emplace(start, prototype_);
  it->second.AddBatch(values);
  return Status::OK();
}

void SketchStore::MergeOverlapping(const std::map<int64_t, DDSketch>& tier,
                                   int64_t width, int64_t start, int64_t end,
                                   DDSketch* out) {
  // First bucket possibly overlapping [start, end) begins at or after
  // start - width + 1.
  for (auto it = tier.lower_bound(start - width + 1);
       it != tier.end() && it->first < end; ++it) {
    (void)out->MergeFrom(it->second);  // same parameters by construction
  }
}

Result<DDSketch> SketchStore::QueryRange(const std::string& series,
                                         int64_t start, int64_t end) const {
  if (start >= end) {
    return Status::InvalidArgument("empty time range");
  }
  const auto it = series_.find(series);
  if (it == series_.end()) {
    return Status::InvalidArgument("unknown series: " + series);
  }
  DDSketch merged = prototype_;
  MergeOverlapping(it->second.raw, options_.base_interval_seconds, start, end,
                   &merged);
  MergeOverlapping(it->second.coarse, CoarseWidth(), start, end, &merged);
  return merged;
}

Result<double> SketchStore::QueryQuantile(const std::string& series,
                                          int64_t start, int64_t end,
                                          double q) const {
  auto merged = QueryRange(series, start, end);
  if (!merged.ok()) return merged.status();
  return merged.value().Quantile(q);
}

Result<std::vector<SeriesPoint>> SketchStore::QuerySeries(
    const std::string& series, int64_t start, int64_t end, double q,
    int64_t step_seconds) const {
  if (step_seconds < 1) {
    return Status::InvalidArgument("step must be >= 1 second");
  }
  std::vector<SeriesPoint> points;
  for (int64_t t = start; t < end; t += step_seconds) {
    auto merged = QueryRange(series, t, std::min(t + step_seconds, end));
    if (!merged.ok()) return merged.status();
    if (merged.value().empty()) continue;
    points.push_back({t, merged.value().count(),
                      merged.value().QuantileOrNaN(q)});
  }
  return points;
}

size_t SketchStore::Compact(int64_t now) {
  const int64_t cutoff = RawStart(now - options_.raw_retention_seconds);
  size_t compacted = 0;
  for (auto& [name, s] : series_) {
    auto it = s.raw.begin();
    while (it != s.raw.end() && it->first < cutoff) {
      const int64_t coarse_start = CoarseStart(it->first);
      auto [slot, inserted] = s.coarse.try_emplace(coarse_start, prototype_);
      (void)slot->second.MergeFrom(it->second);
      it = s.raw.erase(it);
      ++compacted;
    }
  }
  return compacted;
}

std::vector<std::string> SketchStore::ListSeries() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

size_t SketchStore::num_intervals() const {
  size_t total = 0;
  for (const auto& [name, s] : series_) {
    total += s.raw.size() + s.coarse.size();
  }
  return total;
}

size_t SketchStore::size_in_bytes() const {
  size_t total = sizeof(*this);
  for (const auto& [name, s] : series_) {
    total += name.size();
    for (const auto& [t, sketch] : s.raw) total += sketch.size_in_bytes();
    for (const auto& [t, sketch] : s.coarse) total += sketch.size_in_bytes();
  }
  return total;
}

}  // namespace dd
