// A miniature monitoring backend: the "central processing system (usually
// backed by a time-series database)" of the paper's introduction, storing
// one DDSketch per (series, time interval).
//
// Design points that only work because DDSketch is fully mergeable:
//  * ingest accepts serialized worker sketches and merges them into the
//    interval's sketch — any number of workers, any arrival order;
//  * range queries merge the covering intervals on the fly, so any
//    aggregation window is answerable with the full accuracy guarantee
//    ("rolling up the sums and counts ... over much larger time periods
//    perfectly accurately" — here for quantiles);
//  * retention ages data down a resolution ladder (e.g. 10s → 1m → 1h)
//    without any accuracy loss: merging six 10s sketches into one 1m
//    bucket yields byte-identical answers at 1m resolution, so queries
//    over rolled-up history return exactly what the raw data would have.
//
// Determinism invariant (load-bearing for replication and recovery): the
// same raw multiset of ingests always folds to the same per-level state.
// Rollup is driven purely by data time — Compact clamps the caller's
// clock to the data horizon — and folds intervals in ascending key
// order, so a primary and a follower that replayed the same WAL bytes
// reach bit-identical ladders when each runs its own rollup.

#ifndef DDSKETCH_TIMESERIES_SKETCH_STORE_H_
#define DDSKETCH_TIMESERIES_SKETCH_STORE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/ddsketch.h"
#include "util/status.h"

namespace dd {

/// One rung of the resolution ladder.
struct RollupLevel {
  /// Width of this level's interval buckets, in seconds. Each level's
  /// interval must be a strict integer multiple of the previous level's.
  int64_t interval_seconds = 0;
  /// How long data stays at this resolution before rolling up into the
  /// next level (counted back from the data horizon, not the wall
  /// clock). 0 means "keep forever" and is only legal on the last level
  /// — on the last level a positive value drops expired buckets
  /// outright (the only lossy operation in the store).
  int64_t retention_seconds = 0;

  friend bool operator==(const RollupLevel& a, const RollupLevel& b) {
    return a.interval_seconds == b.interval_seconds &&
           a.retention_seconds == b.retention_seconds;
  }
};

/// The default ladder: 10s raw for an hour, 1m for a day, 1h forever.
std::vector<RollupLevel> DefaultRollupLevels();

/// Configuration of the store's time geometry.
struct SketchStoreOptions {
  /// Sketch parameters for every stored interval (all must match for
  /// merging; ingested payloads with other parameters are rejected).
  DDSketchConfig sketch;
  /// The resolution ladder, finest first. Empty means "adopt": Create
  /// substitutes DefaultRollupLevels(), and DurableSketchStore::Open
  /// adopts whatever ladder an existing directory was created with.
  std::vector<RollupLevel> levels;
};

/// One point of a graphing query: interval start and the quantile value.
struct SeriesPoint {
  int64_t timestamp;
  uint64_t count;
  double value;
};

/// Per-level usage for STATS reporting and retention accounting.
struct LevelUsage {
  int64_t interval_seconds = 0;
  int64_t retention_seconds = 0;
  /// Interval sketches currently held at this level across all series.
  uint64_t num_intervals = 0;
  /// Cumulative sketches folded INTO this level by rollup (for the last
  /// level with finite retention, also counts buckets dropped from it).
  uint64_t rollup_merges = 0;
  /// Live memory of this level's sketches.
  uint64_t retained_bytes = 0;
};

/// Per-series, per-interval sketch storage with merge-on-read range
/// queries and a lossless multi-resolution rollup ladder. Not
/// thread-safe.
class SketchStore {
 public:
  static Result<SketchStore> Create(const SketchStoreOptions& options);

  /// Validates a ladder: at least one level, positive intervals, each a
  /// strict integer multiple of the previous, intermediate retentions
  /// covering at least one next-level interval, retention 0 only on the
  /// last level. Exposed so flag parsing can reject bad ladders early.
  static Status ValidateLevels(const std::vector<RollupLevel>& levels);

  /// Merges a serialized worker sketch into `series` at `timestamp`.
  /// Fails with Corruption on malformed payloads and Incompatible on
  /// parameter mismatch.
  Status Ingest(const std::string& series, int64_t timestamp,
                std::string_view payload);

  /// Merges an already-decoded worker sketch (the WAL replay path, which
  /// decodes once while validating the record). Fails with Incompatible
  /// on parameter mismatch, without modifying the store.
  Status IngestSketch(const std::string& series, int64_t timestamp,
                      const DDSketch& sketch);

  /// Whether `sketch` can be merged into this store's intervals (same
  /// mapping type and gamma as the configured prototype).
  Status CheckCompatible(const DDSketch& sketch) const;

  /// Convenience single-value ingestion (dashboards, tests).
  Status IngestValue(const std::string& series, int64_t timestamp,
                     double value);

  /// Batch single-value ingestion: one series/interval lookup and one
  /// DDSketch::AddBatch pass for the whole span. All values land in the
  /// interval containing `timestamp` (the WAL group-commit path batches
  /// per series+interval before calling this).
  Status IngestValues(const std::string& series, int64_t timestamp,
                      std::span<const double> values);

  /// Merged sketch over [start, end) for one series. Every datum lives
  /// in exactly one level (rollup moves, never copies), so the planner
  /// simply merges the overlapping buckets of every level — the finest
  /// available resolution for each part of the window, stitched at the
  /// rollup horizons by construction. Fails with InvalidArgument for an
  /// unknown series or an empty window.
  Result<DDSketch> QueryRange(const std::string& series, int64_t start,
                              int64_t end) const;

  /// The q-quantile over [start, end).
  Result<double> QueryQuantile(const std::string& series, int64_t start,
                               int64_t end, double q) const;

  /// The graph query: one q-quantile per `step_seconds` bucket across
  /// [start, end); buckets with no data are skipped.
  Result<std::vector<SeriesPoint>> QuerySeries(const std::string& series,
                                               int64_t start, int64_t end,
                                               double q,
                                               int64_t step_seconds) const;

  /// Ages data down the ladder. `now` is clamped to the data horizon
  /// (the exclusive end of the newest stored interval), so a caller
  /// clock that runs ahead of the ingest timestamps can never roll up
  /// still-hot intervals, and passing INT64_MAX folds purely by data
  /// time — the deterministic form the checkpoint scheduler uses. For
  /// each level, buckets older than `horizon - retention` (aligned down
  /// to the next level's width so coarse buckets fill in one pass)
  /// merge into the next level; on a last level with finite retention,
  /// expired buckets are dropped. Returns the number of interval
  /// sketches folded or dropped. Queries at coarse resolution return
  /// identical results before and after (full mergeability).
  size_t Compact(int64_t now);

  /// Exclusive end of the newest stored interval across all series and
  /// levels; INT64_MIN when the store is empty. Derivable from state
  /// alone, so snapshot reload and WAL replay reproduce it exactly.
  int64_t DataHorizon() const;

  /// Series names currently stored.
  std::vector<std::string> ListSeries() const;

  size_t num_series() const { return series_.size(); }
  /// Interval sketches currently held across all series and levels.
  size_t num_intervals() const;
  /// Total live memory of all stored sketches.
  size_t size_in_bytes() const;

  /// Per-level interval counts, cumulative rollup merges, and retained
  /// bytes (finest level first).
  std::vector<LevelUsage> LevelStats() const;

  const SketchStoreOptions& options() const { return options_; }
  size_t num_levels() const { return options_.levels.size(); }

  /// Start of the finest-level ingestion interval containing
  /// `timestamp`. Public so batching callers (the WAL group commit) can
  /// group records that share an interval before handing them to
  /// IngestValues.
  int64_t RawStart(int64_t timestamp) const {
    return timestamp - Mod(timestamp, options_.levels.front().interval_seconds);
  }

 private:
  friend class SketchStoreSnapshotCodec;  // owns the on-disk snapshot format

  struct Series {
    /// One interval map per ladder level, finest first; sized to
    /// num_levels() on creation. Keys are interval starts, always
    /// aligned to that level's width.
    std::vector<std::map<int64_t, DDSketch>> levels;
  };

  explicit SketchStore(const SketchStoreOptions& options, DDSketch prototype);

  Series& SeriesFor(const std::string& name);
  static int64_t Mod(int64_t x, int64_t m) {
    const int64_t r = x % m;
    return r < 0 ? r + m : r;
  }
  int64_t AlignDown(int64_t timestamp, int64_t width) const {
    return timestamp - Mod(timestamp, width);
  }

  /// Merges every bucket of `tier` overlapping [start, end) into `out`.
  static void MergeOverlapping(const std::map<int64_t, DDSketch>& tier,
                               int64_t width, int64_t start, int64_t end,
                               DDSketch* out);

  SketchStoreOptions options_;
  DDSketch prototype_;  // empty sketch with the configured parameters
  std::map<std::string, Series> series_;
  /// rollup_merges_[i]: sketches folded into level i (plus buckets
  /// dropped from a finite-retention last level). Runtime counters, not
  /// part of snapshotted state.
  std::vector<uint64_t> rollup_merges_;
};

}  // namespace dd

#endif  // DDSKETCH_TIMESERIES_SKETCH_STORE_H_
