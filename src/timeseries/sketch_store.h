// A miniature monitoring backend: the "central processing system (usually
// backed by a time-series database)" of the paper's introduction, storing
// one DDSketch per (series, time interval).
//
// Design points that only work because DDSketch is fully mergeable:
//  * ingest accepts serialized worker sketches and merges them into the
//    interval's sketch — any number of workers, any arrival order;
//  * range queries merge the covering intervals on the fly, so any
//    aggregation window is answerable with the full accuracy guarantee
//    ("rolling up the sums and counts ... over much larger time periods
//    perfectly accurately" — here for quantiles);
//  * compaction rolls raw intervals older than a retention horizon into
//    coarser buckets without any accuracy loss: queries over compacted
//    history return byte-identical answers.

#ifndef DDSKETCH_TIMESERIES_SKETCH_STORE_H_
#define DDSKETCH_TIMESERIES_SKETCH_STORE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/ddsketch.h"
#include "util/status.h"

namespace dd {

/// Configuration of the store's time geometry.
struct SketchStoreOptions {
  /// Sketch parameters for every stored interval (all must match for
  /// merging; ingested payloads with other parameters are rejected).
  DDSketchConfig sketch;
  /// Width of a raw ingestion interval, in seconds.
  int64_t base_interval_seconds = 10;
  /// Raw intervals older than this many seconds are eligible for rollup.
  int64_t raw_retention_seconds = 3600;
  /// Rollup factor: one coarse bucket covers this many raw intervals.
  int rollup_factor = 6;
};

/// One point of a graphing query: interval start and the quantile value.
struct SeriesPoint {
  int64_t timestamp;
  uint64_t count;
  double value;
};

/// Per-series, per-interval sketch storage with merge-on-read range
/// queries and lossless time-based rollup. Not thread-safe.
class SketchStore {
 public:
  static Result<SketchStore> Create(const SketchStoreOptions& options);

  /// Merges a serialized worker sketch into `series` at `timestamp`.
  /// Fails with Corruption on malformed payloads and Incompatible on
  /// parameter mismatch.
  Status Ingest(const std::string& series, int64_t timestamp,
                std::string_view payload);

  /// Merges an already-decoded worker sketch (the WAL replay path, which
  /// decodes once while validating the record). Fails with Incompatible
  /// on parameter mismatch, without modifying the store.
  Status IngestSketch(const std::string& series, int64_t timestamp,
                      const DDSketch& sketch);

  /// Whether `sketch` can be merged into this store's intervals (same
  /// mapping type and gamma as the configured prototype).
  Status CheckCompatible(const DDSketch& sketch) const;

  /// Convenience single-value ingestion (dashboards, tests).
  Status IngestValue(const std::string& series, int64_t timestamp,
                     double value);

  /// Batch single-value ingestion: one series/interval lookup and one
  /// DDSketch::AddBatch pass for the whole span. All values land in the
  /// interval containing `timestamp` (the WAL group-commit path batches
  /// per series+interval before calling this).
  Status IngestValues(const std::string& series, int64_t timestamp,
                      std::span<const double> values);

  /// Merged sketch over [start, end) for one series. Fails with
  /// InvalidArgument for an unknown series or an empty window.
  Result<DDSketch> QueryRange(const std::string& series, int64_t start,
                              int64_t end) const;

  /// The q-quantile over [start, end).
  Result<double> QueryQuantile(const std::string& series, int64_t start,
                               int64_t end, double q) const;

  /// The graph query: one q-quantile per `step_seconds` bucket across
  /// [start, end); buckets with no data are skipped.
  Result<std::vector<SeriesPoint>> QuerySeries(const std::string& series,
                                               int64_t start, int64_t end,
                                               double q,
                                               int64_t step_seconds) const;

  /// Rolls up raw intervals older than `now - raw_retention_seconds` into
  /// coarse buckets. Queries before and after compaction return identical
  /// results (full mergeability); storage shrinks by ~rollup_factor for
  /// the compacted span. Returns the number of raw intervals compacted.
  size_t Compact(int64_t now);

  /// Series names currently stored.
  std::vector<std::string> ListSeries() const;

  size_t num_series() const { return series_.size(); }
  /// Raw + coarse interval sketches currently held across all series.
  size_t num_intervals() const;
  /// Total live memory of all stored sketches.
  size_t size_in_bytes() const;

  const SketchStoreOptions& options() const { return options_; }

  /// Start of the raw ingestion interval containing `timestamp`. Public so
  /// batching callers (the WAL group commit) can group records that share
  /// an interval before handing them to IngestValues.
  int64_t RawStart(int64_t timestamp) const {
    return timestamp - Mod(timestamp, options_.base_interval_seconds);
  }

 private:
  friend class SketchStoreSnapshotCodec;  // owns the on-disk snapshot format

  struct Series {
    std::map<int64_t, DDSketch> raw;     // keyed by interval start
    std::map<int64_t, DDSketch> coarse;  // keyed by coarse-interval start
  };

  explicit SketchStore(const SketchStoreOptions& options, DDSketch prototype);
  int64_t CoarseWidth() const {
    return options_.base_interval_seconds * options_.rollup_factor;
  }
  int64_t CoarseStart(int64_t timestamp) const {
    return timestamp - Mod(timestamp, CoarseWidth());
  }
  static int64_t Mod(int64_t x, int64_t m) {
    const int64_t r = x % m;
    return r < 0 ? r + m : r;
  }

  /// Merges every bucket of `tier` overlapping [start, end) into `out`.
  static void MergeOverlapping(const std::map<int64_t, DDSketch>& tier,
                               int64_t width, int64_t start, int64_t end,
                               DDSketch* out);

  SketchStoreOptions options_;
  DDSketch prototype_;  // empty sketch with the configured parameters
  std::map<std::string, Series> series_;
};

}  // namespace dd

#endif  // DDSKETCH_TIMESERIES_SKETCH_STORE_H_
