#include "timeseries/snapshot.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/ddsketch.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/varint.h"

namespace dd {
namespace {

constexpr char kMagic[4] = {'D', 'D', 'S', 'S'};
constexpr uint8_t kVersionLegacy = 1;  // raw + one coarse tier
constexpr uint8_t kVersion = 2;        // N-level rollup ladder
// Ladders deeper than this are rejected as corruption rather than
// trusted to size allocations (a real ladder has a handful of rungs).
constexpr uint64_t kMaxLevels = 64;

void EncodeTier(const std::map<int64_t, DDSketch>& tier, std::string* out) {
  PutVarint64(out, tier.size());
  for (const auto& [start, sketch] : tier) {
    PutVarintSigned64(out, start);
    const std::string payload = sketch.Serialize();
    PutVarint64(out, payload.size());
    out->append(payload);
  }
}

}  // namespace

/// Befriended by SketchStore; owns the snapshot body layout.
class SketchStoreSnapshotCodec {
 public:
  static std::string EncodeBody(const SketchStore& store, uint64_t epoch) {
    const SketchStoreOptions& options = store.options_;
    std::string body;
    PutVarint64(&body, epoch);
    PutVarint64(&body, options.levels.size());
    for (const RollupLevel& level : options.levels) {
      PutVarint64(&body, static_cast<uint64_t>(level.interval_seconds));
      PutVarint64(&body, static_cast<uint64_t>(level.retention_seconds));
    }
    PutFixedDouble(&body, options.sketch.relative_accuracy);
    body.push_back(static_cast<char>(options.sketch.mapping));
    body.push_back(static_cast<char>(options.sketch.store));
    PutVarint64(&body, static_cast<uint64_t>(options.sketch.max_num_buckets));
    PutVarint64(&body, store.series_.size());
    for (const auto& [name, series] : store.series_) {
      PutVarint64(&body, name.size());
      body.append(name);
      for (size_t i = 0; i < options.levels.size(); ++i) {
        if (i < series.levels.size()) {
          EncodeTier(series.levels[i], &body);
        } else {
          PutVarint64(&body, 0);  // series created but never sized: empty tier
        }
      }
    }
    return body;
  }

  static Result<SnapshotContents> DecodeBody(std::string_view body,
                                             uint8_t version) {
    Slice in(body);
    uint64_t epoch = 0;
    DD_RETURN_IF_ERROR(in.GetVarint64(&epoch));
    if (epoch > UINT32_MAX) {
      return Status::Corruption("snapshot epoch out of range");
    }
    SketchStoreOptions options;
    if (version == kVersionLegacy) {
      // v1 geometry (base interval, raw retention, rollup factor) maps
      // onto the equivalent two-level ladder. The raw retention is
      // raised to at least one coarse interval when needed — v1 allowed
      // retention as short as one base interval, which the ladder
      // validation (an intermediate level must retain a full next-level
      // interval) would reject; keeping data slightly longer is safe.
      uint64_t base = 0, retention = 0, factor = 0;
      DD_RETURN_IF_ERROR(in.GetVarint64(&base));
      DD_RETURN_IF_ERROR(in.GetVarint64(&retention));
      DD_RETURN_IF_ERROR(in.GetVarint64(&factor));
      if (base > INT64_MAX || retention > INT64_MAX || factor > INT32_MAX) {
        return Status::Corruption("snapshot time geometry out of range");
      }
      if (base < 1 || factor < 2 ||
          base > static_cast<uint64_t>(INT64_MAX) / factor) {
        return Status::Corruption("snapshot time geometry invalid");
      }
      const int64_t coarse =
          static_cast<int64_t>(base) * static_cast<int64_t>(factor);
      options.levels = {
          {static_cast<int64_t>(base),
           std::max(static_cast<int64_t>(retention), coarse)},
          {coarse, 0}};
    } else {
      uint64_t n_levels = 0;
      DD_RETURN_IF_ERROR(in.GetVarint64(&n_levels));
      if (n_levels == 0 || n_levels > kMaxLevels) {
        return Status::Corruption("snapshot ladder depth out of range");
      }
      options.levels.reserve(n_levels);
      for (uint64_t i = 0; i < n_levels; ++i) {
        uint64_t interval = 0, retention = 0;
        DD_RETURN_IF_ERROR(in.GetVarint64(&interval));
        DD_RETURN_IF_ERROR(in.GetVarint64(&retention));
        if (interval > INT64_MAX || retention > INT64_MAX) {
          return Status::Corruption("snapshot level geometry out of range");
        }
        options.levels.push_back({static_cast<int64_t>(interval),
                                  static_cast<int64_t>(retention)});
      }
    }
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&options.sketch.relative_accuracy));
    std::string_view tags;
    DD_RETURN_IF_ERROR(in.GetBytes(2, &tags));
    const uint8_t mapping_tag = static_cast<uint8_t>(tags[0]);
    const uint8_t store_tag = static_cast<uint8_t>(tags[1]);
    if (mapping_tag > static_cast<uint8_t>(MappingType::kCubicInterpolated)) {
      return Status::Corruption("snapshot: unknown mapping type tag");
    }
    if (store_tag > static_cast<uint8_t>(StoreType::kSparse)) {
      return Status::Corruption("snapshot: unknown store type tag");
    }
    options.sketch.mapping = static_cast<MappingType>(mapping_tag);
    options.sketch.store = static_cast<StoreType>(store_tag);
    uint64_t max_buckets = 0;
    DD_RETURN_IF_ERROR(in.GetVarint64(&max_buckets));
    if (max_buckets > INT32_MAX) {
      return Status::Corruption("snapshot: max_num_buckets out of range");
    }
    options.sketch.max_num_buckets = static_cast<int32_t>(max_buckets);

    auto store_result = SketchStore::Create(options);
    if (!store_result.ok()) {
      return Status::Corruption("snapshot carries invalid store options: " +
                                store_result.status().message());
    }
    SketchStore store = std::move(store_result).value();
    const size_t n_levels = store.options_.levels.size();

    uint64_t n_series = 0;
    DD_RETURN_IF_ERROR(in.GetVarint64(&n_series));
    for (uint64_t i = 0; i < n_series; ++i) {
      uint64_t name_len = 0;
      DD_RETURN_IF_ERROR(in.GetVarint64(&name_len));
      if (name_len > in.remaining()) {
        return Status::Corruption("snapshot series name overruns payload");
      }
      std::string_view name_bytes;
      DD_RETURN_IF_ERROR(in.GetBytes(name_len, &name_bytes));
      const std::string name(name_bytes);
      if (store.series_.count(name) != 0) {
        return Status::Corruption("snapshot: duplicate series name");
      }
      SketchStore::Series& series = store.series_[name];
      series.levels.resize(n_levels);
      // A v1 body carries exactly two tiers (raw, coarse) which land on
      // the two rungs of the mapped ladder; a v2 body carries one tier
      // per level.
      for (size_t level = 0; level < n_levels; ++level) {
        DD_RETURN_IF_ERROR(
            DecodeTier(&in, store, store.options_.levels[level].interval_seconds,
                       &series.levels[level]));
      }
    }
    if (!in.empty()) {
      return Status::Corruption("trailing bytes after snapshot body");
    }
    return SnapshotContents{std::move(store), epoch};
  }

 private:
  static Status DecodeTier(Slice* in, const SketchStore& store, int64_t width,
                           std::map<int64_t, DDSketch>* tier) {
    uint64_t n = 0;
    DD_RETURN_IF_ERROR(in->GetVarint64(&n));
    for (uint64_t i = 0; i < n; ++i) {
      int64_t start = 0;
      DD_RETURN_IF_ERROR(in->GetVarintSigned64(&start));
      if (SketchStore::Mod(start, width) != 0) {
        return Status::Corruption("snapshot interval start misaligned");
      }
      uint64_t payload_len = 0;
      DD_RETURN_IF_ERROR(in->GetVarint64(&payload_len));
      if (payload_len > in->remaining()) {
        return Status::Corruption("snapshot sketch payload overruns body");
      }
      std::string_view payload;
      DD_RETURN_IF_ERROR(in->GetBytes(payload_len, &payload));
      auto sketch = DDSketch::Deserialize(payload);
      if (!sketch.ok()) return sketch.status();
      DD_RETURN_IF_ERROR(store.CheckCompatible(sketch.value()));
      const auto [it, inserted] =
          tier->emplace(start, std::move(sketch).value());
      if (!inserted) {
        return Status::Corruption("snapshot: duplicate interval start");
      }
    }
    return Status::OK();
  }
};

std::string EncodeSnapshot(const SketchStore& store, uint64_t epoch) {
  const std::string body = SketchStoreSnapshotCodec::EncodeBody(store, epoch);
  std::string out;
  out.reserve(body.size() + sizeof(kMagic) + 1 + sizeof(uint32_t));
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  PutFixed32(&out, Crc32c(body));
  out.append(body);
  return out;
}

Result<SnapshotContents> DecodeSnapshot(std::string_view bytes) {
  Slice in(bytes);
  std::string_view magic;
  DD_RETURN_IF_ERROR(in.GetBytes(sizeof(kMagic), &magic));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad snapshot magic");
  }
  std::string_view version;
  DD_RETURN_IF_ERROR(in.GetBytes(1, &version));
  const uint8_t version_byte = static_cast<uint8_t>(version[0]);
  if (version_byte != kVersion && version_byte != kVersionLegacy) {
    return Status::Corruption("unsupported snapshot version");
  }
  uint32_t crc = 0;
  DD_RETURN_IF_ERROR(in.GetFixed32(&crc));
  std::string_view body;
  DD_RETURN_IF_ERROR(in.GetBytes(in.remaining(), &body));
  if (crc != Crc32c(body)) {
    return Status::Corruption("snapshot checksum mismatch");
  }
  return SketchStoreSnapshotCodec::DecodeBody(body, version_byte);
}

Status WriteSnapshotFile(const SketchStore& store, uint64_t epoch,
                         const std::string& path) {
  return WriteFileAtomic(path, EncodeSnapshot(store, epoch));
}

Result<SnapshotContents> ReadSnapshotFile(const std::string& path) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeSnapshot(bytes.value());
}

}  // namespace dd
