// Full-state snapshot of a SketchStore, the checkpoint half of the
// durability story (the incremental half is timeseries/wal.h).
//
// File layout (varints/doubles as in util/varint; per-interval sketches
// use the DDSketch wire format from core/serialization.cc, so the
// snapshot inherits its compactness and its golden-format pinning):
//
//   magic     4 bytes  "DDSS"
//   version   1 byte   0x02
//   crc       fixed32  CRC-32C of everything after this field
//   body (v2):
//     epoch             varint   WAL generation folded into this snapshot
//     n_levels          varint   rollup ladder, finest first
//     per level:
//       interval        varint   seconds
//       retention       varint   seconds (0 = forever, last level only)
//     alpha             fixed64 double  --+
//     mapping           1 byte            | sketch parameters
//     store type        1 byte            |
//     max_buckets       varint          --+
//     n_series          varint
//     per series (name order):
//       name            varint length + bytes
//       per level (finest first):
//         n_intervals   varint
//         per interval (ascending start):
//           start       signed varint (zigzag)
//           sketch      varint length + DDSketch wire bytes
//
// Version 0x01 (the raw + one-coarse-tier format that predates the
// ladder) still decodes: its geometry maps onto the equivalent
// two-level ladder {base_interval, raw_retention} → {base * factor, ∞}
// with the raw tier as level 0 and the coarse tier as level 1, so v1
// directories open in place with every interval preserved. Encoding
// always writes v2.
//
// Snapshots are written atomically (tmp + rename, util/file_io.h), so a
// reader sees either the previous complete snapshot or the new one. Any
// truncation or bit flip fails decoding with Status::Corruption — the
// whole body is covered by the CRC.

#ifndef DDSKETCH_TIMESERIES_SNAPSHOT_H_
#define DDSKETCH_TIMESERIES_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "timeseries/sketch_store.h"
#include "util/status.h"

namespace dd {

/// A decoded snapshot: the reconstructed store plus the WAL epoch it
/// covers (logs with epoch <= this are already folded in).
struct SnapshotContents {
  SketchStore store;
  uint64_t epoch = 0;
};

/// Serializes the full store state. Deterministic: equal stores encode to
/// identical bytes (series and intervals are iterated in map order).
std::string EncodeSnapshot(const SketchStore& store, uint64_t epoch);

/// Decodes a snapshot image (v2, or v1 mapped onto a two-level ladder).
/// Fails with Corruption on any malformed, truncated, or bit-flipped
/// input.
Result<SnapshotContents> DecodeSnapshot(std::string_view bytes);

/// Encodes and atomically replaces `path`.
Status WriteSnapshotFile(const SketchStore& store, uint64_t epoch,
                         const std::string& path);

/// Reads and decodes `path`.
Result<SnapshotContents> ReadSnapshotFile(const std::string& path);

}  // namespace dd

#endif  // DDSKETCH_TIMESERIES_SNAPSHOT_H_
