#include "timeseries/wal.h"

#include <cstring>

#include "util/crc32.h"
#include "util/varint.h"

namespace dd {
namespace {

constexpr char kMagic[4] = {'D', 'D', 'W', 'L'};
constexpr uint8_t kVersion = 1;

// Upper bound on one record body; real records are a few KB (one worker
// sketch), so anything larger is corruption even before the CRC check.
constexpr uint64_t kMaxRecordBytes = uint64_t{1} << 26;  // 64 MiB

Status DecodeBody(std::string_view body, WalRecord* record) {
  Slice in(body);
  std::string_view type_byte;
  DD_RETURN_IF_ERROR(in.GetBytes(1, &type_byte));
  const uint8_t type = static_cast<uint8_t>(type_byte[0]);
  if (type != static_cast<uint8_t>(WalRecord::Type::kIngestSketch) &&
      type != static_cast<uint8_t>(WalRecord::Type::kIngestValue)) {
    return Status::Corruption("unknown WAL record type");
  }
  record->type = static_cast<WalRecord::Type>(type);
  uint64_t series_len = 0;
  DD_RETURN_IF_ERROR(in.GetVarint64(&series_len));
  if (series_len > in.remaining()) {
    return Status::Corruption("WAL series name overruns record");
  }
  std::string_view series;
  DD_RETURN_IF_ERROR(in.GetBytes(series_len, &series));
  record->series.assign(series);
  DD_RETURN_IF_ERROR(in.GetVarintSigned64(&record->timestamp));
  if (record->type == WalRecord::Type::kIngestSketch) {
    uint64_t payload_len = 0;
    DD_RETURN_IF_ERROR(in.GetVarint64(&payload_len));
    if (payload_len > in.remaining()) {
      return Status::Corruption("WAL payload overruns record");
    }
    std::string_view payload;
    DD_RETURN_IF_ERROR(in.GetBytes(payload_len, &payload));
    record->payload.assign(payload);
    record->value = 0;
  } else {
    DD_RETURN_IF_ERROR(in.GetFixedDouble(&record->value));
    record->payload.clear();
  }
  if (!in.empty()) {
    return Status::Corruption("trailing bytes in WAL record body");
  }
  return Status::OK();
}

}  // namespace

// magic + version + fixed32 epoch + fixed32 crc.
constexpr size_t kHeaderBytes = sizeof(kMagic) + 1 + 2 * sizeof(uint32_t);
static_assert(kHeaderBytes == kWalHeaderBytes,
              "wal.h kWalHeaderBytes must match the encoded header size");

std::string EncodeWalHeader(uint32_t epoch) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  PutFixed32(&out, epoch);
  PutFixed32(&out, Crc32c(out));
  return out;
}

namespace {
Status CheckEpochRange(uint64_t epoch) {
  if (epoch > UINT32_MAX) {
    return Status::InvalidArgument("WAL epoch exceeds fixed32 range");
  }
  return Status::OK();
}
}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(record.type));
  PutVarint64(&body, record.series.size());
  body.append(record.series);
  PutVarintSigned64(&body, record.timestamp);
  if (record.type == WalRecord::Type::kIngestSketch) {
    PutVarint64(&body, record.payload.size());
    body.append(record.payload);
  } else {
    PutFixedDouble(&body, record.value);
  }
  std::string framed;
  framed.reserve(body.size() + kMaxVarintBytes + sizeof(uint32_t));
  PutVarint64(&framed, body.size());
  PutFixed32(&framed, Crc32c(body));
  framed.append(body);
  return framed;
}

Result<WalContents> ReadWal(std::string_view file_bytes, WalRead mode) {
  WalContents contents;
  if (file_bytes.size() < kHeaderBytes) {
    // The header is written and fsynced before any append is
    // acknowledged, so a short file means a crash during log creation.
    if (mode == WalRead::kStrict) {
      return Status::Corruption("truncated WAL header");
    }
    contents.header_valid = false;
    contents.torn_tail = true;
    return contents;
  }
  Slice in(file_bytes);
  std::string_view magic;
  DD_RETURN_IF_ERROR(in.GetBytes(sizeof(kMagic), &magic));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad WAL magic");
  }
  std::string_view version;
  DD_RETURN_IF_ERROR(in.GetBytes(1, &version));
  if (static_cast<uint8_t>(version[0]) != kVersion) {
    return Status::Corruption("unsupported WAL version");
  }
  uint32_t epoch32 = 0;
  DD_RETURN_IF_ERROR(in.GetFixed32(&epoch32));
  contents.epoch = epoch32;
  uint32_t header_crc = 0;
  DD_RETURN_IF_ERROR(in.GetFixed32(&header_crc));
  if (header_crc !=
      Crc32c(file_bytes.substr(0, kHeaderBytes - sizeof(uint32_t)))) {
    return Status::Corruption("WAL header checksum mismatch");
  }
  contents.valid_size = kHeaderBytes;

  while (!in.empty()) {
    // Frame parse: distinguish "runs past EOF" (torn tail) from bit rot.
    Slice frame = in;
    uint64_t body_len = 0;
    const Status len_status = frame.GetVarint64(&body_len);
    bool torn = false;
    std::string_view body;
    uint32_t crc = 0;
    if (!len_status.ok()) {
      torn = true;  // truncated varint at EOF
    } else if (body_len > kMaxRecordBytes) {
      return Status::Corruption("WAL record length implausibly large");
    } else if (!frame.GetFixed32(&crc).ok() ||
               !frame.GetBytes(body_len, &body).ok()) {
      torn = true;  // frame extends past EOF
    }
    if (torn) {
      if (mode == WalRead::kStrict) {
        return Status::Corruption("truncated WAL record");
      }
      contents.torn_tail = true;
      break;
    }
    if (crc != Crc32c(body)) {
      return Status::Corruption("WAL record checksum mismatch");
    }
    WalRecord record;
    DD_RETURN_IF_ERROR(DecodeBody(body, &record));
    contents.records.push_back(std::move(record));
    in = frame;
    contents.valid_size = file_bytes.size() - in.remaining();
  }
  return contents;
}

Result<std::vector<WalRecord>> DecodeWalSegment(std::string_view bytes) {
  std::vector<WalRecord> records;
  Slice in(bytes);
  while (!in.empty()) {
    uint64_t body_len = 0;
    if (!in.GetVarint64(&body_len).ok()) {
      return Status::Corruption("truncated record frame in WAL segment");
    }
    if (body_len > kMaxRecordBytes) {
      return Status::Corruption("WAL segment record length implausibly large");
    }
    uint32_t crc = 0;
    std::string_view body;
    if (!in.GetFixed32(&crc).ok() || !in.GetBytes(body_len, &body).ok()) {
      return Status::Corruption("truncated record frame in WAL segment");
    }
    if (crc != Crc32c(body)) {
      return Status::Corruption("WAL segment record checksum mismatch");
    }
    WalRecord record;
    DD_RETURN_IF_ERROR(DecodeBody(body, &record));
    records.push_back(std::move(record));
  }
  return records;
}

size_t CompleteFramePrefix(std::string_view bytes,
                           uint64_t* split_frame_size) {
  *split_frame_size = 0;
  Slice in(bytes);
  size_t valid = 0;
  while (!in.empty()) {
    Slice frame = in;
    uint64_t body_len = 0;
    if (!frame.GetVarint64(&body_len).ok() || body_len > kMaxRecordBytes) {
      break;
    }
    const uint64_t len_bytes = in.remaining() - frame.remaining();
    uint32_t crc = 0;
    std::string_view body;
    if (!frame.GetFixed32(&crc).ok() || !frame.GetBytes(body_len, &body).ok()) {
      *split_frame_size = len_bytes + sizeof(uint32_t) + body_len;
      break;
    }
    in = frame;
    valid = bytes.size() - in.remaining();
  }
  return valid;
}

Result<WalContents> ReadWalFile(const std::string& path, WalRead mode) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return ReadWal(bytes.value(), mode);
}

Result<WalWriter> WalWriter::Create(const std::string& path, uint64_t epoch) {
  DD_RETURN_IF_ERROR(CheckEpochRange(epoch));
  // Truncate any previous contents, then write the header durably.
  DD_RETURN_IF_ERROR(RemoveFileIfExists(path));
  auto file = AppendOnlyFile::Open(path);
  if (!file.ok()) return file.status();
  WalWriter writer(std::move(file).value(), epoch);
  DD_RETURN_IF_ERROR(
      writer.file_.Append(EncodeWalHeader(static_cast<uint32_t>(epoch))));
  DD_RETURN_IF_ERROR(writer.file_.Sync());
  return writer;
}

Result<WalWriter> WalWriter::OpenExisting(const std::string& path,
                                          uint64_t epoch, uint64_t size) {
  auto file = AppendOnlyFile::Open(path);
  if (!file.ok()) return file.status();
  WalWriter writer(std::move(file).value(), epoch);
  if (writer.file_.size() < size) {
    return Status::Corruption("WAL shrank below its validated prefix");
  }
  if (writer.file_.size() > size) {
    DD_RETURN_IF_ERROR(writer.file_.Truncate(size));  // drop the torn tail
  }
  return writer;
}

Status WalWriter::Append(const WalRecord& record) {
  return file_.Append(EncodeWalRecord(record));
}

Status WalWriter::AppendRaw(std::string_view framed_records) {
  return file_.Append(framed_records);
}

Status WalWriter::Sync() { return file_.Sync(); }

Status WalWriter::TruncateTo(uint64_t offset) {
  if (offset > file_.size()) {
    return Status::Internal("WAL truncate target beyond end of log");
  }
  return file_.Truncate(offset);
}

Status WalWriter::Reset(uint64_t epoch) {
  DD_RETURN_IF_ERROR(CheckEpochRange(epoch));
  DD_RETURN_IF_ERROR(file_.Truncate(0));
  DD_RETURN_IF_ERROR(
      file_.Append(EncodeWalHeader(static_cast<uint32_t>(epoch))));
  DD_RETURN_IF_ERROR(file_.Sync());
  epoch_ = epoch;
  return Status::OK();
}

}  // namespace dd
