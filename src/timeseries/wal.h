// Write-ahead interval log for the durable sketch store.
//
// File layout (multi-byte integers are LEB128 varints from util/varint;
// CRCs are little-endian fixed32 CRC-32C from util/crc32):
//
//   header (13 bytes, fixed-size so a torn header write is
//   distinguishable from bit rot by length alone):
//     magic     4 bytes  "DDWL"
//     version   1 byte   0x01
//     epoch     fixed32  checkpoint generation this log belongs to
//     crc       fixed32  CRC-32C of the preceding header bytes
//   record (repeated until EOF):
//     len       varint   body length in bytes
//     crc       fixed32  CRC-32C of the body bytes
//     body:
//       type    1 byte   1 = serialized-sketch ingest, 2 = single value
//       series  varint length + bytes
//       ts      signed varint (zigzag)
//       type 1: payload  varint length + bytes (DDSketch wire format,
//               core/serialization.cc)
//       type 2: value    fixed64 little-endian double
//
// Recovery semantics: a record whose frame runs past EOF is a torn tail
// (the process died mid-append) — replay stops at the last complete
// record and the tail is truncated away. A CRC mismatch or undecodable
// body on a *complete* frame is bit rot and fails with Corruption. The
// strict mode used by validation and fuzz tests treats every anomaly,
// including a torn tail, as Corruption.
//
// The epoch ties a log to its snapshot (timeseries/snapshot.h): a
// checkpoint writes a snapshot carrying the log's epoch, then resets the
// log to epoch + 1. See durable_store.cc for the recovery protocol.

#ifndef DDSKETCH_TIMESERIES_WAL_H_
#define DDSKETCH_TIMESERIES_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/file_io.h"
#include "util/status.h"

namespace dd {

/// Size of the fixed WAL header (magic + version + fixed32 epoch +
/// fixed32 crc). A log whose size equals this holds no records — the
/// checkpoint scheduler uses that to skip shards with nothing to fold.
inline constexpr uint64_t kWalHeaderBytes = 13;

/// One logged ingest.
struct WalRecord {
  enum class Type : uint8_t {
    kIngestSketch = 1,  ///< a serialized worker sketch
    kIngestValue = 2,   ///< a single raw value
  };

  Type type = Type::kIngestSketch;
  std::string series;
  int64_t timestamp = 0;
  std::string payload;  ///< DDSketch wire bytes (kIngestSketch only)
  double value = 0;     ///< kIngestValue only
};

/// Encodes the file header for a log of generation `epoch` (the header
/// stores epochs as fixed32; WalWriter rejects larger values).
std::string EncodeWalHeader(uint32_t epoch);

/// Encodes one framed record (len + crc + body).
std::string EncodeWalRecord(const WalRecord& record);

/// Outcome of scanning a whole log image.
struct WalContents {
  uint64_t epoch = 0;
  std::vector<WalRecord> records;
  /// Offset one past the last complete record; bytes beyond this are a
  /// torn tail (tolerant mode only — strict mode never reports one).
  uint64_t valid_size = 0;
  bool torn_tail = false;
  /// False when the file ends inside the header itself (a crash during
  /// log creation, before any record could have been acknowledged);
  /// tolerant mode only. epoch/records are meaningless when false.
  bool header_valid = true;
};

/// How ReadWal treats a frame that runs past EOF.
enum class WalRead {
  kTolerateTornTail,  ///< recovery: stop at the last complete record
  kStrict,            ///< validation/fuzz: any anomaly is Corruption
};

/// Parses an entire log image. CRC mismatches and undecodable bodies are
/// always Corruption; see WalRead for the torn-tail policy.
Result<WalContents> ReadWal(std::string_view file_bytes, WalRead mode);

/// ReadWal over a file on disk.
Result<WalContents> ReadWalFile(const std::string& path, WalRead mode);

/// Parses a headerless run of framed records — the payload of a
/// replication WAL-SEGMENT frame, which ships raw log bytes from some
/// record boundary onward (server/replication.h). Strict: segments are
/// CRC-protected end to end by the network frame, so any anomaly
/// (truncated frame, bad record CRC, undecodable body) is Corruption.
Result<std::vector<WalRecord>> DecodeWalSegment(std::string_view bytes);

/// Length of the longest prefix of `bytes` made of complete record
/// frames (no CRC or body validation — boundary arithmetic only). When
/// the prefix stops at a frame whose length header parses but whose body
/// runs past the end, *split_frame_size receives that frame's total
/// framed size (0 otherwise). The replication shipper uses this to trim
/// a byte-capped WAL read to a record boundary, re-reading a split frame
/// whole.
size_t CompleteFramePrefix(std::string_view bytes,
                           uint64_t* split_frame_size);

/// Appends framed records to a log file. Creation writes the header
/// durably; each Append pushes the record to the OS (process-crash safe)
/// and Sync() makes it power-loss safe.
class WalWriter {
 public:
  /// Creates or truncates `path` as an empty epoch-`epoch` log.
  static Result<WalWriter> Create(const std::string& path, uint64_t epoch);

  /// Opens an existing log for appending at `size` (the valid prefix
  /// established by ReadWal; any torn tail beyond it is truncated away).
  static Result<WalWriter> OpenExisting(const std::string& path,
                                        uint64_t epoch, uint64_t size);

  Status Append(const WalRecord& record);

  /// Appends already-framed record bytes verbatim (a replicated WAL
  /// segment). The caller must have validated them with DecodeWalSegment
  /// first — the log must only ever contain records that replay cleanly.
  Status AppendRaw(std::string_view framed_records);

  /// fsync. Call after Append (or a batch) for power-loss durability.
  Status Sync();

  /// Empties the log and starts generation `epoch` (post-checkpoint).
  Status Reset(uint64_t epoch);

  /// Truncates back to `offset` (a record boundary captured from
  /// offset() before a batch of appends). Repairs the log after a
  /// failed multi-record append so later appends cannot land behind a
  /// torn frame, where recovery's torn-tail scan would discard them.
  Status TruncateTo(uint64_t offset);

  /// Current file size; record boundaries (offset after each Append) are
  /// the crash-consistent recovery points.
  uint64_t offset() const noexcept { return file_.size(); }

  uint64_t epoch() const noexcept { return epoch_; }

 private:
  WalWriter(AppendOnlyFile file, uint64_t epoch)
      : file_(std::move(file)), epoch_(epoch) {}

  AppendOnlyFile file_;
  uint64_t epoch_;
};

}  // namespace dd

#endif  // DDSKETCH_TIMESERIES_WAL_H_
