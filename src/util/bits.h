// Low-level bit manipulation helpers shared by the index mappings
// (core/mapping.h) and by HDR Histogram's power-of-two bucketing.
//
// The "fast" DDSketch mappings extract the IEEE-754 exponent directly from
// the bit pattern of a double, which gives log2 floor/significand for free
// (paper §4: "mappings [that] make the most of the binary representation of
// floating-point values, which provides a costless way to evaluate the
// logarithm to the base 2").

#ifndef DDSKETCH_UTIL_BITS_H_
#define DDSKETCH_UTIL_BITS_H_

#include <bit>
#include <cstdint>
#include <cstring>

namespace dd {

/// Reinterprets a double's bits as a u64 (no aliasing UB).
inline uint64_t DoubleToBits(double value) noexcept {
  return std::bit_cast<uint64_t>(value);
}

/// Reinterprets a u64 bit pattern as a double.
inline double BitsToDouble(uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

inline constexpr uint64_t kExponentMask = 0x7ff0000000000000ULL;
inline constexpr uint64_t kSignificandMask = 0x000fffffffffffffULL;
inline constexpr int kExponentShift = 52;
inline constexpr int kExponentBias = 1023;

/// Unbiased IEEE-754 exponent of a finite positive double, i.e.
/// floor(log2(value)) for normal values. Subnormals are handled by
/// normalizing first (they only arise below ~2.2e-308).
inline int GetExponent(double value) noexcept {
  const uint64_t bits = DoubleToBits(value);
  int exponent =
      static_cast<int>((bits & kExponentMask) >> kExponentShift) - kExponentBias;
  if (exponent == -kExponentBias) {
    // Subnormal: value = significand * 2^-1074.
    const uint64_t significand = bits & kSignificandMask;
    if (significand == 0) return -kExponentBias;  // value == 0
    exponent -= std::countl_zero(significand) - (64 - kExponentShift);
  }
  return exponent;
}

/// The significand of a positive normal double scaled into [1, 2).
inline double GetSignificandPlusOne(double value) noexcept {
  const uint64_t bits = DoubleToBits(value);
  return BitsToDouble((bits & kSignificandMask) | 0x3ff0000000000000ULL);
}

/// Builds a double from an unbiased exponent and a significand-plus-one in
/// [1, 2): returns significandPlusOne * 2^exponent. Inverse of the pair
/// (GetExponent, GetSignificandPlusOne) for normal values.
inline double BuildDouble(int exponent, double significand_plus_one) noexcept {
  const uint64_t exp_bits =
      static_cast<uint64_t>(exponent + kExponentBias) << kExponentShift;
  const uint64_t sig_bits = DoubleToBits(significand_plus_one) & kSignificandMask;
  return BitsToDouble(exp_bits | sig_bits);
}

/// floor(log2(x)) for x >= 1; 0 for x == 0. Used by HDR bucket indexing.
inline int FloorLog2(uint64_t x) noexcept {
  return x == 0 ? 0 : 63 - std::countl_zero(x);
}

/// Smallest power of two >= x (x <= 2^63). RoundUpToPowerOfTwo(0) == 1.
inline uint64_t RoundUpToPowerOfTwo(uint64_t x) noexcept {
  return x <= 1 ? 1 : (uint64_t{1} << (64 - std::countl_zero(x - 1)));
}

}  // namespace dd

#endif  // DDSKETCH_UTIL_BITS_H_
