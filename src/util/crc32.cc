#include "util/crc32.h"

#include <array>

namespace dd {
namespace {

// Reflected CRC-32C polynomial (iSCSI / RocksDB / LevelDB).
constexpr uint32_t kPolynomial = 0x82f63b78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(uint32_t crc, std::string_view data) noexcept {
  crc = ~crc;
  for (const char c : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(c)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace dd
