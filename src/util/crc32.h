// CRC-32C (Castagnoli) checksums framing the on-disk persistence formats
// (timeseries/wal.cc, timeseries/snapshot.cc). The wire format for sketches
// shipped over the network (core/serialization.cc) stays checksum-free —
// transport integrity is the carrier's job — but bytes that sit on disk
// must detect bit rot and torn writes themselves.

#ifndef DDSKETCH_UTIL_CRC32_H_
#define DDSKETCH_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace dd {

/// CRC-32C of `data` continued from `crc` (pass 0 to start a new checksum).
/// Slice-and-continue composes: Crc32c(Crc32c(0, a), b) == Crc32c(0, a + b).
uint32_t Crc32c(uint32_t crc, std::string_view data) noexcept;

/// CRC-32C of a whole buffer.
inline uint32_t Crc32c(std::string_view data) noexcept {
  return Crc32c(0, data);
}

}  // namespace dd

#endif  // DDSKETCH_UTIL_CRC32_H_
