#include "util/dir_layout.h"

#include <cstdlib>

#include "util/file_io.h"

namespace dd {

std::string ShardSubdir(const std::string& data_dir, size_t shard) {
  return data_dir + "/shard-" + std::to_string(shard);
}

std::string ShardManifestPath(const std::string& data_dir) {
  return data_dir + "/SHARDS";
}

Result<size_t> ReadShardManifest(const std::string& data_dir) {
  const std::string path = ShardManifestPath(data_dir);
  if (!FileExists(path)) return size_t{0};
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& text = contents.value();
  constexpr std::string_view kPrefix = "shards=";
  if (text.compare(0, kPrefix.size(), kPrefix) != 0) {
    return Status::Corruption("shard manifest is malformed: " + path);
  }
  char* end = nullptr;
  const char* digits = text.c_str() + kPrefix.size();
  const unsigned long long n = std::strtoull(digits, &end, 10);
  // Only a trailing newline may follow the count.
  if (end == digits || (*end != '\0' && (*end != '\n' || end[1] != '\0'))) {
    return Status::Corruption("shard manifest is malformed: " + path);
  }
  if (n < 1 || n > kMaxShards) {
    return Status::Corruption("shard manifest count out of range: " + path);
  }
  return static_cast<size_t>(n);
}

Status WriteShardManifest(const std::string& data_dir, size_t shards) {
  if (shards < 1 || shards > kMaxShards) {
    return Status::InvalidArgument("shard count out of range");
  }
  return WriteFileAtomic(ShardManifestPath(data_dir),
                         "shards=" + std::to_string(shards) + "\n");
}

uint64_t ShardHash(std::string_view series) noexcept {
  // FNV-1a, 64-bit; offset basis and prime from the FNV reference.
  uint64_t h = 14695981039346656037ull;
  for (const char c : series) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace dd
