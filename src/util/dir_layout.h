// Data-directory layout helpers for the sharded durable store.
//
// A sharded data directory looks like
//
//   <dir>/SHARDS            the shard manifest ("shards=<N>\n")
//   <dir>/shard-0/          one DurableSketchStore directory per shard
//   ...
//   <dir>/shard-<N-1>/
//
// while a legacy (PR 2-4) single-store directory keeps its flat layout
// (`wal.log` / `snapshot.dds` / `LOCK` directly under <dir>) and has no
// manifest. The manifest is written atomically once at creation and
// never changes: re-splitting an existing directory would re-route
// series to different shards and tear their histories apart, so openers
// treat a count mismatch as Incompatible instead of adopting it.
//
// The series -> shard route is a stable 64-bit FNV-1a hash, pinned here
// so every writer (sketchd, ddsketch_cli, tests) routes identically
// forever — the hash is part of the on-disk contract, documented in
// docs/OPERATIONS.md.

#ifndef DDSKETCH_UTIL_DIR_LAYOUT_H_
#define DDSKETCH_UTIL_DIR_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace dd {

/// Upper bound on the shard count a manifest may carry; anything larger
/// is treated as a corrupt manifest rather than an instruction to open
/// thousands of stores.
inline constexpr size_t kMaxShards = 1024;

/// `<dir>/shard-<k>` — the per-shard store directory.
std::string ShardSubdir(const std::string& data_dir, size_t shard);

/// `<dir>/SHARDS` — the shard-count manifest.
std::string ShardManifestPath(const std::string& data_dir);

/// Reads the manifest. Returns 0 when the file does not exist (legacy or
/// fresh directory); fails with Corruption when it exists but does not
/// parse or carries a count outside [1, kMaxShards].
Result<size_t> ReadShardManifest(const std::string& data_dir);

/// Writes the manifest atomically (tmp + fsync + rename).
Status WriteShardManifest(const std::string& data_dir, size_t shards);

/// Stable 64-bit FNV-1a over the series name. The shard route is
/// `ShardHash(series) % num_shards`; changing this function would orphan
/// every sharded directory ever written.
uint64_t ShardHash(std::string_view series) noexcept;

}  // namespace dd

#endif  // DDSKETCH_UTIL_DIR_LAYOUT_H_
