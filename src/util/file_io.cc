#include "util/file_io.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace dd {
namespace {

std::atomic<uint64_t> g_fsync_count{0};

/// Every fsync in this file goes through here so TotalFsyncCount() stays
/// an exact flush census.
int CountedFsync(int fd) {
  g_fsync_count.fetch_add(1, std::memory_order_relaxed);
  return ::fsync(fd);
}

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

/// Opens the parent directory of `path` and fsyncs it, making a rename or
/// create in that directory durable.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::Internal(Errno("open dir", dir));
  const int rc = CountedFsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal(Errno("fsync dir", dir));
  return Status::OK();
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

}  // namespace

uint64_t TotalFsyncCount() {
  return g_fsync_count.load(std::memory_order_relaxed);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status CreateDirIfMissing(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::InvalidArgument(Errno("mkdir", path));
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::InvalidArgument(Errno("open", path));
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::Internal(Errno("read", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::InvalidArgument(Errno("open", tmp));
  Status status = WriteAll(fd, contents, tmp);
  if (status.ok() && CountedFsync(fd) != 0) {
    status = Status::Internal(Errno("fsync", tmp));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::Internal(Errno("close", tmp));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_status = Status::Internal(Errno("rename", path));
    ::unlink(tmp.c_str());
    return rename_status;
  }
  return SyncParentDir(path);
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) {
    return Status::OK();
  }
  return Status::Internal(Errno("unlink", path));
}

Result<FileLock> FileLock::Acquire(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Status::InvalidArgument(Errno("open", path));
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::ResourceExhausted("locked by another process: " + path);
  }
  return FileLock(fd);
}

FileLock::FileLock(FileLock&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);  // closing releases the flock
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

FileLock::~FileLock() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> FileLock::Read() const {
  std::string contents;
  char buf[4096];
  off_t off = 0;
  for (;;) {
    const ssize_t n = ::pread(fd_, buf, sizeof(buf), off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("pread", "lock file"));
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
    off += n;
  }
  return contents;
}

Status FileLock::Write(std::string_view contents) {
  // In place on the flock'd fd — see the header comment for why a
  // tmp+rename replacement would break the lock.
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::pwrite(fd_, contents.data() + written, contents.size() - written,
                 static_cast<off_t>(written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("pwrite", "lock file"));
    }
    written += static_cast<size_t>(n);
  }
  if (::ftruncate(fd_, static_cast<off_t>(contents.size())) != 0) {
    return Status::Internal(Errno("ftruncate", "lock file"));
  }
  if (CountedFsync(fd_) != 0) {
    return Status::Internal(Errno("fsync", "lock file"));
  }
  return Status::OK();
}

Result<AppendOnlyFile> AppendOnlyFile::Open(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Status::InvalidArgument(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::Internal(Errno("fstat", path));
    ::close(fd);
    return status;
  }
  return AppendOnlyFile(path, fd, static_cast<uint64_t>(st.st_size));
}

AppendOnlyFile::AppendOnlyFile(AppendOnlyFile&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_), size_(other.size_) {
  other.fd_ = -1;
}

AppendOnlyFile& AppendOnlyFile::operator=(AppendOnlyFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    size_ = other.size_;
    other.fd_ = -1;
  }
  return *this;
}

AppendOnlyFile::~AppendOnlyFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendOnlyFile::Append(std::string_view data) {
  DD_RETURN_IF_ERROR(WriteAll(fd_, data, path_));
  size_ += data.size();
  return Status::OK();
}

Status AppendOnlyFile::Sync() {
  if (CountedFsync(fd_) != 0) return Status::Internal(Errno("fsync", path_));
  return Status::OK();
}

Status AppendOnlyFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::Internal(Errno("ftruncate", path_));
  }
  size_ = size;
  return Status::OK();
}

}  // namespace dd
