// Small POSIX file-I/O layer with Status errors, serving the persistence
// code (timeseries/wal.cc, timeseries/snapshot.cc). Two durability idioms:
//
//  * AppendOnlyFile — an append cursor for the write-ahead log. Append()
//    pushes bytes to the OS immediately (surviving a process crash);
//    Sync() additionally fsyncs (surviving a machine crash).
//  * WriteFileAtomic — tmp-file + fsync + rename, so readers observe either
//    the old file or the complete new one, never a torn write. Used for
//    snapshots.

#ifndef DDSKETCH_UTIL_FILE_IO_H_
#define DDSKETCH_UTIL_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace dd {

/// Process-wide count of fsync(2) calls issued through this layer
/// (AppendOnlyFile::Sync, WriteFileAtomic, directory syncs). Monotonic and
/// thread-safe. Lets tests assert batching behavior (group commit must
/// turn N record flushes into one) and tools report flush rates.
uint64_t TotalFsyncCount();

/// True iff `path` names an existing file system entry.
bool FileExists(const std::string& path);

/// Creates `path` as a directory if missing (one level; parents must
/// exist). OK when the directory already exists.
Status CreateDirIfMissing(const std::string& path);

/// Reads an entire file. Fails with InvalidArgument when the file cannot
/// be opened.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `contents`: writes `path + ".tmp"`,
/// fsyncs it, renames it over `path`, and fsyncs the parent directory so
/// the rename itself is durable.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Removes a file; OK when it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// An exclusive advisory lock on a lock file (flock), serializing access
/// to a data directory across processes. Released on destruction.
///
/// The lock file doubles as the durable home of the replication fencing
/// token (timeseries/durable_store.h): Read/Write operate on the flock'd
/// fd itself, in place (pwrite + ftruncate + fsync). They must NOT go
/// through WriteFileAtomic — its rename would swap a new inode under the
/// path while the flock stays on the old one, so the next Acquire would
/// lock a different file than the one this process holds.
class FileLock {
 public:
  /// Creates/opens `path` and takes the lock without blocking. Fails
  /// with ResourceExhausted when another process holds it.
  static Result<FileLock> Acquire(const std::string& path);

  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock();

  /// Reads the whole lock-file contents (empty for a fresh lock file).
  Result<std::string> Read() const;

  /// Replaces the lock-file contents in place and fsyncs, keeping the
  /// flock'd inode. Durable when this returns OK.
  Status Write(std::string_view contents);

 private:
  explicit FileLock(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// An append-only file handle (creates the file when absent). Writes are
/// unbuffered in user space: after Append() returns OK the bytes are in
/// the page cache and survive a process crash. Call Sync() to survive
/// power loss.
class AppendOnlyFile {
 public:
  static Result<AppendOnlyFile> Open(const std::string& path);

  AppendOnlyFile(AppendOnlyFile&& other) noexcept;
  AppendOnlyFile& operator=(AppendOnlyFile&& other) noexcept;
  AppendOnlyFile(const AppendOnlyFile&) = delete;
  AppendOnlyFile& operator=(const AppendOnlyFile&) = delete;
  ~AppendOnlyFile();

  /// Appends all of `data`; the offset advances only on success.
  Status Append(std::string_view data);

  /// fsync — flush device caches so appended bytes survive power loss.
  Status Sync();

  /// Truncates the file to `size` and repositions the append cursor. Used
  /// when resetting the WAL after a checkpoint.
  Status Truncate(uint64_t size);

  /// Bytes in the file (append offset).
  uint64_t size() const noexcept { return size_; }

  const std::string& path() const noexcept { return path_; }

 private:
  AppendOnlyFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_ = -1;
  uint64_t size_ = 0;
};

}  // namespace dd

#endif  // DDSKETCH_UTIL_FILE_IO_H_
