// Deterministic, seedable pseudo-random generator (xoshiro256++) used by
// every workload generator. We do not use std::mt19937_64 because its
// distributions are implementation-defined, which would make the figure
// harness outputs differ across standard libraries; here both the engine and
// the distribution transforms (data/distributions.h) are fully specified, so
// a seed pins down a data set exactly on every platform.

#ifndef DDSKETCH_UTIL_RNG_H_
#define DDSKETCH_UTIL_RNG_H_

#include <cstdint>

namespace dd {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference
/// implementation, ported). 256-bit state, 64-bit output, period 2^256-1.
class Rng {
 public:
  /// Seeds the state from a single 64-bit seed via splitmix64, the
  /// initialization recommended by the xoshiro authors.
  explicit Rng(uint64_t seed) noexcept { Seed(seed); }

  /// Re-seeds in place.
  void Seed(uint64_t seed) noexcept {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) state_[i] = SplitMix64(&x);
  }

  /// Next 64 uniformly distributed bits.
  uint64_t NextU64() noexcept {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 random mantissa bits, never exactly 1.
  double NextDouble() noexcept {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]: never exactly 0, safe as a log() argument.
  double NextDoubleOpenZero() noexcept {
    return (static_cast<double>(NextU64() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply-shift; retry on the biased low region.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) noexcept {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace dd

#endif  // DDSKETCH_UTIL_RNG_H_
