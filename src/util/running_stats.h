// Streaming count/sum/min/max/mean/variance accumulator.
//
// This is the "simple summary statistics" strawman of the paper's
// introduction: workers keep counts, sums and sums of squares and the
// monitoring system aggregates them. It is exact and trivially mergeable —
// and Figure 2 of the paper (reproduced by bench_fig2_mean_vs_quantiles)
// shows why it is not enough for skewed latency data.

#ifndef DDSKETCH_UTIL_RUNNING_STATS_H_
#define DDSKETCH_UTIL_RUNNING_STATS_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace dd {

/// Exact, mergeable first/second-moment summary of a stream.
/// Uses Welford/Chan updates so variance stays numerically stable even for
/// long streams of similar values.
class RunningStats {
 public:
  RunningStats() noexcept = default;

  /// Adds one observation.
  void Add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator (Chan et al. pairwise update). The result is
  /// identical (up to FP rounding) to having added both streams to one
  /// accumulator — the "full mergeability" baseline DDSketch must match.
  void Merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  /// Number of observations.
  uint64_t count() const noexcept { return count_; }
  /// Sum of observations (0 when empty).
  double sum() const noexcept { return sum_; }
  /// Arithmetic mean (NaN when empty).
  double mean() const noexcept {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : mean_;
  }
  /// Population variance (NaN when empty).
  double variance() const noexcept {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                       : m2_ / static_cast<double>(count_);
  }
  /// Population standard deviation (NaN when empty).
  double stddev() const noexcept { return std::sqrt(variance()); }
  /// Minimum observation (+inf when empty).
  double min() const noexcept { return min_; }
  /// Maximum observation (-inf when empty).
  double max() const noexcept { return max_; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dd

#endif  // DDSKETCH_UTIL_RUNNING_STATS_H_
