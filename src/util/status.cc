#include "util/status.h"

namespace dd {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kIncompatible:
      return "INCOMPATIBLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kBusy:
      return "BUSY";
    case StatusCode::kFenced:
      return "FENCED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dd
