// Status / Result: exception-free error handling for fallible operations
// (construction with invalid parameters, decoding corrupt payloads, ...).
// Hot paths (insert/merge/query) never allocate or throw; only cold paths
// return Status.

#ifndef DDSKETCH_UTIL_STATUS_H_
#define DDSKETCH_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dd {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,  ///< caller supplied an out-of-domain parameter
  kOutOfRange = 2,       ///< value outside the representable/indexable range
  kCorruption = 3,       ///< malformed serialized payload
  kIncompatible = 4,     ///< sketches with mismatched parameters
  kResourceExhausted = 5,///< a configured size limit would be exceeded
  kInternal = 6,         ///< invariant violation (bug)
  kBusy = 7,             ///< transient overload; retry after backoff
  kFenced = 8,           ///< writer lost the fencing token; not retryable
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// Cheap, movable success/error value. OK statuses carry no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}

  /// Constructs an error status with a diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status::OK() for success");
  }

  /// Named constructors, one per category.
  static Status OK() noexcept { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Incompatible(std::string msg) {
    return Status(StatusCode::kIncompatible, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status Fenced(std::string msg) {
    return Status(StatusCode::kFenced, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  /// The failure category (kOk on success).
  StatusCode code() const noexcept { return code_; }
  /// Diagnostic message; empty for OK statuses.
  const std::string& message() const noexcept { return message_; }
  /// "OK" or "<CODE>: <message>" for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const noexcept {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error sum type in the RocksDB/Arrow `StatusOr` style.
///
/// Usage:
///   Result<DDSketch> r = DDSketch::Create(config);
///   if (!r.ok()) return r.status();
///   DDSketch sketch = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  /// True iff a value is present.
  bool ok() const noexcept { return value_.has_value(); }
  /// The error status (OK if a value is present).
  const Status& status() const noexcept { return status_; }

  /// Access the contained value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ present
};

}  // namespace dd

/// Propagates a non-OK Status from the current function (RocksDB idiom).
#define DD_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::dd::Status _dd_status = (expr);             \
    if (!_dd_status.ok()) return _dd_status;      \
  } while (false)

#endif  // DDSKETCH_UTIL_STATUS_H_
