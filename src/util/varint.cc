#include "util/varint.h"

#include <cstring>

namespace dd {

void PutVarint64(std::string* out, uint64_t value) {
  char buf[kMaxVarintBytes];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  out->append(buf, n);
}

void PutVarintSigned64(std::string* out, int64_t value) {
  PutVarint64(out, ZigZagEncode(value));
}

void PutFixedDouble(std::string* out, double value) {
  char buf[sizeof(double)];
  std::memcpy(buf, &value, sizeof(double));
  out->append(buf, sizeof(double));
}

void PutFixed32(std::string* out, uint32_t value) {
  char buf[sizeof(uint32_t)];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  out->append(buf, sizeof(buf));
}

Status Slice::GetVarint64(uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (data_.empty()) {
      return Status::Corruption("truncated varint");
    }
    const uint8_t byte = static_cast<uint8_t>(data_.front());
    data_.remove_prefix(1);
    if (shift == 63 && (byte & 0x7e) != 0) {
      return Status::Corruption("varint overflows 64 bits");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint longer than 10 bytes");
}

Status Slice::GetVarintSigned64(int64_t* value) {
  uint64_t raw = 0;
  DD_RETURN_IF_ERROR(GetVarint64(&raw));
  *value = ZigZagDecode(raw);
  return Status::OK();
}

Status Slice::GetFixedDouble(double* value) {
  if (data_.size() < sizeof(double)) {
    return Status::Corruption("truncated double");
  }
  std::memcpy(value, data_.data(), sizeof(double));
  data_.remove_prefix(sizeof(double));
  return Status::OK();
}

Status Slice::GetFixed32(uint32_t* value) {
  if (data_.size() < sizeof(uint32_t)) {
    return Status::Corruption("truncated fixed32");
  }
  *value = static_cast<uint32_t>(static_cast<uint8_t>(data_[0])) |
           static_cast<uint32_t>(static_cast<uint8_t>(data_[1])) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(data_[2])) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(data_[3])) << 24;
  data_.remove_prefix(sizeof(uint32_t));
  return Status::OK();
}

Status Slice::GetBytes(size_t n, std::string_view* out) {
  if (data_.size() < n) {
    return Status::Corruption("truncated byte span");
  }
  *out = data_.substr(0, n);
  data_.remove_prefix(n);
  return Status::OK();
}

}  // namespace dd
