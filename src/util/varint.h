// LEB128 varint and zigzag codecs used by the sketch binary serialization
// format (core/serialization.cc). Bucket indices are small signed integers
// and counts are small unsigned integers most of the time, so varints keep
// serialized sketches compact — this matters because the paper's use case
// ships sketches over the network every few seconds.

#ifndef DDSKETCH_UTIL_VARINT_H_
#define DDSKETCH_UTIL_VARINT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace dd {

/// Maximum encoded size of a 64-bit varint.
inline constexpr int kMaxVarintBytes = 10;

/// Appends an unsigned LEB128 varint to `out`.
void PutVarint64(std::string* out, uint64_t value);

/// Appends a zigzag-encoded signed varint to `out`.
void PutVarintSigned64(std::string* out, int64_t value);

/// Appends a raw little-endian double (8 bytes) to `out`.
void PutFixedDouble(std::string* out, double value);

/// Appends a raw little-endian uint32 (4 bytes) to `out` — used for CRC
/// fields in the on-disk formats, which must stay fixed-width so framing
/// survives arbitrary corruption of the checksummed bytes.
void PutFixed32(std::string* out, uint32_t value);

/// A consuming read cursor over a serialized payload. All Get* methods
/// return Corruption on truncated or malformed input and leave the cursor
/// position unspecified afterwards.
class Slice {
 public:
  explicit Slice(std::string_view data) noexcept : data_(data) {}

  /// Bytes not yet consumed.
  size_t remaining() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Reads an unsigned LEB128 varint.
  Status GetVarint64(uint64_t* value);
  /// Reads a zigzag-encoded signed varint.
  Status GetVarintSigned64(int64_t* value);
  /// Reads a raw little-endian double.
  Status GetFixedDouble(double* value);
  /// Reads a raw little-endian uint32.
  Status GetFixed32(uint32_t* value);
  /// Reads `n` raw bytes into `out`.
  Status GetBytes(size_t n, std::string_view* out);

 private:
  std::string_view data_;
};

/// Zigzag-maps a signed integer to unsigned so small magnitudes encode small.
inline uint64_t ZigZagEncode(int64_t v) noexcept {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

/// Inverse of ZigZagEncode.
inline int64_t ZigZagDecode(uint64_t v) noexcept {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace dd

#endif  // DDSKETCH_UTIL_VARINT_H_
