// Property suite for the paper's central claim: DDSketch is an
// alpha-accurate (q0, 1)-sketch. Swept over data distributions, accuracy
// parameters, and mapping schemes with parameterized gtest.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/ddsketch.h"
#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

struct NamedDistribution {
  const char* name;
  std::unique_ptr<Distribution> (*make)();
};

std::unique_ptr<Distribution> MakeUnitPareto() {
  return std::make_unique<Pareto>(1.0, 1.0);
}
std::unique_ptr<Distribution> MakeSteepPareto() {
  return std::make_unique<Pareto>(3.0, 10.0);
}
std::unique_ptr<Distribution> MakeExp() {
  return std::make_unique<Exponential>(0.01);
}
std::unique_ptr<Distribution> MakeLognormalWide() {
  return std::make_unique<Lognormal>(0.0, 3.0);
}
std::unique_ptr<Distribution> MakeUniformTiny() {
  return std::make_unique<Uniform>(1e-6, 2e-6);
}
std::unique_ptr<Distribution> MakeUniformHuge() {
  return std::make_unique<Uniform>(1e12, 5e12);
}
std::unique_ptr<Distribution> MakeWeibullHeavy() {
  return std::make_unique<Weibull>(0.5, 100.0);
}
std::unique_ptr<Distribution> MakeSpanLike() {
  return MakeDataset(DatasetId::kSpan);
}

const NamedDistribution kDistributions[] = {
    {"pareto11", MakeUnitPareto},   {"pareto3", MakeSteepPareto},
    {"exp", MakeExp},               {"lognormal_wide", MakeLognormalWide},
    {"uniform_tiny", MakeUniformTiny}, {"uniform_huge", MakeUniformHuge},
    {"weibull_heavy", MakeWeibullHeavy}, {"span", MakeSpanLike},
};

using Param = std::tuple<int /*distribution idx*/, double /*alpha*/,
                         MappingType>;

class AccuracyPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(AccuracyPropertyTest, AllQuantilesWithinAlpha) {
  const auto& dist = kDistributions[std::get<0>(GetParam())];
  const double alpha = std::get<1>(GetParam());
  const MappingType mapping = std::get<2>(GetParam());

  DDSketchConfig config;
  config.relative_accuracy = alpha;
  config.mapping = mapping;
  config.store = StoreType::kUnboundedDense;  // no collapse: pure guarantee
  config.max_num_buckets = 0;
  auto r = DDSketch::Create(config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  DDSketch sketch = std::move(r).value();

  const auto data = GenerateN(*dist.make(), 30000, /*seed=*/1000 + 7 *
                              static_cast<uint64_t>(std::get<0>(GetParam())));
  for (double x : data) sketch.Add(x);
  ExactQuantiles truth(data);

  for (double q = 0.0; q <= 1.0; q += 0.005) {
    const double actual = truth.Quantile(q);
    const double estimate = sketch.QuantileOrNaN(q);
    ASSERT_LE(RelativeError(estimate, actual), alpha * (1 + 1e-9))
        << dist.name << " alpha=" << alpha << " q=" << q
        << " actual=" << actual << " estimate=" << estimate;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AccuracyPropertyTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(0.001, 0.01, 0.1),
                       ::testing::Values(MappingType::kLogarithmic,
                                         MappingType::kCubicInterpolated)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = kDistributions[std::get<0>(info.param)].name;
      name += "_a";
      name += std::to_string(
          static_cast<int>(std::round(std::get<1>(info.param) * 1000)));
      name += "_";
      name += MappingTypeToString(std::get<2>(info.param));
      return name;
    });

// Duplicates, near-boundary values, and adversarial bucket-edge streams.
TEST(AccuracyEdgeCaseTest, MassOnBucketBoundaries) {
  const double alpha = 0.01;
  auto sketch = std::move(DDSketch::Create(alpha, 0x7fffffff)).value();
  const double gamma = sketch.mapping().gamma();
  std::vector<double> data;
  // Values exactly at successive gamma powers: the worst case for index
  // rounding.
  for (int i = 0; i < 2000; ++i) {
    const double x = std::pow(gamma, i % 200);
    data.push_back(x);
    sketch.Add(x);
  }
  ExactQuantiles truth(data);
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    ASSERT_LE(RelativeError(sketch.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
  }
}

TEST(AccuracyEdgeCaseTest, TwoPointMassesFarApart) {
  const double alpha = 0.02;
  auto sketch = std::move(DDSketch::Create(alpha)).value();
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(1e-6);
    data.push_back(1e6);
    sketch.Add(1e-6);
    sketch.Add(1e6);
  }
  ExactQuantiles truth(data);
  for (double q : {0.0, 0.3, 0.49, 0.51, 0.7, 1.0}) {
    ASSERT_LE(RelativeError(sketch.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
  }
}

TEST(AccuracyEdgeCaseTest, AlternatingSignsHeavyTail) {
  const double alpha = 0.01;
  auto sketch = std::move(DDSketch::Create(alpha)).value();
  Rng rng(222);
  std::vector<double> data;
  for (int i = 0; i < 40000; ++i) {
    double x = std::pow(rng.NextDoubleOpenZero(), -0.8);
    if (i % 2 == 0) x = -x;
    data.push_back(x);
    sketch.Add(x);
  }
  ExactQuantiles truth(data);
  for (double q = 0.01; q < 1.0; q += 0.01) {
    ASSERT_LE(RelativeError(sketch.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
  }
}

TEST(AccuracyEdgeCaseTest, StreamWithDeletions) {
  // The sketch supports deletion (paper §2); the guarantee must hold for
  // the surviving multiset.
  const double alpha = 0.01;
  DDSketchConfig config;
  config.relative_accuracy = alpha;
  config.store = StoreType::kUnboundedDense;
  auto sketch = std::move(DDSketch::Create(config)).value();
  Rng rng(223);
  std::vector<double> alive;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::exp(rng.NextDouble() * 12);
    sketch.Add(x);
    alive.push_back(x);
    if (i % 3 == 0 && alive.size() > 10) {
      // Delete a random surviving element.
      const size_t victim = rng.NextBounded(alive.size());
      ASSERT_EQ(sketch.Remove(alive[victim]), 1u);
      alive[victim] = alive.back();
      alive.pop_back();
    }
  }
  ExactQuantiles truth(alive);
  ASSERT_EQ(sketch.count(), alive.size());
  // After removals min()/max() are conservative, so endpoint clamping can't
  // be relied on; test interior quantiles.
  for (double q = 0.05; q <= 0.95; q += 0.05) {
    ASSERT_LE(RelativeError(sketch.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
  }
}

// Sketch size stays logarithmic (§3): for exponential data the bucket count
// grows like log(n), nowhere near n.
TEST(SizeBoundTest, ExponentialDataLogarithmicBuckets) {
  auto sketch = std::move(DDSketch::Create(0.01, 0x7fffffff)).value();
  Rng rng(224);
  Exponential dist(1.0);
  size_t at_1e3 = 0, at_1e6 = 0;
  for (int i = 1; i <= 1000000; ++i) {
    sketch.Add(dist.Sample(rng));
    if (i == 1000) at_1e3 = sketch.num_buckets();
    if (i == 1000000) at_1e6 = sketch.num_buckets();
  }
  // Paper §3.3: a sketch of size ~273 covers the upper half of 1e6 samples;
  // all buckets for exponential(1) stay in the low hundreds.
  EXPECT_LT(at_1e6, 900u);
  EXPECT_LT(at_1e6, at_1e3 + 600u);
}

TEST(SizeBoundTest, ParetoSizeMatchesSection33Bound) {
  // §3.3, Pareto a=1, alpha=0.01, n=1e6: the theoretical bound is 3380
  // buckets for the upper-half order statistics; the observed bucket count
  // must respect (and in practice be far under) it.
  auto sketch = std::move(DDSketch::Create(0.01, 0x7fffffff)).value();
  Rng rng(225);
  Pareto dist(1.0, 1.0);
  for (int i = 0; i < 1000000; ++i) sketch.Add(dist.Sample(rng));
  EXPECT_LT(sketch.num_buckets(), 3380u);
}

}  // namespace
}  // namespace dd
