// Unit and property tests for the per-tag admission ledger (protocol
// v7) and the BUSY retry-hint handling in the client's BusyBackoff.
//
// The ledger is pure accounting — one mutex, no threads of its own —
// so its conservation invariants are provable here under randomized
// concurrent interleavings: grants − refunds == outstanding staged
// bytes (per tag and in total), counters never go negative, and a
// tag's guaranteed floor is never consumed by another tag's overflow.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "server/admission.h"
#include "server/client.h"
#include "util/rng.h"

namespace dd {
namespace {

TagLedgerEntry FindTag(const std::vector<TagLedgerEntry>& rows,
                       const std::string& name) {
  for (const TagLedgerEntry& row : rows) {
    if (row.tag == name) return row;
  }
  ADD_FAILURE() << "tag not in snapshot: " << name;
  return {};
}

TEST(TagNameTest, ValidatesCharsetAndLength) {
  EXPECT_TRUE(TagAdmissionLedger::ValidTagName("default"));
  EXPECT_TRUE(TagAdmissionLedger::ValidTagName("team-a.v2_prod"));
  EXPECT_TRUE(TagAdmissionLedger::ValidTagName("X"));
  EXPECT_TRUE(TagAdmissionLedger::ValidTagName(std::string(64, 'a')));
  EXPECT_FALSE(TagAdmissionLedger::ValidTagName(""));
  EXPECT_FALSE(TagAdmissionLedger::ValidTagName(std::string(65, 'a')));
  EXPECT_FALSE(TagAdmissionLedger::ValidTagName("has space"));
  EXPECT_FALSE(TagAdmissionLedger::ValidTagName("sl/ash"));
  EXPECT_FALSE(TagAdmissionLedger::ValidTagName(std::string("nu\0l", 4)));
}

TEST(TagAdmissionLedgerTest, WeightedFloorsPartitionTheReserve) {
  // Reserve = 0.5 × 1000 = 500, split over default=1, gold=3, bronze=1.
  TagAdmissionLedger ledger(1000, 0.5, {{"gold", 3}, {"bronze", 1}});
  const auto rows = ledger.Snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(FindTag(rows, "default").floor_bytes, 100u);
  EXPECT_EQ(FindTag(rows, "gold").floor_bytes, 300u);
  EXPECT_EQ(FindTag(rows, "bronze").floor_bytes, 100u);
  // Floors round down; the slack joins the shared pool, so each tag's
  // full budget (floor + pool at share 1.0) reaches the whole budget.
  EXPECT_EQ(FindTag(rows, "gold").budget_bytes, 300u + 500u);
  EXPECT_EQ(ledger.total_budget(), 1000u);
}

TEST(TagAdmissionLedgerTest, FloorSurvivesAnotherTagsFlood) {
  TagAdmissionLedger ledger(1000, 0.5, {{"flood", 1}, {"honest", 1}});
  const uint32_t flood = ledger.RegisterTag("flood").value();
  const uint32_t honest = ledger.RegisterTag("honest").value();
  const auto rows = ledger.Snapshot();
  const uint64_t honest_floor = FindTag(rows, "honest").floor_bytes;
  ASSERT_GT(honest_floor, 0u);

  // The flood takes everything it can get, byte by byte.
  uint64_t hint = 0;
  while (ledger.TryAdmit(flood, 1, &hint)) {
  }
  EXPECT_GE(hint, 1u);
  // The honest tag's floor is still fully admittable.
  for (uint64_t i = 0; i < honest_floor; ++i) {
    ASSERT_TRUE(ledger.TryAdmit(honest, 1, &hint))
        << "floor byte " << i << " of " << honest_floor << " refused";
  }
  // ...and not one byte more (the flood drained the shared pool).
  EXPECT_FALSE(ledger.TryAdmit(honest, 1, &hint));
  EXPECT_LE(ledger.total_staged(), ledger.total_budget());
}

TEST(TagAdmissionLedgerTest, ThrottledShareShrinksBorrowing) {
  TagAdmissionLedger ledger(1000, 0.5, {{"noisy", 1}});
  const uint32_t noisy = ledger.RegisterTag("noisy").value();
  const auto before = FindTag(ledger.Snapshot(), "noisy");

  // At half share the borrowable slice of the pool halves; the floor is
  // untouchable by the throttle.
  ledger.set_borrow_share(noisy, 0.5);
  const auto after = FindTag(ledger.Snapshot(), "noisy");
  EXPECT_EQ(after.floor_bytes, before.floor_bytes);
  const uint64_t pool = before.budget_bytes - before.floor_bytes;
  EXPECT_EQ(after.budget_bytes, after.floor_bytes + pool / 2);

  // Admission honors the throttled cap exactly.
  uint64_t hint = 0;
  EXPECT_TRUE(ledger.TryAdmit(noisy, after.budget_bytes, &hint));
  EXPECT_FALSE(ledger.TryAdmit(noisy, 1, &hint));
  ledger.Refund(noisy, after.budget_bytes);

  // The clamp: a throttle can never zero a tag's borrowing power, and
  // recovery can never push the share past 1.
  ledger.set_borrow_share(noisy, 0.0);
  EXPECT_DOUBLE_EQ(ledger.borrow_share(noisy),
                   TagAdmissionLedger::kMinBorrowShare);
  ledger.set_borrow_share(noisy, 7.5);
  EXPECT_DOUBLE_EQ(ledger.borrow_share(noisy), 1.0);
}

TEST(TagAdmissionLedgerTest, RefusalChargesBusyAndHintsRetry) {
  TagAdmissionLedger ledger(100, 0.5, {});
  uint64_t hint = 0;
  EXPECT_FALSE(ledger.TryAdmit(TagAdmissionLedger::kDefaultTagId, 200, &hint));
  // Fresh ledger: no refill observed yet, so the hint is the fixed
  // default — deterministic, and what the wire test pins.
  EXPECT_EQ(hint, TagAdmissionLedger::kDefaultRetryMs);
  EXPECT_EQ(FindTag(ledger.Snapshot(), "default").busy_rejections, 1u);
  // A null out-pointer is allowed (callers that only count refusals).
  EXPECT_FALSE(ledger.TryAdmit(TagAdmissionLedger::kDefaultTagId, 200,
                               nullptr));
}

TEST(TagAdmissionLedgerTest, RetryHintTracksRefillRateWithinBounds) {
  TagAdmissionLedger ledger(1000, 0.5, {});
  const uint32_t id = TagAdmissionLedger::kDefaultTagId;
  uint64_t hint = 0;
  ASSERT_TRUE(ledger.TryAdmit(id, 1000, &hint));
  // Commit completions refund in bursts; ≥1 ms apart they establish a
  // refill-rate EWMA that the hint divides the deficit by.
  for (int burst = 0; burst < 4; ++burst) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ledger.Refund(id, 100);
  }
  ASSERT_TRUE(ledger.TryAdmit(id, 400, &hint));
  EXPECT_FALSE(ledger.TryAdmit(id, 2000, &hint));
  EXPECT_GE(hint, 1u);
  EXPECT_LE(hint, TagAdmissionLedger::kMaxRetryMs);
}

TEST(TagAdmissionLedgerTest, ZeroBudgetAdmitsEverythingButStillAccounts) {
  TagAdmissionLedger ledger(0, 0.5, {{"t", 1}});
  const uint32_t t = ledger.RegisterTag("t").value();
  uint64_t hint = 0;
  EXPECT_TRUE(ledger.TryAdmit(t, 1 << 30, &hint));
  EXPECT_EQ(ledger.total_staged(), static_cast<uint64_t>(1 << 30));
  EXPECT_EQ(FindTag(ledger.Snapshot(), "t").staged_bytes,
            static_cast<uint64_t>(1 << 30));
  ledger.Refund(t, 1 << 30);
  EXPECT_EQ(ledger.total_staged(), 0u);
}

TEST(TagAdmissionLedgerTest, RefundClampsInsteadOfUnderflowing) {
  TagAdmissionLedger ledger(1000, 0.5, {});
  const uint32_t id = TagAdmissionLedger::kDefaultTagId;
  ASSERT_TRUE(ledger.TryAdmit(id, 100, nullptr));
  ledger.Refund(id, 500);  // a bookkeeping bug must not mint budget
  EXPECT_EQ(ledger.total_staged(), 0u);
  EXPECT_EQ(FindTag(ledger.Snapshot(), "default").staged_bytes, 0u);
}

TEST(TagAdmissionLedgerTest, LateRegistrationNeverDilutesConfiguredFloors) {
  TagAdmissionLedger ledger(900, 0.5, {});
  // Alone, default owns the whole 450-byte reserve.
  EXPECT_EQ(FindTag(ledger.Snapshot(), "default").floor_bytes, 450u);
  const uint32_t late = ledger.RegisterTag("latecomer").value();
  EXPECT_EQ(ledger.RegisterTag("latecomer").value(), late);  // idempotent
  const auto rows = ledger.Snapshot();
  // The configured floor is immutable: a tag registered after
  // construction gets no floor at all (it borrows from the pool only),
  // so a junk-tag spray cannot shrink a configured tenant's guarantee.
  EXPECT_EQ(FindTag(rows, "default").floor_bytes, 450u);
  EXPECT_EQ(FindTag(rows, "latecomer").floor_bytes, 0u);
  EXPECT_EQ(ledger.num_tags(), 2u);
  // Pool-only still means admittable: the 450-byte shared pool is the
  // latecomer's whole allowance, and not one byte more.
  uint64_t hint = 0;
  EXPECT_TRUE(ledger.TryAdmit(late, 450, &hint));
  EXPECT_FALSE(ledger.TryAdmit(late, 1, &hint));
  ledger.Refund(late, 450);
}

TEST(TagAdmissionLedgerTest, TagTableIsCapped) {
  TagAdmissionLedger ledger(1000, 0.5, {});
  // Fill the table (default occupies slot 0), then one more must be
  // refused — unbounded SET_TAG registration is the memory-growth DoS
  // the cap exists to stop.
  for (size_t i = 1; i < TagAdmissionLedger::kMaxTags; ++i) {
    ASSERT_TRUE(ledger.RegisterTag("tag" + std::to_string(i)).has_value())
        << "tag " << i;
  }
  EXPECT_EQ(ledger.num_tags(), TagAdmissionLedger::kMaxTags);
  EXPECT_FALSE(ledger.RegisterTag("one-too-many").has_value());
  EXPECT_EQ(ledger.num_tags(), TagAdmissionLedger::kMaxTags);
  // Known tags (configured or already registered) still resolve.
  EXPECT_EQ(ledger.RegisterTag("default").value(),
            TagAdmissionLedger::kDefaultTagId);
  EXPECT_TRUE(ledger.RegisterTag("tag1").has_value());
  // And the full table never dented the configured floor.
  EXPECT_EQ(FindTag(ledger.Snapshot(), "default").floor_bytes, 500u);
}

// The headline property: under randomized concurrent admit/refund
// interleavings, grants − refunds == outstanding staged bytes, per tag
// and in total; nothing underflows; and the admitted total never
// exceeds the budget while no registration is in flight.
TEST(TagAdmissionLedgerPropertyTest, ConcurrentConservation) {
  constexpr uint64_t kBudget = 1 << 20;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  TagAdmissionLedger ledger(kBudget, 0.5,
                            {{"alpha", 3}, {"beta", 2}, {"gamma", 1}});
  std::vector<uint32_t> tag_ids = {
      TagAdmissionLedger::kDefaultTagId, ledger.RegisterTag("alpha").value(),
      ledger.RegisterTag("beta").value(), ledger.RegisterTag("gamma").value()};

  // Each thread keeps its own record of outstanding grants; the sum of
  // those records is the ground truth the ledger must agree with.
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> outstanding(
      kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5eed0000 + static_cast<uint64_t>(t));
      auto& mine = outstanding[static_cast<size_t>(t)];
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint32_t tag =
            tag_ids[static_cast<size_t>(rng.NextU64() % tag_ids.size())];
        if (!mine.empty() && rng.NextU64() % 3 == 0) {
          const size_t victim =
              static_cast<size_t>(rng.NextU64() % mine.size());
          ledger.Refund(mine[victim].first, mine[victim].second);
          mine[victim] = mine.back();
          mine.pop_back();
        } else {
          const uint64_t bytes = 1 + rng.NextU64() % 512;
          if (ledger.TryAdmit(tag, bytes, nullptr)) {
            mine.emplace_back(tag, bytes);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Ledger state == sum of every thread's outstanding grants.
  std::vector<uint64_t> expected(tag_ids.size(), 0);
  uint64_t expected_total = 0;
  for (const auto& mine : outstanding) {
    for (const auto& [tag, bytes] : mine) {
      for (size_t i = 0; i < tag_ids.size(); ++i) {
        if (tag_ids[i] == tag) expected[i] += bytes;
      }
      expected_total += bytes;
    }
  }
  EXPECT_EQ(ledger.total_staged(), expected_total);
  EXPECT_LE(ledger.total_staged(), kBudget);
  const auto rows = ledger.Snapshot();  // ordered by dense tag id
  uint64_t snapshot_total = 0;
  for (size_t i = 0; i < tag_ids.size(); ++i) {
    EXPECT_EQ(rows[tag_ids[i]].staged_bytes, expected[i]) << "tag " << i;
  }
  for (const TagLedgerEntry& row : rows) snapshot_total += row.staged_bytes;
  EXPECT_EQ(snapshot_total, expected_total);

  // Refund everything outstanding: the ledger must drain to exactly 0.
  for (const auto& mine : outstanding) {
    for (const auto& [tag, bytes] : mine) ledger.Refund(tag, bytes);
  }
  EXPECT_EQ(ledger.total_staged(), 0u);
  for (const TagLedgerEntry& row : ledger.Snapshot()) {
    EXPECT_EQ(row.staged_bytes, 0u) << row.tag;
  }
}

// Satellite 2: the BUSY retry hint raises the client's backoff base
// while the jitter and the exponential envelope survive.
TEST(BusyBackoffHintTest, HintRaisesBaseJitterPreserved) {
  BusyBackoff backoff(1000, /*seed=*/42);
  // A 50 ms server hint: the jitter shifts above the hint, so the
  // delay lands in [50ms, 75ms) — never earlier than the server asked.
  const int64_t first = backoff.NextDelayUs(50000);
  EXPECT_GE(first, 50000);
  EXPECT_LT(first, 75000);
  // The base doubled from the hinted value and hit the 100 ms cap.
  const int64_t second = backoff.NextDelayUs(0);
  EXPECT_GE(second, 50000);
  EXPECT_LT(second, 150000);
}

TEST(BusyBackoffHintTest, HintIsCappedAndScheduleDeterministic) {
  // An absurd hint is clamped to the 100 ms cap; the hinted jitter
  // keeps the delay at or above the (clamped) ask.
  BusyBackoff capped(1000, 7);
  const int64_t delay = capped.NextDelayUs(60'000'000);
  EXPECT_LT(delay, 150000);
  EXPECT_GE(delay, 100000);

  // Same seed + same hint sequence = same schedule (testability); a
  // hint of 0 degenerates to the plain jittered exponential.
  BusyBackoff a(1000, 99), b(1000, 99);
  for (int i = 0; i < 6; ++i) {
    const int64_t hint = i == 2 ? 20000 : 0;
    EXPECT_EQ(a.NextDelayUs(hint), b.NextDelayUs(hint)) << i;
  }
  BusyBackoff c(1000, 99), d(1000, 100);
  bool diverged = false;
  for (int i = 0; i < 6; ++i) {
    if (c.NextDelayUs(0) != d.NextDelayUs(0)) diverged = true;
  }
  EXPECT_TRUE(diverged) << "distinct seeds must not share a schedule";
}

}  // namespace
}  // namespace dd
