#include "util/bits.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace dd {
namespace {

TEST(BitsTest, DoubleBitsRoundTrip) {
  for (double v : {1.0, -2.5, 3.14159e100, -7e-300}) {
    EXPECT_EQ(BitsToDouble(DoubleToBits(v)), v);
  }
}

TEST(BitsTest, ExponentOfPowersOfTwo) {
  for (int e = -1022; e <= 1023; ++e) {
    EXPECT_EQ(GetExponent(std::ldexp(1.0, e)), e) << "e=" << e;
  }
}

TEST(BitsTest, ExponentIsFloorLog2) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    // Random positive normal double across a wide range.
    const int e = static_cast<int>(rng.NextBounded(600)) - 300;
    const double v = std::ldexp(1.0 + rng.NextDouble(), e);
    EXPECT_EQ(GetExponent(v), static_cast<int>(std::floor(std::log2(v))))
        << v;
  }
}

TEST(BitsTest, ExponentOfSubnormals) {
  const double smallest = std::numeric_limits<double>::denorm_min();  // 2^-1074
  EXPECT_EQ(GetExponent(smallest), -1074);
  EXPECT_EQ(GetExponent(smallest * 2), -1073);
  const double min_normal = std::numeric_limits<double>::min();  // 2^-1022
  EXPECT_EQ(GetExponent(min_normal), -1022);
  EXPECT_EQ(GetExponent(min_normal / 2), -1023);
}

TEST(BitsTest, SignificandInUnitRange) {
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) {
    const int e = static_cast<int>(rng.NextBounded(600)) - 300;
    const double v = std::ldexp(1.0 + rng.NextDouble(), e);
    const double s = GetSignificandPlusOne(v);
    EXPECT_GE(s, 1.0);
    EXPECT_LT(s, 2.0);
    // v == s * 2^exponent exactly.
    EXPECT_EQ(std::ldexp(s, GetExponent(v)), v);
  }
}

TEST(BitsTest, BuildDoubleInvertsDecomposition) {
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    const int e = static_cast<int>(rng.NextBounded(2000)) - 1000;
    const double s = 1.0 + rng.NextDouble();
    const double v = BuildDouble(e, s);
    EXPECT_EQ(GetExponent(v), e);
    EXPECT_DOUBLE_EQ(GetSignificandPlusOne(v), s);
  }
}

TEST(BitsTest, FloorLog2MatchesMath) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(UINT64_MAX), 63);
  for (int e = 0; e < 63; ++e) {
    const uint64_t p = uint64_t{1} << e;
    EXPECT_EQ(FloorLog2(p), e);
    if (p > 2) {
      EXPECT_EQ(FloorLog2(p - 1), e - 1);
    }
    EXPECT_EQ(FloorLog2(p + 1), p == 1 ? 1 : e);
  }
}

TEST(BitsTest, RoundUpToPowerOfTwo) {
  EXPECT_EQ(RoundUpToPowerOfTwo(0), 1u);
  EXPECT_EQ(RoundUpToPowerOfTwo(1), 1u);
  EXPECT_EQ(RoundUpToPowerOfTwo(2), 2u);
  EXPECT_EQ(RoundUpToPowerOfTwo(3), 4u);
  EXPECT_EQ(RoundUpToPowerOfTwo(200), 256u);
  EXPECT_EQ(RoundUpToPowerOfTwo(1024), 1024u);
  EXPECT_EQ(RoundUpToPowerOfTwo(1025), 2048u);
  EXPECT_EQ(RoundUpToPowerOfTwo(uint64_t{1} << 62), uint64_t{1} << 62);
}

}  // namespace
}  // namespace dd
