// Monte-Carlo validation of the paper's Section 3 probabilistic claims:
// the lemmas are proved in the paper; here we check the proved inequalities
// actually hold (with margin) on simulated data, and that the closed-form
// §3.3 bounds match both the paper's reported numbers and live sketches.

#include "analysis/bounds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/ddsketch.h"
#include "data/distributions.h"
#include "util/rng.h"

namespace dd {
namespace {

TEST(BoundsTest, GammaAndBucketSpan) {
  EXPECT_NEAR(GammaOf(0.01), 101.0 / 99.0, 1e-12);
  // One bucket suffices when x_q == x_max.
  EXPECT_NEAR(BucketSpan(0.01, 5.0, 5.0), 1.0, 1e-9);
  // Spanning one gamma factor costs exactly one extra bucket.
  const double gamma = GammaOf(0.01);
  EXPECT_NEAR(BucketSpan(0.01, 1.0, gamma), 2.0, 1e-9);
  // 1/log(gamma) < 51 for alpha = 0.01 — the constant used throughout
  // §3.3.
  EXPECT_LT(1.0 / std::log(gamma), 51.0);
  EXPECT_GT(1.0 / std::log(gamma), 49.0);
}

TEST(BoundsTest, SampleQuantileSlackFormula) {
  // t = sqrt(log(1/delta)/2n): spot values.
  EXPECT_NEAR(SampleQuantileSlack(std::exp(-10.0), 320), 0.125, 0.001);
  EXPECT_NEAR(SampleQuantileSlack(std::exp(-10.0), 1000000),
              std::sqrt(10.0 / 2e6), 1e-12);
  // Monotone: more data, less slack.
  EXPECT_LT(SampleQuantileSlack(0.01, 10000),
            SampleQuantileSlack(0.01, 1000));
}

// Lemma 5: Pr[X_(qn) <= F^{-1}(q - t)] <= delta1. Validated by simulation
// on the exponential distribution with a moderate delta so violations are
// observable if the lemma were wrong.
TEST(BoundsTest, Lemma5MonteCarlo) {
  constexpr double kDelta1 = 0.05;
  constexpr uint64_t kN = 2000;
  constexpr int kTrials = 2000;
  constexpr double kQ = 0.5;
  const double t = SampleQuantileSlack(kDelta1, kN);
  ASSERT_LT(t, kQ);
  // Exponential(1): F^{-1}(p) = -log(1 - p).
  const double threshold = -std::log(1.0 - (kQ - t));
  Rng rng(191);
  Exponential dist(1.0);
  int violations = 0;
  std::vector<double> sample(kN);
  for (int trial = 0; trial < kTrials; ++trial) {
    for (double& x : sample) x = dist.Sample(rng);
    std::nth_element(sample.begin(),
                     sample.begin() + static_cast<ptrdiff_t>(kN * kQ) - 1,
                     sample.end());
    const double sample_median = sample[kN / 2 - 1];
    violations += (sample_median <= threshold);
  }
  // Expected violation rate <= delta1; allow 3-sigma binomial slack.
  const double rate = static_cast<double>(violations) / kTrials;
  const double sigma = std::sqrt(kDelta1 * (1 - kDelta1) / kTrials);
  EXPECT_LE(rate, kDelta1 + 3 * sigma) << "rate=" << rate;
}

// Corollary 8: Pr[X_(n) - EX > 2b log(n/delta2)] < delta2, for
// subexponential X. Exponential(1) has (sigma, b) = (2, 2), EX = 1.
TEST(BoundsTest, Corollary8MonteCarlo) {
  constexpr double kDelta2 = 0.05;
  constexpr uint64_t kN = 2000;
  constexpr int kTrials = 2000;
  const SubexponentialParams params = ExponentialSubexpParams(1.0);
  const double bound = SampleMaxDeviationBound(params, kN, kDelta2) + 1.0;
  Rng rng(192);
  Exponential dist(1.0);
  int violations = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    double max_seen = 0;
    for (uint64_t i = 0; i < kN; ++i) {
      max_seen = std::max(max_seen, dist.Sample(rng));
    }
    violations += (max_seen > bound);
  }
  const double rate = static_cast<double>(violations) / kTrials;
  const double sigma = std::sqrt(kDelta2 * (1 - kDelta2) / kTrials);
  EXPECT_LE(rate, kDelta2 + 3 * sigma) << "rate=" << rate;
  // The generic subexponential bound is loose for the exponential (the
  // paper notes a factor of 4 can be removed); it should still be a real
  // bound, i.e. well above the typical max ~ log(n).
  EXPECT_GT(bound, std::log(static_cast<double>(kN)));
}

TEST(BoundsTest, Theorem9Validation) {
  EXPECT_FALSE(Theorem9SizeBound(0.0, 0.5, 1000, 0.01, 0.01,
                                 ExponentialSubexpParams(1.0), 1.0,
                                 [](double p) { return p; })
                   .ok());
  // q too close to t for tiny n.
  EXPECT_FALSE(Theorem9SizeBound(0.01, 0.01, 100, std::exp(-10.0), 0.01,
                                 ExponentialSubexpParams(1.0), 1.0,
                                 [](double p) { return p; })
                   .ok());
}

TEST(BoundsTest, Theorem9CoversEmpiricalSketchSize) {
  // The Theorem 9 bound must dominate the buckets a real sketch uses for
  // the (0.5, 1) range, across stream sizes.
  const double delta = std::exp(-10.0);
  Rng rng(193);
  Exponential dist(1.0);
  for (uint64_t n : {10000ULL, 100000ULL, 1000000ULL}) {
    auto bound = Theorem9SizeBound(
        0.01, 0.5, n, delta, delta, ExponentialSubexpParams(1.0),
        /*mean=*/1.0,
        [](double p) { return -std::log(1.0 - p); });
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto sketch = std::move(DDSketch::Create(0.01, 0x7fffffff)).value();
    std::vector<double> data(n);
    for (double& x : data) x = dist.Sample(rng);
    for (double x : data) sketch.Add(x);
    std::nth_element(data.begin(), data.begin() + static_cast<ptrdiff_t>(n / 2),
                     data.end());
    const double median = data[n / 2];
    const double maximum = *std::max_element(data.begin(), data.end());
    const double used = BucketSpan(0.01, median, maximum);
    EXPECT_LE(used, bound.value()) << "n=" << n;
  }
}

TEST(BoundsTest, Section33PaperNumbers) {
  // §3.3: "even with a sketch of size 273 one can 0.01-accurately maintain
  // the upper half order statistics of over a million samples".
  EXPECT_NEAR(ExponentialUpperHalfSizeBound(1000000), 273.0, 2.0);
  // "we require a sketch of size 3380 ... of over a million samples" for
  // Pareto a = 1.
  EXPECT_NEAR(ParetoUpperHalfSizeBound(1.0, 1000000), 3380.0, 5.0);
  // Growth is doubly-logarithmic for exponential: size 1000 handles
  // astronomically more than 1e6 (paper: exp(exp(17))).
  EXPECT_LT(ExponentialUpperHalfSizeBound(1000000000ULL),
            ExponentialUpperHalfSizeBound(1000000) + 15.0);
}

TEST(BoundsTest, ExponentialSubexpParamsShape) {
  const auto p = ExponentialSubexpParams(0.5);
  EXPECT_DOUBLE_EQ(p.sigma, 4.0);
  EXPECT_DOUBLE_EQ(p.b, 4.0);
}

}  // namespace
}  // namespace dd
