// Tests for the rank-space query API (Cdf / Rank / CountInRange): the dual
// of the quantile guarantee — the returned CDF is exact for some point
// within alpha of the queried value.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/ddsketch.h"
#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

DDSketch Make(double alpha = 0.01) {
  return std::move(DDSketch::Create(alpha, 4096)).value();
}

double ExactCdf(const std::vector<double>& sorted, double v) {
  return static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(),
                                              v) -
                             sorted.begin()) /
         static_cast<double>(sorted.size());
}

TEST(CdfTest, EmptyAndInvalid) {
  DDSketch s = Make();
  EXPECT_TRUE(std::isnan(s.CdfOrNaN(1.0)));
  EXPECT_FALSE(s.Cdf(1.0).ok());
  s.Add(1.0);
  EXPECT_FALSE(s.Cdf(std::nan("")).ok());
  EXPECT_TRUE(s.Cdf(0.5).ok());
}

TEST(CdfTest, SingleValue) {
  DDSketch s = Make();
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.CdfOrNaN(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.CdfOrNaN(11.0), 1.0);
  EXPECT_DOUBLE_EQ(s.CdfOrNaN(9.0), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfOrNaN(-1.0), 0.0);
}

TEST(CdfTest, InfinityEndpoints) {
  DDSketch s = Make();
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.CdfOrNaN(std::numeric_limits<double>::infinity()), 1.0);
  EXPECT_DOUBLE_EQ(s.CdfOrNaN(-std::numeric_limits<double>::infinity()),
                   0.0);
}

TEST(CdfTest, MatchesExactCdfWithinAlphaNeighborhood) {
  // For any query v, the estimated CDF must lie between the exact CDFs of
  // v/(1+a') and v*(1+a') — the rank-space dual of the value guarantee.
  const double alpha = 0.01;
  DDSketch s = Make(alpha);
  Rng rng(121);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    data.push_back(std::exp(rng.NextDouble() * 12 - 6));
    s.Add(data.back());
  }
  std::sort(data.begin(), data.end());
  const double slack = 2.5 * alpha;  // both bucket ends are alpha-off
  for (int i = 0; i < 2000; ++i) {
    const double v = std::exp(rng.NextDouble() * 12 - 6);
    const double est = s.CdfOrNaN(v);
    const double lo = ExactCdf(data, v * (1 - slack));
    const double hi = ExactCdf(data, v * (1 + slack));
    EXPECT_GE(est, lo - 1e-12) << "v=" << v;
    EXPECT_LE(est, hi + 1e-12) << "v=" << v;
  }
}

TEST(CdfTest, MonotoneInValue) {
  DDSketch s = Make();
  Rng rng(122);
  for (int i = 0; i < 20000; ++i) {
    const double mag = std::exp(rng.NextDouble() * 8 - 4);
    s.Add((rng.NextU64() & 1) ? mag : -mag);
  }
  double prev = 0.0;
  for (double v = -60.0; v <= 60.0; v += 0.25) {
    const double cdf = s.CdfOrNaN(v);
    EXPECT_GE(cdf, prev - 1e-12) << v;
    prev = cdf;
  }
  EXPECT_DOUBLE_EQ(s.CdfOrNaN(s.max()), 1.0);
}

TEST(CdfTest, QuantileCdfRoundTrip) {
  // Cdf(Quantile(q)) ~ q: the two queries are inverses up to bucket
  // granularity.
  DDSketch s = Make();
  Rng rng(123);
  for (int i = 0; i < 100000; ++i) s.Add(std::exp(rng.NextDouble() * 10));
  for (double q = 0.05; q <= 0.95; q += 0.05) {
    const double v = s.QuantileOrNaN(q);
    EXPECT_NEAR(s.CdfOrNaN(v), q, 0.02) << q;
  }
}

TEST(CdfTest, NegativeValuesMirror) {
  // Point masses at -10, -1, +1. Within a bucket the CDF interpolates, so
  // at a point mass the estimate may land anywhere between the exact CDF
  // just below and just above the mass (the bucket-granularity dual of the
  // quantile guarantee); between masses it must be exact.
  DDSketch s = Make();
  s.Add(-10.0, 100);
  s.Add(-1.0, 100);
  s.Add(1.0, 100);
  EXPECT_NEAR(s.CdfOrNaN(-11.0), 0.0, 1e-12);
  // At the -10 mass: between CDF(-10 - eps) = 0 and CDF(-10) = 1/3.
  EXPECT_GE(s.CdfOrNaN(-10.0), 0.0);
  EXPECT_LE(s.CdfOrNaN(-10.0), 1.0 / 3 + 1e-12);
  // Strictly between masses: exact.
  EXPECT_NEAR(s.CdfOrNaN(-5.0), 1.0 / 3, 1e-9);
  // At the -1 mass: between 1/3 and 2/3.
  EXPECT_GE(s.CdfOrNaN(-1.0), 1.0 / 3 - 1e-12);
  EXPECT_LE(s.CdfOrNaN(-1.0), 2.0 / 3 + 1e-12);
  EXPECT_NEAR(s.CdfOrNaN(-0.5), 2.0 / 3, 1e-9);
  // Just below the +1 mass, inside its bucket: between 2/3 and 1.
  EXPECT_GE(s.CdfOrNaN(0.999), 2.0 / 3 - 1e-12);
  EXPECT_LE(s.CdfOrNaN(0.999), 1.0);
  EXPECT_DOUBLE_EQ(s.CdfOrNaN(1.0), 1.0);
}

TEST(CdfTest, ZeroBucketAccounted) {
  DDSketch s = Make();
  s.Add(-2.0, 10);
  s.Add(0.0, 30);
  s.Add(2.0, 10);
  // v = 0: negatives + zeros below.
  EXPECT_NEAR(s.CdfOrNaN(0.0), 40.0 / 50.0, 1e-9);
  EXPECT_NEAR(s.CdfOrNaN(1.0), 40.0 / 50.0, 1e-9);
  EXPECT_NEAR(s.CdfOrNaN(-1.0), 10.0 / 50.0, 1e-9);
}

TEST(CdfTest, RankAndCountInRange) {
  DDSketch s = Make();
  for (int i = 1; i <= 1000; ++i) s.Add(static_cast<double>(i));
  EXPECT_NEAR(s.RankOrNaN(500.0), 500.0, 500 * 0.03);
  EXPECT_NEAR(s.CountInRangeOrNaN(200.0, 400.0), 200.0, 200 * 0.1);
  EXPECT_NEAR(s.CountInRangeOrNaN(0.0, 2000.0), 1000.0, 1e-9);
}

TEST(CdfTest, SurvivesMerge) {
  DDSketch a = Make(), b = Make();
  Rng rng(124);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::exp(rng.NextDouble() * 6);
    data.push_back(x);
    (i % 2 ? a : b).Add(x);
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  std::sort(data.begin(), data.end());
  for (double v : {2.0, 10.0, 100.0, 400.0}) {
    EXPECT_NEAR(a.CdfOrNaN(v), ExactCdf(data, v), 0.03) << v;
  }
}

}  // namespace
}  // namespace dd
