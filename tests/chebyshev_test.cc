#include "moments/chebyshev.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace dd {
namespace {

TEST(ChebyshevTest, ValuesMatchCosineDefinition) {
  // T_j(cos t) = cos(j t).
  Rng rng(91);
  std::vector<double> t(21);
  for (int trial = 0; trial < 1000; ++trial) {
    const double theta = rng.NextDouble() * 3.141592653589793;
    const double x = std::cos(theta);
    ChebyshevValues(x, 20, t.data());
    for (int j = 0; j <= 20; ++j) {
      EXPECT_NEAR(t[j], std::cos(j * theta), 1e-9) << "j=" << j;
    }
  }
}

TEST(ChebyshevTest, ValuesAtEndpoints) {
  std::vector<double> t(11);
  ChebyshevValues(1.0, 10, t.data());
  for (int j = 0; j <= 10; ++j) EXPECT_DOUBLE_EQ(t[j], 1.0);
  ChebyshevValues(-1.0, 10, t.data());
  for (int j = 0; j <= 10; ++j) {
    EXPECT_DOUBLE_EQ(t[j], j % 2 == 0 ? 1.0 : -1.0);
  }
}

TEST(ChebyshevTest, CoefficientsMatchKnownPolynomials) {
  const auto c = ChebyshevCoefficients(4);
  // T_0 = 1
  EXPECT_EQ(c[0], std::vector<double>({1}));
  // T_1 = x
  EXPECT_EQ(c[1], std::vector<double>({0, 1}));
  // T_2 = 2x^2 - 1
  EXPECT_EQ(c[2], std::vector<double>({-1, 0, 2}));
  // T_3 = 4x^3 - 3x
  EXPECT_EQ(c[3], std::vector<double>({0, -3, 0, 4}));
  // T_4 = 8x^4 - 8x^2 + 1
  EXPECT_EQ(c[4], std::vector<double>({1, 0, -8, 0, 8}));
}

TEST(ChebyshevTest, CoefficientsEvaluateLikeRecurrence) {
  const size_t k = 15;
  const auto coeffs = ChebyshevCoefficients(k);
  std::vector<double> t(k + 1);
  Rng rng(92);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = rng.NextDouble() * 2 - 1;
    ChebyshevValues(x, k, t.data());
    for (size_t j = 0; j <= k; ++j) {
      double poly = 0, xp = 1;
      for (double c : coeffs[j]) {
        poly += c * xp;
        xp *= x;
      }
      EXPECT_NEAR(poly, t[j], 1e-8) << "j=" << j << " x=" << x;
    }
  }
}

TEST(ChebyshevTest, PowerToChebyshevOnUniformMoments) {
  // For U on [-1,1]: E[x^i] = 0 (odd), 1/(i+1) (even).
  // Then E[T_j] = integral T_j / 2 = 0 for odd j, and
  // 1/(1-j^2) for even j (standard integral of T_j over [-1, 1], halved).
  const size_t k = 10;
  std::vector<double> mu(k + 1, 0.0);
  for (size_t i = 0; i <= k; i += 2) mu[i] = 1.0 / static_cast<double>(i + 1);
  const auto m = PowerToChebyshevMoments(mu);
  EXPECT_NEAR(m[0], 1.0, 1e-12);
  for (size_t j = 1; j <= k; ++j) {
    const double expected =
        j % 2 == 1 ? 0.0 : 1.0 / (1.0 - static_cast<double>(j * j));
    EXPECT_NEAR(m[j], expected, 1e-9) << "j=" << j;
  }
}

TEST(ChebyshevTest, PowerToChebyshevOnPointMass) {
  // All mass at x0: E[x^i] = x0^i, so E[T_j] = T_j(x0).
  const size_t k = 12;
  const double x0 = 0.37;
  std::vector<double> mu(k + 1);
  double p = 1;
  for (size_t i = 0; i <= k; ++i) {
    mu[i] = p;
    p *= x0;
  }
  const auto m = PowerToChebyshevMoments(mu);
  std::vector<double> t(k + 1);
  ChebyshevValues(x0, k, t.data());
  for (size_t j = 0; j <= k; ++j) {
    EXPECT_NEAR(m[j], t[j], 1e-9) << "j=" << j;
  }
}

}  // namespace
}  // namespace dd
