#include "ckms/ckms_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/datasets.h"
#include "data/ground_truth.h"
#include "gk/gkarray.h"
#include "util/rng.h"

namespace dd {
namespace {

CkmsSketch Make() {
  auto r = CkmsSketch::Create(CkmsSketch::DefaultTargets());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(CkmsTest, CreateValidation) {
  EXPECT_FALSE(CkmsSketch::Create({}).ok());
  EXPECT_FALSE(CkmsSketch::Create({{0.0, 0.01}}).ok());
  EXPECT_FALSE(CkmsSketch::Create({{1.0, 0.01}}).ok());
  EXPECT_FALSE(CkmsSketch::Create({{0.5, 0.0}}).ok());
  EXPECT_TRUE(CkmsSketch::Create({{0.5, 0.01}}).ok());
}

TEST(CkmsTest, EmptyAndValidation) {
  CkmsSketch s = Make();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Quantile(0.5).ok());
  s.Add(1.0);
  EXPECT_FALSE(s.Quantile(-0.1).ok());
  EXPECT_FALSE(s.Quantile(1.5).ok());
}

TEST(CkmsTest, SmallStreamExact) {
  CkmsSketch s = Make();
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(1.0), 9.0);
}

TEST(CkmsTest, InvariantFunctionShape) {
  CkmsSketch s = Make();
  for (int i = 0; i < 100000; ++i) s.Add(static_cast<double>(i));
  s.Flush();
  const double n = 100000;
  // At the p99 target the allowed band is 2 * 0.001 * rank / 0.99 — far
  // tighter than at the median (2 * 0.02 * rank / 0.5).
  EXPECT_LT(s.AllowedError(0.99 * n), s.AllowedError(0.5 * n));
  // The band never collapses below 1 (tuples must be representable).
  EXPECT_GE(s.AllowedError(1.0), 1.0);
}

class CkmsTargetTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(CkmsTargetTest, TargetsMeetTheirEpsilons) {
  CkmsSketch s = Make();
  const auto data = GenerateDataset(GetParam(), 200000);
  for (double x : data) s.Add(x);
  ExactQuantiles truth(data);
  // The invariant-function analysis bounds the error at target phi_j by
  // f(phi_j n)/2 where f is the min over ALL targets' bands; a tight
  // target adjacent to a looser one inherits up to 2x its own epsilon
  // (e.g. p99.9 at eps=5e-4 sits inside p99's 1e-3 band). Hence 2x.
  for (const auto& target : s.targets()) {
    const double err =
        RankError(truth, target.quantile, s.QuantileOrNaN(target.quantile));
    EXPECT_LE(err, target.epsilon * 2.0 + 1e-9)
        << "phi=" << target.quantile << " eps=" << target.epsilon;
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, CkmsTargetTest,
                         ::testing::ValuesIn(kPaperDatasets),
                         [](const ::testing::TestParamInfo<DatasetId>& info) {
                           return DatasetIdToString(info.param);
                         });

TEST(CkmsTest, BiasedResolutionBeatsUniformGKAtTails) {
  // The §1.2 claim for this line of work: "much better accuracy (in rank)
  // ... on percentiles like the p99.9" than uniform-rank sketches of
  // comparable size. Compare p99.9 rank error against a GKArray whose
  // epsilon gives a similar summary size.
  const auto data = GenerateDataset(DatasetId::kWebLatency, 500000);
  ExactQuantiles truth(data);
  CkmsSketch ckms = Make();
  auto gk = std::move(GKArray::Create(0.02)).value();  // ~same footprint
  for (double x : data) {
    ckms.Add(x);
    gk.Add(x);
  }
  ckms.Flush();
  gk.Flush();
  const double ckms_tail =
      RankError(truth, 0.999, ckms.QuantileOrNaN(0.999));
  const double gk_tail = RankError(truth, 0.999, gk.QuantileOrNaN(0.999));
  EXPECT_LT(ckms_tail, gk_tail);
  EXPECT_LE(ckms_tail, 0.001);
}

TEST(CkmsTest, SummarySizeSublinear) {
  CkmsSketch s = Make();
  Rng rng(201);
  for (int i = 0; i < 1000000; ++i) s.Add(rng.NextDouble());
  s.Flush();
  EXPECT_LT(s.num_entries(), 5000u);
  EXPECT_LT(s.size_in_bytes(), 256 * 1024u);
}

TEST(CkmsTest, SortedAndReversedInput) {
  for (bool reversed : {false, true}) {
    CkmsSketch s = Make();
    std::vector<double> data(200000);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<double>(reversed ? data.size() - i : i);
      s.Add(data[i]);
    }
    ExactQuantiles truth(data);
    for (const auto& target : s.targets()) {
      EXPECT_LE(RankError(truth, target.quantile,
                          s.QuantileOrNaN(target.quantile)),
                target.epsilon * 2.0 + 1e-9)
          << "reversed=" << reversed << " phi=" << target.quantile;
    }
  }
}

TEST(CkmsTest, MergePreservesTargetsApproximately) {
  // One-way merge: expect ~2x the target epsilon after a shallow merge.
  const auto data = GenerateDataset(DatasetId::kPareto, 200000);
  ExactQuantiles truth(data);
  CkmsSketch merged = Make();
  for (int part = 0; part < 4; ++part) {
    CkmsSketch s = Make();
    for (size_t i = static_cast<size_t>(part) * 50000;
         i < static_cast<size_t>(part + 1) * 50000; ++i) {
      s.Add(data[i]);
    }
    merged.MergeFrom(s);
  }
  EXPECT_EQ(merged.count(), data.size());
  for (const auto& target : merged.targets()) {
    EXPECT_LE(RankError(truth, target.quantile,
                        merged.QuantileOrNaN(target.quantile)),
              3 * target.epsilon + 0.001)
        << target.quantile;
  }
}

TEST(CkmsTest, HighRelativeErrorOnHeavyTailsAsPaperClaims) {
  // Still a rank-error sketch: relative error on pareto p99 exceeds the
  // 1% DDSketch pins, even with the tight 0.001 rank target there.
  CkmsSketch s = Make();
  const auto data = GenerateDataset(DatasetId::kPareto, 1000000);
  for (double x : data) s.Add(x);
  ExactQuantiles truth(data);
  double worst = 0;
  for (double q : {0.95, 0.99, 0.999}) {
    worst = std::max(worst,
                     RelativeError(s.QuantileOrNaN(q), truth.Quantile(q)));
  }
  EXPECT_GT(worst, 0.01);
}

}  // namespace
}  // namespace dd
