#include "core/concurrent.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

ConcurrentDDSketch Make(int shards = 16) {
  DDSketchConfig config;
  auto r = ConcurrentDDSketch::Create(config, shards);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ConcurrentTest, CreateValidation) {
  DDSketchConfig config;
  EXPECT_FALSE(ConcurrentDDSketch::Create(config, 0).ok());
  EXPECT_FALSE(ConcurrentDDSketch::Create(config, 5000).ok());
  EXPECT_TRUE(ConcurrentDDSketch::Create(config, 1).ok());
  config.relative_accuracy = -1;
  EXPECT_FALSE(ConcurrentDDSketch::Create(config, 4).ok());
}

TEST(ConcurrentTest, SingleThreadMatchesPlainSketch) {
  ConcurrentDDSketch c = Make();
  auto plain = std::move(DDSketch::Create(0.01)).value();
  Rng rng(141);
  for (int i = 0; i < 20000; ++i) {
    const double x = std::exp(rng.NextDouble() * 8);
    c.Add(x);
    plain.Add(x);
  }
  DDSketch snapshot = c.Snapshot();
  EXPECT_EQ(snapshot.count(), plain.count());
  for (double q = 0.01; q < 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(snapshot.QuantileOrNaN(q), plain.QuantileOrNaN(q)) << q;
  }
}

TEST(ConcurrentTest, AddBatchMatchesScalarAdds) {
  ConcurrentDDSketch batched = Make();
  ConcurrentDDSketch scalar = Make();
  Rng rng(142);
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    values.push_back(std::exp(rng.NextDouble() * 8));
  }
  batched.AddBatch(values);
  for (double v : values) scalar.Add(v);
  DDSketch a = batched.Snapshot(), b = scalar.Snapshot();
  EXPECT_EQ(a.count(), b.count());
  for (double q = 0.01; q < 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(a.QuantileOrNaN(q), b.QuantileOrNaN(q)) << q;
  }
}

TEST(ConcurrentTest, ParallelBatchAddsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  ConcurrentDDSketch c = Make();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      Rng rng(2000 + static_cast<uint64_t>(t));
      std::vector<double> batch(1000);
      for (int i = 0; i < kPerThread; i += 1000) {
        for (double& v : batch) v = std::exp(rng.NextDouble() * 10 - 5);
        c.AddBatch(batch);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.Snapshot().count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ConcurrentTest, ParallelAddsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  ConcurrentDDSketch c = Make();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(std::exp(rng.NextDouble() * 10 - 5));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.count(), static_cast<uint64_t>(kThreads) * kPerThread);

  // Accuracy: compare against ground truth regenerated from the same seeds.
  std::vector<double> all;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(1000 + static_cast<uint64_t>(t));
    for (int i = 0; i < kPerThread; ++i) {
      all.push_back(std::exp(rng.NextDouble() * 10 - 5));
    }
  }
  ExactQuantiles truth(all);
  DDSketch snapshot = c.Snapshot();
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_LE(RelativeError(snapshot.QuantileOrNaN(q), truth.Quantile(q)),
              0.01 * (1 + 1e-9))
        << q;
  }
}

TEST(ConcurrentTest, SnapshotDuringIngestionIsConsistent) {
  constexpr int kThreads = 4;
  ConcurrentDDSketch c = Make();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c, &stop, t] {
      Rng rng(2000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        c.Add(1.0 + rng.NextDouble());
      }
    });
  }
  // Take snapshots while writers hammer the shards; each snapshot must be
  // internally consistent (count matches its own quantile validity) and
  // counts must be non-decreasing over time.
  uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    DDSketch snapshot = c.Snapshot();
    if (!snapshot.empty()) {
      const double p50 = snapshot.QuantileOrNaN(0.5);
      EXPECT_GE(p50, 1.0 * (1 - 0.011));
      EXPECT_LE(p50, 2.0 * (1 + 0.011));
    }
    EXPECT_GE(snapshot.count(), last_count);
    last_count = snapshot.count();
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST(ConcurrentTest, MergeFromRemoteSketches) {
  ConcurrentDDSketch c = Make(4);
  constexpr int kWorkers = 16;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&c, w] {
      auto local = std::move(DDSketch::Create(0.01)).value();
      Rng rng(3000 + static_cast<uint64_t>(w));
      for (int i = 0; i < 5000; ++i) local.Add(rng.NextDoubleOpenZero() * 10);
      ASSERT_TRUE(c.MergeFrom(local).ok());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.count(), static_cast<uint64_t>(kWorkers) * 5000);
}

TEST(ConcurrentTest, IncompatibleMergeRejected) {
  ConcurrentDDSketch c = Make();
  auto wrong = std::move(DDSketch::Create(0.05)).value();
  wrong.Add(1.0);
  EXPECT_EQ(c.MergeFrom(wrong).code(), StatusCode::kIncompatible);
}

TEST(ConcurrentTest, WeightedAddsThreadSafe) {
  ConcurrentDDSketch c = Make();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.Add(2.5, 10);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.count(), 40000u);
  EXPECT_NEAR(c.Snapshot().QuantileOrNaN(0.5), 2.5, 2.5 * 0.011);
}

}  // namespace
}  // namespace dd
