#include "core/ddsketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

DDSketch Make(double alpha = 0.01, int32_t max_buckets = 2048) {
  auto r = DDSketch::Create(alpha, max_buckets);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(DDSketchTest, CreateValidation) {
  EXPECT_FALSE(DDSketch::Create(0.0).ok());
  EXPECT_FALSE(DDSketch::Create(1.0).ok());
  EXPECT_FALSE(DDSketch::Create(-0.1).ok());
  DDSketchConfig bad;
  bad.max_num_buckets = 0;
  bad.store = StoreType::kCollapsingLowestDense;
  EXPECT_FALSE(DDSketch::Create(bad).ok());
  EXPECT_TRUE(DDSketch::Create(0.01).ok());
}

TEST(DDSketchTest, EmptySketch) {
  DDSketch s = Make();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.Quantile(0.5).ok());
  EXPECT_TRUE(std::isnan(s.QuantileOrNaN(0.5)));
  EXPECT_TRUE(std::isnan(s.mean()));
}

TEST(DDSketchTest, QuantileArgumentValidation) {
  DDSketch s = Make();
  s.Add(1.0);
  EXPECT_FALSE(s.Quantile(-0.1).ok());
  EXPECT_FALSE(s.Quantile(1.1).ok());
  EXPECT_FALSE(s.Quantile(std::nan("")).ok());
  EXPECT_TRUE(s.Quantile(0.0).ok());
  EXPECT_TRUE(s.Quantile(1.0).ok());
}

TEST(DDSketchTest, SingleValueAllQuantiles) {
  DDSketch s = Make();
  s.Add(12.5);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.QuantileOrNaN(q), 12.5) << q;
  }
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 12.5);
  EXPECT_EQ(s.max(), 12.5);
  EXPECT_DOUBLE_EQ(s.mean(), 12.5);
}

TEST(DDSketchTest, MinMaxExactAtEndpoints) {
  DDSketch s = Make();
  Rng rng(31);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 1000; ++i) {
    const double x = 1 + rng.NextDouble() * 1000;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.0), lo);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(1.0), hi);
}

TEST(DDSketchTest, RelativeErrorGuaranteeUniform) {
  const double alpha = 0.01;
  DDSketch s = Make(alpha);
  Rng rng(32);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    data.push_back(rng.NextDoubleOpenZero() * 1e6);
    s.Add(data.back());
  }
  ExactQuantiles truth(data);
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double actual = truth.Quantile(q);
    const double estimate = s.QuantileOrNaN(q);
    EXPECT_LE(RelativeError(estimate, actual), alpha * (1 + 1e-9))
        << "q=" << q;
  }
}

TEST(DDSketchTest, HandlesNegativeValues) {
  const double alpha = 0.02;
  DDSketch s = Make(alpha);
  std::vector<double> data;
  Rng rng(33);
  for (int i = 0; i < 20000; ++i) {
    // Symmetric heavy-ish data spanning both signs.
    const double mag = std::exp(rng.NextDouble() * 10 - 5);
    const double x = (rng.NextU64() & 1) ? mag : -mag;
    data.push_back(x);
    s.Add(x);
  }
  ExactQuantiles truth(data);
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double actual = truth.Quantile(q);
    const double estimate = s.QuantileOrNaN(q);
    EXPECT_LE(RelativeError(estimate, actual), alpha * (1 + 1e-9))
        << "q=" << q << " actual=" << actual << " est=" << estimate;
  }
}

TEST(DDSketchTest, ZeroBucketCountsZeros) {
  DDSketch s = Make();
  s.Add(0.0);
  s.Add(0.0);
  s.Add(1e-320);   // subnormal, below min indexable: treated as zero
  s.Add(-1e-320);
  s.Add(5.0);
  EXPECT_EQ(s.zero_count(), 4u);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.0), -1e-320);  // exact tracked min
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(1.0), 5.0);
}

TEST(DDSketchTest, MixedSignWithZerosOrdering) {
  DDSketch s = Make(0.005);
  // 10 negatives, 5 zeros, 10 positives.
  for (int i = 1; i <= 10; ++i) s.Add(-static_cast<double>(i));
  for (int i = 0; i < 5; ++i) s.Add(0.0);
  for (int i = 1; i <= 10; ++i) s.Add(static_cast<double>(i));
  // n = 25; q=0.5 -> 0-based rank 12 -> the zero block (ranks 10..14).
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.5), 0.0);
  // q=0.2 -> rank 4.8 -> 5th smallest negative: -6. Within 0.5% rel err.
  EXPECT_NEAR(s.QuantileOrNaN(0.2), -6.0, 6.0 * 0.005 * 1.01);
  // q=0.8 -> rank 19.2 -> positive 5. Within rel err.
  EXPECT_NEAR(s.QuantileOrNaN(0.8), 5.0, 5.0 * 0.005 * 1.01);
}

TEST(DDSketchTest, RejectsNonFinite) {
  DDSketch s = Make();
  s.Add(std::numeric_limits<double>::quiet_NaN());
  s.Add(std::numeric_limits<double>::infinity());
  s.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.rejected_count(), 3u);
  s.Add(1.0);
  EXPECT_EQ(s.count(), 1u);
}

TEST(DDSketchTest, ClampsExtremeMagnitudes) {
  DDSketch s = Make();
  s.Add(std::numeric_limits<double>::max());
  EXPECT_EQ(s.clamped_count(), 1u);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(std::isfinite(s.QuantileOrNaN(0.5)));
}

TEST(DDSketchTest, AddWithCountMatchesRepeatedAdd) {
  DDSketch a = Make(), b = Make();
  a.Add(3.7, 1000);
  for (int i = 0; i < 1000; ++i) b.Add(3.7);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_NEAR(a.sum(), b.sum(), 1e-9 * std::abs(b.sum()));
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(a.QuantileOrNaN(q), b.QuantileOrNaN(q));
  }
}

TEST(DDSketchTest, SumAndMeanExact) {
  DDSketch s = Make();
  double expected_sum = 0;
  Rng rng(34);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100 - 50;
    expected_sum += x;
    s.Add(x);
  }
  EXPECT_NEAR(s.sum(), expected_sum, 1e-9);
  EXPECT_NEAR(s.mean(), expected_sum / 1000, 1e-9);
}

TEST(DDSketchTest, RemoveUndoesAdd) {
  DDSketch s = Make();
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_EQ(s.Remove(50.0), 1u);
  EXPECT_EQ(s.count(), 99u);
  // Removing a value never added to any bucket returns 0... but values in
  // the same bucket are indistinguishable, so remove a far-away one:
  EXPECT_EQ(s.Remove(1e9), 0u);
  // Median shifts accordingly vs a fresh sketch without 50.
  DDSketch fresh = Make();
  for (int i = 1; i <= 100; ++i) {
    if (i != 50) fresh.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.5), fresh.QuantileOrNaN(0.5));
}

TEST(DDSketchTest, RemoveClampedValueMirrorsAddClamping) {
  // Regression: Add clamps magnitudes above max_indexable_value() into the
  // extreme bucket, but Remove used to reject them outright — a clamped
  // value could never be removed and clamped_count() stayed inflated
  // forever. Remove now mirrors the clamp and gives the count back.
  DDSketch s = Make();
  const double huge = std::numeric_limits<double>::max();
  ASSERT_GT(huge, s.mapping().max_indexable_value());
  s.Add(huge);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.clamped_count(), 1u);
  EXPECT_EQ(s.Remove(huge), 1u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.clamped_count(), 0u);
}

TEST(DDSketchTest, ClampedCountConservedAcrossRoundTrips) {
  DDSketch s = Make();
  const double huge = 1e308;
  // Both signs clamp (the negative store mirrors the positive one).
  s.Add(huge, 3);
  s.Add(-huge, 2);
  s.Add(5.0);
  EXPECT_EQ(s.clamped_count(), 5u);
  EXPECT_EQ(s.count(), 6u);
  EXPECT_EQ(s.Remove(-huge, 2), 2u);
  EXPECT_EQ(s.clamped_count(), 3u);
  // Over-removal drains what is there and never underflows the counter.
  EXPECT_EQ(s.Remove(huge, 100), 3u);
  EXPECT_EQ(s.clamped_count(), 0u);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.Remove(huge, 1), 0u);
  EXPECT_EQ(s.clamped_count(), 0u);
}

TEST(DDSketchTest, RemoveZeroAndEmptyReset) {
  DDSketch s = Make();
  s.Add(0.0);
  EXPECT_EQ(s.Remove(0.0), 1u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.min(), std::numeric_limits<double>::infinity());
}

TEST(DDSketchTest, ClearResetsEverything) {
  DDSketch s = Make();
  s.Add(1.0);
  s.Add(0.0);
  s.Add(-2.0);
  s.Add(std::nan(""));
  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.zero_count(), 0u);
  EXPECT_EQ(s.rejected_count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.5), 7.0);
}

TEST(DDSketchTest, CopyIsDeep) {
  DDSketch a = Make();
  a.Add(1.0);
  DDSketch b = a;
  b.Add(100.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(b.count(), 2u);
  DDSketch c = Make(0.05);
  c = a;
  EXPECT_EQ(c.count(), 1u);
  EXPECT_DOUBLE_EQ(c.relative_accuracy(), 0.01);
}

TEST(DDSketchTest, QuantilesBatchMatchesSingles) {
  DDSketch s = Make();
  Rng rng(35);
  for (int i = 0; i < 5000; ++i) s.Add(rng.NextDoubleOpenZero() * 100);
  const std::vector<double> qs = {0.1, 0.5, 0.9, 0.99};
  auto batch = s.Quantiles(qs);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch.value()[i], s.QuantileOrNaN(qs[i]));
  }
}

TEST(DDSketchTest, CollapsedLowQuantilesLoseGuaranteeButHighKeepIt) {
  // Small bucket budget on a wide range: low quantiles collapse, the upper
  // ones must stay alpha-accurate (Proposition 4). With alpha = 0.01 and
  // m = 512, the kept window spans a factor gamma^511 ~ 3e4 below the
  // maximum; data spanning 1..1e10 therefore collapses its bottom decades.
  const double alpha = 0.01;
  const int32_t m = 512;
  DDSketch s = Make(alpha, m);
  std::vector<double> data;
  Rng rng(36);
  for (int i = 0; i < 50000; ++i) {
    data.push_back(std::exp(rng.NextDouble() * 23));  // 1 .. 1e10
    s.Add(data.back());
  }
  ExactQuantiles truth(data);
  const double gamma = s.mapping().gamma();
  // Proposition 4: quantiles with x1 <= xq * gamma^(m-1) stay accurate.
  for (double q : {0.7, 0.8, 0.9, 0.95, 0.99, 0.999}) {
    const double xq = truth.Quantile(q);
    ASSERT_LE(truth.max(), xq * std::pow(gamma, m - 1))
        << "test setup: q=" << q << " should be in the safe zone";
    EXPECT_LE(RelativeError(s.QuantileOrNaN(q), xq), alpha * (1 + 1e-9))
        << q;
  }
  // Quantiles whose buckets were folded away really do lose the guarantee
  // (the documented trade-off of Algorithm 3).
  EXPECT_GT(RelativeError(s.QuantileOrNaN(0.001), truth.Quantile(0.001)),
            alpha);
}

TEST(DDSketchTest, NegativeSideCollapsesMostNegativeFirst) {
  // §2.2: for the negative store "collapses start from the highest
  // indices", i.e. the *most negative* values fold first, preserving
  // accuracy near zero. Mirror-image of the positive store's behaviour.
  const double alpha = 0.01;
  const int32_t m = 256;
  DDSketch s = Make(alpha, m);
  std::vector<double> data;
  Rng rng(41);
  for (int i = 0; i < 50000; ++i) {
    data.push_back(-std::exp(rng.NextDouble() * 23));  // -1 .. -1e10
    s.Add(data.back());
  }
  ExactQuantiles truth(data);
  // Quantiles near zero (high q for negatives) keep the guarantee...
  for (double q : {0.9, 0.95, 0.99}) {
    EXPECT_LE(RelativeError(s.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
  }
  // ...while the far-negative end (low q) was folded and lost it.
  EXPECT_GT(RelativeError(s.QuantileOrNaN(0.001), truth.Quantile(0.001)),
            alpha);
}

TEST(DDSketchTest, CollapsingConfigMirrorsPerSign) {
  // A mixed-sign stream under bucket pressure: both sides collapse their
  // least-important end (low positives, far negatives), so the quantiles
  // around the bulk stay accurate on both sides of zero.
  const double alpha = 0.01;
  DDSketch s = Make(alpha, 128);
  std::vector<double> data;
  Rng rng(42);
  for (int i = 0; i < 60000; ++i) {
    const double mag = std::exp(rng.NextDouble() * 18);  // 1 .. 6.6e7
    const double x = (i % 2 == 0) ? mag : -mag;
    data.push_back(x);
    s.Add(x);
  }
  ExactQuantiles truth(data);
  // Large-magnitude positives (high q) are uncollapsed.
  for (double q : {0.95, 0.99}) {
    EXPECT_LE(RelativeError(s.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
  }
  // Near-zero negatives (q just below 0.5) are uncollapsed too.
  for (double q : {0.45, 0.48}) {
    EXPECT_LE(RelativeError(s.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
  }
}

TEST(DDSketchTest, NumBucketsGrowsLogarithmically) {
  // Paper Figure 7: bins grow ~logarithmically in n for Pareto data.
  DDSketch s = Make(0.01, 4096);
  Rng rng(37);
  size_t buckets_at_1e4 = 0;
  for (int i = 1; i <= 1000000; ++i) {
    s.Add(std::pow(rng.NextDoubleOpenZero(), -1.0));  // Pareto(1,1)
    if (i == 10000) buckets_at_1e4 = s.num_buckets();
  }
  const size_t buckets_at_1e6 = s.num_buckets();
  // 100x more data should cost far less than 2x more buckets.
  EXPECT_LT(buckets_at_1e6, 2 * buckets_at_1e4);
  EXPECT_LT(buckets_at_1e6, 1200u);  // paper: ~900 bins at n=1e10
}

TEST(DDSketchTest, FastMappingVariantsKeepGuarantee) {
  for (MappingType type :
       {MappingType::kLinearInterpolated, MappingType::kQuadraticInterpolated,
        MappingType::kCubicInterpolated}) {
    DDSketchConfig config;
    config.relative_accuracy = 0.01;
    config.mapping = type;
    auto r = DDSketch::Create(config);
    ASSERT_TRUE(r.ok());
    DDSketch s = std::move(r).value();
    std::vector<double> data;
    Rng rng(38);
    for (int i = 0; i < 20000; ++i) {
      data.push_back(std::exp(rng.NextDouble() * 20 - 10));
      s.Add(data.back());
    }
    ExactQuantiles truth(data);
    for (double q : {0.01, 0.5, 0.95, 0.99}) {
      EXPECT_LE(RelativeError(s.QuantileOrNaN(q), truth.Quantile(q)),
                0.01 * (1 + 1e-9))
          << MappingTypeToString(type) << " q=" << q;
    }
  }
}

TEST(DDSketchTest, SparseStoreVariantEquivalentAnswers) {
  DDSketchConfig dense_cfg, sparse_cfg;
  sparse_cfg.store = StoreType::kSparse;
  sparse_cfg.max_num_buckets = 0;
  dense_cfg.store = StoreType::kUnboundedDense;
  auto dense = std::move(DDSketch::Create(dense_cfg)).value();
  auto sparse = std::move(DDSketch::Create(sparse_cfg)).value();
  Rng rng(39);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDoubleOpenZero() * 1e4;
    dense.Add(x);
    sparse.Add(x);
  }
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(dense.QuantileOrNaN(q), sparse.QuantileOrNaN(q)) << q;
  }
  EXPECT_EQ(dense.num_buckets(), sparse.num_buckets());
}

TEST(DDSketchTest, SizeInBytesTracksStoreFootprint) {
  DDSketch s = Make();
  const size_t before = s.size_in_bytes();
  Rng rng(40);
  for (int i = 0; i < 10000; ++i) s.Add(std::exp(rng.NextDouble() * 10));
  EXPECT_GT(s.size_in_bytes(), before);
  EXPECT_LT(s.size_in_bytes(), 200 * 1024u);  // sane bound for 2048 buckets
}

}  // namespace
}  // namespace dd
