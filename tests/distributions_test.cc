#include "data/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/datasets.h"

namespace dd {
namespace {

double Mean(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double QuantileOf(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return xs[static_cast<size_t>(q * (static_cast<double>(xs.size()) - 1))];
}

TEST(DistributionsTest, GenerateNIsDeterministic) {
  Pareto p(1.0, 1.0);
  const auto a = GenerateN(p, 1000, 42);
  const auto b = GenerateN(p, 1000, 42);
  EXPECT_EQ(a, b);
  const auto c = GenerateN(p, 1000, 43);
  EXPECT_NE(a, c);
}

TEST(DistributionsTest, UniformMoments) {
  const auto xs = GenerateN(Uniform(2.0, 6.0), 200000, 1);
  EXPECT_NEAR(Mean(xs), 4.0, 0.02);
  EXPECT_GE(*std::min_element(xs.begin(), xs.end()), 2.0);
  EXPECT_LT(*std::max_element(xs.begin(), xs.end()), 6.0);
}

TEST(DistributionsTest, ExponentialMomentsAndQuantiles) {
  const double lambda = 0.5;
  const auto xs = GenerateN(Exponential(lambda), 200000, 2);
  EXPECT_NEAR(Mean(xs), 1.0 / lambda, 0.03);
  // Median = ln(2)/lambda.
  EXPECT_NEAR(QuantileOf(xs, 0.5), std::log(2.0) / lambda, 0.03);
  EXPECT_GT(*std::min_element(xs.begin(), xs.end()), 0.0);
}

TEST(DistributionsTest, ParetoQuantilesMatchClosedForm) {
  // F^{-1}(q) = b / (1-q)^{1/a}
  const double a = 2.0, b = 3.0;
  const auto xs = GenerateN(Pareto(a, b), 400000, 3);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double expected = b / std::pow(1.0 - q, 1.0 / a);
    EXPECT_NEAR(QuantileOf(xs, q) / expected, 1.0, 0.03) << q;
  }
  EXPECT_GE(*std::min_element(xs.begin(), xs.end()), b);
}

TEST(DistributionsTest, ParetoUnitShapeIsHeavyTailed) {
  // a=1: p99/p50 = 50x; empirical max across 1e6 draws far above p99.
  const auto xs = GenerateN(Pareto(1.0, 1.0), 1000000, 4);
  const double p50 = QuantileOf(xs, 0.5);
  const double p99 = QuantileOf(xs, 0.99);
  EXPECT_NEAR(p99 / p50, 50.0, 5.0);
  EXPECT_GT(*std::max_element(xs.begin(), xs.end()), 10 * p99);
}

TEST(DistributionsTest, NormalMoments) {
  const auto xs = GenerateN(Normal(10.0, 3.0), 200000, 5);
  EXPECT_NEAR(Mean(xs), 10.0, 0.05);
  double var = 0;
  for (double x : xs) var += (x - 10.0) * (x - 10.0);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(var, 9.0, 0.2);
  // Symmetry: median ~ mean.
  EXPECT_NEAR(QuantileOf(xs, 0.5), 10.0, 0.05);
}

TEST(DistributionsTest, LognormalMedianIsExpMu) {
  const auto xs = GenerateN(Lognormal(1.0, 0.75), 200000, 6);
  EXPECT_NEAR(QuantileOf(xs, 0.5), std::exp(1.0), 0.05);
  // p75/p50 = exp(0.6745 sigma).
  EXPECT_NEAR(QuantileOf(xs, 0.75) / QuantileOf(xs, 0.5),
              std::exp(0.6745 * 0.75), 0.03);
}

TEST(DistributionsTest, WeibullMedianMatchesClosedForm) {
  const double k = 1.5, lambda = 2.0;
  const auto xs = GenerateN(Weibull(k, lambda), 200000, 7);
  const double median = lambda * std::pow(std::log(2.0), 1.0 / k);
  EXPECT_NEAR(QuantileOf(xs, 0.5), median, 0.03);
}

TEST(DistributionsTest, MixtureWeightsRespected) {
  std::vector<Mixture::Component> parts;
  parts.push_back({0.7, std::make_unique<Uniform>(0.0, 1.0)});
  parts.push_back({0.3, std::make_unique<Uniform>(10.0, 11.0)});
  Mixture mix(std::move(parts));
  const auto xs = GenerateN(mix, 100000, 8);
  const double low_fraction =
      static_cast<double>(std::count_if(xs.begin(), xs.end(),
                                        [](double x) { return x < 5; })) /
      static_cast<double>(xs.size());
  EXPECT_NEAR(low_fraction, 0.7, 0.01);
}

TEST(DistributionsTest, ClampedStaysInRange) {
  Clamped c(std::make_unique<Normal>(0.0, 100.0), -5.0, 5.0);
  const auto xs = GenerateN(c, 10000, 9);
  for (double x : xs) {
    EXPECT_GE(x, -5.0);
    EXPECT_LE(x, 5.0);
  }
}

TEST(DistributionsTest, RoundedProducesIntegers) {
  Rounded r(std::make_unique<Uniform>(0.0, 1000.0));
  const auto xs = GenerateN(r, 10000, 10);
  for (double x : xs) EXPECT_EQ(x, std::round(x));
}

TEST(DistributionsTest, CloneSamplesIdentically) {
  auto span = MakeDataset(DatasetId::kSpan);
  auto clone = span->Clone();
  Rng r1(11), r2(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(span->Sample(r1), clone->Sample(r2));
  }
}

TEST(DatasetsTest, ParetoDatasetIsUnitPareto) {
  const auto xs = GenerateDataset(DatasetId::kPareto, 200000);
  EXPECT_GE(*std::min_element(xs.begin(), xs.end()), 1.0);
  EXPECT_NEAR(QuantileOf(xs, 0.5), 2.0, 0.05);  // F^{-1}(.5) = 2 for a=b=1
}

TEST(DatasetsTest, SpanDatasetMatchesPaperProperties) {
  const auto xs = GenerateDataset(DatasetId::kSpan, 500000);
  // Integer nanoseconds.
  for (size_t i = 0; i < xs.size(); i += 997) {
    EXPECT_EQ(xs[i], std::round(xs[i]));
  }
  // Range: 1e2 .. 1.9e12 (paper §4.1).
  EXPECT_GE(*std::min_element(xs.begin(), xs.end()), 100.0);
  EXPECT_LE(*std::max_element(xs.begin(), xs.end()), 1.9e12);
  // Wide dynamic range actually exercised: >= 6 orders of magnitude between
  // p1 and p99.9.
  EXPECT_GT(QuantileOf(xs, 0.999) / QuantileOf(xs, 0.01), 1e6);
}

TEST(DatasetsTest, PowerDatasetMatchesPaperProperties) {
  const auto xs = GenerateDataset(DatasetId::kPower, 500000);
  EXPECT_GE(*std::min_element(xs.begin(), xs.end()), 0.076);
  EXPECT_LE(*std::max_element(xs.begin(), xs.end()), 11.122);
  // Dense and narrow: p99/p50 well under one order of magnitude.
  EXPECT_LT(QuantileOf(xs, 0.99) / QuantileOf(xs, 0.5), 20.0);
}

TEST(DatasetsTest, WebLatencyMatchesFigure4Quantiles) {
  // Figure 4 plots p50~2, p75~4, p90~10, p99 in the 80-220 band.
  const auto xs = GenerateDataset(DatasetId::kWebLatency, 500000);
  EXPECT_NEAR(QuantileOf(xs, 0.5), 2.0, 0.5);
  EXPECT_NEAR(QuantileOf(xs, 0.75), 4.0, 1.0);
  EXPECT_NEAR(QuantileOf(xs, 0.9), 10.0, 4.0);
  const double p99 = QuantileOf(xs, 0.99);
  EXPECT_GT(p99, 40.0);
  EXPECT_LT(p99, 500.0);
}

TEST(DatasetsTest, StreamMatchesGenerate) {
  DataStream stream(MakeDataset(DatasetId::kPareto), 123);
  const auto batch = GenerateDataset(DatasetId::kPareto, 100, 123);
  for (double expected : batch) {
    EXPECT_EQ(stream.Next(), expected);
  }
}

TEST(DatasetsTest, NamesAreStable) {
  EXPECT_STREQ(DatasetIdToString(DatasetId::kPareto), "pareto");
  EXPECT_STREQ(DatasetIdToString(DatasetId::kSpan), "span");
  EXPECT_STREQ(DatasetIdToString(DatasetId::kPower), "power");
  EXPECT_STREQ(DatasetIdToString(DatasetId::kWebLatency), "web_latency");
}

}  // namespace
}  // namespace dd
