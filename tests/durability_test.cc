// Crash-recovery tests for the durable sketch store. The central harness
// simulates a crash at every byte of the write-ahead log: it truncates a
// copy of the log at each offset, reopens the store, and asserts that
// exactly the fully-written prefix of ingests is recovered and that
// queries are byte-identical to a reference store fed the same prefix.
// The checkpoint protocol (snapshot + WAL epoch handshake) is exercised
// at its crash windows too — including the interrupted checkpoint, where
// a stale log must not be double-applied.

#include "timeseries/durable_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/ddsketch.h"
#include "timeseries/snapshot.h"
#include "timeseries/wal.h"
#include "util/file_io.h"

namespace dd {
namespace {

namespace fs = std::filesystem;

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("dd_durability_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }

  static DurableSketchStoreOptions Options() {
    DurableSketchStoreOptions options;
    options.store.levels = {{10, 600}, {60, 0}};
    return options;
  }

  static DurableSketchStore MustOpen(const std::string& dir) {
    auto opened = DurableSketchStore::Open(dir, Options());
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return std::move(opened).value();
  }

  static std::string ReadFile(const std::string& path) {
    auto r = ReadFileToString(path);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  static void WriteFile(const std::string& path, std::string_view bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  /// A deterministic worker sketch with a few values derived from `seed`.
  static std::string WorkerPayload(int seed) {
    auto sketch = std::move(DDSketch::Create(DDSketchConfig{})).value();
    for (int i = 1; i <= 5; ++i) {
      sketch.Add(static_cast<double>((seed * 13 + i * 7) % 997) + 0.5);
    }
    return sketch.Serialize();
  }

  /// Byte-exact fingerprint of a store's full queryable state: every
  /// series' merged sketch over a window covering all test data.
  static std::string Fingerprint(const SketchStore& store) {
    std::string fp;
    for (const std::string& name : store.ListSeries()) {
      auto merged = store.QueryRange(name, -1000000, 1000000);
      EXPECT_TRUE(merged.ok()) << merged.status().ToString();
      fp += name + ":" + merged.value().Serialize() + ";";
    }
    return fp;
  }

  fs::path root_;
};

/// One scripted ingest, applied identically to durable and reference
/// stores.
struct Op {
  bool is_sketch;
  std::string series;
  int64_t timestamp;
  double value;   // !is_sketch
  int seed;       // is_sketch
};

std::vector<Op> ScriptedOps(int n) {
  std::vector<Op> ops;
  for (int i = 0; i < n; ++i) {
    Op op;
    op.series = (i % 3 == 0) ? "api.latency" : "db.latency";
    op.timestamp = (i * 7) % 200 - 40;  // spans intervals, incl. negatives
    op.is_sketch = (i % 4 == 1);
    op.value = static_cast<double>((i * 31) % 500) + 0.25;
    op.seed = i;
    ops.push_back(op);
  }
  return ops;
}

TEST_F(DurabilityTest, FreshDirectoryOpensEmpty) {
  DurableSketchStore store = MustOpen(Dir("fresh"));
  EXPECT_EQ(store.store().num_series(), 0u);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_TRUE(FileExists(DurableSketchStore::WalPath(Dir("fresh"))));
  // A fresh directory immediately gets an empty epoch-0 snapshot that
  // pins the store options on disk.
  auto snapshot =
      ReadSnapshotFile(DurableSketchStore::SnapshotPath(Dir("fresh")));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot.value().epoch, 0u);
  EXPECT_EQ(snapshot.value().store.num_series(), 0u);
}

TEST_F(DurabilityTest, SecondOpenIsLockedOut) {
  const std::string dir = Dir("locked");
  DurableSketchStore store = MustOpen(dir);
  auto second = DurableSketchStore::Open(dir, Options());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DurabilityTest, LockIsReleasedOnClose) {
  const std::string dir = Dir("relock");
  {
    DurableSketchStore store = MustOpen(dir);
    ASSERT_TRUE(store.IngestValue("s", 0, 1.0).ok());
  }
  DurableSketchStore reopened = MustOpen(dir);
  EXPECT_EQ(std::move(reopened.QueryRange("s", 0, 10)).value().count(), 1u);
}

TEST_F(DurabilityTest, ReopenRecoversEveryAckedIngest) {
  const std::string dir = Dir("reopen");
  auto ref = std::move(SketchStore::Create(Options().store)).value();
  {
    DurableSketchStore store = MustOpen(dir);
    for (const Op& op : ScriptedOps(50)) {
      if (op.is_sketch) {
        const std::string payload = WorkerPayload(op.seed);
        ASSERT_TRUE(store.Ingest(op.series, op.timestamp, payload).ok());
        ASSERT_TRUE(ref.Ingest(op.series, op.timestamp, payload).ok());
      } else {
        ASSERT_TRUE(store.IngestValue(op.series, op.timestamp, op.value).ok());
        ASSERT_TRUE(ref.IngestValue(op.series, op.timestamp, op.value).ok());
      }
    }
  }
  DurableSketchStore reopened = MustOpen(dir);
  EXPECT_EQ(Fingerprint(reopened.store()), Fingerprint(ref));
  for (double q : {0.1, 0.5, 0.99}) {
    EXPECT_EQ(
        std::move(reopened.QueryQuantile("api.latency", -100, 300, q)).value(),
        std::move(ref.QueryQuantile("api.latency", -100, 300, q)).value());
  }
}

TEST_F(DurabilityTest, CrashRecoveryAtEveryWalTruncationPoint) {
  const std::string dir = Dir("crash");
  const std::vector<Op> ops = ScriptedOps(40);

  // Build the log, remembering the offset after every acked ingest and
  // the reference fingerprint of every prefix.
  std::vector<uint64_t> boundaries;   // boundaries[n] = offset after n ops
  std::vector<std::string> prefix_fp; // prefix_fp[n] = fingerprint of n ops
  auto ref = std::move(SketchStore::Create(Options().store)).value();
  {
    DurableSketchStore store = MustOpen(dir);
    boundaries.push_back(store.wal_offset());
    prefix_fp.push_back(Fingerprint(ref));
    for (const Op& op : ops) {
      if (op.is_sketch) {
        const std::string payload = WorkerPayload(op.seed);
        ASSERT_TRUE(store.Ingest(op.series, op.timestamp, payload).ok());
        ASSERT_TRUE(ref.Ingest(op.series, op.timestamp, payload).ok());
      } else {
        ASSERT_TRUE(store.IngestValue(op.series, op.timestamp, op.value).ok());
        ASSERT_TRUE(ref.IngestValue(op.series, op.timestamp, op.value).ok());
      }
      boundaries.push_back(store.wal_offset());
      prefix_fp.push_back(Fingerprint(ref));
    }
  }
  const std::string wal_bytes = ReadFile(DurableSketchStore::WalPath(dir));
  ASSERT_EQ(wal_bytes.size(), boundaries.back());

  const std::string crash_dir = Dir("crash_replay");
  for (uint64_t cut = 0; cut <= wal_bytes.size(); ++cut) {
    // Simulate a crash that left only the first `cut` bytes durable.
    fs::remove_all(crash_dir);
    fs::create_directories(crash_dir);
    WriteFile(DurableSketchStore::WalPath(crash_dir),
              std::string_view(wal_bytes).substr(0, cut));

    auto reopened = DurableSketchStore::Open(crash_dir, Options());
    ASSERT_TRUE(reopened.ok())
        << "cut=" << cut << ": " << reopened.status().ToString();

    // Every fully-written record — and nothing more — must be recovered.
    size_t expected = 0;
    while (expected + 1 < boundaries.size() &&
           boundaries[expected + 1] <= cut) {
      ++expected;
    }
    EXPECT_EQ(Fingerprint(reopened.value().store()), prefix_fp[expected])
        << "cut=" << cut;

    // The recovered store must accept new ingests (torn tail truncated).
    ASSERT_TRUE(
        reopened.value().IngestValue("post.crash", 0, 1.0).ok())
        << "cut=" << cut;
  }
}

TEST_F(DurabilityTest, RecoveredStoreContinuesAndSurvivesSecondCrash) {
  const std::string dir = Dir("continue");
  {
    DurableSketchStore store = MustOpen(dir);
    ASSERT_TRUE(store.IngestValue("s", 5, 1.0).ok());
  }
  // Crash mid-record: append garbage that looks like a torn frame.
  {
    std::ofstream out(DurableSketchStore::WalPath(dir),
                      std::ios::binary | std::ios::app);
    out.put('\x50');  // a lone length byte, frame never completed
  }
  {
    DurableSketchStore store = MustOpen(dir);
    EXPECT_EQ(std::move(store.QueryRange("s", 0, 10)).value().count(), 1u);
    ASSERT_TRUE(store.IngestValue("s", 5, 2.0).ok());
  }
  DurableSketchStore store = MustOpen(dir);
  EXPECT_EQ(std::move(store.QueryRange("s", 0, 10)).value().count(), 2u);
}

TEST_F(DurabilityTest, CheckpointFoldsWalIntoSnapshot) {
  const std::string dir = Dir("checkpoint");
  std::string before_fp;
  {
    DurableSketchStore store = MustOpen(dir);
    for (const Op& op : ScriptedOps(30)) {
      if (op.is_sketch) {
        ASSERT_TRUE(
            store.Ingest(op.series, op.timestamp, WorkerPayload(op.seed)).ok());
      } else {
        ASSERT_TRUE(store.IngestValue(op.series, op.timestamp, op.value).ok());
      }
    }
    before_fp = Fingerprint(store.store());
    ASSERT_TRUE(store.Checkpoint().ok());
    EXPECT_EQ(store.epoch(), 2u);
    // The log is now empty; the snapshot carries the state.
    ASSERT_TRUE(store.IngestValue("late", 0, 9.0).ok());
  }
  DurableSketchStore reopened = MustOpen(dir);
  EXPECT_EQ(reopened.epoch(), 2u);
  ASSERT_TRUE(std::move(reopened.QueryRange("late", 0, 10)).ok());
  // Remove the post-checkpoint series and compare to the pre-checkpoint
  // fingerprint via a fresh reference decode of the snapshot.
  auto snapshot =
      ReadSnapshotFile(DurableSketchStore::SnapshotPath(dir));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(Fingerprint(snapshot.value().store), before_fp);
  EXPECT_EQ(snapshot.value().epoch, 1u);
}

TEST_F(DurabilityTest, CompactionPreservesQueriesAcrossReopen) {
  const std::string dir = Dir("compact");
  std::vector<double> before;
  {
    DurableSketchStore store = MustOpen(dir);
    for (int64_t ts = 0; ts < 3600; ts += 5) {
      ASSERT_TRUE(
          store.IngestValue("svc", ts, static_cast<double>(ts % 97) + 1.0)
              .ok());
    }
    for (double q = 0.05; q < 1.0; q += 0.05) {
      before.push_back(
          std::move(store.QueryQuantile("svc", 0, 3600, q)).value());
    }
    auto compacted = store.Compact(3600);
    ASSERT_TRUE(compacted.ok());
    EXPECT_GT(compacted.value(), 0u);
  }
  DurableSketchStore reopened = MustOpen(dir);
  size_t i = 0;
  for (double q = 0.05; q < 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(
        std::move(reopened.QueryQuantile("svc", 0, 3600, q)).value(),
        before[i++])
        << q;
  }
}

TEST_F(DurabilityTest, InterruptedCheckpointIsNotDoubleApplied) {
  const std::string dir = Dir("interrupted");
  std::string fp;
  {
    DurableSketchStore store = MustOpen(dir);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(store.IngestValue("s", i * 10, 1.0 + i).ok());
    }
    fp = Fingerprint(store.store());
    // Simulate the crash window inside Checkpoint(): the snapshot
    // (carrying the current WAL epoch) reached disk, but the WAL reset
    // did not.
    ASSERT_TRUE(WriteSnapshotFile(store.store(), store.epoch(),
                                  DurableSketchStore::SnapshotPath(dir))
                    .ok());
  }
  DurableSketchStore reopened = MustOpen(dir);
  // The WAL records are already inside the snapshot; replaying them too
  // would double every count.
  EXPECT_EQ(Fingerprint(reopened.store()), fp);
  EXPECT_EQ(std::move(reopened.QueryRange("s", 0, 200)).value().count(), 20u);
  // The interrupted checkpoint was finished: the log is on the next epoch.
  EXPECT_EQ(reopened.epoch(), 2u);
}

TEST_F(DurabilityTest, InterruptedRollupCheckpointRecoversEitherSide) {
  // A rollup checkpoint has the same two crash sides as any checkpoint,
  // but with higher stakes: the fold rewrites tiers, and rollup state
  // is ONLY persisted via snapshots. Crash before the snapshot rename →
  // recovery replays raw records (fold simply re-runs at the next
  // checkpoint). Crash after the rename but before the WAL reset → the
  // snapshot already contains the folded records, and replaying the log
  // on top would double every count.
  const std::string dir = Dir("rollupcrash");
  std::vector<double> before;
  uint64_t epoch = 0;
  {
    DurableSketchStore store = MustOpen(dir);
    // Spans ~2000s, far past the 600s raw retention.
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(
          store.IngestValue("svc", i * 5, 1.0 + (i % 61) * 0.5).ok());
    }
    for (double q = 0.05; q < 1.0; q += 0.05) {
      before.push_back(
          std::move(store.QueryQuantile("svc", 0, 2100, q)).value());
    }
    epoch = store.epoch();
    // Simulate the bad side of the window: fold a clone of the live
    // state in memory (exactly what Compact's checkpoint does), write
    // the rolled-up snapshot, and "crash" before the WAL reset.
    auto clone = DecodeSnapshot(EncodeSnapshot(store.store(), epoch));
    ASSERT_TRUE(clone.ok()) << clone.status().ToString();
    EXPECT_GT(clone.value().store.Compact(std::numeric_limits<int64_t>::max()),
              0u);
    ASSERT_TRUE(WriteSnapshotFile(clone.value().store, epoch,
                                  DurableSketchStore::SnapshotPath(dir))
                    .ok());
  }
  DurableSketchStore reopened = MustOpen(dir);
  // The folded snapshot won; the raw WAL records it already contains
  // were not replayed on top of it.
  EXPECT_EQ(reopened.epoch(), epoch + 1);
  EXPECT_EQ(std::move(reopened.QueryRange("svc", 0, 2100)).value().count(),
            400u);
  EXPECT_GT(reopened.store().LevelStats()[1].num_intervals, 0u);
  size_t i = 0;
  for (double q = 0.05; q < 1.0; q += 0.05) {
    EXPECT_EQ(std::move(reopened.QueryQuantile("svc", 0, 2100, q)).value(),
              before[i++])
        << q;
  }
}

TEST_F(DurabilityTest, TornWalHeaderIsRecreated) {
  const std::string dir = Dir("tornheader");
  {
    DurableSketchStore store = MustOpen(dir);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store.IngestValue("s", i, 1.0).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  // Crash during the WAL reset, after truncation but mid-header-write.
  const std::string wal_path = DurableSketchStore::WalPath(dir);
  WriteFile(wal_path, ReadFile(wal_path).substr(0, 4));
  DurableSketchStore reopened = MustOpen(dir);
  EXPECT_EQ(std::move(reopened.QueryRange("s", 0, 100)).value().count(), 10u);
  ASSERT_TRUE(reopened.IngestValue("s", 50, 2.0).ok());
}

TEST_F(DurabilityTest, BitRotInWalBodyFailsWithCorruption) {
  const std::string dir = Dir("bitrot");
  {
    DurableSketchStore store = MustOpen(dir);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store.IngestValue("s", i, 1.0 + i).ok());
    }
  }
  const std::string wal_path = DurableSketchStore::WalPath(dir);
  std::string bytes = ReadFile(wal_path);
  bytes[bytes.size() / 2] = static_cast<char>(
      static_cast<uint8_t>(bytes[bytes.size() / 2]) ^ 0x40);
  WriteFile(wal_path, bytes);
  auto reopened = DurableSketchStore::Open(dir, Options());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(DurabilityTest, BitRotInSnapshotFailsWithCorruption) {
  const std::string dir = Dir("snaprot");
  {
    DurableSketchStore store = MustOpen(dir);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store.IngestValue("s", i, 1.0 + i).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  const std::string snapshot_path = DurableSketchStore::SnapshotPath(dir);
  std::string bytes = ReadFile(snapshot_path);
  bytes[bytes.size() / 2] = static_cast<char>(
      static_cast<uint8_t>(bytes[bytes.size() / 2]) ^ 0x10);
  WriteFile(snapshot_path, bytes);
  auto reopened = DurableSketchStore::Open(dir, Options());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(DurabilityTest, MismatchedOptionsAreIncompatible) {
  const std::string dir = Dir("mismatch");
  {
    DurableSketchStore store = MustOpen(dir);
    ASSERT_TRUE(store.IngestValue("s", 0, 1.0).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  DurableSketchStoreOptions other = Options();
  other.store.sketch.relative_accuracy = 0.05;
  auto reopened = DurableSketchStore::Open(dir, other);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIncompatible);
}

TEST_F(DurabilityTest, MismatchedOptionsCaughtWithoutCheckpoint) {
  // The initial epoch-0 snapshot pins options even when the directory
  // holds only WAL records (no explicit checkpoint ever ran).
  const std::string dir = Dir("mismatch_wal_only");
  {
    DurableSketchStore store = MustOpen(dir);
    ASSERT_TRUE(store.IngestValue("s", 0, 1.0).ok());
  }
  DurableSketchStoreOptions other = Options();
  other.store.levels = {{60, 3600}, {360, 0}};
  auto reopened = DurableSketchStore::Open(dir, other);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIncompatible);
}

TEST_F(DurabilityTest, InvalidPayloadsAreRejectedBeforeLogging) {
  const std::string dir = Dir("reject");
  DurableSketchStore store = MustOpen(dir);
  const uint64_t offset = store.wal_offset();
  EXPECT_EQ(store.Ingest("s", 0, "garbage").code(), StatusCode::kCorruption);
  auto wrong = std::move(DDSketch::Create(0.05)).value();
  wrong.Add(1.0);
  EXPECT_EQ(store.Ingest("s", 0, wrong.Serialize()).code(),
            StatusCode::kIncompatible);
  // Nothing reached the log: rejected ingests must not poison replay.
  EXPECT_EQ(store.wal_offset(), offset);
}

TEST_F(DurabilityTest, GroupCommitBatchIsOneFsync) {
  const std::string dir = Dir("groupfsync");
  DurableSketchStore store = MustOpen(dir);
  std::vector<WalRecord> records;
  for (int i = 0; i < 64; ++i) {
    WalRecord record;
    record.type = (i % 4 == 1) ? WalRecord::Type::kIngestSketch
                               : WalRecord::Type::kIngestValue;
    record.series = (i % 3 == 0) ? "api.latency" : "db.latency";
    record.timestamp = i * 7;
    if (record.type == WalRecord::Type::kIngestSketch) {
      record.payload = WorkerPayload(i);
    } else {
      record.value = 1.0 + i;
    }
    records.push_back(std::move(record));
  }
  const uint64_t fsyncs_before = TotalFsyncCount();
  ASSERT_TRUE(store.IngestBatch(records).ok());
  // 64 acknowledged ingests, exactly one flush.
  EXPECT_EQ(TotalFsyncCount() - fsyncs_before, 1u);
  // The batch is both queryable and fully applied in-memory.
  EXPECT_EQ(store.store().num_series(), 2u);
  uint64_t total = 0;
  for (const std::string& name : store.store().ListSeries()) {
    total += std::move(store.QueryRange(name, -1000, 1000)).value().count();
  }
  // 48 raw values + 16 worker sketches of 5 values each.
  EXPECT_EQ(total, 48u + 16u * 5u);
}

TEST_F(DurabilityTest, GroupCommitBatchRejectsBadRecordBeforeLogging) {
  const std::string dir = Dir("groupreject");
  DurableSketchStore store = MustOpen(dir);
  std::vector<WalRecord> records;
  WalRecord good;
  good.type = WalRecord::Type::kIngestValue;
  good.series = "s";
  good.timestamp = 0;
  good.value = 1.0;
  records.push_back(good);
  WalRecord bad;
  bad.type = WalRecord::Type::kIngestSketch;
  bad.series = "s";
  bad.timestamp = 0;
  bad.payload = "garbage";
  records.push_back(bad);
  const uint64_t offset = store.wal_offset();
  EXPECT_EQ(store.IngestBatch(records).code(), StatusCode::kCorruption);
  // Nothing — including the valid first record — reached the log or the
  // in-memory store.
  EXPECT_EQ(store.wal_offset(), offset);
  EXPECT_EQ(store.store().num_series(), 0u);
}

TEST_F(DurabilityTest, GroupCommitCrashMidBatchRecoversExactPrefix) {
  // A batch is appended record-by-record before its single fsync; a
  // crash can land at any byte of the batch region. Recovery must yield
  // exactly the fully-written prefix of the batch — the same guarantee
  // CrashRecoveryAtEveryWalTruncationPoint proves for solo appends.
  const std::string dir = Dir("groupcrash");
  const std::vector<Op> ops = ScriptedOps(24);

  std::vector<WalRecord> records;
  for (const Op& op : ops) {
    WalRecord record;
    record.series = op.series;
    record.timestamp = op.timestamp;
    if (op.is_sketch) {
      record.type = WalRecord::Type::kIngestSketch;
      record.payload = WorkerPayload(op.seed);
    } else {
      record.type = WalRecord::Type::kIngestValue;
      record.value = op.value;
    }
    records.push_back(std::move(record));
  }

  // Reference fingerprints and WAL offsets for every batch prefix.
  std::vector<uint64_t> boundaries;
  std::vector<std::string> prefix_fp;
  uint64_t batch_start = 0;
  {
    DurableSketchStore store = MustOpen(dir);
    batch_start = store.wal_offset();
    auto ref = std::move(SketchStore::Create(Options().store)).value();
    boundaries.push_back(batch_start);
    prefix_fp.push_back(Fingerprint(ref));
    uint64_t offset = batch_start;
    for (const WalRecord& record : records) {
      offset += EncodeWalRecord(record).size();
      boundaries.push_back(offset);
      if (record.type == WalRecord::Type::kIngestSketch) {
        ASSERT_TRUE(ref.Ingest(record.series, record.timestamp,
                               record.payload).ok());
      } else {
        ASSERT_TRUE(ref.IngestValue(record.series, record.timestamp,
                                    record.value).ok());
      }
      prefix_fp.push_back(Fingerprint(ref));
    }
    ASSERT_TRUE(store.IngestBatch(records).ok());
    ASSERT_EQ(store.wal_offset(), boundaries.back());
  }

  const std::string wal_bytes = ReadFile(DurableSketchStore::WalPath(dir));
  const std::string crash_dir = Dir("groupcrash_replay");
  for (uint64_t cut = batch_start; cut <= wal_bytes.size(); ++cut) {
    fs::remove_all(crash_dir);
    fs::create_directories(crash_dir);
    WriteFile(DurableSketchStore::WalPath(crash_dir),
              std::string_view(wal_bytes).substr(0, cut));
    auto reopened = DurableSketchStore::Open(crash_dir, Options());
    ASSERT_TRUE(reopened.ok())
        << "cut=" << cut << ": " << reopened.status().ToString();
    size_t expected = 0;
    while (expected + 1 < boundaries.size() &&
           boundaries[expected + 1] <= cut) {
      ++expected;
    }
    EXPECT_EQ(Fingerprint(reopened.value().store()), prefix_fp[expected])
        << "cut=" << cut;
  }
}

TEST_F(DurabilityTest, SyncEveryIngestModeWorks) {
  const std::string dir = Dir("sync");
  DurableSketchStoreOptions options = Options();
  options.sync_every_ingest = true;
  auto opened = DurableSketchStore::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened.value().IngestValue("s", 0, 1.0).ok());
  ASSERT_TRUE(opened.value().Sync().ok());
}

}  // namespace
}  // namespace dd
