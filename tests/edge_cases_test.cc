// Cross-cutting edge cases that individual module suites don't reach:
// interactions between deletion and collapse, cloning mid-collapse,
// rolling windows with serialization, degenerate solver inputs, and
// counter extremes.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/ddsketch.h"
#include "core/rolling.h"
#include "core/store.h"
#include "data/ground_truth.h"
#include "moments/moment_sketch.h"
#include "util/rng.h"

namespace dd {
namespace {

TEST(EdgeCaseTest, RemoveAfterCollapseIsConsistent) {
  // Deleting from a collapsed region removes from the fold bucket; totals
  // stay consistent and the store never underflows.
  CollapsingLowestDenseStore store(4);
  for (int32_t i = 0; i < 10; ++i) store.Add(i, 1);
  // Window is [6, 9]; bucket 6 holds the folded weight 7.
  EXPECT_EQ(store.total_count(), 10u);
  // Removing an index inside the window works normally.
  EXPECT_EQ(store.Remove(8, 1), 1u);
  // Removing below the window redirects to the fold bucket, mirroring
  // where Add landed (or would land) that index.
  EXPECT_EQ(store.Remove(2, 1), 1u);
  // Draining the fold bucket takes the rest of the folded mass.
  EXPECT_EQ(store.Remove(6, 100), 6u);
  EXPECT_EQ(store.total_count(), 2u);
}

TEST(EdgeCaseTest, CloneOfCollapsedStoreKeepsState) {
  CollapsingLowestDenseStore store(4);
  for (int32_t i = 0; i < 10; ++i) store.Add(i, 1);
  ASSERT_TRUE(store.has_collapsed());
  auto clone = store.Clone();
  EXPECT_EQ(clone->total_count(), store.total_count());
  EXPECT_EQ(clone->min_index(), store.min_index());
  // The clone keeps collapsing with the same bound.
  clone->Add(100, 1);
  EXPECT_EQ(clone->max_index(), 100);
  EXPECT_EQ(clone->min_index(), 97);
  // Original unaffected.
  EXPECT_EQ(store.max_index(), 9);
}

TEST(EdgeCaseTest, StoreAddAtInt32Extremes) {
  UnboundedDenseStore store;
  // Far-apart but not range-spanning indices (a range spanning the whole
  // int32 domain would need a 16 GiB array; real mappings produce indices
  // within +-2^20).
  store.Add(-1000000, 1);
  store.Add(1000000, 1);
  EXPECT_EQ(store.min_index(), -1000000);
  EXPECT_EQ(store.max_index(), 1000000);
  EXPECT_EQ(store.KeyAtRank(0), -1000000);
  EXPECT_EQ(store.KeyAtRank(1), 1000000);
}

TEST(EdgeCaseTest, SketchWithHugeWeights) {
  // Counts near 2^53 (the double-precision rank arithmetic limit).
  auto sketch = std::move(DDSketch::Create(0.01)).value();
  const uint64_t w = uint64_t{1} << 40;
  sketch.Add(1.0, w);
  sketch.Add(100.0, w);
  sketch.Add(10000.0, w);
  EXPECT_EQ(sketch.count(), 3 * w);
  EXPECT_NEAR(sketch.QuantileOrNaN(0.5), 100.0, 100.0 * 0.011);
  EXPECT_NEAR(sketch.QuantileOrNaN(0.999999), 10000.0, 10000.0 * 0.011);
  // Serialization carries the weights exactly.
  auto decoded = DDSketch::Deserialize(sketch.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().count(), 3 * w);
}

TEST(EdgeCaseTest, RollingWindowSketchesSerialize) {
  // A window's merged sketch round-trips the wire like any other sketch.
  DDSketchConfig config;
  auto window = std::move(RollingDDSketch::Create(config, 3)).value();
  for (int i = 1; i <= 300; ++i) {
    window.Add(static_cast<double>(i));
    if (i % 100 == 0) window.Advance();
  }
  DDSketch merged = window.WindowSketch();
  auto decoded = DDSketch::Deserialize(merged.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().count(), merged.count());
  EXPECT_DOUBLE_EQ(decoded.value().QuantileOrNaN(0.5),
                   merged.QuantileOrNaN(0.5));
}

TEST(EdgeCaseTest, MomentsTwoDistinctValues) {
  // The maxent solver's hardest non-degenerate case: a two-point
  // distribution (the density is two spikes). The solver must not crash
  // and the median must land on one of the two points-ish.
  auto sketch = std::move(MomentSketch::Create(20, false)).value();
  for (int i = 0; i < 1000; ++i) {
    sketch.Add(1.0);
    sketch.Add(2.0);
  }
  const double median = sketch.QuantileOrNaN(0.5);
  EXPECT_FALSE(std::isnan(median));
  EXPECT_GE(median, 1.0 - 1e-6);
  EXPECT_LE(median, 2.0 + 1e-6);
}

TEST(EdgeCaseTest, QuantileAtExactBucketBoundaryCounts) {
  // q such that q*(n-1) is an exact integer at a bucket edge: rank
  // arithmetic must not double count or skip (Algorithm 2's strict '>').
  auto sketch = std::move(DDSketch::Create(0.01)).value();
  sketch.Add(1.0, 10);
  sketch.Add(1000.0, 10);
  // n = 20. q = 9/19 -> 0-based rank 9 -> still in the 1.0 block.
  EXPECT_NEAR(sketch.QuantileOrNaN(9.0 / 19.0), 1.0, 0.011);
  // q = 10/19 -> rank 10 -> first element of the 1000.0 block.
  EXPECT_NEAR(sketch.QuantileOrNaN(10.0 / 19.0), 1000.0, 10.1);
}

TEST(EdgeCaseTest, AlternatingAddRemoveChurn) {
  // Long add/remove churn at a single value must neither drift counters
  // nor leak buckets.
  DDSketchConfig config;
  config.store = StoreType::kUnboundedDense;
  auto sketch = std::move(DDSketch::Create(config)).value();
  for (int round = 0; round < 10000; ++round) {
    sketch.Add(42.0);
    ASSERT_EQ(sketch.Remove(42.0), 1u);
  }
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.num_buckets(), 0u);
  sketch.Add(7.0);
  EXPECT_DOUBLE_EQ(sketch.QuantileOrNaN(0.5), 7.0);
}

TEST(EdgeCaseTest, MinIndexableBoundaryValues) {
  // Values straddling the zero-bucket boundary: just below goes to the
  // zero bucket, just above gets a real bucket; both survive round trips.
  auto sketch = std::move(DDSketch::Create(0.01)).value();
  const double boundary = sketch.mapping().min_indexable_value();
  sketch.Add(boundary * 0.5);  // zero bucket
  sketch.Add(boundary * 2.0);  // real bucket
  EXPECT_EQ(sketch.zero_count(), 1u);
  EXPECT_EQ(sketch.count(), 2u);
  auto decoded = DDSketch::Deserialize(sketch.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().zero_count(), 1u);
}

TEST(EdgeCaseTest, GammaCloseToOne) {
  // Extremely tight accuracy (alpha = 1e-4): gamma ~ 1.0002, hundreds of
  // thousands of potential buckets; indices must stay well-behaved.
  auto sketch = std::move(DDSketch::Create(1e-4, 1 << 20)).value();
  Rng rng(231);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back(1.0 + rng.NextDouble());
    sketch.Add(data.back());
  }
  ExactQuantiles truth(data);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_LE(RelativeError(sketch.QuantileOrNaN(q), truth.Quantile(q)),
              1e-4 * (1 + 1e-9))
        << q;
  }
}

TEST(EdgeCaseTest, VeryLooseAccuracy) {
  // alpha = 0.5 (gamma = 3): a handful of buckets covers everything; the
  // guarantee still holds at its (loose) level.
  auto sketch = std::move(DDSketch::Create(0.5)).value();
  std::vector<double> data;
  Rng rng(232);
  for (int i = 0; i < 10000; ++i) {
    data.push_back(std::exp(rng.NextDouble() * 10));
    sketch.Add(data.back());
  }
  EXPECT_LT(sketch.num_buckets(), 16u);
  ExactQuantiles truth(data);
  for (double q : {0.25, 0.5, 0.9}) {
    EXPECT_LE(RelativeError(sketch.QuantileOrNaN(q), truth.Quantile(q)),
              0.5 * (1 + 1e-9))
        << q;
  }
}

}  // namespace
}  // namespace dd
