// Fault-injection harness for the sketchd event-loop serving layer:
// adversarial raw-socket clients (slow loris, garbage hello, mid-frame
// disconnect, oversized declared frame, connect flood) and deliberate
// overload against a live server. The invariants under attack:
//
//   1. the server stays responsive to well-behaved clients throughout,
//   2. misbehaving connections are shed by deadline, not tolerated
//      forever,
//   3. an acknowledged record is never lost — BUSY refusals are never
//      acked, and everything acked is recovered by a direct reopen.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"
#include "timeseries/durable_store.h"
#include "util/status.h"
#include "util/varint.h"

namespace dd {
namespace {

namespace fs = std::filesystem;

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// A raw adversarial connection: no protocol discipline, just bytes.
class RawConn {
 public:
  static RawConn Connect(uint16_t port) {
    auto fd = ConnectTcp("127.0.0.1", port);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return RawConn(fd.ok() ? fd.value() : -1);
  }

  RawConn(RawConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;
  ~RawConn() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(std::string_view bytes) {
    while (!bytes.empty()) {
      const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // peer already closed us: also a valid shed
      }
      bytes.remove_prefix(static_cast<size_t>(n));
    }
    return true;
  }

  /// Waits for the server to close this connection, discarding anything
  /// it sends first (e.g. its hello). False if the deadline passes with
  /// the connection still open.
  bool WaitForEof(int64_t timeout_ms) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    char buf[512];
    while (std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n == 0) return true;
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          SleepMs(10);
          continue;
        }
        return true;  // ECONNRESET & friends: the server dropped us
      }
    }
    return false;
  }

  int fd() const noexcept { return fd_; }

 private:
  explicit RawConn(int fd) : fd_(fd) {}
  int fd_;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("dd_fault_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }

  static std::unique_ptr<SketchServer> MustStart(
      const std::string& dir, const SketchServerOptions& options) {
    auto server = SketchServer::Start(dir, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  /// The liveness probe: a well-behaved client must still get service.
  static void ExpectServes(const SketchServer& server,
                           const std::string& series) {
    auto client = SketchClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client.value().IngestValue(series, 10, 2.5).ok());
    auto values = client.value().Query(series, 0, 100, {0.5});
    ASSERT_TRUE(values.ok()) << values.status().ToString();
  }

  fs::path root_;
};

TEST_F(FaultInjectionTest, SlowLorisHelloIsShedByDeadline) {
  SketchServerOptions options;
  options.stall_timeout_ms = 200;
  auto server = MustStart(Dir("loris"), options);

  // Trickle the hello one byte at a time. Each byte arrives well within
  // the stall deadline, but the deadline is armed per unit — the whole
  // hello — so byte-at-a-time progress must not keep the victim alive.
  RawConn loris = RawConn::Connect(server->port());
  const std::string hello = EncodeHello();
  ASSERT_TRUE(loris.Send(hello.substr(0, 1)));
  SleepMs(120);
  loris.Send(hello.substr(1, 1));  // may race the shed; either is fine
  EXPECT_TRUE(loris.WaitForEof(3000)) << "slow loris was never shed";
  EXPECT_GE(server->connections_shed(), 1u);
  ExpectServes(*server, "svc.after_loris");
}

TEST_F(FaultInjectionTest, GarbageHelloIsClosedImmediately) {
  SketchServerOptions options;
  auto server = MustStart(Dir("garbage"), options);

  RawConn garbage = RawConn::Connect(server->port());
  ASSERT_TRUE(garbage.Send("XXXXX not a hello"));
  EXPECT_TRUE(garbage.WaitForEof(3000));
  ExpectServes(*server, "svc.after_garbage");
}

TEST_F(FaultInjectionTest, MidFrameDisconnectNeverLosesAckedRecords) {
  SketchServerOptions options;
  auto server = MustStart(Dir("midframe"), options);

  // A valid ingest frame to truncate at every interesting boundary.
  Request request;
  request.op = Request::Op::kIngest;
  request.series = "svc.victim";
  request.timestamp = 10;
  request.value = 1.0;
  const std::string frame = EncodeRequest(request);

  auto client = SketchClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  int acked = 0;
  for (int round = 0; round < 12; ++round) {
    // Adversary: hello + a frame prefix, then vanish mid-frame.
    RawConn adversary = RawConn::Connect(server->port());
    const size_t cut = 1 + (static_cast<size_t>(round) % (frame.size() - 1));
    adversary.Send(EncodeHello() + frame.substr(0, cut));
    adversary.Close();
    // Honest client: every ack counts.
    ASSERT_TRUE(client.value().IngestValue("svc.honest", round, 5.0).ok());
    ++acked;
  }
  server->Stop();

  auto reopened = DurableSketchStore::Open(Dir("midframe"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(
      std::move(reopened.value().QueryRange("svc.honest", 0, 100)).value()
          .count(),
      static_cast<double>(acked));
  // The adversary's truncated frames were never acked, never committed.
  EXPECT_EQ(reopened.value().store().num_series(), 1u);
}

TEST_F(FaultInjectionTest, OversizedDeclaredFrameLengthIsRejected) {
  SketchServerOptions options;
  auto server = MustStart(Dir("oversized"), options);

  // Declare a body far beyond kMaxFrameBytes; the decoder must refuse
  // at the header — no buffering of gigabytes on the say-so of 9 bytes.
  std::string attack = EncodeHello();
  PutVarint64(&attack, static_cast<uint64_t>(kMaxFrameBytes) * 16);
  PutFixed32(&attack, 0xdeadbeef);
  attack += "some bytes that will never amount to a frame";
  RawConn attacker = RawConn::Connect(server->port());
  ASSERT_TRUE(attacker.Send(attack));
  EXPECT_TRUE(attacker.WaitForEof(3000));
  ExpectServes(*server, "svc.after_oversized");
}

TEST_F(FaultInjectionTest, ConnectFloodDoesNotStarveHonestClients) {
  SketchServerOptions options;
  options.stall_timeout_ms = 0;  // keep the flood parked, not shed
  options.idle_timeout_ms = 0;
  auto server = MustStart(Dir("flood"), options);

  constexpr int kFlood = 200;
  std::vector<RawConn> flood;
  flood.reserve(kFlood);
  for (int i = 0; i < kFlood; ++i) {
    flood.push_back(RawConn::Connect(server->port()));
    ASSERT_GE(flood.back().fd(), 0);
  }
  // All of them get accepted (the listener drains accept-to-EAGAIN)...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server->connections_open() < kFlood &&
         std::chrono::steady_clock::now() < deadline) {
    SleepMs(10);
  }
  EXPECT_GE(server->connections_open(), static_cast<uint64_t>(kFlood));
  // ...and service continues regardless, mid-flood.
  ExpectServes(*server, "svc.mid_flood");
  auto probe = SketchClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(probe.ok());
  auto stats = probe.value().Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().connections_open, static_cast<uint64_t>(kFlood));
  for (RawConn& conn : flood) conn.Close();
}

TEST_F(FaultInjectionTest, IdleConnectionIsShedAfterTimeout) {
  SketchServerOptions options;
  options.idle_timeout_ms = 200;
  auto server = MustStart(Dir("idle"), options);

  RawConn idler = RawConn::Connect(server->port());
  ASSERT_TRUE(idler.Send(EncodeHello()));  // completes the hello, then quiet
  EXPECT_TRUE(idler.WaitForEof(3000)) << "idle connection was never shed";
  EXPECT_GE(server->connections_shed(), 1u);
  ExpectServes(*server, "svc.after_idle");
}

TEST_F(FaultInjectionTest, OverloadYieldsBusyAndLosesNoAckedRecords) {
  SketchServerOptions options;
  // A budget of ONE record (each costs kStagedRecordOverhead=64 plus
  // series + payload bytes, ~90 here), and committers slowed enough
  // that concurrent writers pile into it.
  options.staged_bytes_budget = 160;
  options.commit_interval_us = 5000;
  auto server = MustStart(Dir("overload"), options);

  constexpr int kWriters = 4;
  std::atomic<int> acked{0};
  std::atomic<int> busy{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto client = SketchClient::Connect("127.0.0.1", server->port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      client.value().set_busy_retries(0);  // surface BUSY, don't mask it
      for (int i = 0; i < 400; ++i) {
        const Status status =
            client.value().IngestValue("svc.hot", w * 1000 + i, 1.0 + i);
        if (status.ok()) {
          acked.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(status.code(), StatusCode::kBusy)
              << status.ToString();
          busy.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();

  // The overload was real: refusals happened, and they were counted.
  EXPECT_GT(busy.load(), 0) << "budget never tripped; overload not exercised";
  EXPECT_GT(acked.load(), 0);
  EXPECT_GE(server->busy_rejections(), static_cast<uint64_t>(busy.load()));
  // And a refused record was refused *before* staging: the retry path
  // exists for clients that want it.
  auto retry_client = SketchClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(retry_client.ok());
  ASSERT_TRUE(retry_client.value().IngestValue("svc.hot", 9999, 42.0).ok());
  const int total_acked = acked.load() + 1;
  server->Stop();

  // Zero lost acks: the reopened store holds exactly the acked records.
  auto reopened = DurableSketchStore::Open(Dir("overload"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(
      std::move(reopened.value().QueryRange("svc.hot", 0, 10000)).value()
          .count(),
      static_cast<double>(total_acked));
}

// ---------------------------------------------------------------------------
// v5 replication channel under attack. The invariants mirror the client
// side: a misbehaving subscriber is dropped (never tolerated forever),
// dropping it degrades the ack gate to async instead of stalling
// ingest, and garbage on the channel closes that subscriber cleanly
// while the server keeps serving.

/// A raw replication subscriber: completes the hello and SUBSCRIBE
/// handshake like a real follower, then misbehaves as directed. Owns
/// the fd (FramedConn does not close).
class RawSubscriber {
 public:
  explicit RawSubscriber(uint16_t port) { Handshake(port); }
  ~RawSubscriber() { Close(); }

  void Close() {
    conn_.reset();
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Reads one replication frame; EXPECTs it decodes.
  bool ReadReplFrame() {
    auto body = conn_->ReadFrame();
    if (!body.ok()) return false;
    auto frame = DecodeReplFrame(body.value());
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    return frame.ok();
  }

  /// Sends raw bytes up the subscriber->primary direction (where the
  /// shipper expects framed ACK/FENCE frames).
  bool SendRaw(std::string_view bytes) {
    while (!bytes.empty()) {
      const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      bytes.remove_prefix(static_cast<size_t>(n));
    }
    return true;
  }

  /// Loops ReadFrame until the primary closes the channel. False if it
  /// keeps shipping past `max_frames` (i.e. we were never dropped).
  bool AwaitClose(int max_frames) {
    for (int i = 0; i < max_frames; ++i) {
      if (!conn_->ReadFrame().ok()) return true;
    }
    return false;
  }

 private:
  // ASSERT_* may not appear in a constructor; the handshake lives here.
  void Handshake(uint16_t port) {
    auto fd = ConnectTcp("127.0.0.1", port);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    fd_ = fd.value();
    conn_ = std::make_unique<FramedConn>(fd_);
    ASSERT_TRUE(conn_->SendHello().ok());
    ASSERT_TRUE(conn_->ExpectHello().ok());
    Request subscribe;
    subscribe.op = Request::Op::kSubscribe;
    ASSERT_TRUE(conn_->WriteFrame(EncodeRequest(subscribe)).ok());
    auto body = conn_->ReadFrame();
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    auto response = DecodeResponse(body.value());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().code, StatusCode::kOk)
        << response.value().message;
  }

  int fd_ = -1;
  std::unique_ptr<FramedConn> conn_;
};

/// Polls the server's STATS until `repl_subscribers` drops to `n`.
void AwaitSubscriberCount(const SketchServer& server, uint64_t n,
                          int64_t timeout_ms = 10000) {
  auto client = SketchClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  uint64_t last = ~0ull;
  while (std::chrono::steady_clock::now() < deadline) {
    auto stats = client.value().Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    last = stats.value().repl_subscribers;
    if (last == n) return;
    SleepMs(10);
  }
  FAIL() << "repl_subscribers stuck at " << last << ", wanted " << n;
}

TEST_F(FaultInjectionTest, SubscriberDisconnectAtEveryFrameBoundary) {
  SketchServerOptions options;
  options.repl_ack_timeout_ms = 300;
  options.repl_heartbeat_ms = 20;
  auto server = MustStart(Dir("repl_boundary"), options);

  auto client = SketchClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Seed state so the bootstrap snapshot is non-trivial.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.value().IngestValue("repl.seed", i % 20, 1.0 + i).ok());
  }

  // Attach a subscriber, let WAL traffic flow, read exactly k frames,
  // then vanish — every frame boundary becomes a disconnect point
  // across rounds. Writes concurrent with the disconnect must still be
  // acked OK (the drop degrades the gate to async; it never errors or
  // stalls the writer forever).
  for (int k = 0; k < 6; ++k) {
    RawSubscriber sub(server->port());
    if (::testing::Test::HasFatalFailure()) break;
    std::thread writer([&] {
      for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(client.value()
                        .IngestValue("repl.live", k * 10 + i, 2.0 + i)
                        .ok());
      }
    });
    for (int i = 0; i < k; ++i) {
      if (!sub.ReadReplFrame()) break;  // already dropped: fine
    }
    sub.Close();
    writer.join();
    AwaitSubscriberCount(*server, 0);
    ExpectServes(*server, "svc.after_boundary");
  }
}

TEST_F(FaultInjectionTest, SlowLorisSubscriberDoesNotStallIngest) {
  SketchServerOptions options;
  options.repl_ack_timeout_ms = 150;
  options.repl_heartbeat_ms = 50;
  auto server = MustStart(Dir("repl_loris"), options);

  // The loris subscribes like a real follower, then never acks a thing.
  RawSubscriber loris(server->port());

  // Every ingest must still be acked OK: the first few wait out the
  // 150 ms ack deadline, after which the laggard is dropped and the
  // gate degrades to async.
  auto client = SketchClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.value().IngestValue("repl.hot", i, 1.0 + i).ok());
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Generous bound: one ack-deadline wait plus fast async acks — not
  // 50 records x 150 ms of serial stalling.
  EXPECT_LT(elapsed.count(), 5000) << "ingest stalled behind the loris";
  AwaitSubscriberCount(*server, 0);
  ExpectServes(*server, "svc.after_repl_loris");
}

TEST_F(FaultInjectionTest, GarbageOnReplicationChannelClosesItCleanly) {
  SketchServerOptions options;
  options.repl_heartbeat_ms = 20;
  auto server = MustStart(Dir("repl_garbage"), options);

  // Round 1: bytes that are not a frame. The first byte parses as a
  // small varint length, so send enough junk to complete the declared
  // frame — the CRC check must then refuse it decisively (a short junk
  // prefix would just look like a slow peer mid-frame).
  {
    RawSubscriber sub(server->port());
    ASSERT_TRUE(sub.SendRaw(std::string(512, 'X')));
    EXPECT_TRUE(sub.AwaitClose(500)) << "garbage subscriber never dropped";
    AwaitSubscriberCount(*server, 0);
  }
  // Round 2: a well-formed frame (length + CRC check out) whose body is
  // not a replication frame.
  {
    RawSubscriber sub(server->port());
    ASSERT_TRUE(sub.SendRaw(EncodeFrame("junk body, not a repl frame")));
    EXPECT_TRUE(sub.AwaitClose(500)) << "junk-frame subscriber never dropped";
    AwaitSubscriberCount(*server, 0);
  }
  ExpectServes(*server, "svc.after_repl_garbage");
}

TEST_F(FaultInjectionTest, BusyRefusalsSurfaceInRemoteStats) {
  SketchServerOptions options;
  options.staged_bytes_budget = 1;  // refuse everything
  auto server = MustStart(Dir("busy_stats"), options);

  auto client = SketchClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  client.value().set_busy_retries(0);
  const Status refused = client.value().IngestValue("svc.x", 1, 1.0);
  EXPECT_EQ(refused.code(), StatusCode::kBusy) << refused.ToString();

  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().busy_rejections, 1u);
  EXPECT_GE(stats.value().connections_accepted, 1u);
  EXPECT_GE(stats.value().connections_open, 1u);
  EXPECT_EQ(stats.value().staged_bytes, 0u);  // refusals are refunded
  // v4: the refusal was timed into the BUSY latency row, and nothing
  // was recorded as a successful INGEST ack.
  const auto& rows = stats.value().op_latencies;
  EXPECT_GE(rows[static_cast<size_t>(LatencyOp::kBusy)].count, 1u);
  EXPECT_EQ(rows[static_cast<size_t>(LatencyOp::kIngest)].count, 0u);
  // Nothing refused was committed.
  auto query = client.value().Query("svc.x", 0, 10, {0.5});
  EXPECT_FALSE(query.ok());
}

}  // namespace
}  // namespace dd
