// Randomized differential testing: long random operation sequences
// (add / weighted add / remove / merge / serialize-roundtrip / clear)
// executed against both a DDSketch and an exact reference multiset, with
// invariant checks after every phase. Seeds sweep via TEST_P so failures
// reproduce exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "core/ddsketch.h"
#include "data/ground_truth.h"
#include "server/protocol.h"
#include "timeseries/snapshot.h"
#include "timeseries/wal.h"
#include "util/rng.h"

namespace dd {
namespace {

constexpr double kAlpha = 0.02;

/// Exact reference: a multiset of accepted values.
class ReferenceModel {
 public:
  void Add(double v, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) values_.push_back(v);
  }
  template <typename Pred>
  uint64_t RemoveIf(uint64_t count, Pred&& matches) {
    uint64_t removed = 0;
    for (auto it = values_.begin(); it != values_.end() && removed < count;) {
      if (matches(*it)) {
        it = values_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }
  void MergeFrom(const ReferenceModel& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }
  void Clear() { values_.clear(); }
  size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

// Sketch deletion is bucket-granular: Remove(v) decrements v's bucket even
// if the mass there came from a different co-bucketed value. Mirror that
// exactly in the model: remove up to `count` elements sharing v's bucket
// (same sign + same mapping index, or both within the zero bucket).
uint64_t RemoveBucketPeers(ReferenceModel& model, const DDSketch& sketch,
                           double v, uint64_t count) {
  const IndexMapping& mapping = sketch.mapping();
  const double min_indexable = mapping.min_indexable_value();
  const double max_indexable = mapping.max_indexable_value();
  const double v_mag = std::abs(v);
  if (v_mag < min_indexable) {
    return model.RemoveIf(count, [&](double x) {
      return std::abs(x) < min_indexable;
    });
  }
  const int32_t v_index = mapping.Index(std::min(v_mag, max_indexable));
  return model.RemoveIf(count, [&](double x) {
    const double x_mag = std::abs(x);
    if (x_mag < min_indexable) return false;
    if ((v > 0) != (x > 0)) return false;
    return mapping.Index(std::min(x_mag, max_indexable)) == v_index;
  });
}

void CheckAgainstModel(const DDSketch& sketch, const ReferenceModel& model) {
  ASSERT_EQ(sketch.count(), model.size());
  if (model.size() == 0) return;
  ExactQuantiles truth(model.values());
  // After removals the tracked extremes are conservative, so evaluate
  // interior quantiles only; the guarantee applies to uncollapsed buckets
  // (the fuzz uses an unbounded store, so all of them).
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double actual = truth.Quantile(q);
    const double estimate = sketch.QuantileOrNaN(q);
    ASSERT_LE(RelativeError(estimate, actual), kAlpha * (1 + 1e-9))
        << "q=" << q << " n=" << model.size();
  }
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, RandomOperationSequences) {
  Rng rng(GetParam());
  DDSketchConfig config;
  config.relative_accuracy = kAlpha;
  config.store = StoreType::kUnboundedDense;

  auto main_sketch = std::move(DDSketch::Create(config)).value();
  ReferenceModel main_model;
  // A set of values we know are present, for meaningful removals. Values
  // are snapped to bucket representatives? No — raw; removal uses exact
  // values previously added.
  std::vector<double> live;

  auto random_value = [&]() -> double {
    switch (rng.NextBounded(6)) {
      case 0:
        return rng.NextDoubleOpenZero();  // (0, 1)
      case 1:
        return std::exp(rng.NextDouble() * 40 - 20);  // 2e-9 .. 5e8
      case 2:
        return -std::exp(rng.NextDouble() * 20 - 10);
      case 3:
        return 0.0;
      case 4:
        return static_cast<double>(rng.NextBounded(1000));  // small ints
      default:
        return rng.NextDouble() * 2e12;  // span-scale
    }
  };

  for (int step = 0; step < 300; ++step) {
    switch (rng.NextBounded(10)) {
      case 0: {  // weighted add
        const double v = random_value();
        const uint64_t w = 1 + rng.NextBounded(50);
        main_sketch.Add(v, w);
        main_model.Add(v, w);
        live.push_back(v);
        break;
      }
      case 1: {  // remove a known-present value (its bucket is occupied)
        if (!live.empty()) {
          const size_t pick = rng.NextBounded(live.size());
          const double v = live[pick];
          const uint64_t removed = main_sketch.Remove(v, 1);
          const uint64_t mirrored =
              RemoveBucketPeers(main_model, main_sketch, v, removed);
          // Model and sketch hold identical per-bucket counts, so the
          // mirror must account for every removed unit.
          ASSERT_EQ(removed, mirrored) << "v=" << v;
          live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
        }
        break;
      }
      case 2: {  // remove a likely-absent value (usually a no-op)
        const double v = random_value();
        const uint64_t removed = main_sketch.Remove(v, 3);
        const uint64_t mirrored =
            RemoveBucketPeers(main_model, main_sketch, v, removed);
        ASSERT_EQ(removed, mirrored) << "v=" << v;
        break;
      }
      case 3: {  // merge a random side-sketch
        auto side = std::move(DDSketch::Create(config)).value();
        ReferenceModel side_model;
        const int k = 1 + static_cast<int>(rng.NextBounded(200));
        for (int i = 0; i < k; ++i) {
          const double v = random_value();
          side.Add(v);
          side_model.Add(v, 1);
          live.push_back(v);
        }
        ASSERT_TRUE(main_sketch.MergeFrom(side).ok());
        main_model.MergeFrom(side_model);
        break;
      }
      case 4: {  // serialize round-trip (must be lossless)
        auto decoded = DDSketch::Deserialize(main_sketch.Serialize());
        ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
        main_sketch = std::move(decoded).value();
        break;
      }
      case 5: {  // rejected inputs never change counts
        const uint64_t before = main_sketch.count();
        main_sketch.Add(std::nan(""));
        main_sketch.Add(std::numeric_limits<double>::infinity());
        ASSERT_EQ(main_sketch.count(), before);
        break;
      }
      case 6: {  // occasional clear
        if (rng.NextBounded(20) == 0) {
          main_sketch.Clear();
          main_model.Clear();
          live.clear();
        }
        break;
      }
      default: {  // plain adds (most common)
        const int k = 1 + static_cast<int>(rng.NextBounded(100));
        for (int i = 0; i < k; ++i) {
          const double v = random_value();
          main_sketch.Add(v);
          main_model.Add(v, 1);
          live.push_back(v);
        }
        break;
      }
    }
    if (step % 25 == 24) CheckAgainstModel(main_sketch, main_model);
  }
  CheckAgainstModel(main_sketch, main_model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(1, 17));

// Sparse-store variant of the same fuzz (different code paths).
class FuzzSparseTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSparseTest, SparseStoreMatchesDense) {
  Rng rng(GetParam() * 7919);
  DDSketchConfig dense_cfg, sparse_cfg;
  dense_cfg.store = StoreType::kUnboundedDense;
  sparse_cfg.store = StoreType::kSparse;
  sparse_cfg.max_num_buckets = 0;
  auto dense = std::move(DDSketch::Create(dense_cfg)).value();
  auto sparse = std::move(DDSketch::Create(sparse_cfg)).value();
  for (int step = 0; step < 5000; ++step) {
    const double v = std::exp(rng.NextDouble() * 30 - 15) *
                     ((rng.NextU64() & 1) ? 1.0 : -1.0);
    const uint64_t w = 1 + rng.NextBounded(3);
    dense.Add(v, w);
    sparse.Add(v, w);
    if (step % 500 == 499) {
      for (double q = 0.0; q <= 1.0; q += 0.1) {
        ASSERT_DOUBLE_EQ(dense.QuantileOrNaN(q), sparse.QuantileOrNaN(q))
            << "step=" << step << " q=" << q;
      }
      ASSERT_EQ(dense.num_buckets(), sparse.num_buckets());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSparseTest,
                         ::testing::Range<uint64_t>(1, 9));

// Serialization fuzz: random bit flips must never crash or be silently
// accepted as a different-but-valid sketch with impossible statistics.
class FuzzCorruptionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzCorruptionTest, BitFlipsNeverCrash) {
  Rng rng(GetParam() * 104729);
  auto sketch = std::move(DDSketch::Create(0.01)).value();
  for (int i = 0; i < 1000; ++i) {
    sketch.Add(std::exp(rng.NextDouble() * 10 - 5));
  }
  const std::string payload = sketch.Serialize();
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = payload;
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(corrupted.size());
      corrupted[pos] = static_cast<char>(
          static_cast<uint8_t>(corrupted[pos]) ^
          (1u << rng.NextBounded(8)));
    }
    // Must not crash; on success the decoded sketch must at least be
    // internally usable.
    auto decoded = DDSketch::Deserialize(corrupted);
    if (decoded.ok() && !decoded.value().empty()) {
      const double p50 = decoded.value().QuantileOrNaN(0.5);
      // NaN min/max can surface from flipped doubles; the quantile itself
      // must not trip assertions or UB (exercised by calling it).
      (void)p50;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCorruptionTest,
                         ::testing::Range<uint64_t>(1, 5));

// ---------------------------------------------------------------------
// Persistence-format corruption fuzz: unlike the checksum-free wire
// format above (where a lucky bit flip may decode as a different valid
// sketch), the on-disk WAL and snapshot formats are CRC-framed, so the
// contract is strict — corrupted input must ALWAYS yield
// Status::Corruption, never a crash and never silent acceptance.

/// A deterministic multi-record WAL image plus its record boundaries.
struct WalImage {
  std::string bytes;
  std::vector<size_t> boundaries;  // header end + end of each record
};

WalImage BuildWalImage(Rng& rng) {
  WalImage image;
  image.bytes = EncodeWalHeader(/*epoch=*/7);
  image.boundaries.push_back(image.bytes.size());
  for (int i = 0; i < 10; ++i) {
    WalRecord record;
    if (i % 2 == 0) {
      auto sketch = std::move(DDSketch::Create(0.01)).value();
      for (int k = 0; k < 20; ++k) {
        sketch.Add(std::exp(rng.NextDouble() * 10 - 5));
      }
      record.type = WalRecord::Type::kIngestSketch;
      record.payload = sketch.Serialize();
    } else {
      record.type = WalRecord::Type::kIngestValue;
      record.value = rng.NextDouble() * 1e6;
    }
    record.series = (i % 3 == 0) ? "api.latency" : "db.queries";
    record.timestamp = static_cast<int64_t>(rng.NextBounded(10000)) - 500;
    image.bytes += EncodeWalRecord(record);
    image.boundaries.push_back(image.bytes.size());
  }
  return image;
}

class FuzzWalCorruptionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzWalCorruptionTest, BitFlipsAlwaysRejected) {
  Rng rng(GetParam() * 15485863);
  const WalImage image = BuildWalImage(rng);
  // The pristine image parses in full.
  auto clean = ReadWal(image.bytes, WalRead::kStrict);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean.value().records.size(), 10u);

  for (int trial = 0; trial < 400; ++trial) {
    std::string corrupted = image.bytes;
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(corrupted.size());
      corrupted[pos] = static_cast<char>(
          static_cast<uint8_t>(corrupted[pos]) ^ (1u << rng.NextBounded(8)));
    }
    if (corrupted == image.bytes) continue;  // flips cancelled out
    auto result = ReadWal(corrupted, WalRead::kStrict);
    ASSERT_FALSE(result.ok()) << "trial=" << trial;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

TEST_P(FuzzWalCorruptionTest, TruncationsAlwaysDetected) {
  Rng rng(GetParam() * 32452843);
  const WalImage image = BuildWalImage(rng);
  for (size_t cut = 0; cut < image.bytes.size(); ++cut) {
    const std::string_view prefix =
        std::string_view(image.bytes).substr(0, cut);
    const bool at_boundary =
        std::find(image.boundaries.begin(), image.boundaries.end(), cut) !=
        image.boundaries.end();
    auto strict = ReadWal(prefix, WalRead::kStrict);
    if (at_boundary) {
      // A prefix ending exactly on a record boundary is a valid shorter
      // log — that is the crash-recovery contract, not corruption.
      ASSERT_TRUE(strict.ok()) << "cut=" << cut;
    } else {
      ASSERT_FALSE(strict.ok()) << "cut=" << cut;
      EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
      // Tolerant mode recovers the complete-record prefix instead.
      auto tolerant = ReadWal(prefix, WalRead::kTolerateTornTail);
      ASSERT_TRUE(tolerant.ok()) << "cut=" << cut;
      EXPECT_TRUE(tolerant.value().torn_tail);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzWalCorruptionTest,
                         ::testing::Range<uint64_t>(1, 5));

std::string BuildSnapshotImage(Rng& rng) {
  SketchStoreOptions options;
  options.levels = {{10, 60}, {60, 0}};
  auto store = std::move(SketchStore::Create(options)).value();
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(store
                    .IngestValue(i % 2 ? "a" : "b",
                                 static_cast<int64_t>(rng.NextBounded(600)),
                                 std::exp(rng.NextDouble() * 8 - 4))
                    .ok());
  }
  store.Compact(600);
  return EncodeSnapshot(store, /*epoch=*/2);
}

class FuzzSnapshotCorruptionTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FuzzSnapshotCorruptionTest, BitFlipsAndTruncationsAlwaysRejected) {
  Rng rng(GetParam() * 49979687);
  const std::string image = BuildSnapshotImage(rng);
  ASSERT_TRUE(DecodeSnapshot(image).ok());

  for (int trial = 0; trial < 400; ++trial) {
    std::string corrupted = image;
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(corrupted.size());
      corrupted[pos] = static_cast<char>(
          static_cast<uint8_t>(corrupted[pos]) ^ (1u << rng.NextBounded(8)));
    }
    if (corrupted == image) continue;
    auto result = DecodeSnapshot(corrupted);
    ASSERT_FALSE(result.ok()) << "trial=" << trial;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }

  // Every proper prefix is rejected: the CRC covers the whole body, so a
  // snapshot is all-or-nothing.
  for (size_t cut = 0; cut < image.size();
       cut += 1 + rng.NextBounded(7)) {
    auto result = DecodeSnapshot(std::string_view(image).substr(0, cut));
    ASSERT_FALSE(result.ok()) << "cut=" << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSnapshotCorruptionTest,
                         ::testing::Range<uint64_t>(1, 5));

// Wire-format truncation: the network payload format has no checksum
// (bit flips may be undetectable — see FuzzCorruptionTest above), but
// truncation must always be caught by the structural length checks.
TEST(FuzzWireTruncationTest, EveryProperPrefixIsRejected) {
  Rng rng(8675309);
  auto sketch = std::move(DDSketch::Create(0.01)).value();
  for (int i = 0; i < 500; ++i) {
    sketch.Add(std::exp(rng.NextDouble() * 12 - 6) *
               ((rng.NextU64() & 1) ? 1.0 : -1.0));
  }
  const std::string payload = sketch.Serialize();
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto result =
        DDSketch::Deserialize(std::string_view(payload).substr(0, cut));
    ASSERT_FALSE(result.ok()) << "cut=" << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------
// Protocol v4 frame corruption fuzz: the frames the event-loop server
// added in v3/v4 — BUSY admission refusals and STATS responses carrying
// the serving counters, per-op latency rows (v4), and per-shard rows.
// Frames are CRC-framed, so
// the contract matches the WAL's: a flipped frame must ALWAYS be
// rejected (Corruption, or OutOfRange when the flip shortens the
// declared length), never crash, and never decode as different-but-
// valid data. Mutations applied to the already-CRC-verified body
// exercise the strict field decoders directly.

/// A BUSY ingest refusal, as the admission controller sends it.
std::string BusyResponseFrame() {
  Response response;
  response.op = Request::Op::kIngest;
  response.code = StatusCode::kBusy;
  response.message = "staged-bytes budget exceeded; retry with backoff";
  return EncodeResponse(response);
}

/// A v4 STATS response: serving counters, populated per-op latency
/// rows, and several per-shard rows.
std::string StatsResponseFrame() {
  Response response;
  response.op = Request::Op::kStats;
  response.stats.num_series = 12;
  response.stats.num_intervals = 340;
  response.stats.size_in_bytes = 65536;
  response.stats.wal_offset = 9001;
  response.stats.epoch = 4;
  response.stats.batch_commits = 77;
  response.stats.background_checkpoints = 3;
  response.stats.connections_open = 1024;
  response.stats.connections_accepted = 5000;
  response.stats.connections_shed = 17;
  response.stats.busy_rejections = 256;
  response.stats.staged_bytes = 1 << 19;
  for (size_t i = 0; i < kNumLatencyOps; ++i) {
    OpLatencyStats& row = response.stats.op_latencies[i];
    row.count = 100 * (i + 1);
    row.p50_us = 50.5 * static_cast<double>(i + 1);
    row.p90_us = 90.25 * static_cast<double>(i + 1);
    row.p99_us = 99.125 * static_cast<double>(i + 1);
    row.p999_us = 999.0625 * static_cast<double>(i + 1);
    row.max_us = 1234.5 * static_cast<double>(i + 1);
  }
  for (uint64_t k = 0; k < 4; ++k) {
    ShardStats shard;
    shard.shard = k;
    shard.num_series = 3 * k + 1;
    shard.wal_bytes = 1000 * (k + 1);
    shard.epoch = 4;
    shard.batch_commits = 19 + k;
    shard.background_checkpoints = k;
    response.stats.shards.push_back(shard);
  }
  // v6 per-level rollup rows.
  response.stats.levels.push_back({10, 3600, 360, 0, 1 << 16});
  response.stats.levels.push_back({60, 86400, 1440, 2100, 1 << 18});
  response.stats.levels.push_back({3600, 0, 24, 35, 1 << 14});
  return EncodeResponse(response);
}

/// A v6 COMPACT exchange (request carries a zigzag `now`; the response
/// reports folded intervals and the post-checkpoint epoch).
std::string CompactRequestFrame() {
  Request request;
  request.op = Request::Op::kCompact;
  request.compact_now = -1234567;
  return EncodeRequest(request);
}

std::string CompactResponseFrame() {
  Response response;
  response.op = Request::Op::kCompact;
  response.compacted = 4096;
  response.epoch = 9;
  return EncodeResponse(response);
}

class FuzzProtocolV4CorruptionTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FuzzProtocolV4CorruptionTest, FrameBitFlipsAlwaysRejected) {
  Rng rng(GetParam() * 68111);
  for (const std::string& frame :
       {BusyResponseFrame(), StatsResponseFrame(), CompactRequestFrame(),
        CompactResponseFrame()}) {
    for (int trial = 0; trial < 400; ++trial) {
      std::string corrupted = frame;
      const int flips = 1 + static_cast<int>(rng.NextBounded(8));
      for (int f = 0; f < flips; ++f) {
        const size_t pos = rng.NextBounded(corrupted.size());
        corrupted[pos] = static_cast<char>(
            static_cast<uint8_t>(corrupted[pos]) ^ (1u << rng.NextBounded(8)));
      }
      if (corrupted == frame) continue;  // flips cancelled out
      size_t frame_size = 0;
      auto body = DecodeFrame(corrupted, &frame_size);
      ASSERT_FALSE(body.ok()) << "flipped frame decoded cleanly";
      const StatusCode code = body.status().code();
      EXPECT_TRUE(code == StatusCode::kCorruption ||
                  code == StatusCode::kOutOfRange)
          << body.status().ToString();
    }
  }
}

TEST_P(FuzzProtocolV4CorruptionTest, BodyMutationsNeverCrashStrictDecoders) {
  Rng rng(GetParam() * 76003);
  for (const std::string& frame :
       {BusyResponseFrame(), StatsResponseFrame(), CompactResponseFrame()}) {
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    const std::string original(body.value());
    for (int trial = 0; trial < 400; ++trial) {
      // Mutate the CRC-verified body directly: this models a decoder
      // bug, not a wire error, so the only requirement is no crash, no
      // over-read, and strict drain (a successful decode must consume
      // exactly the body).
      std::string mutated = original;
      const int edits = 1 + static_cast<int>(rng.NextBounded(4));
      for (int e = 0; e < edits; ++e) {
        const size_t pos = rng.NextBounded(mutated.size());
        mutated[pos] = static_cast<char>(rng.NextBounded(256));
      }
      auto decoded = DecodeResponse(mutated);
      if (decoded.ok()) {
        // Accepted mutations must still re-encode to a parseable frame
        // (internal consistency — no half-poisoned Response escapes).
        const std::string reencoded = EncodeResponse(decoded.value());
        size_t n = 0;
        EXPECT_TRUE(DecodeFrame(reencoded, &n).ok());
      }
    }
  }
}

TEST(FuzzProtocolV4TruncationTest, EveryFramePrefixIsIncomplete) {
  for (const std::string& frame :
       {BusyResponseFrame(), StatsResponseFrame(), CompactRequestFrame(),
        CompactResponseFrame()}) {
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      size_t frame_size = 0;
      auto body =
          DecodeFrame(std::string_view(frame).substr(0, cut), &frame_size);
      ASSERT_FALSE(body.ok()) << "cut=" << cut;
      EXPECT_EQ(body.status().code(), StatusCode::kOutOfRange)
          << "cut=" << cut << ": " << body.status().ToString();
    }
  }
}

TEST(FuzzProtocolV4TruncationTest, EveryBodyTruncationIsCorruption) {
  for (const std::string& frame :
       {BusyResponseFrame(), StatsResponseFrame(), CompactResponseFrame()}) {
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    const std::string original(body.value());
    for (size_t cut = 0; cut < original.size(); ++cut) {
      auto decoded =
          DecodeResponse(std::string_view(original).substr(0, cut));
      ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
          << "cut=" << cut << ": " << decoded.status().ToString();
    }
    // And trailing garbage is refused just as strictly.
    EXPECT_EQ(DecodeResponse(original + '\0').status().code(),
              StatusCode::kCorruption);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProtocolV4CorruptionTest,
                         ::testing::Range<uint64_t>(1, 5));

// ---------------------------------------------------------------------
// Protocol v5 frame corruption fuzz: the replication additions — the
// SUBSCRIBE handshake, FENCED refusals, and the replication-channel
// frames (snapshot / segment / heartbeat / ack / fence). Same contract
// as v4: flips are always rejected by the CRC framing, truncations read
// as incomplete (frame) or corrupt (body), and mutations of a verified
// body never crash the strict decoders.

/// A follower's SUBSCRIBE handshake with a token and resume positions.
std::string SubscribeRequestFrame() {
  Request request;
  request.op = Request::Op::kSubscribe;
  request.repl_token = 3;
  request.positions = {{2, 13}, {2, 8192}, {5, 65536}, {5, 13}};
  return EncodeRequest(request);
}

/// A FENCED ingest refusal, as a deposed primary sends it.
std::string FencedResponseFrame() {
  Response response;
  response.op = Request::Op::kIngest;
  response.code = StatusCode::kFenced;
  response.message = "writer fenced: a newer primary holds the fencing token";
  return EncodeResponse(response);
}

/// A WAL-segment replication frame with a binary payload.
std::string SegmentReplFrame() {
  ReplFrame frame;
  frame.tag = ReplFrame::Tag::kSegment;
  frame.shard = 2;
  frame.epoch = 6;
  frame.start_offset = 4096;
  frame.payload.reserve(256);
  for (int i = 0; i < 256; ++i) {
    frame.payload.push_back(static_cast<char>(i));
  }
  return EncodeReplFrame(frame);
}

/// A heartbeat replication frame with the fence token and positions.
std::string HeartbeatReplFrame() {
  ReplFrame frame;
  frame.tag = ReplFrame::Tag::kHeartbeat;
  frame.token = 9;
  frame.positions = {{6, 4352}, {6, 13}, {7, 90000}};
  return EncodeReplFrame(frame);
}

/// A v6 chunked-bootstrap frame: one slice of a large snapshot image.
std::string SnapshotChunkReplFrame() {
  ReplFrame frame;
  frame.tag = ReplFrame::Tag::kSnapshotChunk;
  frame.shard = 1;
  frame.payload.reserve(512);
  for (int i = 0; i < 512; ++i) {
    frame.payload.push_back(static_cast<char>(i * 7));
  }
  return EncodeReplFrame(frame);
}

/// The v6 chunk-train terminator carrying the snapshot's epoch.
std::string SnapshotEndReplFrame() {
  ReplFrame frame;
  frame.tag = ReplFrame::Tag::kSnapshotEnd;
  frame.shard = 1;
  frame.epoch = 11;
  return EncodeReplFrame(frame);
}

std::vector<std::string> V5Frames() {
  return {SubscribeRequestFrame(),  FencedResponseFrame(),
          SegmentReplFrame(),       HeartbeatReplFrame(),
          SnapshotChunkReplFrame(), SnapshotEndReplFrame()};
}

/// Runs every strict body decoder over `body`; any acceptance must
/// survive a re-encode round trip (no half-poisoned value escapes). The
/// v5 frames span three decoders, and a mutated body no longer says
/// which one it was meant for — all of them must hold the line.
void ExpectStrictDecodersSurvive(std::string_view body) {
  if (auto request = DecodeRequest(body); request.ok()) {
    size_t n = 0;
    EXPECT_TRUE(DecodeFrame(EncodeRequest(request.value()), &n).ok());
  }
  if (auto response = DecodeResponse(body); response.ok()) {
    size_t n = 0;
    EXPECT_TRUE(DecodeFrame(EncodeResponse(response.value()), &n).ok());
  }
  if (auto repl = DecodeReplFrame(body); repl.ok()) {
    size_t n = 0;
    EXPECT_TRUE(DecodeFrame(EncodeReplFrame(repl.value()), &n).ok());
  }
}

class FuzzProtocolV5CorruptionTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FuzzProtocolV5CorruptionTest, FrameBitFlipsAlwaysRejected) {
  Rng rng(GetParam() * 50923);
  for (const std::string& frame : V5Frames()) {
    for (int trial = 0; trial < 400; ++trial) {
      std::string corrupted = frame;
      const int flips = 1 + static_cast<int>(rng.NextBounded(8));
      for (int f = 0; f < flips; ++f) {
        const size_t pos = rng.NextBounded(corrupted.size());
        corrupted[pos] = static_cast<char>(
            static_cast<uint8_t>(corrupted[pos]) ^ (1u << rng.NextBounded(8)));
      }
      if (corrupted == frame) continue;  // flips cancelled out
      size_t frame_size = 0;
      auto body = DecodeFrame(corrupted, &frame_size);
      ASSERT_FALSE(body.ok()) << "flipped v5 frame decoded cleanly";
      const StatusCode code = body.status().code();
      EXPECT_TRUE(code == StatusCode::kCorruption ||
                  code == StatusCode::kOutOfRange)
          << body.status().ToString();
    }
  }
}

TEST_P(FuzzProtocolV5CorruptionTest, BodyMutationsNeverCrashStrictDecoders) {
  Rng rng(GetParam() * 41381);
  for (const std::string& frame : V5Frames()) {
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    const std::string original(body.value());
    for (int trial = 0; trial < 400; ++trial) {
      std::string mutated = original;
      const int edits = 1 + static_cast<int>(rng.NextBounded(4));
      for (int e = 0; e < edits; ++e) {
        const size_t pos = rng.NextBounded(mutated.size());
        mutated[pos] = static_cast<char>(rng.NextBounded(256));
      }
      ExpectStrictDecodersSurvive(mutated);
    }
  }
}

TEST(FuzzProtocolV5TruncationTest, EveryFramePrefixIsIncomplete) {
  for (const std::string& frame : V5Frames()) {
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      size_t frame_size = 0;
      auto body =
          DecodeFrame(std::string_view(frame).substr(0, cut), &frame_size);
      ASSERT_FALSE(body.ok()) << "cut=" << cut;
      EXPECT_EQ(body.status().code(), StatusCode::kOutOfRange)
          << "cut=" << cut << ": " << body.status().ToString();
    }
  }
}

TEST(FuzzProtocolV5TruncationTest, EveryReplBodyTruncationIsCorruption) {
  for (const std::string& frame :
       {SegmentReplFrame(), HeartbeatReplFrame(), SnapshotChunkReplFrame(),
        SnapshotEndReplFrame()}) {
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    const std::string original(body.value());
    for (size_t cut = 0; cut < original.size(); ++cut) {
      auto decoded =
          DecodeReplFrame(std::string_view(original).substr(0, cut));
      ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
          << "cut=" << cut << ": " << decoded.status().ToString();
    }
    // And trailing garbage is refused just as strictly.
    EXPECT_EQ(DecodeReplFrame(original + '\0').status().code(),
              StatusCode::kCorruption);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProtocolV5CorruptionTest,
                         ::testing::Range<uint64_t>(1, 5));

// ---------------------------------------------------------------------
// Protocol v7 frame corruption fuzz: the per-tag admission additions —
// SET_TAG declarations, BUSY refusals carrying the refusing tag's
// retry_after_ms hint, and STATS responses with per-tag ledger rows
// (length-prefixed names plus fixed-double percentiles make these the
// most structurally varied bodies on the wire). Same contract as
// v4/v5: flips always rejected, truncations incomplete (frame) or
// corrupt (body), mutations of a verified body never crash.

/// A connection declaring its admission tag.
std::string SetTagRequestFrame() {
  Request request;
  request.op = Request::Op::kSetTag;
  request.tag = "team-a.prod_42";
  return EncodeRequest(request);
}

/// A BUSY ingest refusal with the v7 retry hint payload.
std::string BusyHintResponseFrame() {
  Response response;
  response.op = Request::Op::kIngest;
  response.code = StatusCode::kBusy;
  response.message = "staged-bytes budget exceeded; retry with backoff";
  response.retry_after_ms = 10;
  return EncodeResponse(response);
}

/// A STATS response whose payload ends in populated per-tag rows.
std::string TaggedStatsResponseFrame() {
  Response response;
  response.op = Request::Op::kStats;
  response.stats.busy_rejections = 256;
  response.stats.staged_bytes = 1 << 19;
  response.stats.levels.push_back({10, 3600, 360, 0, 1 << 16});
  const char* names[] = {"default", "gold", "team-b.batch_2"};
  for (uint64_t k = 0; k < 3; ++k) {
    TagStatsRow row;
    row.tag = names[k];
    row.floor_bytes = (k + 1) << 18;
    row.budget_bytes = (k + 1) << 20;
    row.staged_bytes = 777 * k;
    row.busy_rejections = 42 * k;
    row.throttle_permille = 1000 - 250 * k;
    row.count = 100 * (k + 1);
    row.p50_us = 81.5 * static_cast<double>(k + 1);
    row.p99_us = 950.25 * static_cast<double>(k + 1);
    row.p999_us = 4096.0 * static_cast<double>(k + 1);
    response.stats.tags.push_back(row);
  }
  return EncodeResponse(response);
}

std::vector<std::string> V7Frames() {
  return {SetTagRequestFrame(), BusyHintResponseFrame(),
          TaggedStatsResponseFrame()};
}

class FuzzProtocolV7CorruptionTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FuzzProtocolV7CorruptionTest, FrameBitFlipsAlwaysRejected) {
  Rng rng(GetParam() * 67867);
  for (const std::string& frame : V7Frames()) {
    for (int trial = 0; trial < 400; ++trial) {
      std::string corrupted = frame;
      const int flips = 1 + static_cast<int>(rng.NextBounded(8));
      for (int f = 0; f < flips; ++f) {
        const size_t pos = rng.NextBounded(corrupted.size());
        corrupted[pos] = static_cast<char>(
            static_cast<uint8_t>(corrupted[pos]) ^ (1u << rng.NextBounded(8)));
      }
      if (corrupted == frame) continue;  // flips cancelled out
      size_t frame_size = 0;
      auto body = DecodeFrame(corrupted, &frame_size);
      ASSERT_FALSE(body.ok()) << "flipped v7 frame decoded cleanly";
      const StatusCode code = body.status().code();
      EXPECT_TRUE(code == StatusCode::kCorruption ||
                  code == StatusCode::kOutOfRange)
          << body.status().ToString();
    }
  }
}

TEST_P(FuzzProtocolV7CorruptionTest, BodyMutationsNeverCrashStrictDecoders) {
  Rng rng(GetParam() * 93719);
  for (const std::string& frame : V7Frames()) {
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    const std::string original(body.value());
    for (int trial = 0; trial < 400; ++trial) {
      std::string mutated = original;
      const int edits = 1 + static_cast<int>(rng.NextBounded(4));
      for (int e = 0; e < edits; ++e) {
        const size_t pos = rng.NextBounded(mutated.size());
        mutated[pos] = static_cast<char>(rng.NextBounded(256));
      }
      ExpectStrictDecodersSurvive(mutated);
    }
  }
}

TEST(FuzzProtocolV7TruncationTest, EveryFramePrefixIsIncomplete) {
  for (const std::string& frame : V7Frames()) {
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      size_t frame_size = 0;
      auto body =
          DecodeFrame(std::string_view(frame).substr(0, cut), &frame_size);
      ASSERT_FALSE(body.ok()) << "cut=" << cut;
      EXPECT_EQ(body.status().code(), StatusCode::kOutOfRange)
          << "cut=" << cut << ": " << body.status().ToString();
    }
  }
}

TEST(FuzzProtocolV7TruncationTest, EveryBodyTruncationIsCorruption) {
  // The response bodies, cut anywhere, must read as corruption — the
  // retry hint and the tag rows add trailing fields a lenient decoder
  // might silently default instead.
  for (const std::string& frame :
       {BusyHintResponseFrame(), TaggedStatsResponseFrame()}) {
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    const std::string original(body.value());
    for (size_t cut = 0; cut < original.size(); ++cut) {
      auto decoded =
          DecodeResponse(std::string_view(original).substr(0, cut));
      ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
          << "cut=" << cut << ": " << decoded.status().ToString();
    }
    EXPECT_EQ(DecodeResponse(original + '\0').status().code(),
              StatusCode::kCorruption);
  }
  // Same for the SET_TAG request body on the request decoder.
  {
    size_t frame_size = 0;
    auto body = DecodeFrame(SetTagRequestFrame(), &frame_size);
    ASSERT_TRUE(body.ok());
    const std::string original(body.value());
    for (size_t cut = 0; cut < original.size(); ++cut) {
      auto decoded = DecodeRequest(std::string_view(original).substr(0, cut));
      ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
          << "cut=" << cut << ": " << decoded.status().ToString();
    }
    EXPECT_EQ(DecodeRequest(original + 'x').status().code(),
              StatusCode::kCorruption);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProtocolV7CorruptionTest,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace dd
