#include "gk/gkarray.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

GKArray Make(double eps = 0.01) {
  auto r = GKArray::Create(eps);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(GKArrayTest, CreateValidation) {
  EXPECT_FALSE(GKArray::Create(0.0).ok());
  EXPECT_FALSE(GKArray::Create(1.0).ok());
  EXPECT_FALSE(GKArray::Create(-1.0).ok());
  EXPECT_TRUE(GKArray::Create(0.001).ok());
}

TEST(GKArrayTest, EmptyAndArgumentChecks) {
  GKArray s = Make();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Quantile(0.5).ok());
  s.Add(1.0);
  EXPECT_FALSE(s.Quantile(-0.1).ok());
  EXPECT_FALSE(s.Quantile(1.5).ok());
}

TEST(GKArrayTest, SmallStreamsExact) {
  // With n <= 1/eps everything is retained: answers are exact samples.
  GKArray s = Make(0.01);
  std::vector<double> xs = {5, 1, 9, 3, 7};
  for (double x : xs) s.Add(x);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.0), 1);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.5), 5);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(1.0), 9);
}

TEST(GKArrayTest, TracksExactExtremes) {
  GKArray s = Make(0.05);
  Rng rng(71);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble() * 1e6 - 5e5;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    s.Add(x);
  }
  EXPECT_EQ(s.min(), lo);
  EXPECT_EQ(s.max(), hi);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.0), lo);
}

// The core guarantee: rank error <= eps * n, on several distributions.
class GKRankErrorTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(GKRankErrorTest, RankErrorWithinEpsilon) {
  const double eps = 0.01;
  GKArray s = Make(eps);
  const auto xs = GenerateDataset(GetParam(), 200000);
  for (double x : xs) s.Add(x);
  ExactQuantiles truth(xs);
  for (double q : {0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double err = RankError(truth, q, s.QuantileOrNaN(q));
    EXPECT_LE(err, eps * 1.05) << "q=" << q;  // small slack for ties
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, GKRankErrorTest,
                         ::testing::ValuesIn(kPaperDatasets),
                         [](const ::testing::TestParamInfo<DatasetId>& info) {
                           return DatasetIdToString(info.param);
                         });

TEST(GKArrayTest, SummarySizeStaysBounded) {
  // O((1/eps) log(eps n)) tuples; for eps=0.01, n=5e5 that is well under
  // a couple thousand entries.
  GKArray s = Make(0.01);
  Rng rng(72);
  for (int i = 0; i < 500000; ++i) s.Add(rng.NextDouble());
  s.Flush();
  EXPECT_LT(s.num_entries(), 2000u);
  EXPECT_GT(s.num_entries(), 50u);
}

TEST(GKArrayTest, SizeSmallerThanRawData) {
  GKArray s = Make(0.01);
  Rng rng(73);
  for (int i = 0; i < 1000000; ++i) s.Add(rng.NextDouble());
  s.Flush();
  EXPECT_LT(s.size_in_bytes(), 1000000 * sizeof(double) / 10);
}

TEST(GKArrayTest, WeightedAddMatchesRepeated) {
  GKArray a = Make(0.02), b = Make(0.02);
  Rng rng(74);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble() * 100;
    const uint64_t w = 1 + rng.NextBounded(4);
    a.Add(x, w);
    for (uint64_t j = 0; j < w; ++j) b.Add(x);
  }
  EXPECT_EQ(a.count(), b.count());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(a.QuantileOrNaN(q), b.QuantileOrNaN(q)) << q;
  }
}

TEST(GKArrayTest, MergePreservesCountAndExtremes) {
  GKArray a = Make(0.01), b = Make(0.01);
  Rng rng(75);
  for (int i = 0; i < 50000; ++i) {
    a.Add(rng.NextDouble() * 100);
    b.Add(200 + rng.NextDouble() * 100);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 100000u);
  EXPECT_GT(a.max(), 200.0);
  // Median of the union sits at the boundary between the two halves.
  const double p50 = a.QuantileOrNaN(0.5);
  EXPECT_GT(p50, 90.0);
  EXPECT_LT(p50, 210.0);
}

TEST(GKArrayTest, OneWayMergeRankErrorDegradesGracefully) {
  // Merging k same-eps sketches should keep rank error within ~3 eps
  // (one-way mergeability: error accumulates but stays proportional).
  const double eps = 0.01;
  Rng rng(76);
  std::vector<double> all;
  GKArray merged = Make(eps);
  for (int part = 0; part < 8; ++part) {
    GKArray s = Make(eps);
    for (int i = 0; i < 30000; ++i) {
      const double x = std::exp(rng.NextDouble() * 10);
      s.Add(x);
      all.push_back(x);
    }
    merged.MergeFrom(s);
  }
  ExactQuantiles truth(all);
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_LE(RankError(truth, q, merged.QuantileOrNaN(q)), 3 * eps)
        << "q=" << q;
  }
}

TEST(GKArrayTest, MergeEmptySides) {
  GKArray a = Make(), b = Make();
  a.Add(1.0);
  a.MergeFrom(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.MergeFrom(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.QuantileOrNaN(0.5), 1.0);
}

TEST(GKArrayTest, AdversarialSortedInput) {
  // Ascending input is the classic GK stress pattern.
  const double eps = 0.01;
  GKArray s = Make(eps);
  std::vector<double> xs(100000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i);
    s.Add(xs[i]);
  }
  ExactQuantiles truth(xs);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_LE(RankError(truth, q, s.QuantileOrNaN(q)), eps * 1.05) << q;
  }
}

TEST(GKArrayTest, AdversarialDescendingInput) {
  const double eps = 0.01;
  GKArray s = Make(eps);
  std::vector<double> xs(100000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(xs.size() - i);
    s.Add(xs[i]);
  }
  ExactQuantiles truth(xs);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_LE(RankError(truth, q, s.QuantileOrNaN(q)), eps * 1.05) << q;
  }
}

TEST(GKArrayTest, HighRelativeErrorOnHeavyTailsIsExpected) {
  // The paper's motivating observation (Figure 10): GK's rank guarantee
  // does not bound relative error on heavy tails. Document the behaviour:
  // p99 relative error can exceed alpha=0.01 by a lot.
  GKArray s = Make(0.01);
  const auto xs = GenerateDataset(DatasetId::kPareto, 1000000);
  for (double x : xs) s.Add(x);
  ExactQuantiles truth(xs);
  const double rel99 =
      RelativeError(s.QuantileOrNaN(0.99), truth.Quantile(0.99));
  EXPECT_GT(rel99, 0.01);  // worse than what DDSketch guarantees
}

}  // namespace
}  // namespace dd
