// Wire-format stability: serialized sketches are consumed by other
// processes (and, in the deployment the paper describes, other languages),
// so the byte layout is a contract. These tests pin exact golden payloads
// for small sketches; if an intentional format change breaks them, bump
// the version byte instead of silently altering v1.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "api/quantile_sketch.h"
#include "core/ddsketch.h"

namespace dd {
namespace {

std::string Hex(const std::string& bytes) {
  std::string out;
  char buf[3];
  for (unsigned char c : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", c);
    out += buf;
  }
  return out;
}

TEST(GoldenFormatTest, DDSketchEmptyPayload) {
  auto sketch = std::move(DDSketch::Create(0.01, 2048)).value();
  // magic "DDSK", version 1, mapping 0 (log), alpha 0.01 as little-endian
  // double (7b14ae47e17a843f), store 1 (collapsing lowest), m=2048 varint
  // (8010), zero/rejected/clamped counts (000000), sum 0.0, min +inf, max
  // -inf, empty positive and negative stores (0000).
  EXPECT_EQ(Hex(sketch.Serialize()),
            "4444534b"                // DDSK
            "01"                      // version
            "00"                      // mapping: log
            "7b14ae47e17a843f"        // alpha = 0.01
            "01"                      // store: collapsing lowest
            "8010"                    // m = 2048
            "00" "00" "00"            // zero/rejected/clamped
            "0000000000000000"        // sum 0.0
            "000000000000f07f"        // min = +inf
            "000000000000f0ff"        // max = -inf
            "00" "00");               // two empty stores
}

TEST(GoldenFormatTest, DDSketchSingleValuePayload) {
  auto sketch = std::move(DDSketch::Create(0.01, 2048)).value();
  sketch.Add(1.0);
  // Index(1.0) = ceil(log(1)/log(gamma)) = 0; one positive bucket
  // (index 0 zigzag -> 00, count 1 -> 01).
  EXPECT_EQ(Hex(sketch.Serialize()),
            "4444534b" "01" "00" "7b14ae47e17a843f" "01" "8010"
            "00" "00" "00"
            "000000000000f03f"   // sum = 1.0
            "000000000000f03f"   // min = 1.0
            "000000000000f03f"   // max = 1.0
            "01" "00" "01"       // positive store: 1 entry, index 0, count 1
            "00");               // negative store empty
}

TEST(GoldenFormatTest, MomentSketchPayloadPrefix) {
  auto sketch = std::move(MomentSketch::Create(4, false)).value();
  sketch.Add(2.0);
  const std::string payload = sketch.Serialize();
  // "MOMT", version 1, k=4, compress=0, count=1.
  EXPECT_EQ(Hex(payload.substr(0, 8)), "4d4f4d54" "01" "04" "00" "01");
  // Then min_t = max_t = 2.0, power sums 1,2,4,8,16 (little-endian
  // doubles).
  EXPECT_EQ(Hex(payload.substr(8, 16)),
            "0000000000000040" "0000000000000040");
  EXPECT_EQ(payload.size(), 8 + 2 * 8 + 5 * 8u);
}

TEST(GoldenFormatTest, MagicBytesPinned) {
  // The sniffing dispatcher depends on these prefixes never changing.
  struct Case {
    std::string payload;
    const char* magic;
  };
  auto dd = std::move(NewDDSketch()).value();
  auto gk = std::move(NewGKArray()).value();
  auto hdr = std::move(NewHdrHistogram(2, 1.0, 1e6)).value();
  auto mo = std::move(NewMomentSketch()).value();
  auto td = std::move(NewTDigest()).value();
  auto kll = std::move(NewKllSketch()).value();
  auto ckms = std::move(NewCkmsSketch()).value();
  const Case cases[] = {
      {dd->Serialize(), "DDSK"}, {gk->Serialize(), "GKAR"},
      {hdr->Serialize(), "HDRD"}, {mo->Serialize(), "MOMT"},
      {td->Serialize(), "TDIG"},  {kll->Serialize(), "KLLS"},
      {ckms->Serialize(), "CKMS"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.payload.substr(0, 4), c.magic);
    EXPECT_EQ(c.payload[4], 1) << c.magic;  // version byte
  }
}

TEST(GoldenFormatTest, VersionByteGuardsDecoding) {
  auto sketch = std::move(DDSketch::Create(0.01)).value();
  sketch.Add(1.0);
  std::string payload = sketch.Serialize();
  payload[4] = 2;  // future version
  EXPECT_FALSE(DDSketch::Deserialize(payload).ok());
  EXPECT_FALSE(DeserializeSketch(payload).ok());
}

}  // namespace
}  // namespace dd
